/**
 * @file
 * Design-space sweep driver: expand a config-grid x seed x
 * traffic-pattern product into independent jobs, run them on the
 * batch engine, and emit one CSV/JSONL row per run.
 *
 * Rows are written in grid order and contain only simulated
 * quantities, so the output file is byte-identical whatever --jobs
 * is. A job that fails (a fatal() or panic() inside the simulation)
 * is isolated: its index and seed are reported on stderr, the row is
 * skipped, and the driver exits non-zero after the batch drains —
 * re-running that one point is `--seed <master>` with the printed
 * index (seeds derive from (master, index)).
 *
 * Examples:
 *   sweep_cli --preset ddr3_1333,lpddr3_1600 --pattern random,dram \
 *             --read-pct 50,100 --jobs 4 --out sweep.csv
 *   sweep_cli --page open,closed --mapping RoRaBaCoCh,RoCoRaBaCh \
 *             --model both --seeds 3 --format jsonl
 */

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dram/dram_presets.hh"
#include "exec/batch_runner.hh"
#include "exec/sweep.hh"
#include "harness/config_file.hh"
#include "obs/metrics.hh"
#include "obs/metrics_server.hh"
#include "sim/logging.hh"

using namespace dramctrl;
using namespace dramctrl::exec;

namespace {

struct SweepCliOptions
{
    SweepSpec spec;
    /** Preset names minted from --config files, joined to the axis. */
    std::vector<std::string> configPresets;
    bool presetExplicit = false;
    unsigned jobs = 1;
    std::string out;             // empty = stdout
    std::string format = "csv";  // csv | jsonl
    bool warmStart = false;
    std::string metricsListen;   // live endpoint listen spec
};

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]   (list-valued options take csv)\n"
        "  --preset LIST      ddr3_1333|ddr3_1600|lpddr3_1600|"
        "wideio_200|\n"
        "                     hmc_vault|ddr4_2400|lpddr4_3200|hbm2\n"
        "  --config LIST      declarative config files (see\n"
        "                     docs/STANDARDS.md); each file is "
        "registered\n"
        "                     as an in-process preset and added to "
        "the\n"
        "                     --preset axis under its own name\n"
        "  --pattern LIST     linear|random|dram\n"
        "  --page LIST        open|open_adaptive|closed|"
        "closed_adaptive\n"
        "  --mapping LIST     RoRaBaCoCh|RoRaBaChCo|RoCoRaBaCh\n"
        "  --read-pct LIST    read percentages\n"
        "  --itt-ns LIST      inter-transaction times, ns\n"
        "  --model NAME       event|cycle|both (default event)\n"
        "  --seeds N          seeds per grid point (default 1)\n"
        "  --seed N           master seed (default 1); run seeds "
        "derive\n"
        "                     from (master seed, grid index)\n"
        "  --requests N       requests per run (default 5000)\n"
        "  --warmup N         warm-up requests before the stats reset\n"
        "                     (default 0 = none)\n"
        "  --warm-start       checkpoint each config group once after\n"
        "                     warm-up and fan the measured phases out\n"
        "                     from the shared snapshot (needs "
        "--warmup)\n"
        "  --plugins LIST     controller plugin chain applied to "
        "every\n"
        "                     point (csv of ecc|prac|refmgr|refmgr-pb;\n"
        "                     refmgr-pb needs --model event)\n"
        "  --stride BYTES     dram-pattern stride (default 256)\n"
        "  --banks N          dram-pattern banks (default 4)\n"
        "  --channels N       channels per run (default 1); N > 1 "
        "builds a\n"
        "                     sharded multi-channel system per point\n"
        "  --sim-threads N    worker threads inside each run "
        "(default 1;\n"
        "                     0 = one per core); composes with --jobs "
        "and\n"
        "                     never changes the rows\n"
        "  --jobs N           worker threads (default 1; 0 = one "
        "per core);\n"
        "                     output is identical for every value\n"
        "  --out PATH         result file (default stdout)\n"
        "  --format F         csv|jsonl (default csv)\n"
        "  --metrics-listen SPEC  serve live batch progress (Unix "
        "socket\n"
        "                     path or loopback TCP port; see "
        "dramctrl_cli)\n",
        prog);
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > pos)
            out.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

bool
parseArgs(int argc, char **argv, SweepCliOptions &opt)
{
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    SweepSpec &spec = opt.spec;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--preset") {
            spec.presets = splitCsv(need(i));
            opt.presetExplicit = true;
        } else if (a == "--config") {
            // Each file becomes an in-process preset named after its
            // base preset (shadowing it) or its path, and joins the
            // preset axis so the grid expands over it like any name.
            for (const std::string &path : splitCsv(need(i))) {
                std::string base;
                DRAMCtrlConfig cfg =
                    harness::loadConfigFile(path, &base);
                std::string pname =
                    base.empty() ? "config:" + path : base;
                presets::registerPreset(pname,
                                        [cfg] { return cfg; });
                opt.configPresets.push_back(pname);
            }
        } else if (a == "--pattern") {
            spec.patterns = splitCsv(need(i));
        } else if (a == "--page") {
            spec.pages.clear();
            for (const std::string &s : splitCsv(need(i))) {
                PagePolicy p;
                if (!pagePolicyFromString(s, p))
                    fatal("unknown page policy '%s'", s.c_str());
                spec.pages.push_back(p);
            }
        } else if (a == "--mapping") {
            spec.mappings.clear();
            for (const std::string &s : splitCsv(need(i))) {
                AddrMapping m;
                if (!addrMappingFromString(s, m))
                    fatal("unknown mapping '%s'", s.c_str());
                spec.mappings.push_back(m);
            }
        } else if (a == "--read-pct") {
            spec.readPcts.clear();
            for (const std::string &s : splitCsv(need(i)))
                spec.readPcts.push_back(
                    static_cast<unsigned>(std::stoul(s)));
        } else if (a == "--itt-ns") {
            spec.ittNs.clear();
            for (const std::string &s : splitCsv(need(i)))
                spec.ittNs.push_back(std::stod(s));
        } else if (a == "--model") {
            std::string m = need(i);
            if (m == "event")
                spec.models = {harness::CtrlModel::Event};
            else if (m == "cycle")
                spec.models = {harness::CtrlModel::Cycle};
            else if (m == "both")
                spec.models = {harness::CtrlModel::Event,
                               harness::CtrlModel::Cycle};
            else
                fatal("unknown model '%s'", m.c_str());
        } else if (a == "--seeds") {
            spec.numSeeds =
                static_cast<unsigned>(std::stoul(need(i)));
        } else if (a == "--seed") {
            spec.masterSeed = std::stoull(need(i));
        } else if (a == "--plugins") {
            spec.plugins = need(i);
        } else if (a == "--requests") {
            spec.requests = std::stoull(need(i));
        } else if (a == "--warmup") {
            spec.warmupRequests = std::stoull(need(i));
        } else if (a == "--warm-start") {
            opt.warmStart = true;
        } else if (a == "--stride") {
            spec.strideBytes = std::stoull(need(i));
        } else if (a == "--banks") {
            spec.banks = static_cast<unsigned>(std::stoul(need(i)));
        } else if (a == "--channels") {
            spec.channels =
                static_cast<unsigned>(std::stoul(need(i)));
        } else if (a == "--sim-threads") {
            spec.simThreads =
                static_cast<unsigned>(std::stoul(need(i)));
            if (spec.simThreads == 0)
                spec.simThreads = ThreadPool::hardwareThreads();
        } else if (a == "--jobs") {
            opt.jobs = static_cast<unsigned>(std::stoul(need(i)));
            if (opt.jobs == 0)
                opt.jobs = ThreadPool::hardwareThreads();
        } else if (a == "--out") {
            opt.out = need(i);
        } else if (a == "--format") {
            opt.format = need(i);
        } else if (a == "--metrics-listen") {
            opt.metricsListen = need(i);
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return false;
        } else {
            fatal("unknown option '%s' (try --help)", a.c_str());
        }
    }
    if (opt.format != "csv" && opt.format != "jsonl")
        fatal("unknown format '%s'", opt.format.c_str());
    if (opt.warmStart && spec.warmupRequests == 0)
        fatal("--warm-start needs --warmup N");
    // --config names extend an explicit --preset axis; with no
    // --preset they replace the default axis instead of silently
    // sweeping ddr3_1333 alongside the files.
    if (!opt.configPresets.empty()) {
        if (!opt.presetExplicit)
            spec.presets.clear();
        for (const std::string &p : opt.configPresets)
            spec.presets.push_back(p);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    SweepCliOptions opt;
    if (!parseArgs(argc, argv, opt))
        return 0;

    std::string err;
    if (!checkSpec(opt.spec, &err))
        fatal("%s", err.c_str());

    std::vector<SweepPoint> grid = expandGrid(opt.spec);
    std::fprintf(stderr,
                 "sweep: %zu runs (%u worker%s, master seed %llu)\n",
                 grid.size(), opt.jobs, opt.jobs == 1 ? "" : "s",
                 static_cast<unsigned long long>(
                     opt.spec.masterSeed));

    // Live batch progress: a standalone registry (the per-job
    // simulators live inside worker threads and are torn down with
    // each job, so only driver-level progress is exposed) published
    // after every job outcome. Outcome callbacks run on the driver
    // thread, so rendering needs no extra locking.
    std::unique_ptr<obs::MetricsRegistry> metricsReg;
    std::unique_ptr<obs::MetricsServer> metricsServer;
    if (!opt.metricsListen.empty()) {
        metricsReg = std::make_unique<obs::MetricsRegistry>();
        metricsServer =
            std::make_unique<obs::MetricsServer>(opt.metricsListen);
        metricsServer->start();
        std::fprintf(stderr, "sweep: metrics endpoint %s\n",
                     metricsServer->endpoint().c_str());
        metricsReg->gauge("sweep.jobs_total", "runs in the grid")
            .set(static_cast<double>(grid.size()));
    }
    auto publishMetrics = [&]() {
        if (!metricsServer)
            return;
        std::ostringstream prom;
        std::ostringstream json;
        metricsReg->writeProm(prom);
        metricsReg->writeJson(json);
        metricsServer->publish(prom.str(), json.str());
    };
    publishMetrics();

    std::FILE *out = stdout;
    if (!opt.out.empty()) {
        out = std::fopen(opt.out.c_str(), "w");
        if (out == nullptr)
            fatal("cannot open '%s'", opt.out.c_str());
    }
    if (opt.format == "csv")
        std::fprintf(out, "%s\n", csvHeader().c_str());

    // Failures must throw out of the job (isolated by the runner)
    // instead of exiting the whole batch.
    setThrowOnError(true);

    const SweepSpec &spec = opt.spec;

    // Warm-start: phase 1 runs each config group's warm-up once and
    // keeps the post-reset snapshot; phase 2 completes every point
    // from its group's shared snapshot. Rows are identical to the
    // cold (inline warm-up) path at any --jobs width.
    std::vector<std::string> snapshots;
    if (opt.warmStart) {
        const unsigned seeds = std::max(1u, spec.numSeeds);
        const std::size_t groups = grid.size() / seeds;
        snapshots.resize(groups);
        std::fprintf(stderr,
                     "sweep: warm-start, %zu warm-up snapshot%s\n",
                     groups, groups == 1 ? "" : "s");
        BatchRunner warmup(opt.jobs);
        bool warmupFailed = false;
        warmup.run<std::string>(
            groups,
            [&grid, &spec, seeds](std::size_t g) {
                return captureWarmupSnapshot(grid[g * seeds], spec);
            },
            [&](const exec::JobOutcome<std::string> &out_come) {
                if (metricsReg) {
                    metricsReg
                        ->counter("sweep.warmups_done",
                                  "warm-up snapshots captured")
                        .inc();
                    publishMetrics();
                }
                if (!out_come.ok) {
                    std::fprintf(stderr,
                                 "sweep warm-up %zu FAILED: %s\n",
                                 out_come.index,
                                 out_come.error.c_str());
                    warmupFailed = true;
                    return;
                }
                snapshots[out_come.index] = out_come.value;
            });
        if (warmupFailed) {
            setThrowOnError(false);
            std::fprintf(stderr, "sweep: warm-up phase failed\n");
            return 2;
        }
    }

    std::vector<std::size_t> failedJobs;
    BatchRunner runner(opt.jobs);
    runner.run<SweepRow>(
        grid.size(),
        [&grid, &spec, &snapshots, &opt](std::size_t i) {
            if (opt.warmStart)
                return runMeasuredFromSnapshot(
                    grid[i], spec,
                    snapshots[configGroupOf(grid[i], spec)]);
            return runSweepPoint(grid[i], spec);
        },
        [&](const exec::JobOutcome<SweepRow> &out_come) {
            if (metricsReg) {
                metricsReg
                    ->counter("sweep.jobs_completed", "runs finished")
                    .inc();
                if (!out_come.ok)
                    metricsReg
                        ->counter("sweep.jobs_failed", "runs failed")
                        .inc();
                publishMetrics();
            }
            if (!out_come.ok) {
                std::fprintf(
                    stderr,
                    "sweep job %zu FAILED (seed %llu, master %llu): "
                    "%s\n",
                    out_come.index,
                    static_cast<unsigned long long>(
                        grid[out_come.index].seed),
                    static_cast<unsigned long long>(spec.masterSeed),
                    out_come.error.c_str());
                failedJobs.push_back(out_come.index);
                return;
            }
            std::fprintf(out, "%s\n",
                         (opt.format == "csv"
                              ? toCsv(out_come.value)
                              : toJsonl(out_come.value))
                             .c_str());
        });
    setThrowOnError(false);

    publishMetrics();
    if (metricsServer)
        metricsServer->stop();

    if (out != stdout)
        std::fclose(out);

    if (!failedJobs.empty()) {
        std::fprintf(stderr, "sweep: %zu of %zu runs failed\n",
                     failedJobs.size(), grid.size());
        return 2;
    }
    std::fprintf(stderr, "sweep: all %zu runs completed\n",
                 grid.size());
    return 0;
}
