#!/usr/bin/env sh
# Regenerate the golden-stats regression corpus (tests/golden/*.json).
#
# Usage: tools/regen_golden.sh [build-dir]
#
# Runs the golden_* tests with GOLDEN_REGEN=1, which makes each case
# rewrite its reference file instead of comparing against it. Review
# the resulting diff under tests/golden/ like any other code change.
set -eu

BUILD_DIR="${1:-build}"
TESTS_BIN="$BUILD_DIR/tests/dramctrl_tests"

if [ ! -x "$TESTS_BIN" ]; then
    echo "error: $TESTS_BIN not found; build first" \
         "(cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
fi

GOLDEN_REGEN=1 "$TESTS_BIN" --gtest_filter='*golden_*' >/dev/null
echo "golden corpus regenerated under tests/golden/"
git -C "$(dirname "$0")/.." status --short tests/golden/ 2>/dev/null || true
