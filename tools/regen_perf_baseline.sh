#!/usr/bin/env sh
# Regenerate the committed performance baselines under bench/baselines/.
#
# Usage: tools/regen_perf_baseline.sh [build-dir]
#
# Runs the headline throughput benchmark (core_perf), the
# batch-engine scaling benchmark (parallel_scaling) and the trace
# pipeline benchmark (trace_perf, 50M records — needs ~800 MB of
# scratch space) and rewrites bench/baselines/BENCH_core.json,
# BENCH_parallel.json and BENCH_trace.json.
# CI diffs every run against these files (informational — runner timing
# is noisy), so refresh them on the machine class you care about after
# any deliberate perf-relevant change, and review the diff like any
# other code change.
set -eu

BUILD_DIR="${1:-build}"
REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="$REPO_DIR/bench/baselines"

for bin in core_perf parallel_scaling trace_perf; do
    if [ ! -x "$BUILD_DIR/bench/$bin" ]; then
        echo "error: $BUILD_DIR/bench/$bin not found; build first" \
             "(cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release" \
             "&& cmake --build $BUILD_DIR -j --target $bin)" >&2
        exit 1
    fi
done

mkdir -p "$OUT_DIR"
"$BUILD_DIR/bench/core_perf" --json "$OUT_DIR/BENCH_core.json"
"$BUILD_DIR/bench/parallel_scaling" --runs 48 \
    --json "$OUT_DIR/BENCH_parallel.json"
"$BUILD_DIR/bench/trace_perf" --records 50000000 --sim-records 500000 \
    --json "$OUT_DIR/BENCH_trace.json"
echo "perf baselines regenerated under bench/baselines/"
git -C "$REPO_DIR" status --short bench/baselines/ 2>/dev/null || true
