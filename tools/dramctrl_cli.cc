/**
 * @file
 * Command-line runner: configure a controller and a traffic pattern
 * from flags, simulate, and print (or JSON-dump) the results. The
 * scriptable front end for quick what-if studies without writing C++.
 *
 * Examples:
 *   dramctrl_cli --preset ddr3_1600 --pattern random --requests 50000
 *   dramctrl_cli --preset lpddr3_1600 --pattern linear --read-pct 70 \
 *                --itt-ns 8 --page closed --mapping RoCoRaBaCh
 *   dramctrl_cli --preset wideio_200 --model cycle --json
 *   dramctrl_cli --preset ddr3_1333 --pattern dram --stride 512 \
 *                --banks 4 --audit
 *   dramctrl_cli --preset ddr3_1600 --runs 16 --jobs 4
 *
 * `--runs N` repeats the run N times with per-run seeds derived from
 * (--seed, run index) and prints one summary row per run; `--jobs M`
 * executes them on the batch engine. Rows are emitted in run order
 * and contain only simulated quantities, so output is identical for
 * every --jobs value. A run that dies reports its index and seed and
 * the tool exits non-zero.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "ckpt/ckpt.hh"
#include "dram/cmd_log.hh"
#include "exec/batch_runner.hh"
#include "exec/sweep.hh"
#include "dram/dram_presets.hh"
#include "dram/plugin/plugin.hh"
#include "dram/protocol_checker.hh"
#include "harness/config_file.hh"
#include "harness/multichannel.hh"
#include "harness/testbench.hh"
#include "obs/chrome_trace.hh"
#include "obs/event_profiler.hh"
#include "obs/metrics.hh"
#include "obs/metrics_server.hh"
#include "obs/stats_sampler.hh"
#include "obs/trace.hh"
#include "power/micron_power.hh"
#include "sim/eventq.hh"
#include "sim/logging.hh"
#include "trafficgen/dram_gen.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"
#include "trafficgen/trace_file.hh"

using namespace dramctrl;

namespace {

struct CliOptions
{
    std::string preset = "ddr3_1333";
    bool presetExplicit = false;
    std::string configFile;     // declarative config (overrides preset)
    std::string dumpConfig;     // dump resolved config to PATH ('-' =
                                // stdout) and exit
    std::string pattern = "random"; // linear | random | dram | trace
    std::string model = "event";    // event | cycle
    std::string eventq = "heap";    // heap | calendar
    std::string page;               // open | open_adaptive | ...
    std::string mapping;            // RoRaBaCoCh | ...
    std::string sched;              // fcfs | frfcfs
    bool tempExplicit = false;
    unsigned readPct = 100;
    double ittNs = 6.0;
    std::uint64_t requests = 20000;
    std::uint64_t strideBytes = 256;
    unsigned banks = 4;
    double temperatureC = 85.0;
    bool powerDown = false;
    std::string plugins;        // csv plugin chain, e.g. ecc,prac
    double eccBer = -1.0;       // < 0 = keep the spec default
    std::uint64_t eccSeed = 0;  // 0 = keep the spec default
    unsigned pracThreshold = 0; // 0 = keep the spec default
    bool json = false;
    bool audit = false;
    std::uint64_t seed = 1;
    std::uint64_t runs = 1;  // > 1 = batch mode over derived seeds
    unsigned jobs = 1;

    // Trace replay and capture (see docs/TRACES.md).
    std::string traceIn;      // stimulus for --pattern trace
    std::string traceCapture; // record the accepted request stream
    double traceScale = 1.0;  // replay time scale

    // Multi-channel mode (see docs/PERFORMANCE.md, sharding).
    unsigned channels = 0;   // 0 = unset (single channel, or preset's)
    unsigned simThreads = 1; // worker threads for the sharded engine

    // Observability (see docs/OBSERVABILITY.md).
    std::string traceChannels;  // csv of channel names, or "all"
    std::string traceFile;      // text sink target; empty = stderr
    std::string traceJsonl;     // JSONL sink target
    std::string chromeFile;     // Chrome trace-event JSON target
    double sampleIntervalNs = 0;
    std::string sampleFile = "samples.csv";
    std::string sampleFormat = "csv"; // csv | jsonl
    std::string sampleStats;          // csv of stat paths; empty = default
    bool profileEvents = false;
    std::string metricsListen;        // live endpoint listen spec
    double metricsIntervalNs = 1000.0;

    // Checkpointing (see docs/CHECKPOINT.md).
    double ckptAtNs = 0;        // > 0 = stop and save at this time
    std::string ckptOut = "ckpt.bin";
    std::string ckptRestore;    // restore before running
    std::string ckptJson;       // dump a checkpoint as JSON and exit
};

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --preset NAME      ddr3_1333|ddr3_1600|lpddr3_1600|"
        "wideio_200|\n"
        "                     hmc_vault|ddr4_2400|lpddr4_3200|hbm2,\n"
        "                     or a system preset: hmc_stack_16|"
        "hmc_stack_64|\n"
        "                     hmc_stack_256|hbm2_stack_4|hbm2_stack_8\n"
        "                     (implies --channels)\n"
        "  --config PATH      load a declarative JSON config file "
        "(see\n"
        "                     docs/STANDARDS.md; mutually exclusive "
        "with\n"
        "                     --preset)\n"
        "  --dump-config P    write the resolved configuration as a\n"
        "                     config file to P ('-' = stdout) and "
        "exit\n"
        "  --pattern NAME     linear|random|dram (DRAM-aware)|trace\n"
        "                     (replay --trace-in)\n"
        "  --model NAME       event|cycle\n"
        "  --eventq NAME      heap|calendar agenda (identical "
        "results,\n"
        "                     different cost profile; see "
        "bench/eventq_perf)\n"
        "  --page POLICY      open|open_adaptive|closed|"
        "closed_adaptive\n"
        "  --mapping NAME     RoRaBaCoCh|RoRaBaChCo|RoCoRaBaCh\n"
        "  --sched NAME       fcfs|frfcfs\n"
        "  --read-pct N       percentage of reads (default 100)\n"
        "  --itt-ns F         inter-transaction time (default 6)\n"
        "  --requests N       requests to simulate (default 20000)\n"
        "  --stride BYTES     dram pattern stride (default 256)\n"
        "  --banks N          dram pattern banks (default 4)\n"
        "  --temperature C    device temperature (default 85)\n"
        "  --power-down       enable the power-down extension\n"
        "  --plugins LIST     controller plugin chain (csv of ecc|"
        "prac|\n"
        "                     refmgr|refmgr-pb; see docs/PLUGINS.md)\n"
        "  --ecc-ber F        raw bit error rate for the ecc plugin\n"
        "  --ecc-seed N       error-injection seed for the ecc plugin\n"
        "  --prac-threshold N activation threshold for the prac "
        "plugin\n"
        "  --audit            log commands and run the JEDEC checker\n"
        "  --json             dump the full stats tree as JSON\n"
        "  --seed N           RNG seed (default 1)\n"
        "  --runs N           repeat with seeds derived from (seed, "
        "run\n"
        "                     index), one summary row per run\n"
        "  --jobs M           concurrent runs in batch mode "
        "(default 1;\n"
        "                     0 = one per core); output is identical "
        "for\n"
        "                     every value\n"
        "trace replay/capture (see docs/TRACES.md):\n"
        "  --trace-in PATH    stimulus file for --pattern trace; text "
        "or\n"
        "                     binary .dtrc, detected by content\n"
        "  --trace-capture P  record the accepted request stream to P\n"
        "                     (.txt => text, anything else => .dtrc "
        "binary;\n"
        "                     with --runs, P is a prefix: one\n"
        "                     '<P><run>.dtrc' file per run)\n"
        "  --trace-scale F    stretch (>1) or compress (<1) replayed\n"
        "                     inter-request gaps (default 1.0)\n"
        "multi-channel:\n"
        "  --channels N       simulate N interleaved channels behind "
        "the\n"
        "                     sharded crossbar, one generator per "
        "channel\n"
        "                     (--requests is the total across "
        "channels)\n"
        "  --sim-threads N    worker threads for one multi-channel "
        "run\n"
        "                     (default 1; 0 = one per core); stats "
        "are\n"
        "                     byte-identical for every value\n"
        "observability:\n"
        "  --trace LIST       enable trace channels (csv or 'all')\n"
        "  --trace-file PATH  tick-stamped text trace to PATH "
        "(default stderr)\n"
        "  --trace-jsonl PATH JSONL trace to PATH\n"
        "  --trace-chrome PATH  Chrome trace-event JSON (packet spans\n"
        "                     + DRAM commands; open in Perfetto)\n"
        "  --sample-interval NS  sample stats every NS ns of sim time\n"
        "  --sample-file PATH    time series target "
        "(default samples.csv)\n"
        "  --sample-format F     csv|jsonl (default csv)\n"
        "  --sample-stats LIST   csv of stat paths "
        "(default controller set)\n"
        "  --profile-events   count and time events per type\n"
        "  --metrics-listen SPEC  serve live metrics while running: a\n"
        "                     Unix socket path (contains '/') or a\n"
        "                     loopback TCP port (0 = ephemeral);\n"
        "                     Prometheus text by default, /json for "
        "JSON\n"
        "  --metrics-interval NS  publish cadence in ns "
        "(default 1000)\n"
        "checkpointing:\n"
        "  --ckpt-at NS       simulate to NS ns, save a checkpoint, "
        "stop\n"
        "  --ckpt-out PATH    checkpoint target (default ckpt.bin)\n"
        "  --ckpt-restore P   restore checkpoint P (same config "
        "flags!)\n"
        "                     before simulating to completion\n"
        "  --ckpt-json PATH   print checkpoint PATH as JSON and exit\n",
        prog);
}

bool
parseArgs(int argc, char **argv, CliOptions &opt)
{
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--preset") {
            opt.preset = need(i);
            opt.presetExplicit = true;
        }
        else if (a == "--config") opt.configFile = need(i);
        else if (a == "--dump-config") opt.dumpConfig = need(i);
        else if (a == "--pattern") opt.pattern = need(i);
        else if (a == "--model") opt.model = need(i);
        else if (a == "--eventq") opt.eventq = need(i);
        else if (a == "--page") opt.page = need(i);
        else if (a == "--mapping") opt.mapping = need(i);
        else if (a == "--sched") opt.sched = need(i);
        else if (a == "--read-pct")
            opt.readPct = static_cast<unsigned>(std::stoul(need(i)));
        else if (a == "--itt-ns") opt.ittNs = std::stod(need(i));
        else if (a == "--requests") opt.requests = std::stoull(need(i));
        else if (a == "--stride")
            opt.strideBytes = std::stoull(need(i));
        else if (a == "--banks")
            opt.banks = static_cast<unsigned>(std::stoul(need(i)));
        else if (a == "--temperature") {
            opt.temperatureC = std::stod(need(i));
            opt.tempExplicit = true;
        }
        else if (a == "--power-down") opt.powerDown = true;
        else if (a == "--plugins") opt.plugins = need(i);
        else if (a == "--ecc-ber") opt.eccBer = std::stod(need(i));
        else if (a == "--ecc-seed") opt.eccSeed = std::stoull(need(i));
        else if (a == "--prac-threshold")
            opt.pracThreshold =
                static_cast<unsigned>(std::stoul(need(i)));
        else if (a == "--audit") opt.audit = true;
        else if (a == "--json") opt.json = true;
        else if (a == "--seed") opt.seed = std::stoull(need(i));
        else if (a == "--runs") opt.runs = std::stoull(need(i));
        else if (a == "--jobs") {
            opt.jobs = static_cast<unsigned>(std::stoul(need(i)));
            if (opt.jobs == 0)
                opt.jobs = exec::ThreadPool::hardwareThreads();
        }
        else if (a == "--channels")
            opt.channels = static_cast<unsigned>(std::stoul(need(i)));
        else if (a == "--sim-threads") {
            opt.simThreads =
                static_cast<unsigned>(std::stoul(need(i)));
            if (opt.simThreads == 0)
                opt.simThreads = exec::ThreadPool::hardwareThreads();
        }
        else if (a == "--trace-in") opt.traceIn = need(i);
        else if (a == "--trace-capture") opt.traceCapture = need(i);
        else if (a == "--trace-scale")
            opt.traceScale = std::stod(need(i));
        else if (a == "--trace") opt.traceChannels = need(i);
        else if (a == "--trace-file") opt.traceFile = need(i);
        else if (a == "--trace-jsonl") opt.traceJsonl = need(i);
        else if (a == "--trace-chrome") opt.chromeFile = need(i);
        else if (a == "--sample-interval")
            opt.sampleIntervalNs = std::stod(need(i));
        else if (a == "--sample-file") opt.sampleFile = need(i);
        else if (a == "--sample-format") opt.sampleFormat = need(i);
        else if (a == "--sample-stats") opt.sampleStats = need(i);
        else if (a == "--profile-events") opt.profileEvents = true;
        else if (a == "--metrics-listen") opt.metricsListen = need(i);
        else if (a == "--metrics-interval")
            opt.metricsIntervalNs = std::stod(need(i));
        else if (a == "--ckpt-at") opt.ckptAtNs = std::stod(need(i));
        else if (a == "--ckpt-out") opt.ckptOut = need(i);
        else if (a == "--ckpt-restore") opt.ckptRestore = need(i);
        else if (a == "--ckpt-json") opt.ckptJson = need(i);
        else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return false;
        } else {
            fatal("unknown option '%s' (try --help)", a.c_str());
        }
    }
    return true;
}

PagePolicy
pageFromString(const std::string &s)
{
    if (s == "open") return PagePolicy::Open;
    if (s == "open_adaptive") return PagePolicy::OpenAdaptive;
    if (s == "closed") return PagePolicy::Closed;
    if (s == "closed_adaptive") return PagePolicy::ClosedAdaptive;
    fatal("unknown page policy '%s'", s.c_str());
}

AddrMapping
mappingFromString(const std::string &s)
{
    if (s == "RoRaBaCoCh") return AddrMapping::RoRaBaCoCh;
    if (s == "RoRaBaChCo") return AddrMapping::RoRaBaChCo;
    if (s == "RoCoRaBaCh") return AddrMapping::RoCoRaBaCh;
    fatal("unknown address mapping '%s'", s.c_str());
}

SchedPolicy
schedFromString(const std::string &s)
{
    if (s == "fcfs") return SchedPolicy::Fcfs;
    if (s == "frfcfs") return SchedPolicy::FrFcfs;
    fatal("unknown scheduler '%s'", s.c_str());
}

/**
 * --runs N: the same configuration, N derived seeds, on the batch
 * engine. Reuses the sweep-point runner so the row contents (and
 * therefore the output bytes) match a single-point sweep_cli grid.
 */
int
runBatch(const CliOptions &opt, const DRAMCtrlConfig &cfg,
         harness::CtrlModel model)
{
    if (!opt.sched.empty() || opt.audit || opt.powerDown ||
        !opt.plugins.empty() ||
        opt.temperatureC != 85.0 || !opt.traceChannels.empty() ||
        !opt.traceFile.empty() || !opt.traceJsonl.empty() ||
        !opt.chromeFile.empty() || opt.sampleIntervalNs > 0 ||
        opt.profileEvents || !opt.metricsListen.empty())
        fatal("--runs batch mode supports the preset/pattern/page/"
              "mapping/read-pct/itt-ns/model/requests/stride/banks/"
              "seed axes only; use a single run (or sweep_cli) for "
              "the rest");

    exec::SweepSpec spec;
    spec.presets = {opt.preset};
    spec.patterns = {opt.pattern};
    spec.pages = {cfg.pagePolicy};
    spec.mappings = {cfg.addrMapping};
    spec.readPcts = {opt.readPct};
    spec.ittNs = {opt.ittNs};
    spec.models = {model};
    spec.numSeeds = static_cast<unsigned>(opt.runs);
    spec.masterSeed = opt.seed;
    spec.requests = opt.requests;
    spec.strideBytes = opt.strideBytes;
    spec.banks = opt.banks;
    spec.tracePath = opt.traceIn;
    spec.traceScale = opt.traceScale;
    spec.traceCapturePrefix = opt.traceCapture;

    std::string err;
    if (!exec::checkSpec(spec, &err))
        fatal("%s", err.c_str());
    std::vector<exec::SweepPoint> grid = exec::expandGrid(spec);

    // A run that fatal()s fails its own job, not the whole batch.
    setThrowOnError(true);
    std::size_t failed = 0;
    exec::BatchRunner runner(opt.jobs);
    runner.run<exec::SweepRow>(
        grid.size(),
        [&](std::size_t i) {
            return exec::runSweepPoint(grid[i], spec);
        },
        [&](const exec::JobOutcome<exec::SweepRow> &out) {
            if (!out.ok) {
                ++failed;
                std::printf("run %zu FAILED (seed %llu, master "
                            "%llu): %s\n",
                            out.index,
                            static_cast<unsigned long long>(
                                grid[out.index].seed),
                            static_cast<unsigned long long>(opt.seed),
                            out.error.c_str());
                return;
            }
            const exec::SweepRow &r = out.value;
            if (opt.json) {
                std::printf("%s\n", exec::toJsonl(r).c_str());
            } else {
                std::printf("run %zu (seed %llu): %.2f us, %.2f "
                            "GB/s, %.1f ns read latency, bus "
                            "%.1f%%\n",
                            out.index,
                            static_cast<unsigned long long>(
                                r.point.seed),
                            r.simulatedUs, r.bandwidthGBs,
                            r.avgReadLatencyNs, 100 * r.busUtil);
            }
        });
    setThrowOnError(false);

    if (failed) {
        std::fprintf(stderr,
                     "batch: %zu of %zu runs failed (master seed "
                     "%llu)\n",
                     failed, grid.size(),
                     static_cast<unsigned long long>(opt.seed));
        return 2;
    }
    return 0;
}

/**
 * --channels N: one sharded multi-channel system, one generator per
 * channel, executed by --sim-threads worker threads. Stats and exit
 * status are byte-identical for every thread count (see sim/shard.hh),
 * so --sim-threads is a pure wall-clock knob.
 */
int
runMulti(const CliOptions &opt, const DRAMCtrlConfig &cfg,
         harness::CtrlModel model, unsigned channels)
{
    if (opt.runs > 1 || !opt.traceChannels.empty() ||
        !opt.traceFile.empty() || !opt.traceJsonl.empty() ||
        !opt.chromeFile.empty() || opt.sampleIntervalNs > 0 ||
        opt.profileEvents || !opt.metricsListen.empty())
        fatal("--channels supports the preset/pattern/page/mapping/"
              "sched/read-pct/itt-ns/model/requests/seed/audit/json/"
              "checkpoint axes only; mid-run observers read simulator "
              "state across shards and stay single-channel");
    if (opt.pattern == "dram")
        fatal("the dram pattern is bank-aware and single-channel; use "
              "linear or random with --channels");
    if (opt.pattern != "linear" && opt.pattern != "random" &&
        opt.pattern != "trace")
        fatal("unknown pattern '%s'", opt.pattern.c_str());
    if (opt.pattern == "trace" && opt.traceIn.empty())
        fatal("--pattern trace needs --trace-in PATH");

    harness::MultiChannelConfig mcfg;
    mcfg.channels = channels;
    mcfg.ctrl = cfg;
    mcfg.model = model;
    mcfg.simThreads = opt.simThreads;
    harness::MultiChannelSystem mc(mcfg);
    if (!opt.traceCapture.empty())
        mc.enableCapture(opt.traceCapture);

    if (opt.pattern == "trace") {
        // One player per recorded source id; the trace fans out over
        // the shards like its originating generators did.
        harness::addTracePlayers(mc, opt.traceIn, opt.traceScale);
    } else {
        // One generator per channel, each in its own address slice,
        // with the request budget split evenly.
        GenConfig gc;
        gc.readPct = opt.readPct;
        gc.minITT = gc.maxITT = fromNs(opt.ittNs);
        gc.numRequests =
            std::max<std::uint64_t>(1, opt.requests / channels);
        gc.windowSize =
            std::min<std::uint64_t>(mc.totalCapacity(), 1ULL << 26);
        for (unsigned i = 0; i < channels; ++i) {
            GenConfig g = harness::sliceGenWindow(gc, i, channels,
                                                  mc.totalCapacity());
            g.seed = exec::deriveSeed(opt.seed, i);
            if (opt.pattern == "linear")
                mc.addGen<LinearGen>(g);
            else
                mc.addGen<RandomGen>(g);
        }
    }

    std::vector<CmdLogger> *loggers = nullptr;
    if (opt.audit)
        loggers = &mc.attachCmdLoggers();

    if (!opt.ckptRestore.empty())
        ckpt::restoreFile(mc.sim(), opt.ckptRestore);

    if (!opt.json)
        std::printf("%s\nchannels:          %u (sim-threads %u)\n",
                    cfg.describe().c_str(), channels, opt.simThreads);

    if (opt.ckptAtNs > 0) {
        mc.sim().run(fromNs(opt.ckptAtNs));
        ckpt::saveFile(mc.sim(), opt.ckptOut);
        if (!opt.json)
            std::printf("checkpoint:        %s (at %.2f us)\n",
                        opt.ckptOut.c_str(),
                        toSeconds(mc.sim().curTick()) * 1e6);
        return 0;
    }

    mc.runToCompletion();
    mc.finishCapture();

    if (opt.json) {
        std::cout << "{\"seed\": " << opt.seed << ", \"stats\": ";
        mc.sim().dumpStatsJson(std::cout);
        std::cout << "}\n";
    } else {
        std::printf("simulated time:    %.2f us\n",
                    toSeconds(mc.sim().curTick()) * 1e6);
        std::printf("avg read latency:  %.1f ns\n",
                    mc.avgReadLatencyNs());
        std::printf("avg bus util:      %.1f%%\n",
                    100 * mc.avgBusUtil());
        std::printf("total bandwidth:   %.2f GB/s over %u channels\n",
                    mc.totalBandwidthGBs(), channels);
    }

    if (opt.audit) {
        std::size_t cmds = 0, violations = 0;
        for (unsigned ch = 0; ch < channels; ++ch) {
            // Fresh checker per channel: each channel is its own
            // command bus with its own timing state.
            ProtocolChecker checker(cfg.org, cfg.timing);
            plugin::armChecker(checker, cfg);
            auto v = checker.check((*loggers)[ch].log());
            cmds += (*loggers)[ch].size();
            for (unsigned i = 0; i < 5 && i < v.size(); ++i)
                std::printf("  ch%u %s\n", ch,
                            v[i].toString().c_str());
            violations += v.size();
        }
        std::printf("protocol audit:    %zu commands, %zu violations "
                    "over %u channels\n",
                    cmds, violations, channels);
        return violations == 0 ? 0 : 2;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opt;
    if (!parseArgs(argc, argv, opt))
        return 0;

    if (!opt.ckptJson.empty()) {
        ckpt::dumpJsonFile(opt.ckptJson, std::cout);
        return 0;
    }

    // Must precede every simulator construction: queues pin their
    // agenda kind when built.
    if (opt.eventq == "calendar")
        EventQueue::setDefaultAgenda(AgendaKind::Calendar);
    else if (opt.eventq != "heap")
        fatal("unknown event queue '%s' (heap|calendar)",
              opt.eventq.c_str());

    // A system preset names a whole multi-channel assembly; an
    // explicit --channels can still override its channel count.
    unsigned channels = opt.channels;
    DRAMCtrlConfig cfg;
    if (!opt.configFile.empty()) {
        if (opt.presetExplicit)
            fatal("--config and --preset are mutually exclusive (a "
                  "config file may name its base preset itself)");
        std::string base;
        cfg = harness::loadConfigFile(opt.configFile, &base);
        // Register the loaded config so every preset-name lookup on
        // this run (batch rows, labels, power) resolves to exactly
        // the file's configuration.
        std::string pname =
            base.empty() ? "config:" + opt.configFile : base;
        presets::registerPreset(pname, [cfg] { return cfg; });
        opt.preset = pname;
    } else if (harness::isSystemPreset(opt.preset)) {
        harness::MultiChannelConfig sys =
            harness::systemPresetByName(opt.preset);
        cfg = sys.ctrl;
        if (channels == 0)
            channels = sys.channels;
    } else {
        cfg = presets::byName(opt.preset);
    }
    if (!opt.page.empty())
        cfg.pagePolicy = pageFromString(opt.page);
    if (!opt.mapping.empty())
        cfg.addrMapping = mappingFromString(opt.mapping);
    if (!opt.sched.empty())
        cfg.schedPolicy = schedFromString(opt.sched);
    if (opt.tempExplicit || opt.configFile.empty())
        cfg.temperatureC = opt.temperatureC;
    if (opt.powerDown || opt.configFile.empty())
        cfg.enablePowerDown = opt.powerDown;
    if (!opt.plugins.empty()) {
        std::string err;
        if (!plugin::parsePluginList(opt.plugins, cfg, err))
            fatal("%s", err.c_str());
        for (PluginSpec &ps : cfg.plugins) {
            if (ps.kind == "ecc") {
                if (opt.eccBer >= 0)
                    ps.eccBer = opt.eccBer;
                if (opt.eccSeed)
                    ps.eccSeed = opt.eccSeed;
            } else if (ps.kind == "prac" && opt.pracThreshold) {
                ps.pracThreshold = opt.pracThreshold;
            }
        }
    }
    cfg.check();

    if (!opt.dumpConfig.empty()) {
        // Emit the fully-resolved configuration (preset + config file
        // + CLI overrides) as a config file. The preset name is only
        // recorded when re-parsing can resolve it.
        std::string pname =
            presets::hasPreset(opt.preset) ? opt.preset : "";
        if (opt.dumpConfig == "-") {
            std::fputs(harness::dumpConfig(cfg, pname).c_str(),
                       stdout);
        } else if (!harness::writeConfigFile(opt.dumpConfig, cfg,
                                             pname)) {
            fatal("cannot write config file '%s'",
                  opt.dumpConfig.c_str());
        }
        return 0;
    }

    auto model = opt.model == "cycle" ? harness::CtrlModel::Cycle
                                      : harness::CtrlModel::Event;
    if (opt.model != "cycle" && opt.model != "event")
        fatal("unknown model '%s'", opt.model.c_str());

    if (channels > 1)
        return runMulti(opt, cfg, model, channels);
    if (opt.simThreads > 1)
        fatal("--sim-threads shards a multi-channel run; it needs "
              "--channels N (or a system preset)");

    if (opt.runs > 1)
        return runBatch(opt, cfg, model);

    // Trace channels and sinks. With channels enabled but no sink
    // requested, messages fall back to stderr.
    if (!opt.traceChannels.empty() &&
        !obs::enableChannelsByName(opt.traceChannels))
        fatal("unknown trace channel in '%s' (channels: DRAMCtrl, "
              "CycleCtrl, XBar, Port, PacketQueue, EventQ, Refresh, "
              "Power, Sampler, or 'all')",
              opt.traceChannels.c_str());
    std::unique_ptr<obs::FileTextSink> traceTextSink;
    if (!opt.traceFile.empty()) {
        traceTextSink =
            std::make_unique<obs::FileTextSink>(opt.traceFile);
        if (!traceTextSink->ok())
            fatal("cannot open trace file '%s'", opt.traceFile.c_str());
        obs::addSink(traceTextSink.get());
    }
    std::unique_ptr<obs::FileJsonlSink> traceJsonlSink;
    if (!opt.traceJsonl.empty()) {
        traceJsonlSink =
            std::make_unique<obs::FileJsonlSink>(opt.traceJsonl);
        if (!traceJsonlSink->ok())
            fatal("cannot open trace file '%s'",
                  opt.traceJsonl.c_str());
        obs::addSink(traceJsonlSink.get());
    }

    obs::ChromeTraceWriter chrome;
    if (!opt.chromeFile.empty())
        obs::setChromeTracer(&chrome);

    harness::SingleChannelSystem tb(cfg, model);

    CmdLogger logger;
    if (opt.audit || !opt.chromeFile.empty())
        tb.ctrl().setCmdLogger(&logger);

    obs::EventProfiler profiler;
    if (opt.profileEvents)
        tb.sim().eventq().setProfiler(&profiler);

    std::ofstream sampleOut;
    std::unique_ptr<obs::StatsSampler> sampler;
    if (opt.sampleIntervalNs > 0) {
        sampleOut.open(opt.sampleFile);
        if (!sampleOut.is_open())
            fatal("cannot open sample file '%s'",
                  opt.sampleFile.c_str());
        if (opt.sampleFormat != "csv" && opt.sampleFormat != "jsonl")
            fatal("unknown sample format '%s'",
                  opt.sampleFormat.c_str());
        auto fmt = opt.sampleFormat == "jsonl"
                       ? obs::StatsSampler::Format::Jsonl
                       : obs::StatsSampler::Format::Csv;
        sampler = std::make_unique<obs::StatsSampler>(
            tb.sim(), "sampler", fromNs(opt.sampleIntervalNs),
            sampleOut, fmt);
        auto addOne = [&](const std::string &path) {
            if (!sampler->addStat(path))
                warn("sample stat '%s' does not resolve, skipping",
                     path.c_str());
        };
        if (!opt.sampleStats.empty()) {
            std::size_t pos = 0;
            while (pos <= opt.sampleStats.size()) {
                std::size_t comma = opt.sampleStats.find(',', pos);
                if (comma == std::string::npos)
                    comma = opt.sampleStats.size();
                if (comma > pos)
                    addOne(opt.sampleStats.substr(pos, comma - pos));
                pos = comma + 1;
            }
        } else {
            for (const char *s :
                 {"readReqs", "writeReqs", "bytesRead", "bytesWritten",
                  "busUtil", "rowHitRate", "avgRdQLen", "avgWrQLen"})
                addOne(std::string("mem_ctrl.") + s);
        }
        if (sampler->numStats() == 0)
            fatal("no sample stats resolved");
    }

    // Live introspection endpoint: a poll-based server fed by a
    // periodic publisher. The publisher is a SimObject, so it must be
    // constructed before any checkpoint restore (the object lists
    // have to match — same rule as the sampler, hence the "same
    // config flags" note under --ckpt-restore).
    std::unique_ptr<obs::MetricsServer> metricsServer;
    std::unique_ptr<obs::MetricsPublisher> metricsPublisher;
    if (!opt.metricsListen.empty()) {
        metricsServer =
            std::make_unique<obs::MetricsServer>(opt.metricsListen);
        metricsServer->start();
        MemCtrlBase &ctrl = tb.ctrl();
        metricsPublisher = std::make_unique<obs::MetricsPublisher>(
            tb.sim(), "metrics", tb.sim().metrics(), *metricsServer,
            fromNs(opt.metricsIntervalNs),
            [&ctrl](obs::MetricsRegistry &reg) {
                reg.gauge("ctrl.queued_requests",
                          "requests buffered in the controller")
                    .set(static_cast<double>(ctrl.queuedRequests()));
            });
        if (!opt.json)
            std::printf("metrics endpoint:  %s\n",
                        metricsServer->endpoint().c_str());
    }

    if (!opt.traceCapture.empty())
        tb.enableCapture(opt.traceCapture);

    BaseGen *gen = nullptr;
    TracePlayer *player = nullptr;
    GenConfig gc;
    gc.windowSize =
        std::min<std::uint64_t>(cfg.org.channelCapacity, 1ULL << 26);
    gc.readPct = opt.readPct;
    gc.minITT = gc.maxITT = fromNs(opt.ittNs);
    gc.numRequests = opt.requests;
    gc.seed = opt.seed;

    if (opt.pattern == "linear") {
        gen = &tb.addGen<LinearGen>(gc);
    } else if (opt.pattern == "random") {
        gen = &tb.addGen<RandomGen>(gc);
    } else if (opt.pattern == "dram") {
        DramGenConfig dgc;
        static_cast<GenConfig &>(dgc) = gc;
        dgc.org = cfg.org;
        dgc.mapping = cfg.addrMapping;
        dgc.strideBytes = opt.strideBytes;
        dgc.numBanksTarget = opt.banks;
        gen = &tb.addGen<DramGen>(dgc);
    } else if (opt.pattern == "trace") {
        if (opt.traceIn.empty())
            fatal("--pattern trace needs --trace-in PATH");
        player = &tb.addGen<TracePlayer>(
            makeTracePlayerConfig(opt.traceIn, opt.traceScale));
    } else {
        fatal("unknown pattern '%s'", opt.pattern.c_str());
    }

    if (!opt.ckptRestore.empty())
        ckpt::restoreFile(tb.sim(), opt.ckptRestore);

    if (!opt.json)
        std::printf("%s\n", cfg.describe().c_str());

    if (opt.ckptAtNs > 0) {
        tb.sim().run(fromNs(opt.ckptAtNs));
        ckpt::saveFile(tb.sim(), opt.ckptOut);
        if (!opt.json)
            std::printf("checkpoint:        %s (at %.2f us)\n",
                        opt.ckptOut.c_str(),
                        toSeconds(tb.sim().curTick()) * 1e6);
        return 0;
    }

    tb.runToCompletion(
        [&] { return gen != nullptr ? gen->done() : player->done(); });
    tb.finishCapture();
    if (!opt.traceCapture.empty() && !opt.json)
        std::printf("trace capture:     %s\n", opt.traceCapture.c_str());

    if (!opt.chromeFile.empty()) {
        chrome.importCmdLog(logger.log(), "mem_ctrl");
        if (!chrome.writeFile(opt.chromeFile))
            fatal("cannot write chrome trace '%s'",
                  opt.chromeFile.c_str());
        obs::setChromeTracer(nullptr);
        if (!opt.json)
            std::printf("chrome trace:      %s (%zu events)\n",
                        opt.chromeFile.c_str(), chrome.numEvents());
    }

    if (sampler && !opt.json)
        std::printf("stats samples:     %s (%llu samples of %zu "
                    "stats)\n",
                    opt.sampleFile.c_str(),
                    static_cast<unsigned long long>(
                        sampler->samplesTaken()),
                    sampler->numStats());

    if (opt.profileEvents) {
        tb.sim().eventq().setProfiler(nullptr);
        profiler.report(std::cout);
    }

    if (opt.json) {
        // Envelope so the seed rides along with the stats: rerunning
        // with --seed <seed> reproduces the run bit for bit.
        std::cout << "{\"seed\": " << opt.seed << ", \"stats\": ";
        tb.sim().dumpStatsJson(std::cout);
        std::cout << "}\n";
    } else {
        std::printf("preset %s, %s model, %s pattern, %llu requests, "
                    "seed %llu\n",
                    opt.preset.c_str(), harness::toString(model),
                    opt.pattern.c_str(),
                    static_cast<unsigned long long>(opt.requests),
                    static_cast<unsigned long long>(opt.seed));
        std::printf("simulated time:    %.2f us\n",
                    toSeconds(tb.sim().curTick()) * 1e6);
        std::printf("avg read latency:  %.1f ns\n",
                    gen != nullptr ? gen->avgReadLatencyNs()
                                   : player->avgReadLatencyNs());
        std::printf("bus utilisation:   %.1f%%\n",
                    100 * tb.ctrl().busUtilisation());
        std::printf("bandwidth:         %.2f / %.2f GB/s\n",
                    tb.ctrl().achievedBandwidthGBs(),
                    tb.ctrl().peakBandwidthGBs());
        if (power::hasParamsFor(opt.preset)) {
            auto p = power::computePower(tb.ctrl().powerInputs(), cfg,
                                         power::paramsFor(opt.preset));
            std::printf("DRAM power:        %.2f W\n", p.total());
        }
    }

    if (opt.audit) {
        ProtocolChecker checker(cfg.org, cfg.timing);
        plugin::armChecker(checker, cfg);
        auto violations = checker.check(logger.log());
        std::printf("protocol audit:    %zu commands, %zu violations\n",
                    logger.size(), violations.size());
        for (unsigned i = 0; i < 5 && i < violations.size(); ++i)
            std::printf("  %s\n", violations[i].toString().c_str());
        return violations.empty() ? 0 : 2;
    }
    return 0;
}
