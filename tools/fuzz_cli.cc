/**
 * @file
 * Differential fuzz driver: event model vs cycle model vs protocol
 * checker, over randomised configurations and request streams.
 *
 * Each run samples a configuration and a stream from the master seed,
 * feeds the identical stream to both controller models, audits both
 * command streams online against the JEDEC constraint set, and
 * compares functional behaviour exactly and aggregate timing within
 * tolerances. On failure the driver re-runs the case with trace
 * channels captured to a file, shrinks the stream to a locally-minimal
 * reproducer, and writes a self-contained repro JSON that
 * `fuzz_cli --repro FILE` (and the validate_repro test) replays.
 *
 * Runs execute on the batch engine: `--jobs N` fuzzes N cases
 * concurrently (each case is an independent shared-nothing
 * simulation), while results are consumed in run order on the main
 * thread — so all output, including failure repro files and the
 * shrink of the first failure (which proceeds while later jobs drain
 * in the background), is byte-identical whatever N is. A case that
 * dies with a fatal()/panic() is isolated to its job; the driver
 * prints the run index and seed and exits non-zero.
 *
 * Examples:
 *   fuzz_cli --runs 200 --seed 1 --jobs 4
 *   fuzz_cli --runs 0 --duration-s 60 --out-dir repros
 *   fuzz_cli --runs 5 --inject-bug          # must fail: proves the
 *                                           # checker catches faults
 *   fuzz_cli --seed 1 --first-run 42 --runs 1   # replay case 42
 *   fuzz_cli --repro repros/fuzz_fail_42.json
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "dram/dram_presets.hh"
#include "exec/batch_runner.hh"
#include "obs/metrics.hh"
#include "obs/metrics_server.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "trafficgen/trace_file.hh"
#include "validate/config_fuzzer.hh"
#include "validate/diff_runner.hh"
#include "validate/repro.hh"
#include "validate/shard_diff.hh"
#include "validate/shrinker.hh"

using namespace dramctrl;
using namespace dramctrl::validate;

namespace {

struct FuzzCliOptions
{
    std::uint64_t runs = 50;
    std::uint64_t seed = 1;
    std::uint64_t firstRun = 0;  // start index into the case sequence
    std::uint64_t requests = 0;  // 0 = per-case sample
    double durationS = 0;        // wall-clock budget; 0 = unlimited
    double toleranceBw = DiffOptions{}.bandwidthRelTol;
    double toleranceLat = DiffOptions{}.latencyRelTol;
    std::string outDir = ".";
    std::string traceCapture;    // per-case stream capture prefix
    std::string repro;           // replay mode
    std::string metricsListen;   // live endpoint listen spec
    unsigned jobs = 1;
    /** Fault to inject: "" (none), trcd, prac, trfcpb, refpb. */
    std::string injectMode;
    /** Preset pool: "" (legacy DDR3-era pool), "all", or a csv. */
    std::string standards;
    bool fuzzPlugins = false;
    bool noShrink = false;
    bool noShardDiff = false;
    bool verbose = false;
};

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --runs N           fuzz cases to run (default 50; 0 = "
        "until --duration-s)\n"
        "  --seed N           master seed (default 1); every failure "
        "is\n"
        "                     reproducible from this seed + run index\n"
        "  --first-run N      start at case index N (replay one case "
        "as\n"
        "                     --first-run N --runs 1)\n"
        "  --jobs N           concurrent fuzz jobs (default 1; 0 = "
        "one\n"
        "                     per core); output is byte-identical "
        "for\n"
        "                     every value\n"
        "  --requests N       override per-case request count\n"
        "  --duration-s S     stop after S wall-clock seconds\n"
        "  --tolerance-bw F   relative completion-time tolerance "
        "(default 0.5)\n"
        "  --tolerance-lat F  relative read-latency tolerance "
        "(default 0.60)\n"
        "  --out-dir PATH     where repro/trace files go (default .)\n"
        "  --trace-capture P  write every case's drawn request stream "
        "as\n"
        "                     '<P><run>.dtrc' (replayable with "
        "dramctrl_cli\n"
        "                     --pattern trace; identical for every "
        "--jobs)\n"
        "  --fuzz-plugins     also draw random plugin chains (ecc, "
        "prac,\n"
        "                     refresh managers) for every case\n"
        "  --standards S      preset pool to draw timing sets from: "
        "'all'\n"
        "                     (every registered preset) or a csv of\n"
        "                     preset names; default keeps the "
        "historical\n"
        "                     DDR3-era pool so old seeds reproduce\n"
        "  --inject-bug [M]   plant fault M in the event model — the "
        "run\n"
        "                     must fail and the checker must name the "
        "rule.\n"
        "                     M: trcd (default; tRCD x 0.5), prac "
        "(skip the\n"
        "                     mitigation refresh), trfcpb (drop the "
        "per-bank\n"
        "                     refresh blackout), refpb (starve one "
        "bank of\n"
        "                     per-bank refresh)\n"
        "  --no-shrink        skip stream minimisation on failure\n"
        "  --no-shard-diff    skip the sharded-vs-sequential check "
        "(each\n"
        "                     case normally also runs a multi-channel\n"
        "                     system with a random --sim-threads and\n"
        "                     demands byte-identical results)\n"
        "  --repro FILE       replay a repro file instead of fuzzing\n"
        "  --metrics-listen SPEC  serve live fuzz progress (Unix "
        "socket\n"
        "                     path or loopback TCP port; see "
        "dramctrl_cli)\n"
        "  --verbose          print every case, not just failures\n",
        prog);
}

bool
parseArgs(int argc, char **argv, FuzzCliOptions &opt)
{
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--runs") opt.runs = std::stoull(need(i));
        else if (a == "--seed") opt.seed = std::stoull(need(i));
        else if (a == "--first-run")
            opt.firstRun = std::stoull(need(i));
        else if (a == "--jobs") {
            opt.jobs = static_cast<unsigned>(std::stoul(need(i)));
            if (opt.jobs == 0)
                opt.jobs = exec::ThreadPool::hardwareThreads();
        }
        else if (a == "--requests")
            opt.requests = std::stoull(need(i));
        else if (a == "--duration-s")
            opt.durationS = std::stod(need(i));
        else if (a == "--tolerance-bw")
            opt.toleranceBw = std::stod(need(i));
        else if (a == "--tolerance-lat")
            opt.toleranceLat = std::stod(need(i));
        else if (a == "--out-dir") opt.outDir = need(i);
        else if (a == "--trace-capture") opt.traceCapture = need(i);
        else if (a == "--inject-bug") {
            // Optional mode operand; bare --inject-bug keeps the
            // original tRCD fault.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                opt.injectMode = argv[++i];
            else
                opt.injectMode = "trcd";
        }
        else if (a == "--fuzz-plugins") opt.fuzzPlugins = true;
        else if (a == "--standards") opt.standards = need(i);
        else if (a == "--no-shrink") opt.noShrink = true;
        else if (a == "--no-shard-diff") opt.noShardDiff = true;
        else if (a == "--repro") opt.repro = need(i);
        else if (a == "--metrics-listen")
            opt.metricsListen = need(i);
        else if (a == "--verbose") opt.verbose = true;
        else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return false;
        } else {
            fatal("unknown option '%s' (try --help)", a.c_str());
        }
    }
    return true;
}

int
replayRepro(const FuzzCliOptions &opt)
{
    ReproFile repro;
    std::string err;
    if (!loadReproFile(opt.repro, repro, &err))
        fatal("cannot load repro '%s': %s", opt.repro.c_str(),
              err.c_str());
    std::printf("replaying %s (%zu scripted requests%s)\n",
                opt.repro.c_str(), repro.materialise().size(),
                repro.opts.injectTRCDScale != 1.0 ||
                        repro.opts.injectPracSkip ||
                        repro.opts.injectTRFCpbScale != 1.0 ||
                        repro.opts.injectRefPbStallFlat != ~0u
                    ? ", fault injected"
                    : "");
    if (!repro.note.empty())
        std::printf("note: %s\n", repro.note.c_str());
    DiffResult dr = replay(repro);
    if (dr.pass) {
        std::printf("repro PASSED: the recorded failure no longer "
                    "reproduces\n");
        return 0;
    }
    std::printf("repro FAILED (as recorded):\n%s\n",
                dr.describe().c_str());
    return 2;
}

void
handleFailure(const FuzzCliOptions &opt, std::uint64_t run,
              const FuzzCase &fc, std::uint64_t streamSeed,
              const DiffOptions &dopts, const DiffResult &dr)
{
    std::printf("run %llu FAILED: %s\n  case: %s\n%s\n",
                static_cast<unsigned long long>(run),
                "divergence or violation detected",
                summarize(fc).c_str(), dr.describe().c_str());
    std::printf("  reproduce: --seed %llu --first-run %llu --runs 1\n",
                static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(run));

    // Re-run once with the DRAM trace channels captured, so the
    // repro ships with a command-level account of the failure. The
    // sink and channel mask are thread-local, so jobs draining on
    // worker threads neither race with nor write into this capture.
    std::string base = opt.outDir + "/fuzz_fail_" +
                       std::to_string(run);
    {
        obs::ChannelMask saved = obs::channelMask();
        obs::FileTextSink traceSink(base + ".trace");
        if (traceSink.ok()) {
            obs::addSink(&traceSink);
            obs::enableChannelsByName("DRAMCtrl,CycleCtrl,Refresh");
            try {
                runDiffStream(fc,
                              generateStream(fc.stream, streamSeed),
                              dopts);
            } catch (const std::exception &e) {
                std::printf("  trace capture died: %s\n", e.what());
            }
            obs::removeSink(&traceSink);
            std::printf("  trace: %s.trace\n", base.c_str());
        }
        obs::setChannelMask(saved);
    }

    RequestStream stream = generateStream(fc.stream, streamSeed);
    ReproFile repro;
    repro.fc = fc;
    repro.streamSeed = streamSeed;
    repro.opts = dopts;
    repro.note = formatString(
        "master seed %llu run %llu: %s",
        static_cast<unsigned long long>(opt.seed),
        static_cast<unsigned long long>(run),
        dr.failures.empty() ? "unknown"
                            : dr.failures.front().c_str());

    if (!opt.noShrink) {
        ShrinkOutcome sh = shrinkStream(fc, stream, dopts);
        std::printf("  shrink: %zu -> %zu requests (%u runs%s)\n",
                    stream.size(), sh.stream.size(), sh.evaluations,
                    sh.minimal ? ", minimal" : ", budget hit");
        repro.stream = sh.stream;
    } else {
        repro.stream = stream;
    }

    std::string path = base + ".json";
    if (writeReproFile(path, repro))
        std::printf("  repro: %s\n", path.c_str());
    else
        std::printf("  repro: FAILED to write %s\n", path.c_str());
}

/**
 * Write one fuzz case's drawn stream as '<prefix><run>.dtrc'. The
 * stream is an intent schedule (gaps accumulated to absolute ticks),
 * not a live capture, so a replay applies normal slip-on-stall
 * semantics — exactly what the StreamPlayer does.
 */
void
captureCaseStream(const std::string &prefix, std::uint64_t run,
                  const RequestStream &stream)
{
    TraceWriter writer(prefix + std::to_string(run) + ".dtrc");
    Tick tick = 0;
    for (const StreamRequest &r : stream.reqs) {
        tick += r.gap;
        writer.append(TraceEntry{tick, r.isRead, r.addr, r.size});
    }
    writer.finish();
}

/** What one fuzz job hands back to the in-order consumer. */
struct CaseResult
{
    FuzzCase fc;
    std::uint64_t streamSeed = 0;
    DiffResult dr;
    /** Sharded-vs-sequential cross-check (unless --no-shard-diff). */
    bool shardChecked = false;
    ShardCase sc;
    ShardDiffResult sdr;
};

} // namespace

int
main(int argc, char **argv)
{
    FuzzCliOptions opt;
    if (!parseArgs(argc, argv, opt))
        return 0;
    if (!opt.repro.empty())
        return replayRepro(opt);
    if (opt.runs == 0 && opt.durationS <= 0)
        fatal("--runs 0 needs --duration-s");

    DiffOptions dopts;
    dopts.bandwidthRelTol = opt.toleranceBw;
    dopts.latencyRelTol = opt.toleranceLat;
    // The per-bank-refresh faults live in event-only plugin territory:
    // the cycle model rejects refmgr-pb, so those runs audit the event
    // model alone against the armed checker.
    bool perBankFault =
        opt.injectMode == "trfcpb" || opt.injectMode == "refpb";
    if (opt.injectMode == "trcd")
        dopts.injectTRCDScale = 0.5;
    else if (opt.injectMode == "prac")
        dopts.injectPracSkip = true;
    else if (opt.injectMode == "trfcpb")
        dopts.injectTRFCpbScale = 0.0;
    else if (opt.injectMode == "refpb")
        dopts.injectRefPbStallFlat = 0;
    else if (!opt.injectMode.empty())
        fatal("unknown --inject-bug mode '%s' (trcd|prac|trfcpb|"
              "refpb)", opt.injectMode.c_str());
    if (perBankFault)
        dopts.runCycle = false;

    auto start = std::chrono::steady_clock::now();
    auto elapsedS = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    FuzzerOptions fopts;
    fopts.numRequests = opt.requests;
    fopts.withPlugins = opt.fuzzPlugins;
    if (perBankFault)
        fopts.cycleCompatible = false;
    if (opt.standards == "all") {
        fopts.standards = presets::names();
    } else if (!opt.standards.empty()) {
        std::string item;
        std::istringstream csv(opt.standards);
        while (std::getline(csv, item, ',')) {
            if (item.empty())
                continue;
            if (!presets::hasPreset(item))
                fatal("--standards: unknown preset '%s'",
                      item.c_str());
            fopts.standards.push_back(item);
        }
        if (fopts.standards.empty())
            fatal("--standards: no preset names in '%s'",
                  opt.standards.c_str());
    }

    // A planted plugin fault needs its target plugin in every case,
    // tuned so the fault actually manifests within a short stream.
    auto forceInjectTarget = [&](FuzzCase &fc) {
        DRAMCtrlConfig &cfg = fc.cfg;
        if (opt.injectMode == "prac") {
            std::erase_if(cfg.plugins, [](const PluginSpec &p) {
                return p.kind == "prac";
            });
            PluginSpec ps;
            ps.kind = "prac";
            ps.pracThreshold = 4;
            cfg.plugins.push_back(ps);
            // Tight window: rows get re-activated enough to alert.
            fc.stream.windowSize =
                std::min<std::uint64_t>(fc.stream.windowSize,
                                        1ULL << 16);
        } else if (perBankFault) {
            cfg.perRankRefresh = false;
            cfg.enablePowerDown = false;
            cfg.enableSelfRefresh = false;
            if (cfg.timing.tREFI == 0)
                cfg.timing.tREFI = fromUs(1.0);
            std::erase_if(cfg.plugins, [](const PluginSpec &p) {
                return p.kind == "refmgr" || p.kind == "refmgr-pb";
            });
            PluginSpec ps;
            ps.kind = "refmgr-pb";
            cfg.plugins.push_back(ps);
            // The starved-bank deadline is several tREFI out; keep
            // the stream long and busy enough to get there.
            StreamParams &sp = fc.stream;
            sp.numRequests = std::max<std::uint64_t>(sp.numRequests,
                                                     400);
            if (opt.injectMode == "refpb") {
                sp.minITT = std::max<Tick>(sp.minITT, fromNs(30.0));
                sp.maxITT = std::max<Tick>(sp.maxITT, sp.minITT);
            }
        }
        if (!opt.injectMode.empty())
            cfg.check();
    };

    // A case that fatal()s must fail its own job, not the batch.
    setThrowOnError(true);

    // Live fuzz progress: driver-level counters published after every
    // consumed case (the consumer runs on the main thread).
    std::unique_ptr<obs::MetricsRegistry> metricsReg;
    std::unique_ptr<obs::MetricsServer> metricsServer;
    if (!opt.metricsListen.empty()) {
        metricsReg = std::make_unique<obs::MetricsRegistry>();
        metricsServer =
            std::make_unique<obs::MetricsServer>(opt.metricsListen);
        metricsServer->start();
        std::fprintf(stderr, "fuzz: metrics endpoint %s\n",
                     metricsServer->endpoint().c_str());
    }
    auto publishMetrics = [&](std::uint64_t ran_n,
                              std::uint64_t failed_n) {
        if (!metricsServer)
            return;
        metricsReg->gauge("fuzz.cases_run", "fuzz cases consumed")
            .set(static_cast<double>(ran_n));
        metricsReg->gauge("fuzz.cases_failed", "fuzz cases failed")
            .set(static_cast<double>(failed_n));
        metricsReg->gauge("fuzz.elapsed_s", "wall-clock seconds")
            .set(elapsedS());
        std::ostringstream prom;
        std::ostringstream json;
        metricsReg->writeProm(prom);
        metricsReg->writeJson(json);
        metricsServer->publish(prom.str(), json.str());
    };
    publishMetrics(0, 0);

    std::uint64_t ran = 0, failed = 0;
    exec::BatchRunner runner(opt.jobs);

    auto worker = [&](std::uint64_t run) {
        // Per-run derivation (splitmix64 over (master, run)) so case
        // N is reproducible without running cases 0..N-1.
        std::uint64_t cs = exec::deriveSeed(opt.seed, run);
        Random rng(cs);
        CaseResult r;
        r.fc = sampleCase(rng, fopts);
        forceInjectTarget(r.fc);
        r.streamSeed = rng.next();
        r.dr = runDiff(r.fc, r.streamSeed, dopts);
        if (!opt.noShardDiff) {
            // Same master-seed derivation: the shard scenario for
            // case N reproduces without running cases 0..N-1, and
            // drawing it after the stream seed leaves the classic
            // case sequence untouched.
            r.shardChecked = true;
            r.sc = sampleShardCase(rng);
            r.sdr = runShardDiff(r.fc.cfg, r.sc);
        }
        return r;
    };

    auto consumeAt = [&](std::uint64_t base_run,
                         const exec::JobOutcome<CaseResult> &out) {
        std::uint64_t run = base_run + out.index;
        ++ran;
        if (!out.ok) {
            ++failed;
            std::printf("run %llu DIED (seed %llu): %s\n"
                        "  reproduce: --seed %llu --first-run %llu "
                        "--runs 1\n",
                        static_cast<unsigned long long>(run),
                        static_cast<unsigned long long>(
                            exec::deriveSeed(opt.seed, run)),
                        out.error.c_str(),
                        static_cast<unsigned long long>(opt.seed),
                        static_cast<unsigned long long>(run));
            return;
        }
        if (opt.verbose)
            std::printf("run %llu: %s\n",
                        static_cast<unsigned long long>(run),
                        summarize(out.value.fc).c_str());
        if (!opt.traceCapture.empty()) {
            // Regenerating from (params, seed) here on the main
            // thread keeps the files written in run order whatever
            // --jobs is.
            captureCaseStream(
                opt.traceCapture, run,
                generateStream(out.value.fc.stream,
                               out.value.streamSeed));
        }
        bool bad = false;
        if (!out.value.dr.pass) {
            bad = true;
            // Capture + shrink runs here on the main thread while
            // later jobs keep draining on the pool.
            try {
                handleFailure(opt, run, out.value.fc,
                              out.value.streamSeed, dopts,
                              out.value.dr);
            } catch (const std::exception &e) {
                std::printf("  failure handling died: %s\n",
                            e.what());
            }
        }
        if (out.value.shardChecked && !out.value.sdr.pass) {
            // A sharding divergence needs no shrink: the whole case
            // reproduces from (master seed, run index).
            bad = true;
            std::printf("run %llu SHARD-DIFF FAILED (%s)\n%s\n"
                        "  reproduce: --seed %llu --first-run %llu "
                        "--runs 1\n",
                        static_cast<unsigned long long>(run),
                        summarize(out.value.sc).c_str(),
                        out.value.sdr.describe().c_str(),
                        static_cast<unsigned long long>(opt.seed),
                        static_cast<unsigned long long>(run));
        }
        if (bad)
            ++failed;
    };

    if (opt.runs != 0) {
        std::uint64_t base = opt.firstRun;
        runner.run<CaseResult>(
            opt.runs,
            [&](std::size_t i) { return worker(base + i); },
            [&](const exec::JobOutcome<CaseResult> &out) {
                consumeAt(base, out);
                publishMetrics(ran, failed);
            });
    } else {
        // Time-boxed mode: waves of one batch per worker, checking
        // the budget between waves.
        std::uint64_t next = opt.firstRun;
        while (elapsedS() < opt.durationS) {
            std::uint64_t base = next;
            std::uint64_t wave = opt.jobs;
            runner.run<CaseResult>(
                wave,
                [&](std::size_t i) { return worker(base + i); },
                [&](const exec::JobOutcome<CaseResult> &out) {
                    consumeAt(base, out);
                    publishMetrics(ran, failed);
                });
            next += wave;
        }
    }

    setThrowOnError(false);

    publishMetrics(ran, failed);
    if (metricsServer)
        metricsServer->stop();

    // Summary goes to stderr: it carries wall-clock time and the job
    // count, while stdout stays byte-identical whatever --jobs is.
    std::fprintf(stderr,
                 "fuzz: %llu runs, %llu failures, %.1f s "
                 "(master seed %llu, %u jobs)\n",
                 static_cast<unsigned long long>(ran),
                 static_cast<unsigned long long>(failed), elapsedS(),
                 static_cast<unsigned long long>(opt.seed), opt.jobs);
    return failed ? 2 : 0;
}
