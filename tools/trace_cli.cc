/**
 * @file
 * Trace file toolbox: convert between the text and binary (.dtrc)
 * trace formats, inspect headers, print leading records, and validate
 * structure + CRC. See docs/TRACES.md for the format itself.
 *
 *   trace_cli convert IN OUT     # formats picked by content / suffix
 *   trace_cli stat FILE          # header, counts, duration, rates
 *   trace_cli head FILE [-n N]   # first N records as text lines
 *   trace_cli validate FILE      # structure + CRC check, exit status
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"
#include "trafficgen/trace.hh"
#include "trafficgen/trace_file.hh"

using namespace dramctrl;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s COMMAND ...\n"
        "  convert IN OUT   convert between text and .dtrc traces\n"
        "                   (input format sniffed by content; output\n"
        "                   format from the suffix: .txt => text,\n"
        "                   anything else => .dtrc)\n"
        "  stat FILE        print header fields, record count,\n"
        "                   duration and request rate\n"
        "  head FILE [-n N] print the first N records (default 10)\n"
        "                   as '<tick> <r|w> <addr> <size> [# src S]'\n"
        "  validate FILE    check structure and CRC; exit 0 iff OK\n",
        argv0);
    return 2;
}

const char *
formatName(TraceFormat f)
{
    return f == TraceFormat::Dtrc ? "dtrc" : "text";
}

int
cmdConvert(const std::string &in, const std::string &out)
{
    TraceFormat from = traceFormatOf(in);
    TraceFormat to = traceFormatForOutput(out);

    if (from == TraceFormat::Dtrc && to == TraceFormat::Dtrc) {
        // Re-encode record by record (drops nothing, repacks deltas,
        // refreshes the CRC) while preserving the source ids and the
        // live-capture flag — streamed, so size doesn't matter.
        TraceReader reader(in);
        TraceWriter writer(out, reader.info().ticksPerSecond,
                           reader.info().flags);
        TraceEntry e;
        unsigned src = 0;
        while (reader.next(e, &src))
            writer.append(e, src);
        writer.finish();
        std::printf("%s: %" PRIu64 " records (dtrc -> dtrc)\n",
                    out.c_str(), writer.numRecords());
        return 0;
    }

    if (from == TraceFormat::Text && to == TraceFormat::Dtrc) {
        auto entries = loadTrace(in);
        // Hand-written schedules are intent traces, not captures: no
        // live-capture flag, so replay keeps slip-on-stall semantics.
        TraceWriter writer(out);
        for (const TraceEntry &e : entries)
            writer.append(e);
        writer.finish();
        std::printf("%s: %" PRIu64 " records (text -> dtrc)\n",
                    out.c_str(), writer.numRecords());
        return 0;
    }

    if (from == TraceFormat::Dtrc && to == TraceFormat::Text) {
        TraceReader reader(in);
        if (reader.info().numSources > 1)
            warn("'%s' has %u sources; the text format cannot carry "
                 "source ids, so they are dropped",
                 in.c_str(), reader.info().numSources);
        if ((reader.info().flags & kTraceFlagLiveCapture) != 0)
            warn("'%s' is a live capture; the text format cannot "
                 "carry that flag, so a replay of '%s' will slip on "
                 "stalls instead of reproducing the captured run",
                 in.c_str(), out.c_str());
        std::FILE *f = std::fopen(out.c_str(), "w");
        if (f == nullptr)
            fatal("cannot write trace file '%s'", out.c_str());
        std::fprintf(f, "# tick r|w addr size\n");
        TraceEntry e;
        std::uint64_t n = 0;
        while (reader.next(e)) {
            std::fprintf(f, "%" PRIu64 " %c 0x%" PRIx64 " %u\n",
                         e.tick, e.isRead ? 'r' : 'w',
                         static_cast<std::uint64_t>(e.addr), e.size);
            ++n;
        }
        std::fclose(f);
        std::printf("%s: %" PRIu64 " records (dtrc -> text)\n",
                    out.c_str(), n);
        return 0;
    }

    // text -> text: parse (validating) and re-emit canonically.
    saveTrace(out, loadTrace(in));
    std::printf("%s: rewritten (text -> text)\n", out.c_str());
    return 0;
}

int
cmdStat(const std::string &path)
{
    TraceFormat fmt = traceFormatOf(path);
    if (fmt == TraceFormat::Text) {
        auto entries = loadTrace(path);
        Tick last = entries.empty() ? 0 : entries.back().tick;
        std::printf("format:      text\n"
                    "records:     %zu\n"
                    "lastTick:    %" PRIu64 " (%.3f us)\n",
                    entries.size(), last, toNs(last) / 1e3);
        return 0;
    }

    TraceReader reader(path);
    const TraceFileInfo &info = reader.info();
    std::uint64_t reads = 0, bytes = 0;
    TraceEntry e;
    while (reader.next(e)) {
        reads += e.isRead ? 1 : 0;
        bytes += e.size;
    }
    double secs = static_cast<double>(info.lastTick) /
                  static_cast<double>(info.ticksPerSecond);
    std::printf("format:      dtrc v%u\n"
                "records:     %" PRIu64 "\n"
                "sources:     %u\n"
                "flags:       0x%x%s\n"
                "clock:       %" PRIu64 " ticks/s\n"
                "lastTick:    %" PRIu64 " (%.3f us)\n"
                "reads:       %" PRIu64 " (%.1f%%)\n"
                "bytes:       %" PRIu64 "\n"
                "crc32:       %08x\n",
                info.version, info.recordCount, info.numSources,
                info.flags,
                (info.flags & kTraceFlagLiveCapture) != 0
                    ? " (live capture)"
                    : "",
                info.ticksPerSecond, info.lastTick, secs * 1e6, reads,
                info.recordCount > 0
                    ? 100.0 * static_cast<double>(reads) /
                          static_cast<double>(info.recordCount)
                    : 0.0,
                bytes, info.crc);
    if (secs > 0)
        std::printf("avg rate:    %.2f Mreq/s simulated, %.2f GB/s\n",
                    static_cast<double>(info.recordCount) / secs / 1e6,
                    static_cast<double>(bytes) / secs / 1e9);
    return 0;
}

int
cmdHead(const std::string &path, std::uint64_t n)
{
    if (traceFormatOf(path) == TraceFormat::Text) {
        auto entries = loadTrace(path);
        for (std::size_t i = 0; i < entries.size() && i < n; ++i) {
            const TraceEntry &e = entries[i];
            std::printf("%" PRIu64 " %c 0x%" PRIx64 " %u\n", e.tick,
                        e.isRead ? 'r' : 'w',
                        static_cast<std::uint64_t>(e.addr), e.size);
        }
        return 0;
    }
    TraceReader reader(path);
    TraceEntry e;
    unsigned src = 0;
    bool multi = reader.info().numSources > 1;
    for (std::uint64_t i = 0; i < n && reader.next(e, &src); ++i) {
        std::printf("%" PRIu64 " %c 0x%" PRIx64 " %u", e.tick,
                    e.isRead ? 'r' : 'w',
                    static_cast<std::uint64_t>(e.addr), e.size);
        if (multi)
            std::printf(" # src %u", src);
        std::printf("\n");
    }
    return 0;
}

int
cmdValidate(const std::string &path)
{
    // Structure and CRC are checked on open (fatal() on any defect);
    // walking the records additionally exercises the full decode path.
    if (traceFormatOf(path) == TraceFormat::Text) {
        auto entries = loadTrace(path);
        std::printf("%s: OK (text, %zu records)\n", path.c_str(),
                    entries.size());
        return 0;
    }
    TraceReader reader(path, /*verify_crc=*/true);
    TraceEntry e;
    std::uint64_t n = 0;
    while (reader.next(e))
        ++n;
    if (n != reader.info().recordCount)
        fatal("trace '%s': decoded %" PRIu64 " records but the header "
              "declares %" PRIu64,
              path.c_str(), n, reader.info().recordCount);
    std::printf("%s: OK (dtrc, %" PRIu64 " records, crc %08x)\n",
                path.c_str(), n, reader.info().crc);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    std::string cmd = argv[1];

    if (cmd == "convert") {
        if (argc != 4)
            return usage(argv[0]);
        return cmdConvert(argv[2], argv[3]);
    }
    if (cmd == "stat") {
        if (argc != 3)
            return usage(argv[0]);
        return cmdStat(argv[2]);
    }
    if (cmd == "head") {
        if (argc != 3 && !(argc == 5 && std::strcmp(argv[3], "-n") == 0))
            return usage(argv[0]);
        std::uint64_t n = 10;
        if (argc == 5)
            n = std::strtoull(argv[4], nullptr, 10);
        return cmdHead(argv[2], n);
    }
    if (cmd == "validate") {
        if (argc != 3)
            return usage(argv[0]);
        return cmdValidate(argv[2]);
    }
    return usage(argv[0]);
}
