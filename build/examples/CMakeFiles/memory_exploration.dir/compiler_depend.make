# Empty compiler generated dependencies file for memory_exploration.
# This may be replaced when dependencies are built.
