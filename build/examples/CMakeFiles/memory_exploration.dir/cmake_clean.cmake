file(REMOVE_RECURSE
  "CMakeFiles/memory_exploration.dir/memory_exploration.cpp.o"
  "CMakeFiles/memory_exploration.dir/memory_exploration.cpp.o.d"
  "memory_exploration"
  "memory_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
