file(REMOVE_RECURSE
  "CMakeFiles/hmc_exploration.dir/hmc_exploration.cpp.o"
  "CMakeFiles/hmc_exploration.dir/hmc_exploration.cpp.o.d"
  "hmc_exploration"
  "hmc_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmc_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
