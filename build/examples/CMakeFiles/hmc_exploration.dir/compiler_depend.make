# Empty compiler generated dependencies file for hmc_exploration.
# This may be replaced when dependencies are built.
