file(REMOVE_RECURSE
  "CMakeFiles/multichannel.dir/multichannel.cpp.o"
  "CMakeFiles/multichannel.dir/multichannel.cpp.o.d"
  "multichannel"
  "multichannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multichannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
