# Empty compiler generated dependencies file for multichannel.
# This may be replaced when dependencies are built.
