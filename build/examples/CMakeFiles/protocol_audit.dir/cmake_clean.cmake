file(REMOVE_RECURSE
  "CMakeFiles/protocol_audit.dir/protocol_audit.cpp.o"
  "CMakeFiles/protocol_audit.dir/protocol_audit.cpp.o.d"
  "protocol_audit"
  "protocol_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
