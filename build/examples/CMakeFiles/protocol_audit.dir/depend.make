# Empty dependencies file for protocol_audit.
# This may be replaced when dependencies are built.
