file(REMOVE_RECURSE
  "CMakeFiles/dramctrl_cli.dir/dramctrl_cli.cc.o"
  "CMakeFiles/dramctrl_cli.dir/dramctrl_cli.cc.o.d"
  "dramctrl_cli"
  "dramctrl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramctrl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
