# Empty compiler generated dependencies file for dramctrl_cli.
# This may be replaced when dependencies are built.
