
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_addr_decoder.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_addr_decoder.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_addr_decoder.cc.o.d"
  "/root/repo/tests/test_addr_range.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_addr_range.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_addr_range.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_cycle_ctrl.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_cycle_ctrl.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_cycle_ctrl.cc.o.d"
  "/root/repo/tests/test_cyclesim_units.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_cyclesim_units.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_cyclesim_units.cc.o.d"
  "/root/repo/tests/test_describe.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_describe.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_describe.cc.o.d"
  "/root/repo/tests/test_dram_ctrl.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_dram_ctrl.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_dram_ctrl.cc.o.d"
  "/root/repo/tests/test_dram_power.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_dram_power.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_dram_power.cc.o.d"
  "/root/repo/tests/test_dram_timing.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_dram_timing.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_dram_timing.cc.o.d"
  "/root/repo/tests/test_eventq.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_eventq.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_eventq.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_logging_random.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_logging_random.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_logging_random.cc.o.d"
  "/root/repo/tests/test_multirank.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_multirank.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_multirank.cc.o.d"
  "/root/repo/tests/test_packet_port.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_packet_port.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_packet_port.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_power_down.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_power_down.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_power_down.cc.o.d"
  "/root/repo/tests/test_prefetcher.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_prefetcher.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_prefetcher.cc.o.d"
  "/root/repo/tests/test_presets.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_presets.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_presets.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_protocol.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_protocol.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_protocol.cc.o.d"
  "/root/repo/tests/test_qos.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_qos.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_qos.cc.o.d"
  "/root/repo/tests/test_selfrefresh_rank.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_selfrefresh_rank.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_selfrefresh_rank.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stats_json.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_stats_json.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_stats_json.cc.o.d"
  "/root/repo/tests/test_temperature.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_temperature.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_temperature.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_trafficgen.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_trafficgen.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_trafficgen.cc.o.d"
  "/root/repo/tests/test_xbar.cc" "tests/CMakeFiles/dramctrl_tests.dir/test_xbar.cc.o" "gcc" "tests/CMakeFiles/dramctrl_tests.dir/test_xbar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dramctrl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
