# Empty compiler generated dependencies file for dramctrl_tests.
# This may be replaced when dependencies are built.
