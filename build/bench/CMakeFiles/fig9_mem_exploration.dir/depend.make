# Empty dependencies file for fig9_mem_exploration.
# This may be replaced when dependencies are built.
