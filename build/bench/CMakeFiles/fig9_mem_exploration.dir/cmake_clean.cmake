file(REMOVE_RECURSE
  "CMakeFiles/fig9_mem_exploration.dir/fig9_mem_exploration.cc.o"
  "CMakeFiles/fig9_mem_exploration.dir/fig9_mem_exploration.cc.o.d"
  "fig9_mem_exploration"
  "fig9_mem_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mem_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
