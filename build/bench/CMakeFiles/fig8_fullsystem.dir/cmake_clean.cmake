file(REMOVE_RECURSE
  "CMakeFiles/fig8_fullsystem.dir/fig8_fullsystem.cc.o"
  "CMakeFiles/fig8_fullsystem.dir/fig8_fullsystem.cc.o.d"
  "fig8_fullsystem"
  "fig8_fullsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fullsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
