# Empty dependencies file for fig8_fullsystem.
# This may be replaced when dependencies are built.
