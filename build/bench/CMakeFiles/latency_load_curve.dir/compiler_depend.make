# Empty compiler generated dependencies file for latency_load_curve.
# This may be replaced when dependencies are built.
