file(REMOVE_RECURSE
  "CMakeFiles/latency_load_curve.dir/latency_load_curve.cc.o"
  "CMakeFiles/latency_load_curve.dir/latency_load_curve.cc.o.d"
  "latency_load_curve"
  "latency_load_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_load_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
