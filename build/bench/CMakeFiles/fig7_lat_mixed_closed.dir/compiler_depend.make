# Empty compiler generated dependencies file for fig7_lat_mixed_closed.
# This may be replaced when dependencies are built.
