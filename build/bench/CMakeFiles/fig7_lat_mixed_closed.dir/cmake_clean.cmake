file(REMOVE_RECURSE
  "CMakeFiles/fig7_lat_mixed_closed.dir/fig7_lat_mixed_closed.cc.o"
  "CMakeFiles/fig7_lat_mixed_closed.dir/fig7_lat_mixed_closed.cc.o.d"
  "fig7_lat_mixed_closed"
  "fig7_lat_mixed_closed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_lat_mixed_closed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
