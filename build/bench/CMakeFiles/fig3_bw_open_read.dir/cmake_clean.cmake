file(REMOVE_RECURSE
  "CMakeFiles/fig3_bw_open_read.dir/fig3_bw_open_read.cc.o"
  "CMakeFiles/fig3_bw_open_read.dir/fig3_bw_open_read.cc.o.d"
  "fig3_bw_open_read"
  "fig3_bw_open_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_bw_open_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
