# Empty compiler generated dependencies file for fig3_bw_open_read.
# This may be replaced when dependencies are built.
