file(REMOVE_RECURSE
  "CMakeFiles/ablation_powerdown.dir/ablation_powerdown.cc.o"
  "CMakeFiles/ablation_powerdown.dir/ablation_powerdown.cc.o.d"
  "ablation_powerdown"
  "ablation_powerdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_powerdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
