# Empty compiler generated dependencies file for ablation_powerdown.
# This may be replaced when dependencies are built.
