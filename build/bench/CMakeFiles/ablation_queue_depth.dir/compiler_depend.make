# Empty compiler generated dependencies file for ablation_queue_depth.
# This may be replaced when dependencies are built.
