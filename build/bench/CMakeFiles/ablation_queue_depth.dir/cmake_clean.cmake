file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_depth.dir/ablation_queue_depth.cc.o"
  "CMakeFiles/ablation_queue_depth.dir/ablation_queue_depth.cc.o.d"
  "ablation_queue_depth"
  "ablation_queue_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
