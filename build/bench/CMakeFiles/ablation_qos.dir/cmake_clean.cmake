file(REMOVE_RECURSE
  "CMakeFiles/ablation_qos.dir/ablation_qos.cc.o"
  "CMakeFiles/ablation_qos.dir/ablation_qos.cc.o.d"
  "ablation_qos"
  "ablation_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
