# Empty compiler generated dependencies file for ablation_qos.
# This may be replaced when dependencies are built.
