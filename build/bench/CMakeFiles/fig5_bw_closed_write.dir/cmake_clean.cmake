file(REMOVE_RECURSE
  "CMakeFiles/fig5_bw_closed_write.dir/fig5_bw_closed_write.cc.o"
  "CMakeFiles/fig5_bw_closed_write.dir/fig5_bw_closed_write.cc.o.d"
  "fig5_bw_closed_write"
  "fig5_bw_closed_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bw_closed_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
