# Empty dependencies file for fig5_bw_closed_write.
# This may be replaced when dependencies are built.
