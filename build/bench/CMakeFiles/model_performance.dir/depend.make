# Empty dependencies file for model_performance.
# This may be replaced when dependencies are built.
