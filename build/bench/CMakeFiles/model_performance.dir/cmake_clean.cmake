file(REMOVE_RECURSE
  "CMakeFiles/model_performance.dir/model_performance.cc.o"
  "CMakeFiles/model_performance.dir/model_performance.cc.o.d"
  "model_performance"
  "model_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
