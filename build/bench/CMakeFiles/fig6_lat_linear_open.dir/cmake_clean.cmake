file(REMOVE_RECURSE
  "CMakeFiles/fig6_lat_linear_open.dir/fig6_lat_linear_open.cc.o"
  "CMakeFiles/fig6_lat_linear_open.dir/fig6_lat_linear_open.cc.o.d"
  "fig6_lat_linear_open"
  "fig6_lat_linear_open.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lat_linear_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
