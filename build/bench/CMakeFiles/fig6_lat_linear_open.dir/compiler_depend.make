# Empty compiler generated dependencies file for fig6_lat_linear_open.
# This may be replaced when dependencies are built.
