# Empty dependencies file for ablation_write_drain.
# This may be replaced when dependencies are built.
