file(REMOVE_RECURSE
  "CMakeFiles/ablation_write_drain.dir/ablation_write_drain.cc.o"
  "CMakeFiles/ablation_write_drain.dir/ablation_write_drain.cc.o.d"
  "ablation_write_drain"
  "ablation_write_drain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_write_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
