# Empty dependencies file for fig4_bw_open_mixed.
# This may be replaced when dependencies are built.
