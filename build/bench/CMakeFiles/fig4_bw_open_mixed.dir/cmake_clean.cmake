file(REMOVE_RECURSE
  "CMakeFiles/fig4_bw_open_mixed.dir/fig4_bw_open_mixed.cc.o"
  "CMakeFiles/fig4_bw_open_mixed.dir/fig4_bw_open_mixed.cc.o.d"
  "fig4_bw_open_mixed"
  "fig4_bw_open_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bw_open_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
