# Empty compiler generated dependencies file for ablation_page_policy.
# This may be replaced when dependencies are built.
