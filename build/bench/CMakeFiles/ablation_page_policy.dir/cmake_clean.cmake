file(REMOVE_RECURSE
  "CMakeFiles/ablation_page_policy.dir/ablation_page_policy.cc.o"
  "CMakeFiles/ablation_page_policy.dir/ablation_page_policy.cc.o.d"
  "ablation_page_policy"
  "ablation_page_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_page_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
