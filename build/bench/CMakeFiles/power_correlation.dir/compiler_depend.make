# Empty compiler generated dependencies file for power_correlation.
# This may be replaced when dependencies are built.
