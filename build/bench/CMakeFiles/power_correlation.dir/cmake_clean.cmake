file(REMOVE_RECURSE
  "CMakeFiles/power_correlation.dir/power_correlation.cc.o"
  "CMakeFiles/power_correlation.dir/power_correlation.cc.o.d"
  "power_correlation"
  "power_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
