file(REMOVE_RECURSE
  "CMakeFiles/ablation_addr_mapping.dir/ablation_addr_mapping.cc.o"
  "CMakeFiles/ablation_addr_mapping.dir/ablation_addr_mapping.cc.o.d"
  "ablation_addr_mapping"
  "ablation_addr_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_addr_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
