# Empty compiler generated dependencies file for ablation_addr_mapping.
# This may be replaced when dependencies are built.
