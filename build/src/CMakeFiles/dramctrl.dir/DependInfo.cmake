
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cache.cc" "src/CMakeFiles/dramctrl.dir/cpu/cache.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/cpu/cache.cc.o.d"
  "/root/repo/src/cpu/prefetcher.cc" "src/CMakeFiles/dramctrl.dir/cpu/prefetcher.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/cpu/prefetcher.cc.o.d"
  "/root/repo/src/cpu/timing_core.cc" "src/CMakeFiles/dramctrl.dir/cpu/timing_core.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/cpu/timing_core.cc.o.d"
  "/root/repo/src/cpu/workload.cc" "src/CMakeFiles/dramctrl.dir/cpu/workload.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/cpu/workload.cc.o.d"
  "/root/repo/src/cyclesim/bank_state.cc" "src/CMakeFiles/dramctrl.dir/cyclesim/bank_state.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/cyclesim/bank_state.cc.o.d"
  "/root/repo/src/cyclesim/command_queue.cc" "src/CMakeFiles/dramctrl.dir/cyclesim/command_queue.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/cyclesim/command_queue.cc.o.d"
  "/root/repo/src/cyclesim/cycle_ctrl.cc" "src/CMakeFiles/dramctrl.dir/cyclesim/cycle_ctrl.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/cyclesim/cycle_ctrl.cc.o.d"
  "/root/repo/src/dram/addr_decoder.cc" "src/CMakeFiles/dramctrl.dir/dram/addr_decoder.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/dram/addr_decoder.cc.o.d"
  "/root/repo/src/dram/dram_config.cc" "src/CMakeFiles/dramctrl.dir/dram/dram_config.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/dram/dram_config.cc.o.d"
  "/root/repo/src/dram/dram_ctrl.cc" "src/CMakeFiles/dramctrl.dir/dram/dram_ctrl.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/dram/dram_ctrl.cc.o.d"
  "/root/repo/src/dram/dram_presets.cc" "src/CMakeFiles/dramctrl.dir/dram/dram_presets.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/dram/dram_presets.cc.o.d"
  "/root/repo/src/dram/protocol_checker.cc" "src/CMakeFiles/dramctrl.dir/dram/protocol_checker.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/dram/protocol_checker.cc.o.d"
  "/root/repo/src/harness/testbench.cc" "src/CMakeFiles/dramctrl.dir/harness/testbench.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/harness/testbench.cc.o.d"
  "/root/repo/src/mem/addr_range.cc" "src/CMakeFiles/dramctrl.dir/mem/addr_range.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/mem/addr_range.cc.o.d"
  "/root/repo/src/mem/packet.cc" "src/CMakeFiles/dramctrl.dir/mem/packet.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/mem/packet.cc.o.d"
  "/root/repo/src/mem/packet_queue.cc" "src/CMakeFiles/dramctrl.dir/mem/packet_queue.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/mem/packet_queue.cc.o.d"
  "/root/repo/src/mem/port.cc" "src/CMakeFiles/dramctrl.dir/mem/port.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/mem/port.cc.o.d"
  "/root/repo/src/power/dram_power.cc" "src/CMakeFiles/dramctrl.dir/power/dram_power.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/power/dram_power.cc.o.d"
  "/root/repo/src/power/micron_power.cc" "src/CMakeFiles/dramctrl.dir/power/micron_power.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/power/micron_power.cc.o.d"
  "/root/repo/src/sim/event.cc" "src/CMakeFiles/dramctrl.dir/sim/event.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/sim/event.cc.o.d"
  "/root/repo/src/sim/eventq.cc" "src/CMakeFiles/dramctrl.dir/sim/eventq.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/sim/eventq.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/dramctrl.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/dramctrl.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/sim_object.cc" "src/CMakeFiles/dramctrl.dir/sim/sim_object.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/sim/sim_object.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/dramctrl.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/sim/simulator.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/dramctrl.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/dramctrl.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/stats/stats.cc.o.d"
  "/root/repo/src/trafficgen/base_gen.cc" "src/CMakeFiles/dramctrl.dir/trafficgen/base_gen.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/trafficgen/base_gen.cc.o.d"
  "/root/repo/src/trafficgen/dram_gen.cc" "src/CMakeFiles/dramctrl.dir/trafficgen/dram_gen.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/trafficgen/dram_gen.cc.o.d"
  "/root/repo/src/trafficgen/linear_gen.cc" "src/CMakeFiles/dramctrl.dir/trafficgen/linear_gen.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/trafficgen/linear_gen.cc.o.d"
  "/root/repo/src/trafficgen/random_gen.cc" "src/CMakeFiles/dramctrl.dir/trafficgen/random_gen.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/trafficgen/random_gen.cc.o.d"
  "/root/repo/src/trafficgen/trace.cc" "src/CMakeFiles/dramctrl.dir/trafficgen/trace.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/trafficgen/trace.cc.o.d"
  "/root/repo/src/xbar/xbar.cc" "src/CMakeFiles/dramctrl.dir/xbar/xbar.cc.o" "gcc" "src/CMakeFiles/dramctrl.dir/xbar/xbar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
