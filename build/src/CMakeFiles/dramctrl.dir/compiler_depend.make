# Empty compiler generated dependencies file for dramctrl.
# This may be replaced when dependencies are built.
