file(REMOVE_RECURSE
  "libdramctrl.a"
)
