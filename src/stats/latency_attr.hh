/**
 * @file
 * Request-lifecycle latency attribution.
 *
 * Every read request leaving a controller carries a LatencySpan (see
 * latency_span.hh): the ticks at which it was enqueued, picked by the
 * scheduler, issued to the DRAM, put on the data bus, and completed,
 * plus the static front/back-end pipeline latency. The span
 * decomposes the measured end-to-end latency into stages whose sum is
 * exactly — not approximately — the measured latency:
 *
 *   queueing   pick - enqueue      waiting in the controller queue
 *   bankTiming bankReady - pick    bank preparation (PRE/ACT/tRCD,
 *                                  or the command-queue wait in the
 *                                  cycle model)
 *   schedStall issue - bankReady   bus-turnaround / rank wake stalls
 *                                  after the bank itself is ready
 *   bus        burstStart - issue  CAS latency plus data-bus
 *                                  contention
 *   burst      done - burstStart   the data transfer itself (tBURST)
 *   frontBack  staticLat           static front/back-end pipeline
 *                                  (the controller's crossbar-facing
 *                                  stages)
 *
 * so queueing + bankTiming + schedStall + bus + burst + frontBack ==
 * done - enqueue + staticLat == the latency the controller reports.
 * The requestor additionally sees the interconnect on top: its
 * end-to-end latency minus the span total is the crossbar/delivery
 * residual, asserted non-negative at every response.
 *
 * StageLatencyStats aggregates spans into one histogram per stage
 * (nanoseconds) with p50/p95/p99 digests.
 */

#ifndef DRAMCTRL_STATS_LATENCY_ATTR_H
#define DRAMCTRL_STATS_LATENCY_ATTR_H

#include <cstdint>
#include <string>

#include "stats/latency_span.hh"
#include "stats/stats.hh"
#include "stats/tick_histogram.hh"

namespace dramctrl {
namespace stats {

/**
 * Per-stage latency histograms plus an end-to-end total, grouped
 * under a child stats group named @p group_name so the stages show up
 * as e.g. "mem_ctrl.lat.queueing" in dumps, samplers and the metrics
 * registry. Reported in nanoseconds; aggregated as TickHistograms
 * because record() runs once per serviced read — seven all-integer
 * bucket updates, cheap enough to stay unconditionally on.
 */
class StageLatencyStats
{
  public:
    StageLatencyStats(Group *parent, const std::string &group_name,
                      const std::string &what);

    /** Sample every stage of @p span (and the total), in ticks. */
    void
    record(const LatencySpan &span)
    {
        if (!span.consistent())
            inconsistentSpan(span);
        queueing_.sample(span.stage(LatStage::Queueing));
        bankTiming_.sample(span.stage(LatStage::BankTiming));
        schedStall_.sample(span.stage(LatStage::SchedStall));
        bus_.sample(span.stage(LatStage::Bus));
        burst_.sample(span.stage(LatStage::Burst));
        frontBack_.sample(span.stage(LatStage::FrontBack));
        total_.sample(span.total());
    }

    const TickHistogram &stageHist(LatStage s) const;
    const TickHistogram &totalHist() const { return total_; }

  private:
    [[noreturn]] void inconsistentSpan(const LatencySpan &span) const;

    Group group_;
    // By value, in declaration order: record() runs once per serviced
    // read, and direct members keep the hot counters in one object
    // instead of eight heap allocations.
    TickHistogram queueing_;
    TickHistogram bankTiming_;
    TickHistogram schedStall_;
    TickHistogram bus_;
    TickHistogram burst_;
    TickHistogram frontBack_;
    TickHistogram total_;
    TickHistogram *const
        stages_[static_cast<unsigned>(LatStage::NumStages)];
};

} // namespace stats
} // namespace dramctrl

#endif // DRAMCTRL_STATS_LATENCY_ATTR_H
