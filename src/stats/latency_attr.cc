#include "stats/latency_attr.hh"

#include "sim/logging.hh"

namespace dramctrl {
namespace stats {

const char *
toString(LatStage s)
{
    switch (s) {
      case LatStage::Queueing: return "queueing";
      case LatStage::BankTiming: return "bankTiming";
      case LatStage::SchedStall: return "schedStall";
      case LatStage::Bus: return "bus";
      case LatStage::Burst: return "burst";
      case LatStage::FrontBack: return "frontBack";
      default: return "invalid";
    }
}

StageLatencyStats::StageLatencyStats(Group *parent,
                                     const std::string &group_name,
                                     const std::string &what)
    : group_(group_name, parent),
      queueing_(&group_, "queueing",
                what + " queueing stage latency (ns)"),
      bankTiming_(&group_, "bankTiming",
                  what + " bankTiming stage latency (ns)"),
      schedStall_(&group_, "schedStall",
                  what + " schedStall stage latency (ns)"),
      bus_(&group_, "bus", what + " bus stage latency (ns)"),
      burst_(&group_, "burst", what + " burst stage latency (ns)"),
      frontBack_(&group_, "frontBack",
                 what + " frontBack stage latency (ns)"),
      total_(&group_, "total", what + " end-to-end latency (ns)"),
      stages_{&queueing_, &bankTiming_, &schedStall_,
              &bus_,      &burst_,      &frontBack_}
{
}

void
StageLatencyStats::inconsistentSpan(const LatencySpan &span) const
{
    panic("latency span stages do not sum to the end-to-end "
          "latency (enq %llu pick %llu bank %llu issue %llu "
          "burst %llu done %llu static %llu)",
          static_cast<unsigned long long>(span.enqueue),
          static_cast<unsigned long long>(span.pick),
          static_cast<unsigned long long>(span.bankReady),
          static_cast<unsigned long long>(span.issue),
          static_cast<unsigned long long>(span.burstStart),
          static_cast<unsigned long long>(span.done),
          static_cast<unsigned long long>(span.staticLat));
}

const TickHistogram &
StageLatencyStats::stageHist(LatStage s) const
{
    return *stages_[static_cast<unsigned>(s)];
}

} // namespace stats
} // namespace dramctrl
