#include "stats/tick_histogram.hh"

#include <iomanip>
#include <ostream>
#include <vector>

#include "ckpt/ckpt.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace stats {

TickHistogram::TickHistogram(Group *parent, std::string name,
                             std::string desc)
    : Stat(parent, std::move(name), std::move(desc))
{
}

double
TickHistogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return toNs(1) * static_cast<double>(sumTicks_) /
           static_cast<double>(count_);
}

double
TickHistogram::percentileTicks(double p) const
{
    if (count_ == 0)
        return 0.0;
    double target = p / 100.0 * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kNumBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        double next = static_cast<double>(seen + buckets_[i]);
        if (next >= target) {
            double frac =
                (target - static_cast<double>(seen)) /
                static_cast<double>(buckets_[i]);
            double v = static_cast<double>(bucketLow(i)) +
                       frac * static_cast<double>(bucketWidth(i));
            return std::clamp(v, static_cast<double>(minT_),
                              static_cast<double>(maxT_));
        }
        seen += buckets_[i];
    }
    return static_cast<double>(maxT_);
}

double
TickHistogram::percentile(double p) const
{
    return toNs(1) * percentileTicks(p);
}

void
TickHistogram::dump(std::ostream &os, const std::string &prefix) const
{
    std::string base = prefix + name();
    os << std::left << std::setw(44) << (base + "::samples") << ' '
       << std::right << std::setw(14) << count_ << "  # " << desc()
       << '\n';
    os << std::left << std::setw(44) << (base + "::mean") << ' '
       << std::right << std::setw(14) << mean() << '\n';
    os << std::left << std::setw(44) << (base + "::min") << ' '
       << std::right << std::setw(14) << toNs(minT_) << '\n';
    os << std::left << std::setw(44) << (base + "::max") << ' '
       << std::right << std::setw(14) << toNs(maxT_) << '\n';
    os << std::left << std::setw(44) << (base + "::p50") << ' '
       << std::right << std::setw(14) << percentile(50) << '\n';
    os << std::left << std::setw(44) << (base + "::p95") << ' '
       << std::right << std::setw(14) << percentile(95) << '\n';
    os << std::left << std::setw(44) << (base + "::p99") << ' '
       << std::right << std::setw(14) << percentile(99) << '\n';
}

void
TickHistogram::dumpJson(std::ostream &os) const
{
    os << "{\"samples\": " << count_ << ", \"mean\": " << mean()
       << ", \"min\": " << toNs(minT_) << ", \"max\": " << toNs(maxT_)
       << ", \"p50\": " << percentile(50)
       << ", \"p95\": " << percentile(95)
       << ", \"p99\": " << percentile(99) << ", \"buckets\": [";
    bool first = true;
    for (unsigned i = 0; i < kNumBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << '[' << i << ", " << buckets_[i] << ']';
    }
    os << "]}";
}

void
TickHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sumTicks_ = 0;
    minT_ = 0;
    maxT_ = 0;
}

void
TickHistogram::ckptSave(ckpt::CkptOut &out,
                        const std::string &key) const
{
    out.putU64Vec(key + ".meta", {count_, sumTicks_, minT_, maxT_});
    // Sparse [index, count] pairs: latencies cluster, so almost all
    // of the log-linear index space is empty.
    std::vector<std::uint64_t> sparse;
    for (unsigned i = 0; i < kNumBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        sparse.push_back(i);
        sparse.push_back(buckets_[i]);
    }
    out.putU64Vec(key + ".buckets", sparse);
}

void
TickHistogram::ckptRestore(ckpt::CkptIn &in, const std::string &key)
{
    const auto &meta = in.getU64Vec(key + ".meta");
    if (meta.size() != 4)
        fatal("checkpoint tick-histogram '%s' has a malformed meta "
              "record", key.c_str());
    const auto &sparse = in.getU64Vec(key + ".buckets");
    if (sparse.size() % 2 != 0)
        fatal("checkpoint tick-histogram '%s' has a malformed bucket "
              "record", key.c_str());

    // Overwrite, never accumulate (same contract as Histogram).
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = meta[0];
    sumTicks_ = meta[1];
    minT_ = meta[2];
    maxT_ = meta[3];
    for (std::size_t i = 0; i < sparse.size(); i += 2) {
        if (sparse[i] >= kNumBuckets)
            fatal("checkpoint tick-histogram '%s' bucket index %llu "
                  "out of range", key.c_str(),
                  static_cast<unsigned long long>(sparse[i]));
        buckets_[static_cast<std::size_t>(sparse[i])] = sparse[i + 1];
    }
}

} // namespace stats
} // namespace dramctrl
