/**
 * @file
 * Integer log-linear histogram for per-request hot paths.
 *
 * stats::Histogram is a fine general-purpose instrument, but its
 * sample path runs double arithmetic (moments, self-scaling bucket
 * indexing) — too heavy for code that fires seven times per serviced
 * read (see latency_attr.hh). TickHistogram trades a little bucket
 * resolution for an all-integer sample path: values are bucketed
 * log-linearly (every power-of-two octave split into 16 linear
 * sub-buckets, HDR-histogram style), so recording a sample is a
 * bit-scan, a shift, and three adds — no divides, no doubles.
 *
 * Resolution: exact below 32 ticks, then a relative bucket width of
 * 1/16 (6.25%); percentiles interpolate linearly inside a bucket and
 * clamp to the observed min/max, same contract as Histogram. Samples
 * are raw ticks; all reporting accessors convert to nanoseconds so
 * dumps, the metrics registry and the sampler read in the same unit
 * as every other latency statistic.
 */

#ifndef DRAMCTRL_STATS_TICK_HISTOGRAM_H
#define DRAMCTRL_STATS_TICK_HISTOGRAM_H

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

#include "sim/types.hh"
#include "stats/stats.hh"

namespace dramctrl {
namespace stats {

class TickHistogram : public Stat
{
  public:
    /** Sub-buckets per power-of-two octave (16 = 6.25% resolution). */
    static constexpr unsigned kSubBits = 4;
    static constexpr unsigned kSubCount = 1u << kSubBits;
    /** Highest index is reached at msb 63: ((63-4+1) << 4) | 15. */
    static constexpr unsigned kNumBuckets =
        (((64 - kSubBits) << kSubBits) | (kSubCount - 1)) + 1;

    TickHistogram(Group *parent, std::string name, std::string desc);

    /** Bucket index of @p t: exact below 2*kSubCount, log-linear above. */
    static constexpr unsigned
    indexOf(Tick t)
    {
        if (t < kSubCount)
            return static_cast<unsigned>(t);
        unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(t));
        unsigned shift = msb - kSubBits;
        return ((shift + 1) << kSubBits) |
               static_cast<unsigned>((t >> shift) & (kSubCount - 1));
    }

    /** Inclusive lower tick bound of bucket @p idx. */
    static constexpr Tick
    bucketLow(unsigned idx)
    {
        if (idx < 2 * kSubCount)
            return idx;
        return static_cast<Tick>(kSubCount + (idx & (kSubCount - 1)))
               << ((idx >> kSubBits) - 1);
    }

    /** Width in ticks of bucket @p idx. */
    static constexpr Tick
    bucketWidth(unsigned idx)
    {
        return idx < 2 * kSubCount
                   ? 1
                   : Tick{1} << ((idx >> kSubBits) - 1);
    }

    /**
     * Record @p n samples of @p t ticks. All-integer, hot-path safe;
     * for the default n = 1 the multiply folds away.
     */
    void
    sample(Tick t, std::uint64_t n = 1)
    {
        if (count_ == 0) {
            minT_ = maxT_ = t;
        } else {
            minT_ = std::min(minT_, t);
            maxT_ = std::max(maxT_, t);
        }
        count_ += n;
        sumTicks_ += t * n;
        buckets_[indexOf(t)] += n;
    }

    std::uint64_t count() const { return count_; }
    Tick minTicks() const { return minT_; }
    Tick maxTicks() const { return maxT_; }
    std::uint64_t sumTicks() const { return sumTicks_; }

    /** Mean sample in nanoseconds. */
    double mean() const;

    /**
     * The value (ns) below which @p p percent of the samples fall,
     * linearly interpolated inside the containing bucket and clamped
     * to [minTicks, maxTicks] — the same contract as
     * Histogram::percentile, at log-linear resolution.
     */
    double percentile(double p) const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    double sampleValue() const override { return mean(); }
    void reset() override;
    void ckptSave(ckpt::CkptOut &out,
                  const std::string &key) const override;
    void ckptRestore(ckpt::CkptIn &in, const std::string &key) override;

  private:
    /** Percentile in ticks (interpolated, clamped). */
    double percentileTicks(double p) const;

    // Fixed array, not a vector: the sample path then needs no data-
    // pointer load, and StageLatencyStats can hold its histograms by
    // value so the per-request record() never chases a heap pointer.
    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sumTicks_ = 0;
    Tick minT_ = 0;
    Tick maxT_ = 0;
};

} // namespace stats
} // namespace dramctrl

#endif // DRAMCTRL_STATS_TICK_HISTOGRAM_H
