/**
 * @file
 * Statistics framework.
 *
 * Mirrors the role gem5's statistics package plays for the paper's model
 * (Section II-E): every model object owns a stats::Group; statistics
 * register themselves with the group at construction; the whole tree can
 * be dumped or reset at arbitrary points in simulated time. The power
 * model (Section II-G) is computed offline from these statistics.
 */

#ifndef DRAMCTRL_STATS_STATS_H
#define DRAMCTRL_STATS_STATS_H

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace dramctrl {

namespace ckpt {
class CkptOut;
class CkptIn;
} // namespace ckpt

namespace stats {

class Group;

/**
 * Base class for all statistics: a named, documented value (or set of
 * values) that can be printed and reset.
 */
class Stat
{
  public:
    Stat(Group *parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print "fullpath value # desc" lines, gem5 stats.txt style. */
    virtual void dump(std::ostream &os,
                      const std::string &prefix) const = 0;

    /** Emit this statistic's value as a JSON fragment. */
    virtual void dumpJson(std::ostream &os) const = 0;

    /**
     * A single number summarising the statistic right now (the
     * scalar's value, the vector's total, the histogram's mean, ...),
     * for time-series sampling. NaN when no summary makes sense.
     */
    virtual double sampleValue() const;

    /** Return the statistic to its just-constructed state. */
    virtual void reset() = 0;

    /**
     * Write this statistic's accumulated state under @p key into the
     * checkpoint section currently open on @p out. Derived values
     * (Formula) have no state and use the no-op default.
     */
    virtual void ckptSave(ckpt::CkptOut &out,
                          const std::string &key) const;

    /**
     * Overwrite this statistic with the state ckptSave() recorded.
     * Restore always assigns — never accumulates — so restoring after
     * a warmup phase cannot double-count samples.
     */
    virtual void ckptRestore(ckpt::CkptIn &in, const std::string &key);

  private:
    std::string name_;
    std::string desc_;
};

/** A single accumulating value (a counter or a gauge). */
class Scalar : public Stat
{
  public:
    Scalar(Group *parent, std::string name, std::string desc)
        : Stat(parent, std::move(name), std::move(desc))
    {}

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator-=(double v) { value_ -= v; return *this; }
    Scalar &operator++() { value_ += 1; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    double sampleValue() const override { return value_; }
    void reset() override { value_ = 0; }
    void ckptSave(ckpt::CkptOut &out,
                  const std::string &key) const override;
    void ckptRestore(ckpt::CkptIn &in, const std::string &key) override;

  private:
    double value_ = 0;
};

/** Arithmetic mean over explicitly recorded samples. */
class Average : public Stat
{
  public:
    Average(Group *parent, std::string name, std::string desc)
        : Stat(parent, std::move(name), std::move(desc))
    {}

    void sample(double v) { sum_ += v; ++count_; }

    double value() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    double sampleValue() const override { return value(); }
    void reset() override { sum_ = 0; count_ = 0; }
    void ckptSave(ckpt::CkptOut &out,
                  const std::string &key) const override;
    void ckptRestore(ckpt::CkptIn &in, const std::string &key) override;

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/** A fixed-size vector of named scalar values (e.g. per-bank counters). */
class Vector : public Stat
{
  public:
    Vector(Group *parent, std::string name, std::string desc,
           std::size_t size)
        : Stat(parent, std::move(name), std::move(desc)),
          values_(size, 0.0)
    {}

    double &operator[](std::size_t i) { return values_.at(i); }
    double operator[](std::size_t i) const { return values_.at(i); }

    std::size_t size() const { return values_.size(); }
    double total() const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    double sampleValue() const override { return total(); }
    void reset() override;
    void ckptSave(ckpt::CkptOut &out,
                  const std::string &key) const override;
    void ckptRestore(ckpt::CkptIn &in, const std::string &key) override;

  private:
    std::vector<double> values_;
};

/**
 * A value computed on demand from other statistics, evaluated at dump
 * time (gem5 Formula).
 */
class Formula : public Stat
{
  public:
    Formula(Group *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(parent, std::move(name), std::move(desc)),
          fn_(std::move(fn))
    {}

    double value() const { return fn_(); }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    double sampleValue() const override { return fn_(); }
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics and child groups; model objects own
 * one and statistics attach to it by passing it as their parent.
 */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }

    /** Slash-separated path from the root group. */
    std::string fullPath() const;

    void addStat(Stat *stat);
    void addChild(Group *child);

    /**
     * Register a callback run by resetAll(), letting owners reset
     * non-Stat bookkeeping (e.g. the start tick of a measurement
     * window) together with their statistics.
     */
    void onReset(std::function<void()> fn);

    /**
     * Register a callback run just before this group (or any ancestor)
     * dumps, letting owners fold lazily-maintained state into their
     * statistics — e.g. a controller plugin publishing the size of its
     * internal tracking tables.
     */
    void onDump(std::function<void()> fn);

    /** Dump this group's stats and all children, depth first. */
    void dump(std::ostream &os) const;

    /**
     * Dump the whole tree as a JSON object keyed by group and stat
     * names — the machine-readable twin of dump(), for plotting and
     * regression tooling.
     */
    void dumpJson(std::ostream &os) const;

    /** Reset this group's stats and all children. */
    void resetAll();

    /** Locate a statistic by name in this group only. */
    const Stat *find(const std::string &name) const;

    /** Locate a direct child group by name. */
    const Group *findChild(const std::string &name) const;

    /**
     * Locate a statistic by dot-separated path below this group,
     * e.g. "mem_ctrl.bytesRead" from the root. @return nullptr when
     * any component is missing.
     */
    const Stat *resolve(const std::string &path) const;

    const std::vector<Stat *> &statList() const { return stats_; }
    const std::vector<Group *> &children() const { return children_; }

  private:
    std::string name_;
    Group *parent_;
    std::vector<Stat *> stats_;
    std::vector<Group *> children_;
    std::vector<std::function<void()>> resetCallbacks_;
    std::vector<std::function<void()>> dumpCallbacks_;

    /** Run dump callbacks of this group and all children, depth first. */
    void fireDumpCallbacks() const;
    /** dump() / dumpJson() bodies, minus the callback pass. */
    void dumpStats(std::ostream &os) const;
    void dumpJsonStats(std::ostream &os) const;
};

} // namespace stats
} // namespace dramctrl

#endif // DRAMCTRL_STATS_STATS_H
