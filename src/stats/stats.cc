#include "stats/stats.hh"

#include <cmath>
#include <iomanip>
#include <limits>

#include "ckpt/ckpt.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace stats {

namespace {

/** One aligned "path value # desc" line. */
void
printLine(std::ostream &os, const std::string &path, double value,
          const std::string &desc)
{
    os << std::left << std::setw(44) << path << ' ' << std::right
       << std::setw(14) << std::setprecision(6) << value;
    if (!desc.empty())
        os << "  # " << desc;
    os << '\n';
}

} // namespace

Stat::Stat(Group *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (!parent)
        panic("stat '%s' created without a parent group", name_.c_str());
    parent->addStat(this);
}

double
Stat::sampleValue() const
{
    return std::numeric_limits<double>::quiet_NaN();
}

void
Stat::ckptSave(ckpt::CkptOut &out, const std::string &key) const
{
    (void)out;
    (void)key;
}

void
Stat::ckptRestore(ckpt::CkptIn &in, const std::string &key)
{
    (void)in;
    (void)key;
}

void
Scalar::ckptSave(ckpt::CkptOut &out, const std::string &key) const
{
    out.putF64(key, value_);
}

void
Scalar::ckptRestore(ckpt::CkptIn &in, const std::string &key)
{
    value_ = in.getF64(key);
}

void
Average::ckptSave(ckpt::CkptOut &out, const std::string &key) const
{
    out.putF64(key + ".sum", sum_);
    out.putU64(key + ".count", count_);
}

void
Average::ckptRestore(ckpt::CkptIn &in, const std::string &key)
{
    sum_ = in.getF64(key + ".sum");
    count_ = in.getU64(key + ".count");
}

void
Vector::ckptSave(ckpt::CkptOut &out, const std::string &key) const
{
    out.putF64Vec(key, values_);
}

void
Vector::ckptRestore(ckpt::CkptIn &in, const std::string &key)
{
    const auto &v = in.getF64Vec(key);
    if (v.size() != values_.size())
        fatal("checkpoint stat '%s' has %zu entries, this vector has "
              "%zu — configuration mismatch", key.c_str(), v.size(),
              values_.size());
    values_ = v;
}

namespace {

/** Emit a double as JSON (finite; NaN/inf become null). */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << std::setprecision(12) << v;
    else
        os << "null";
}

/** Emit a JSON string with minimal escaping. */
void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

} // namespace

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix + name(), value_, desc());
}

void
Scalar::dumpJson(std::ostream &os) const
{
    jsonNumber(os, value_);
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix + name(), value(), desc());
    printLine(os, prefix + name() + "::samples",
              static_cast<double>(count_), "");
}

void
Average::dumpJson(std::ostream &os) const
{
    os << "{\"mean\": ";
    jsonNumber(os, value());
    os << ", \"samples\": " << count_ << "}";
}

double
Vector::total() const
{
    double t = 0;
    for (double v : values_)
        t += v;
    return t;
}

void
Vector::dump(std::ostream &os, const std::string &prefix) const
{
    for (std::size_t i = 0; i < values_.size(); ++i) {
        printLine(os, prefix + name() + "::" + std::to_string(i),
                  values_[i], i == 0 ? desc() : "");
    }
    printLine(os, prefix + name() + "::total", total(), "");
}

void
Vector::dumpJson(std::ostream &os) const
{
    os << '[';
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i > 0)
            os << ", ";
        jsonNumber(os, values_[i]);
    }
    os << ']';
}

void
Vector::reset()
{
    for (double &v : values_)
        v = 0;
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix + name(), fn_(), desc());
}

void
Formula::dumpJson(std::ostream &os) const
{
    jsonNumber(os, fn_());
}

Group::Group(std::string name, Group *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->addChild(this);
}

std::string
Group::fullPath() const
{
    if (!parent_)
        return name_;
    std::string p = parent_->fullPath();
    return p.empty() ? name_ : p + "." + name_;
}

void
Group::addStat(Stat *stat)
{
    for (const Stat *s : stats_) {
        if (s->name() == stat->name())
            panic("duplicate stat '%s' in group '%s'",
                  stat->name().c_str(), name_.c_str());
    }
    stats_.push_back(stat);
}

void
Group::addChild(Group *child)
{
    children_.push_back(child);
}

void
Group::dump(std::ostream &os) const
{
    fireDumpCallbacks();
    dumpStats(os);
}

void
Group::dumpStats(std::ostream &os) const
{
    std::string prefix = fullPath();
    if (!prefix.empty())
        prefix += ".";
    for (const Stat *s : stats_)
        s->dump(os, prefix);
    for (const Group *g : children_)
        g->dumpStats(os);
}

void
Group::onReset(std::function<void()> fn)
{
    resetCallbacks_.push_back(std::move(fn));
}

void
Group::onDump(std::function<void()> fn)
{
    dumpCallbacks_.push_back(std::move(fn));
}

void
Group::fireDumpCallbacks() const
{
    for (const auto &fn : dumpCallbacks_)
        fn();
    for (const Group *g : children_)
        g->fireDumpCallbacks();
}

void
Group::resetAll()
{
    for (Stat *s : stats_)
        s->reset();
    for (auto &fn : resetCallbacks_)
        fn();
    for (Group *g : children_)
        g->resetAll();
}

void
Group::dumpJson(std::ostream &os) const
{
    fireDumpCallbacks();
    dumpJsonStats(os);
}

void
Group::dumpJsonStats(std::ostream &os) const
{
    os << '{';
    bool first = true;
    for (const Stat *s : stats_) {
        if (!first)
            os << ", ";
        first = false;
        jsonString(os, s->name());
        os << ": ";
        s->dumpJson(os);
    }
    for (const Group *g : children_) {
        if (!first)
            os << ", ";
        first = false;
        jsonString(os, g->name());
        os << ": ";
        g->dumpJsonStats(os);
    }
    os << '}';
}

const Stat *
Group::find(const std::string &name) const
{
    for (const Stat *s : stats_) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

const Group *
Group::findChild(const std::string &name) const
{
    for (const Group *g : children_) {
        if (g->name() == name)
            return g;
    }
    return nullptr;
}

const Stat *
Group::resolve(const std::string &path) const
{
    const Group *g = this;
    std::size_t pos = 0;
    for (;;) {
        std::size_t dot = path.find('.', pos);
        if (dot == std::string::npos)
            return g->find(path.substr(pos));
        g = g->findChild(path.substr(pos, dot - pos));
        if (g == nullptr)
            return nullptr;
        pos = dot + 1;
    }
}

} // namespace stats
} // namespace dramctrl
