#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "ckpt/ckpt.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace stats {

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     std::size_t num_buckets)
    : Stat(parent, std::move(name), std::move(desc)),
      buckets_(num_buckets, 0), bucketSize_(1.0)
{
    if (num_buckets < 2)
        panic("histogram '%s' needs at least two buckets",
              this->name().c_str());
}

void
Histogram::sampleNegative(double v) const
{
    panic("histogram '%s': negative sample %f", name().c_str(), v);
}

void
Histogram::grow()
{
    // Double the bucket width, folding counts pairwise into the lower
    // half of the array.
    for (std::size_t i = 0; i < buckets_.size() / 2; ++i)
        buckets_[i] = buckets_[2 * i] + buckets_[2 * i + 1];
    if (buckets_.size() % 2) {
        buckets_[buckets_.size() / 2] = buckets_.back();
        std::fill(buckets_.begin() +
                      static_cast<std::ptrdiff_t>(buckets_.size() / 2 + 1),
                  buckets_.end(), 0);
    } else {
        std::fill(buckets_.begin() +
                      static_cast<std::ptrdiff_t>(buckets_.size() / 2),
                  buckets_.end(), 0);
    }
    bucketSize_ *= 2;
    invBucketSize_ *= 0.5;
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::stddev() const
{
    if (count_ < 2)
        return 0.0;
    double n = static_cast<double>(count_);
    double var = (squares_ - sum_ * sum_ / n) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
}

double
Histogram::cdfAt(double v) const
{
    if (count_ == 0)
        return 0.0;
    double below = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double lo = bucketLow(i);
        double hi = lo + bucketSize_;
        if (v >= hi) {
            below += static_cast<double>(buckets_[i]);
        } else if (v > lo) {
            below += static_cast<double>(buckets_[i]) *
                     (v - lo) / bucketSize_;
            break;
        } else {
            break;
        }
    }
    return below / static_cast<double>(count_);
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::min(100.0, std::max(0.0, p));
    double target = p / 100.0 * static_cast<double>(count_);
    double cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double n = static_cast<double>(buckets_[i]);
        if (n == 0)
            continue;
        if (cum + n >= target) {
            // Interpolate inside this bucket, then clamp to the
            // observed range (the extreme buckets over-cover it).
            double frac = n > 0 ? (target - cum) / n : 0.0;
            double v = bucketLow(i) + frac * bucketSize_;
            return std::min(max_, std::max(min_, v));
        }
        cum += n;
    }
    return max_;
}

unsigned
Histogram::numModes(double min_peak_frac, double valley_ratio) const
{
    if (count_ == 0)
        return 0;

    double min_peak = std::max(
        1.0, min_peak_frac * static_cast<double>(count_));

    // Find significant local maxima of the raw bucket profile.
    std::vector<std::size_t> maxima;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double v = static_cast<double>(buckets_[i]);
        if (v < min_peak)
            continue;
        double left = i > 0 ? static_cast<double>(buckets_[i - 1]) : -1;
        double right = i + 1 < buckets_.size()
                           ? static_cast<double>(buckets_[i + 1])
                           : -1;
        if (v >= left && v > right)
            maxima.push_back(i);
    }
    if (maxima.empty())
        return count_ > 0 ? 1 : 0;

    // Merge adjacent maxima unless the valley between them is deep
    // enough relative to the smaller peak.
    unsigned modes = 1;
    double prev_peak = static_cast<double>(buckets_[maxima.front()]);
    std::size_t prev_idx = maxima.front();
    for (std::size_t m = 1; m < maxima.size(); ++m) {
        double peak = static_cast<double>(buckets_[maxima[m]]);
        double valley = peak;
        for (std::size_t i = prev_idx + 1; i < maxima[m]; ++i)
            valley = std::min(valley,
                              static_cast<double>(buckets_[i]));
        if (valley < valley_ratio * std::min(prev_peak, peak)) {
            ++modes;
            prev_peak = peak;
        } else {
            prev_peak = std::max(prev_peak, peak);
        }
        prev_idx = maxima[m];
    }
    return modes;
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    std::string base = prefix + name();
    os << std::left << std::setw(44) << (base + "::samples") << ' '
       << std::right << std::setw(14) << count_ << "  # " << desc()
       << '\n';
    os << std::left << std::setw(44) << (base + "::mean") << ' '
       << std::right << std::setw(14) << mean() << '\n';
    os << std::left << std::setw(44) << (base + "::stdev") << ' '
       << std::right << std::setw(14) << stddev() << '\n';
    os << std::left << std::setw(44) << (base + "::min") << ' '
       << std::right << std::setw(14) << min_ << '\n';
    os << std::left << std::setw(44) << (base + "::max") << ' '
       << std::right << std::setw(14) << max_ << '\n';
    os << std::left << std::setw(44) << (base + "::p50") << ' '
       << std::right << std::setw(14) << percentile(50) << '\n';
    os << std::left << std::setw(44) << (base + "::p95") << ' '
       << std::right << std::setw(14) << percentile(95) << '\n';
    os << std::left << std::setw(44) << (base + "::p99") << ' '
       << std::right << std::setw(14) << percentile(99) << '\n';
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << std::left << std::setw(44)
           << (base + "::" + std::to_string(static_cast<long long>(
                                 bucketLow(i))) +
               "-" +
               std::to_string(static_cast<long long>(bucketLow(i) +
                                                     bucketSize_ - 1)))
           << ' ' << std::right << std::setw(14) << buckets_[i] << '\n';
    }
}

void
Histogram::dumpJson(std::ostream &os) const
{
    os << "{\"samples\": " << count_ << ", \"mean\": " << mean()
       << ", \"stdev\": " << stddev() << ", \"min\": " << min_
       << ", \"max\": " << max_ << ", \"p50\": " << percentile(50)
       << ", \"p95\": " << percentile(95)
       << ", \"p99\": " << percentile(99)
       << ", \"bucketSize\": " << bucketSize_
       << ", \"buckets\": [";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << buckets_[i];
    }
    os << "]}";
}

void
Histogram::ckptSave(ckpt::CkptOut &out, const std::string &key) const
{
    out.putF64Vec(key + ".meta",
                  {bucketSize_, sum_, squares_, min_, max_});
    out.putU64(key + ".count", count_);
    out.putU64Vec(key + ".buckets", buckets_);
}

void
Histogram::ckptRestore(ckpt::CkptIn &in, const std::string &key)
{
    const auto &meta = in.getF64Vec(key + ".meta");
    if (meta.size() != 5)
        fatal("checkpoint histogram '%s' has a malformed meta record",
              key.c_str());
    const auto &buckets = in.getU64Vec(key + ".buckets");
    if (buckets.size() != buckets_.size())
        fatal("checkpoint histogram '%s' has %zu buckets, this one "
              "has %zu — configuration mismatch", key.c_str(),
              buckets.size(), buckets_.size());

    // Overwrite, never accumulate: a restore after a warmup phase must
    // not add the snapshot's bins on top of already-counted samples.
    bucketSize_ = meta[0];
    invBucketSize_ = 1.0 / bucketSize_;
    sum_ = meta[1];
    squares_ = meta[2];
    min_ = meta[3];
    max_ = meta[4];
    count_ = in.getU64(key + ".count");
    buckets_ = buckets;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    bucketSize_ = 1.0;
    invBucketSize_ = 1.0;
    count_ = 0;
    sum_ = 0;
    squares_ = 0;
    min_ = 0;
    max_ = 0;
}

} // namespace stats
} // namespace dramctrl
