/**
 * @file
 * The compact per-packet latency span record (see latency_attr.hh for
 * the full attribution story). Split into its own header so that
 * mem/packet.hh can embed a span without pulling the statistics
 * framework into every translation unit.
 */

#ifndef DRAMCTRL_STATS_LATENCY_SPAN_H
#define DRAMCTRL_STATS_LATENCY_SPAN_H

#include "sim/types.hh"

namespace dramctrl {
namespace stats {

/** The attribution stages, in lifecycle order. */
enum class LatStage : unsigned {
    Queueing,   ///< enqueue -> scheduler pick
    BankTiming, ///< pick -> bank ready (PRE/ACT/tRCD)
    SchedStall, ///< bank ready -> column command issue (turnaround)
    Bus,        ///< issue -> first data beat (CAS + bus contention)
    Burst,      ///< the data transfer (tBURST)
    FrontBack,  ///< static front-end + back-end pipeline latency
    NumStages,
};

/** Printable name of @p s (also the stats/metrics path component). */
const char *toString(LatStage s);

/**
 * Per-packet lifecycle stamps. Stamped by the controller that
 * services the request (for multi-burst packets, by the burst that
 * completes the response) and consumed by the requestor. All stamps
 * are absolute ticks; stage durations are derived differences, so the
 * decomposition cannot drift from the stamps it came from.
 */
struct LatencySpan
{
    Tick enqueue = 0;    ///< accepted into the controller queue
    Tick pick = 0;       ///< selected by the scheduler
    Tick bankReady = 0;  ///< bank timing satisfied
    Tick issue = 0;      ///< column command launched
    Tick burstStart = 0; ///< first beat on the data bus
    Tick done = 0;       ///< last beat on the data bus
    Tick staticLat = 0;  ///< frontend + backend pipeline latency
    bool valid = false;  ///< stamped by a controller

    /** Duration of @p s; all stages are non-negative by construction. */
    Tick stage(LatStage s) const
    {
        switch (s) {
          case LatStage::Queueing: return pick - enqueue;
          case LatStage::BankTiming: return bankReady - pick;
          case LatStage::SchedStall: return issue - bankReady;
          case LatStage::Bus: return burstStart - issue;
          case LatStage::Burst: return done - burstStart;
          case LatStage::FrontBack: return staticLat;
          default: return 0;
        }
    }

    /** Sum of the six stages == done - enqueue + staticLat. */
    Tick total() const { return done - enqueue + staticLat; }

    /**
     * True when the stamps are ordered and the stage decomposition
     * sums exactly to total(); asserted on every response.
     */
    bool consistent() const
    {
        if (!valid)
            return false;
        if (enqueue > pick || pick > bankReady || bankReady > issue ||
            issue > burstStart || burstStart > done)
            return false;
        Tick sum = 0;
        for (unsigned s = 0;
             s < static_cast<unsigned>(LatStage::NumStages); ++s)
            sum += stage(static_cast<LatStage>(s));
        return sum == total();
    }

    /**
     * A degenerate span for requests answered without touching the
     * DRAM (early write responses, reads forwarded from the write
     * queue): every stage is zero except the static pipeline.
     */
    static LatencySpan immediate(Tick now, Tick static_lat)
    {
        LatencySpan s;
        s.enqueue = s.pick = s.bankReady = s.issue = s.burstStart =
            s.done = now;
        s.staticLat = static_lat;
        s.valid = true;
        return s;
    }
};

} // namespace stats
} // namespace dramctrl

#endif // DRAMCTRL_STATS_LATENCY_SPAN_H
