/**
 * @file
 * Self-scaling histogram statistic.
 *
 * Used for the latency-distribution experiments (paper Figures 6 and 7).
 * The histogram keeps a fixed number of buckets; when a sample lands
 * beyond the covered range the bucket width doubles and existing counts
 * are folded pairwise, exactly like gem5's distribution stats. This keeps
 * memory bounded without knowing latency magnitudes up front.
 */

#ifndef DRAMCTRL_STATS_HISTOGRAM_H
#define DRAMCTRL_STATS_HISTOGRAM_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "stats/stats.hh"

namespace dramctrl {
namespace stats {

class Histogram : public Stat
{
  public:
    Histogram(Group *parent, std::string name, std::string desc,
              std::size_t num_buckets = 32);

    /**
     * Record one sample. Inline and division-free: bucket widths are
     * powers of two, so indexing by the cached reciprocal is exact.
     * This sits on the per-request path of the latency-attribution
     * stages (seven samples per serviced read).
     */
    void
    sample(double v, std::uint64_t count = 1)
    {
        if (v < 0)
            sampleNegative(v);

        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        count_ += count;
        sum_ += v * count;
        squares_ += v * v * count;

        while (v >= bucketSize_ * static_cast<double>(buckets_.size()))
            grow();
        buckets_[static_cast<std::size_t>(v * invBucketSize_)] += count;
    }

    std::uint64_t count() const { return count_; }
    double mean() const;
    double stddev() const;
    double minSample() const { return min_; }
    double maxSample() const { return max_; }

    /** Current bucket width. */
    double bucketSize() const { return bucketSize_; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketCount(std::size_t i) const
    {
        return buckets_.at(i);
    }

    /** Inclusive lower edge of bucket @p i. */
    double bucketLow(std::size_t i) const { return bucketSize_ * i; }

    /**
     * Fraction of samples at or below @p v (linear interpolation within
     * the containing bucket); used by tests asserting distribution shape.
     */
    double cdfAt(double v) const;

    /**
     * The value below which @p p percent of the samples fall (the
     * inverse of cdfAt, linearly interpolated within the containing
     * bucket and clamped to [minSample, maxSample]). Drives the
     * p50/p95/p99 digests of the latency-attribution stages.
     *
     * @param p percentile in [0, 100]
     */
    double percentile(double p) const;

    /**
     * Count the distinct modes of the bucket profile; a bimodal
     * latency distribution (paper Fig. 7) reports 2.
     *
     * Local maxima with at least @p min_peak_frac of the samples are
     * candidate modes; two candidates count as distinct only when the
     * deepest valley between them falls below @p valley_ratio of the
     * smaller peak (a prominence test, robust against broad noisy
     * humps).
     */
    unsigned numModes(double min_peak_frac = 0.01,
                      double valley_ratio = 0.5) const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    double sampleValue() const override { return mean(); }
    void reset() override;
    void ckptSave(ckpt::CkptOut &out,
                  const std::string &key) const override;
    void ckptRestore(ckpt::CkptIn &in, const std::string &key) override;

  private:
    void grow();
    [[noreturn]] void sampleNegative(double v) const;

    std::vector<std::uint64_t> buckets_;
    double bucketSize_;
    double invBucketSize_ = 1.0;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double squares_ = 0;
    double min_ = 0;
    double max_ = 0;
};

} // namespace stats
} // namespace dramctrl

#endif // DRAMCTRL_STATS_HISTOGRAM_H
