/**
 * @file
 * The event-based DRAM controller model — the paper's core contribution.
 *
 * The controller mirrors a contemporary design (Section II-A): split
 * read and write queues buffered per controller, early write responses,
 * read snooping of the write queue, write merging, and cache-line to
 * DRAM-burst chopping. It tracks the state of every bank and the shared
 * data bus, and enforces the pruned timing set of Section II-B
 * analytically: instead of stepping the DRAM cycle by cycle it computes,
 * at the moment a burst is scheduled, the future ticks at which the
 * bank and bus state change, and only wakes up at those ticks
 * (Section II-D). Scheduling (Section II-C) offers FCFS and FR-FCFS,
 * four page policies, and a write-drain mode with high/low watermarks.
 */

#ifndef DRAMCTRL_DRAM_DRAM_CTRL_H
#define DRAMCTRL_DRAM_DRAM_CTRL_H

#include <memory>
#include <string>
#include <vector>

#include "dram/addr_decoder.hh"
#include "dram/cmd_log.hh"
#include "dram/dram_config.hh"
#include "dram/plugin/plugin.hh"
#include "mem/addr_range.hh"
#include "mem/mem_ctrl_iface.hh"
#include "mem/packet.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "sim/pool.hh"
#include "sim/ring_buffer.hh"
#include "sim/sim_object.hh"
#include "sim/simulator.hh"
#include "stats/histogram.hh"
#include "stats/latency_attr.hh"
#include "stats/stats.hh"

namespace dramctrl {

class DRAMCtrl : public MemCtrlBase
{
  public:
    /**
     * @param sim the owning simulator
     * @param name instance name (also the stats path component)
     * @param config controller and DRAM parameters (validated here)
     * @param range the (possibly channel-interleaved) address range
     *              this controller responds to
     */
    DRAMCtrl(Simulator &sim, std::string name, DRAMCtrlConfig config,
             AddrRange range);
    ~DRAMCtrl() override;

    /** The system-facing port; bind a crossbar or requestor to it. */
    ResponsePort &port() override { return port_; }

    const DRAMCtrlConfig &config() const override { return cfg_; }
    const AddrRange &range() const { return range_; }

    /** Queue occupancies, for tests and drain checks. */
    std::size_t readQueueSize() const { return readQueue_.size(); }
    std::size_t writeQueueSize() const { return writeQueue_.size(); }

    /**
     * True when every accepted request has been answered. Writes
     * parked in the write queue do not count: their responses went out
     * when they were accepted (Section II-A early write response).
     */
    bool idle() const override;

    std::size_t queuedRequests() const override
    {
        return readQueue_.size() + writeQueue_.size();
    }

    /**
     * Externally visible statistics (fed to the Micron power model and
     * the benchmark harness). All counters cover the window since the
     * last stats reset.
     */
    struct CtrlStats
    {
        explicit CtrlStats(DRAMCtrl &ctrl);

        stats::Scalar readReqs;
        stats::Scalar writeReqs;
        stats::Scalar readBursts;
        stats::Scalar writeBursts;
        stats::Scalar servicedByWrQ;
        stats::Scalar mergedWrBursts;
        stats::Scalar readRowHits;
        stats::Scalar writeRowHits;
        stats::Scalar numActs;
        stats::Scalar numPrecharges;
        stats::Scalar numRefreshes;
        stats::Scalar bytesRead;
        stats::Scalar bytesWritten;
        stats::Scalar numRdRetry;
        stats::Scalar numWrRetry;
        /** Sum over read bursts of time from queue entry to selection. */
        stats::Scalar totQLat;
        /** Sum over read bursts of selection-to-data-complete time. */
        stats::Scalar totSvcLat;
        /** Sum over read bursts of entry-to-data-complete time. */
        stats::Scalar totMemAccLat;
        /** Accumulated time during which every bank was precharged. */
        stats::Scalar prechargeAllTime;
        /** Time spent in precharge power-down (if enabled). */
        stats::Scalar powerDownTime;
        /** Power-down entries. */
        stats::Scalar powerDownEntries;
        /** Time spent in self-refresh (subset extension of above). */
        stats::Scalar selfRefreshTime;
        /** Self-refresh entries. */
        stats::Scalar selfRefreshEntries;
        /** Time-weighted read queue occupancy (length x ticks). */
        stats::Scalar rdQOccupancyTicks;
        /** Time-weighted write queue occupancy (length x ticks). */
        stats::Scalar wrQOccupancyTicks;
        /** Reads serviced per read-write turnaround. */
        stats::Average rdPerTurnAround;
        /** Writes drained per write episode. */
        stats::Average wrPerTurnAround;
        /** End-to-end controller read latency distribution (ns). */
        stats::Histogram readLatencyHist;
        /**
         * Read latency attribution: per-stage histograms under the
         * "lat" child group whose stages sum exactly to the
         * end-to-end latency readLatencyHist measures.
         */
        stats::StageLatencyStats lat;
        stats::Vector perBankRdBursts;
        stats::Vector perBankWrBursts;

        stats::Formula rowHitRate;
        stats::Formula busUtil;
        stats::Formula busUtilRead;
        stats::Formula busUtilWrite;
        stats::Formula avgRdQLen;
        stats::Formula avgWrQLen;
        stats::Formula avgQLatNs;
        stats::Formula avgMemAccLatNs;
        stats::Formula avgRdBWGBs;
        stats::Formula avgWrBWGBs;
        stats::Formula peakBWGBs;
    };

    const CtrlStats &ctrlStats() const { return *stats_; }

    /**
     * Attach a command logger: every implied DRAM command (ACT, PRE,
     * RD, WR, REF) is recorded with its computed launch tick, for
     * debugging and for ProtocolChecker audits. Pass nullptr to
     * detach. Not owned.
     */
    void setCmdLogger(CmdLogger *logger) { cmdLogger_ = logger; }

    /**
     * Test-only fault injection: scale the internal tRCD by @p factor
     * (e.g. 0.5 makes the controller schedule column commands too
     * early). The validation harness uses this to prove the
     * ProtocolChecker — constructed with the *unscaled* timing —
     * actually catches timing bugs. Never call outside tests.
     */
    void testScaleTRCD(double factor)
    {
        cfg_.timing.tRCD =
            static_cast<Tick>(cfg_.timing.tRCD * factor);
    }

    /**
     * Test-only fault injection: skip the PRAC mitigation refresh the
     * plugin demands before an over-activated bank's next ACT. Proves
     * the checker's "prac" rule fires. Never call outside tests.
     */
    void testSkipPracMitigation() { testSkipPrac_ = true; }

    /**
     * Test-only fault injection: scale the tRFCpb blackout the
     * controller applies after a per-bank refresh (0.0 removes it), so
     * the next ACT lands inside the checker's tRFCpb window. Never
     * call outside tests.
     */
    void testScaleTRFCpb(double factor) { testTRFCpbScale_ = factor; }

    /**
     * Test-only fault injection: stall the per-bank refresh manager —
     * stop issuing REFpb to flat bank @p flat — so the checker's
     * per-bank tREFI deadline rule fires. Never call outside tests.
     */
    void testStallPerBankRefresh(unsigned flat)
    {
        testStallRefPbFlat_ = flat;
    }

    /** The controller's plugin chain (empty without --plugins). */
    plugin::PluginChain &pluginChain() { return plugins_; }
    const plugin::PluginChain &pluginChain() const { return plugins_; }

    /** Tick at which the current stats window started. */
    Tick statsWindowStart() const { return windowStart_; }

    /** Simulated seconds in the current stats window. */
    double windowSeconds() const
    {
        return toSeconds(curTick() - windowStart_);
    }

    /** Data-bus utilisation (both directions) over the stats window. */
    double busUtilisation() const override;

    /** Achieved read+write bandwidth over the stats window, GByte/s. */
    double achievedBandwidthGBs() const override;

    /** Theoretical peak bandwidth of the channel, GByte/s. */
    double peakBandwidthGBs() const override;

    PowerInputs powerInputs() const override;

    void startup() override;

    void serialize(ckpt::CkptOut &out) const override;
    void unserialize(ckpt::CkptIn &in) override;

  private:
    /** Open-row sentinel: the bank is precharged. */
    static constexpr std::uint64_t kNoRow = ~std::uint64_t(0);

    /**
     * Per-rank state: rank-level activate constraints. Bank state
     * lives in the flat struct-of-arrays vectors below, not here.
     */
    struct Rank
    {
        /** Earliest next activate anywhere in the rank (tRRD). */
        Tick nextActAt = 0;
        /**
         * Launch ticks of the last activationLimit activates, a ring
         * sized once by the limit so tXAW bookkeeping never allocates.
         */
        RingBuffer<Tick> actWindow;
    };

    struct BurstHelper;

    /** One DRAM burst in flight through the controller (pooled). */
    struct DRAMPacket : public Pooled<DRAMPacket>
    {
        Tick entryTime = 0;
        Tick readyTime = 0;
        /** Original system packet; null for already-answered writes. */
        Packet *pkt = nullptr;
        bool isRead = true;
        RequestorId requestorId = 0;
        unsigned rank = 0;
        unsigned bank = 0;
        std::uint64_t row = 0;
        std::uint64_t col = 0;
        /** Dense local address of the burst window. */
        Addr burstAddr = 0;
        /** Lowest/one-past-highest byte actually touched. */
        Addr lo = 0;
        Addr hi = 0;
        BurstHelper *burstHelper = nullptr;
    };

    /** Completion bookkeeping for packets chopped into many bursts. */
    struct BurstHelper : public Pooled<BurstHelper>
    {
        unsigned burstCount;
        unsigned burstsServiced = 0;

        explicit BurstHelper(unsigned count) : burstCount(count) {}
    };

    class MemoryPort : public ResponsePort
    {
      public:
        MemoryPort(std::string name, DRAMCtrl &ctrl)
            : ResponsePort(std::move(name)), ctrl_(ctrl)
        {}

        bool recvTimingReq(Packet *pkt) override
        {
            return ctrl_.recvTimingReq(pkt);
        }

        void recvRespRetry() override { ctrl_.recvRespRetry(); }

      private:
        DRAMCtrl &ctrl_;
    };

    enum class BusState { Read, Write };

    bool recvTimingReq(Packet *pkt);
    void recvRespRetry();

    /** Number of burst windows [addr, addr+size) overlaps. */
    unsigned burstCountFor(Addr local_addr, unsigned size) const;

    void addToReadQueue(Packet *pkt, Addr local_addr);
    void addToWriteQueue(Packet *pkt, Addr local_addr);

    /** Build a burst-level DRAMPacket for one burst window. */
    DRAMPacket *makeDRAMPacket(Packet *pkt, Addr lo, Addr hi,
                               bool is_read) const;

    /** Main state machine: pick a burst, run it, schedule the next. */
    void processNextReqEvent();

    /** Pick the next burst per the scheduling policy; null if none. */
    std::vector<DRAMPacket *>::iterator
    chooseNext(std::vector<DRAMPacket *> &queue);

    /** Estimated earliest tick @p pkt's column command could launch. */
    Tick estimateReadyTick(const DRAMPacket &pkt) const;

    /**
     * The row-miss half of estimateReadyTick: earliest activate-then-
     * column launch for the bank, independent of the requesting burst.
     */
    Tick estimateBankReady(unsigned rank_idx, unsigned bank_idx) const;

    /** QoS priority of @p pkt under FrFcfsPrio; 0 otherwise. */
    unsigned priorityOf(const DRAMPacket &pkt) const;

    /** Perform the access: compute all timings, update bank/bus state. */
    void doDRAMAccess(DRAMPacket *pkt);

    /** Launch a precharge at @p pre_tick (>= the bank's preAllowedAt). */
    void prechargeBank(unsigned flat_bank, Tick pre_tick);

    /** Account an activate at @p act_tick and apply tRRD/tXAW. */
    void recordActivate(Rank &rank, Tick act_tick);

    /** Earliest activate obeying the rolling tXAW window. */
    Tick activationWindowConstraint(const Rank &rank, Tick act_tick) const;

    /** True if any queued burst hits @p row in the same bank. */
    bool queuedRowHits(unsigned rank, unsigned bank,
                       std::uint64_t row) const;
    /** True if any queued burst conflicts with the open @p row. */
    bool queuedBankConflicts(unsigned rank, unsigned bank,
                             std::uint64_t row) const;

    /** Apply the page policy after a column access to @p pkt's bank. */
    void applyPagePolicy(const DRAMPacket &pkt);

    void processRefreshEvent();

    /** Refresh one rank (perRankRefresh mode). */
    void refreshRank(unsigned rank_idx);

    /** Rotating per-bank refresh (refmgr-pb plugin mode). */
    void processPerBankRefreshEvent();

    /**
     * Record an implied DRAM command: into the attached CmdLogger (if
     * any) and through the plugin chain's onCommand hook. All command
     * emission funnels through here so plugins observe the stream even
     * without a logger.
     */
    void
    logCmd(Tick tick, DRAMCmd cmd, unsigned rank, unsigned bank,
           std::uint64_t row = 0)
    {
        if (cmdLogger_)
            cmdLogger_->record(tick, cmd, rank, bank, row);
        if (!plugins_.empty())
            plugins_.onCommand({tick, cmd, rank, bank, row});
    }

    /**
     * If the PRAC plugin demands a mitigation before the next ACT to
     * @p flat_bank, issue a RefM ending no earlier than @p act_from and
     * return the tick the ACT may launch; otherwise @p act_from.
     */
    Tick pracMitigate(unsigned flat_bank, unsigned rank, unsigned bank,
                      Tick act_from);

    /** Send (or schedule) the response for a completed request. */
    void accessAndRespond(Packet *pkt, Tick static_latency,
                          Tick ready_time);

    /** Power accounting: a bank went active at @p act_tick. */
    void bankActivated(Tick act_tick);
    /** Power accounting: a bank closed at @p pre_done_tick. */
    void bankPrecharged(Tick pre_done_tick);

    /** Wake the blocked requestor if queue space freed up. */
    void retryBlockedReq();

    /** Fold elapsed time into the queue-occupancy integrals. */
    void touchQueueStats();

    DRAMCtrlConfig cfg_;
    AddrRange range_;
    AddrDecoder decoder_;

    MemoryPort port_;
    RespPacketQueue respQueue_;

    std::vector<Rank> ranks_;

    /**
     * Bank timing state as struct-of-arrays, flat-bank indexed
     * (rank-major, matching the checkpoint layout). The FR-FCFS scan
     * reads openRow and colAllowedAt across many banks per decision;
     * one packed 64-bit lane per field keeps those walks on
     * contiguous cache lines instead of striding through an array of
     * structs, and the checkpoint code serialises the vectors
     * verbatim.
     */
    std::vector<std::uint64_t> bankOpenRow_;
    std::vector<Tick> bankPreAllowedAt_;
    std::vector<Tick> bankActAllowedAt_;
    std::vector<Tick> bankColAllowedAt_;
    std::vector<std::uint32_t> bankRowAccesses_;

    /**
     * Bank-group timing state, armed only when the organisation has
     * more than one group (hasBankGroups_); DDR3-era configs keep the
     * vectors empty and every fast path untouched. grpColAllowedAt_
     * and grpNextActAt_ are (rank * groups + group) indexed and carry
     * the *long* (same-group) constraints; nextColAllowedAt_ is the
     * channel-wide short column spacing (tCCD_S), which the data-bus
     * serialisation already subsumes for logged streams but is kept
     * explicit so estimates stay conservative.
     */
    bool hasBankGroups_ = false;
    std::vector<Tick> grpColAllowedAt_;
    std::vector<Tick> grpNextActAt_;
    Tick nextColAllowedAt_ = 0;

    /** Flat (rank-major) bank-group index of @p flat_bank. */
    unsigned
    grpIdx(unsigned flat_bank) const
    {
        return (flat_bank / cfg_.org.banksPerRank) *
                   cfg_.org.bankGroupsPerRank +
               cfg_.org.bankGroup(flat_bank % cfg_.org.banksPerRank);
    }

    /**
     * Earliest column command to @p flat_bank: the per-bank limit
     * folded with the bank-group and channel-wide spacings when the
     * organisation has groups.
     */
    Tick
    colAllowedAt(unsigned flat_bank) const
    {
        Tick t = bankColAllowedAt_[flat_bank];
        if (hasBankGroups_) {
            Tick g = grpColAllowedAt_[grpIdx(flat_bank)];
            if (g > t)
                t = g;
            if (nextColAllowedAt_ > t)
                t = nextColAllowedAt_;
        }
        return t;
    }

    /**
     * Pending bursts, oldest first. Vectors with capacity reserved to
     * the queue limits: scheduling scans run over contiguous pointers,
     * and enqueue/dequeue never allocate. Selection erases from the
     * middle, an O(n) pointer move bounded by the small queue depth.
     */
    std::vector<DRAMPacket *> readQueue_;
    std::vector<DRAMPacket *> writeQueue_;

    /**
     * Packed (flat bank, row) key of each queued burst, kept parallel
     * to the queue vectors. Row-hit recounts after an activate scan
     * these flat integer arrays (one vectorisable equality sweep)
     * instead of dereferencing every queued packet.
     */
    std::vector<std::uint64_t> rdKeys_;
    std::vector<std::uint64_t> wrKeys_;

    static constexpr unsigned kRowKeyBits = 48;

    static std::uint64_t
    packKey(unsigned flat_bank, std::uint64_t row)
    {
        return (static_cast<std::uint64_t>(flat_bank) << kRowKeyBits) |
               row;
    }

    /** Write queue entry covering the burst window at @p burst_addr. */
    DRAMPacket *findWriteEntry(Addr burst_addr) const;

    /**
     * Incremental scheduling state. The row-hit counters track, per
     * flat bank and per queue, how many queued bursts target the bank's
     * currently open row (used by the O(1) adaptive page policy
     * probes). The totals count only *usable* hits — hits on banks
     * whose open row has not reached the starvation limit — which is
     * exactly the set plain FR-FCFS may select, so the scheduler can
     * stop at the oldest such hit without estimating ready ticks. The
     * ready cache memoises the state-dependent part of the miss
     * estimate per bank, tagged with bank+rank generation counters so
     * entries die exactly when the owning bank or rank state changes.
     */
    struct ReadyCache
    {
        /** bankGen + rankGen + 1 at fill time; 0 means never filled. */
        std::uint64_t tag = 0;
        /** State-dependent lower bound (already includes tRCD). */
        Tick base = 0;
        /** curTick-relative lower bound: est = max(base, now + off). */
        Tick nowOffset = 0;
    };

    mutable std::vector<ReadyCache> readyCache_;
    std::vector<std::uint64_t> bankGen_;
    std::vector<std::uint64_t> rankGen_;

    std::vector<std::uint32_t> rdRowHitCounts_;
    std::vector<std::uint32_t> wrRowHitCounts_;
    std::vector<std::uint32_t> rdBankCounts_;
    std::vector<std::uint32_t> wrBankCounts_;
    unsigned rdRowHitTotal_ = 0;
    unsigned wrRowHitTotal_ = 0;

    /**
     * Per flat bank: the open row hit its access limit, so its queued
     * hits are excluded from the usable totals and must be scheduled
     * as conflicts. Cleared whenever the row closes or a new one
     * opens (rowAccesses restarts from zero).
     */
    std::vector<std::uint8_t> starvedHits_;

    /** Highest priority any requestor holds under FrFcfsPrio. */
    unsigned maxReqPriority_ = 0;

    /** Flat (rank-major) index of @p bank in rank @p rank. */
    unsigned flatIdx(unsigned rank, unsigned bank) const
    {
        return rank * cfg_.org.banksPerRank + bank;
    }

    void invalidateBank(unsigned flat_bank) { ++bankGen_[flat_bank]; }
    void invalidateRank(unsigned rank_idx) { ++rankGen_[rank_idx]; }

    /** Track a burst entering/leaving a queue (count bookkeeping). */
    void noteEnqueued(const DRAMPacket &pkt, bool is_read);
    void noteDequeued(const DRAMPacket &pkt, bool is_read);
    /** Zero the row-hit counters of a bank whose row just closed. */
    void rowClosed(unsigned flat_bank);
    /** Recount row hits for a bank that just opened @p row. */
    void rowOpened(unsigned rank, unsigned bank, std::uint64_t row);

    BusState busState_ = BusState::Read;

    /** Tick the shared data bus becomes free. */
    Tick busBusyUntil_ = 0;
    /**
     * Earliest tick the next burst decision may run. Keeping this as
     * pacing state (rather than always waking at curTick) bounds how
     * far the controller's bus reservations run ahead of simulated
     * time, so queue occupancy and back pressure stay faithful even
     * for sparse arrivals.
     */
    Tick nextReqTime_ = 0;
    /** Earliest read column command (tWTR after write data). */
    Tick nextRdCmdAt_ = 0;
    /** Earliest write data start (tRTW after read data). */
    Tick nextWrDataAt_ = 0;
    /** Direction of the most recently issued burst. */
    bool lastBurstWasRead_ = true;

    /** Reads serviced since the last switch to reads. */
    unsigned readsThisTime_ = 0;
    /** Writes drained since the last switch to writes. */
    unsigned writesThisTime_ = 0;

    /** Whether the requestor is blocked on a full queue. */
    bool retryReq_ = false;

    Tick nextRefreshAt_ = 0;
    /** Per-rank refresh due times (perRankRefresh mode). */
    std::vector<Tick> rankRefreshDue_;
    /** Earliest tick a refresh may launch (tRP after any precharge). */
    Tick refNotBefore_ = 0;

    /**
     * Tick at which the device (nominally) entered power-down, or
     * kMaxTick while awake. Updated lazily: set when the controller
     * runs out of actionable work, consumed by the next access.
     */
    Tick poweredDownAt_ = kMaxTick;
    /** Earliest command tick after a power-down exit (tXP applied). */
    Tick wakeConstraint_ = 0;

    /**
     * If power-down is enabled and in effect at @p now, account the
     * time and return the tick commands may resume (now + tXP).
     */
    Tick exitPowerDown(Tick now);
    /** Arm power-down after the current activity drains. */
    void armPowerDown();

    /** Banks currently (nominally) holding an open row. */
    unsigned numBanksActive_ = 0;
    Tick allBanksPreSince_ = 0;

    Tick windowStart_ = 0;
    Tick lastQStatUpdate_ = 0;

    EventFunctionWrapper nextReqEvent_;
    EventFunctionWrapper refreshEvent_;

    CmdLogger *cmdLogger_ = nullptr;

    /** Ordered plugin chain built from cfg_.plugins (may be empty). */
    plugin::PluginChain plugins_;
    /** Cached typed plugins (owned by plugins_); null when absent. */
    plugin::RefreshManager *refMgr_ = nullptr;
    plugin::PracPlugin *pracPlugin_ = nullptr;

    // Test-only fault injection knobs (see the public test* methods).
    bool testSkipPrac_ = false;
    double testTRFCpbScale_ = 1.0;
    unsigned testStallRefPbFlat_ = ~0u;

    std::unique_ptr<CtrlStats> stats_;
};

} // namespace dramctrl

#endif // DRAMCTRL_DRAM_DRAM_CTRL_H
