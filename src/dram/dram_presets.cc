#include "dram/dram_presets.hh"

#include "sim/logging.hh"

namespace dramctrl {
namespace presets {

DRAMCtrlConfig
ddr3_1333()
{
    DRAMCtrlConfig cfg;
    // 2 Gbit x8 devices, eight to a rank -> 64-bit channel, 2 GByte.
    cfg.org.burstLength = 8;
    cfg.org.deviceBusWidth = 8;
    cfg.org.devicesPerRank = 8;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 8;
    cfg.org.rowBufferSize = 1024;
    cfg.org.channelCapacity = 2ULL * 1024 * 1024 * 1024;

    cfg.timing.tCK = fromNs(1.5);
    cfg.timing.tBURST = fromNs(6.0); // BL8 at 1333 MT/s
    cfg.timing.tRCD = fromNs(13.75);
    cfg.timing.tCL = fromNs(13.75);
    cfg.timing.tRP = fromNs(13.75);
    cfg.timing.tRAS = fromNs(35.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(7.5);
    cfg.timing.tRTW = fromNs(3.0);
    cfg.timing.tRRD = fromNs(6.0);
    cfg.timing.tXAW = fromNs(30.0);
    cfg.timing.tREFI = fromUs(7.8);
    cfg.timing.tRFC = fromNs(160.0);
    cfg.timing.activationLimit = 4;

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
ddr3_1600()
{
    DRAMCtrlConfig cfg;
    cfg.org.burstLength = 8;
    cfg.org.deviceBusWidth = 8;
    cfg.org.devicesPerRank = 8;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 8;
    cfg.org.rowBufferSize = 1024; // Table IV
    cfg.org.channelCapacity = 2ULL * 1024 * 1024 * 1024;

    cfg.timing.tCK = fromNs(1.25);
    cfg.timing.tBURST = fromNs(5.0); // Table IV
    cfg.timing.tRCD = fromNs(13.75);
    cfg.timing.tCL = fromNs(13.75);
    cfg.timing.tRP = fromNs(13.75);
    cfg.timing.tRAS = fromNs(35.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(7.5);
    cfg.timing.tRTW = fromNs(2.5);
    cfg.timing.tRRD = fromNs(6.25);
    cfg.timing.tXAW = fromNs(40.0);
    cfg.timing.tREFI = fromUs(7.8);
    cfg.timing.tRFC = fromNs(300.0); // Table IV
    cfg.timing.activationLimit = 4;

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
lpddr3_1600()
{
    DRAMCtrlConfig cfg;
    // One x32 die per rank -> 32-bit channel (one of two in Sec IV-B).
    cfg.org.burstLength = 8;
    cfg.org.deviceBusWidth = 32;
    cfg.org.devicesPerRank = 1;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 8;
    cfg.org.rowBufferSize = 1024; // Table IV
    cfg.org.channelCapacity = 512ULL * 1024 * 1024;

    cfg.timing.tCK = fromNs(1.25);
    cfg.timing.tBURST = fromNs(5.0); // Table IV
    cfg.timing.tRCD = fromNs(15.0);
    cfg.timing.tCL = fromNs(15.0);
    cfg.timing.tRP = fromNs(15.0);
    cfg.timing.tRAS = fromNs(42.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(7.5);
    cfg.timing.tRTW = fromNs(2.5);
    cfg.timing.tRRD = fromNs(10.0);
    cfg.timing.tXAW = fromNs(50.0);
    cfg.timing.tREFI = fromUs(3.9);
    cfg.timing.tRFC = fromNs(130.0); // Table IV
    cfg.timing.activationLimit = 4;

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
wideio_200()
{
    DRAMCtrlConfig cfg;
    // One x128 stacked die, SDR (one of four channels in Sec IV-B).
    cfg.org.burstLength = 4;
    cfg.org.deviceBusWidth = 128;
    cfg.org.devicesPerRank = 1;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 4; // Table IV
    cfg.org.rowBufferSize = 4096; // Table IV
    cfg.org.channelCapacity = 256ULL * 1024 * 1024;

    cfg.timing.tCK = fromNs(5.0);
    cfg.timing.tBURST = fromNs(20.0); // Table IV: BL4 SDR at 200 MHz
    cfg.timing.tRCD = fromNs(18.0);
    cfg.timing.tCL = fromNs(18.0);
    cfg.timing.tRP = fromNs(18.0);
    cfg.timing.tRAS = fromNs(42.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(15.0);
    cfg.timing.tRTW = fromNs(5.0);
    cfg.timing.tRRD = fromNs(10.0);
    cfg.timing.tXAW = fromNs(50.0);
    cfg.timing.tREFI = fromUs(7.8);
    cfg.timing.tRFC = fromNs(210.0); // Table IV
    cfg.timing.activationLimit = 2;  // Table IV (tTAW)

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
hmcVault()
{
    DRAMCtrlConfig cfg;
    // One of 16 vaults: narrow, fast TSV-attached stacked DRAM with
    // small pages; HMC-style vaults run closed page.
    cfg.org.burstLength = 8;
    cfg.org.deviceBusWidth = 32;
    cfg.org.devicesPerRank = 1;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 16;
    cfg.org.rowBufferSize = 256;
    cfg.org.channelCapacity = 128ULL * 1024 * 1024;

    cfg.timing.tCK = fromNs(0.8);
    cfg.timing.tBURST = fromNs(3.2); // BL8 at 2500 MT/s
    cfg.timing.tRCD = fromNs(13.75);
    cfg.timing.tCL = fromNs(13.75);
    cfg.timing.tRP = fromNs(13.75);
    cfg.timing.tRAS = fromNs(27.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(7.5);
    cfg.timing.tRTW = fromNs(1.6);
    cfg.timing.tRRD = fromNs(5.0);
    cfg.timing.tXAW = fromNs(30.0);
    cfg.timing.tREFI = fromUs(7.8);
    cfg.timing.tRFC = fromNs(160.0);
    cfg.timing.activationLimit = 0; // TSV power delivery lifts tFAW

    cfg.pagePolicy = PagePolicy::Closed;
    cfg.addrMapping = AddrMapping::RoCoRaBaCh;

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
byName(const std::string &name)
{
    if (name == "ddr3_1333")
        return ddr3_1333();
    if (name == "ddr3_1600")
        return ddr3_1600();
    if (name == "lpddr3_1600")
        return lpddr3_1600();
    if (name == "wideio_200")
        return wideio_200();
    if (name == "hmc_vault")
        return hmcVault();
    fatal("unknown DRAM preset '%s'", name.c_str());
}

std::vector<std::string>
names()
{
    return {"ddr3_1333", "ddr3_1600", "lpddr3_1600", "wideio_200",
            "hmc_vault"};
}

} // namespace presets
} // namespace dramctrl
