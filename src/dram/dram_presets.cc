#include "dram/dram_presets.hh"

#include <mutex>
#include <utility>

#include "sim/logging.hh"

namespace dramctrl {
namespace presets {

namespace {

/**
 * Name -> factory registry behind byName()/names(). A vector of pairs
 * rather than a map so names() reports registration order (builtins in
 * their canonical order, user registrations after), which the golden
 * corpus and CLIs rely on being stable.
 */
std::vector<std::pair<std::string, PresetFactory>> &
registry()
{
    static std::vector<std::pair<std::string, PresetFactory>> r;
    return r;
}

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

void registerLocked(const std::string &name, PresetFactory factory);

/** Populate the builtins exactly once, in canonical order. */
void
ensureBuiltins()
{
    static bool done = [] {
        registerLocked("ddr3_1333", ddr3_1333);
        registerLocked("ddr3_1600", ddr3_1600);
        registerLocked("lpddr3_1600", lpddr3_1600);
        registerLocked("wideio_200", wideio_200);
        registerLocked("hmc_vault", hmcVault);
        registerLocked("ddr4_2400", ddr4_2400);
        registerLocked("lpddr4_3200", lpddr4_3200);
        registerLocked("hbm2", hbm2);
        return true;
    }();
    (void)done;
}

void
registerLocked(const std::string &name, PresetFactory factory)
{
    for (auto &entry : registry()) {
        if (entry.first == name) {
            entry.second = std::move(factory);
            return;
        }
    }
    registry().emplace_back(name, std::move(factory));
}

} // namespace

DRAMCtrlConfig
ddr3_1333()
{
    DRAMCtrlConfig cfg;
    // 2 Gbit x8 devices, eight to a rank -> 64-bit channel, 2 GByte.
    cfg.org.burstLength = 8;
    cfg.org.deviceBusWidth = 8;
    cfg.org.devicesPerRank = 8;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 8;
    cfg.org.rowBufferSize = 1024;
    cfg.org.channelCapacity = 2ULL * 1024 * 1024 * 1024;

    cfg.timing.tCK = fromNs(1.5);
    cfg.timing.tBURST = fromNs(6.0); // BL8 at 1333 MT/s
    cfg.timing.tRCD = fromNs(13.75);
    cfg.timing.tCL = fromNs(13.75);
    cfg.timing.tRP = fromNs(13.75);
    cfg.timing.tRAS = fromNs(35.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(7.5);
    cfg.timing.tRTW = fromNs(3.0);
    cfg.timing.tRRD = fromNs(6.0);
    cfg.timing.tXAW = fromNs(30.0);
    cfg.timing.tREFI = fromUs(7.8);
    cfg.timing.tRFC = fromNs(160.0);
    cfg.timing.activationLimit = 4;

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
ddr3_1600()
{
    DRAMCtrlConfig cfg;
    cfg.org.burstLength = 8;
    cfg.org.deviceBusWidth = 8;
    cfg.org.devicesPerRank = 8;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 8;
    cfg.org.rowBufferSize = 1024; // Table IV
    cfg.org.channelCapacity = 2ULL * 1024 * 1024 * 1024;

    cfg.timing.tCK = fromNs(1.25);
    cfg.timing.tBURST = fromNs(5.0); // Table IV
    cfg.timing.tRCD = fromNs(13.75);
    cfg.timing.tCL = fromNs(13.75);
    cfg.timing.tRP = fromNs(13.75);
    cfg.timing.tRAS = fromNs(35.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(7.5);
    cfg.timing.tRTW = fromNs(2.5);
    cfg.timing.tRRD = fromNs(6.25);
    cfg.timing.tXAW = fromNs(40.0);
    cfg.timing.tREFI = fromUs(7.8);
    cfg.timing.tRFC = fromNs(300.0); // Table IV
    cfg.timing.activationLimit = 4;

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
lpddr3_1600()
{
    DRAMCtrlConfig cfg;
    // One x32 die per rank -> 32-bit channel (one of two in Sec IV-B).
    cfg.org.burstLength = 8;
    cfg.org.deviceBusWidth = 32;
    cfg.org.devicesPerRank = 1;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 8;
    cfg.org.rowBufferSize = 1024; // Table IV
    cfg.org.channelCapacity = 512ULL * 1024 * 1024;

    cfg.timing.tCK = fromNs(1.25);
    cfg.timing.tBURST = fromNs(5.0); // Table IV
    cfg.timing.tRCD = fromNs(15.0);
    cfg.timing.tCL = fromNs(15.0);
    cfg.timing.tRP = fromNs(15.0);
    cfg.timing.tRAS = fromNs(42.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(7.5);
    cfg.timing.tRTW = fromNs(2.5);
    cfg.timing.tRRD = fromNs(10.0);
    cfg.timing.tXAW = fromNs(50.0);
    cfg.timing.tREFI = fromUs(3.9);
    cfg.timing.tRFC = fromNs(130.0); // Table IV
    cfg.timing.activationLimit = 4;

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
wideio_200()
{
    DRAMCtrlConfig cfg;
    // One x128 stacked die, SDR (one of four channels in Sec IV-B).
    cfg.org.burstLength = 4;
    cfg.org.deviceBusWidth = 128;
    cfg.org.devicesPerRank = 1;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 4; // Table IV
    cfg.org.rowBufferSize = 4096; // Table IV
    cfg.org.channelCapacity = 256ULL * 1024 * 1024;

    cfg.timing.tCK = fromNs(5.0);
    cfg.timing.tBURST = fromNs(20.0); // Table IV: BL4 SDR at 200 MHz
    cfg.timing.tRCD = fromNs(18.0);
    cfg.timing.tCL = fromNs(18.0);
    cfg.timing.tRP = fromNs(18.0);
    cfg.timing.tRAS = fromNs(42.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(15.0);
    cfg.timing.tRTW = fromNs(5.0);
    cfg.timing.tRRD = fromNs(10.0);
    cfg.timing.tXAW = fromNs(50.0);
    cfg.timing.tREFI = fromUs(7.8);
    cfg.timing.tRFC = fromNs(210.0); // Table IV
    cfg.timing.activationLimit = 2;  // Table IV (tTAW)

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
hmcVault()
{
    DRAMCtrlConfig cfg;
    // One of 16 vaults: narrow, fast TSV-attached stacked DRAM with
    // small pages; HMC-style vaults run closed page.
    cfg.org.burstLength = 8;
    cfg.org.deviceBusWidth = 32;
    cfg.org.devicesPerRank = 1;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 16;
    cfg.org.rowBufferSize = 256;
    cfg.org.channelCapacity = 128ULL * 1024 * 1024;

    cfg.timing.tCK = fromNs(0.8);
    cfg.timing.tBURST = fromNs(3.2); // BL8 at 2500 MT/s
    cfg.timing.tRCD = fromNs(13.75);
    cfg.timing.tCL = fromNs(13.75);
    cfg.timing.tRP = fromNs(13.75);
    cfg.timing.tRAS = fromNs(27.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(7.5);
    cfg.timing.tRTW = fromNs(1.6);
    cfg.timing.tRRD = fromNs(5.0);
    cfg.timing.tXAW = fromNs(30.0);
    cfg.timing.tREFI = fromUs(7.8);
    cfg.timing.tRFC = fromNs(160.0);
    cfg.timing.activationLimit = 0; // TSV power delivery lifts tFAW

    cfg.pagePolicy = PagePolicy::Closed;
    cfg.addrMapping = AddrMapping::RoCoRaBaCh;

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
ddr4_2400()
{
    DRAMCtrlConfig cfg;
    // 4 Gbit x8 devices, eight to a rank -> 64-bit channel, 4 GByte.
    // Four bank groups arm the long/short column and activate timings.
    cfg.org.burstLength = 8;
    cfg.org.deviceBusWidth = 8;
    cfg.org.devicesPerRank = 8;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 16;
    cfg.org.bankGroupsPerRank = 4;
    cfg.org.rowBufferSize = 8192;
    cfg.org.channelCapacity = 4ULL * 1024 * 1024 * 1024;

    cfg.timing.tCK = fromNs(0.833);
    cfg.timing.tBURST = fromNs(3.332); // BL8 at 2400 MT/s
    cfg.timing.tRCD = fromNs(14.16);
    cfg.timing.tCL = fromNs(14.16);
    cfg.timing.tRP = fromNs(14.16);
    cfg.timing.tRAS = fromNs(32.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(7.5);
    cfg.timing.tRTW = fromNs(2.5);
    cfg.timing.tRRD = fromNs(3.332);   // tRRD_S, four clocks
    cfg.timing.tRRD_L = fromNs(4.9);
    cfg.timing.tCCD_S = fromNs(3.332); // four clocks = tBURST
    cfg.timing.tCCD_L = fromNs(5.0);   // six clocks
    cfg.timing.tXAW = fromNs(21.0);
    cfg.timing.tREFI = fromUs(7.8);
    cfg.timing.tRFC = fromNs(350.0); // 8 Gbit-class tRFC1
    cfg.timing.activationLimit = 4;

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
lpddr4_3200()
{
    DRAMCtrlConfig cfg;
    // One x16 die per rank -> 16-bit channel (LPDDR4 runs two such
    // channels per package). No bank groups, but the standard adds
    // same-bank refresh (REFpb) with its own tRFCpb.
    cfg.org.burstLength = 16;
    cfg.org.deviceBusWidth = 16;
    cfg.org.devicesPerRank = 1;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 8;
    cfg.org.rowBufferSize = 2048;
    cfg.org.channelCapacity = 2ULL * 1024 * 1024 * 1024;

    cfg.timing.tCK = fromNs(0.625);
    cfg.timing.tBURST = fromNs(5.0); // BL16 at 3200 MT/s
    cfg.timing.tRCD = fromNs(18.0);
    cfg.timing.tCL = fromNs(18.0);
    cfg.timing.tRP = fromNs(18.0);
    cfg.timing.tRAS = fromNs(42.0);
    cfg.timing.tWR = fromNs(18.0);
    cfg.timing.tWTR = fromNs(10.0);
    cfg.timing.tRTW = fromNs(2.5);
    cfg.timing.tRRD = fromNs(10.0);
    cfg.timing.tXAW = fromNs(40.0);
    cfg.timing.tREFI = fromUs(3.9);
    cfg.timing.tRFC = fromNs(280.0);  // tRFCab, 8 Gbit
    cfg.timing.tRFCsb = fromNs(140.0); // tRFCpb
    cfg.timing.activationLimit = 4;

    cfg.check();
    return cfg;
}

DRAMCtrlConfig
hbm2()
{
    DRAMCtrlConfig cfg;
    // One HBM2 pseudochannel: 64-bit half of a 128-bit legacy channel,
    // BL4, four bank groups, small pages, same-bank refresh. The org
    // records pseudoChannels = 2 so the harness stacks two controllers
    // per physical channel.
    cfg.org.burstLength = 4;
    cfg.org.deviceBusWidth = 64;
    cfg.org.devicesPerRank = 1;
    cfg.org.ranksPerChannel = 1;
    cfg.org.banksPerRank = 16;
    cfg.org.bankGroupsPerRank = 4;
    cfg.org.pseudoChannels = 2;
    cfg.org.rowBufferSize = 1024;
    cfg.org.channelCapacity = 256ULL * 1024 * 1024;

    cfg.timing.tCK = fromNs(1.0);
    cfg.timing.tBURST = fromNs(2.0); // BL4 at 2000 MT/s
    cfg.timing.tRCD = fromNs(14.0);
    cfg.timing.tCL = fromNs(14.0);
    cfg.timing.tRP = fromNs(14.0);
    cfg.timing.tRAS = fromNs(33.0);
    cfg.timing.tWR = fromNs(15.0);
    cfg.timing.tWTR = fromNs(7.5);
    cfg.timing.tRTW = fromNs(2.0);
    cfg.timing.tRRD = fromNs(4.0);
    cfg.timing.tRRD_L = fromNs(6.0);
    cfg.timing.tCCD_S = fromNs(2.0); // two clocks = tBURST
    cfg.timing.tCCD_L = fromNs(4.0);
    cfg.timing.tXAW = fromNs(16.0);
    cfg.timing.tREFI = fromUs(3.9);
    cfg.timing.tRFC = fromNs(220.0);
    cfg.timing.tRFCsb = fromNs(160.0);
    cfg.timing.activationLimit = 4;

    cfg.check();
    return cfg;
}

void
registerPreset(const std::string &name, PresetFactory factory)
{
    if (name.empty())
        fatal("cannot register a DRAM preset with an empty name");
    if (!factory)
        fatal("cannot register DRAM preset '%s' without a factory",
              name.c_str());
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureBuiltins();
    registerLocked(name, std::move(factory));
}

DRAMCtrlConfig
byName(const std::string &name)
{
    PresetFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        ensureBuiltins();
        for (const auto &entry : registry()) {
            if (entry.first == name) {
                factory = entry.second;
                break;
            }
        }
    }
    if (!factory)
        fatal("unknown DRAM preset '%s'", name.c_str());
    return factory();
}

bool
hasPreset(const std::string &name)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureBuiltins();
    for (const auto &entry : registry()) {
        if (entry.first == name)
            return true;
    }
    return false;
}

std::vector<std::string>
names()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureBuiltins();
    std::vector<std::string> out;
    out.reserve(registry().size());
    for (const auto &entry : registry())
        out.push_back(entry.first);
    return out;
}

} // namespace presets
} // namespace dramctrl
