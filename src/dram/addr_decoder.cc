#include "dram/addr_decoder.hh"

#include "sim/logging.hh"

namespace dramctrl {

AddrDecoder::AddrDecoder(const DRAMOrg &org, AddrMapping mapping)
    : mapping_(mapping), burstSize_(org.burstSize()),
      burstsPerRow_(org.burstsPerRow()), banks_(org.banksPerRank),
      ranks_(org.ranksPerChannel), rows_(org.rowsPerBank())
{
    org.check();
}

DRAMAddr
AddrDecoder::decode(Addr dense) const
{
    std::uint64_t burst = dense / burstSize_;
    DRAMAddr da;

    switch (mapping_) {
      case AddrMapping::RoRaBaCoCh:
      case AddrMapping::RoRaBaChCo:
        // Fields from least significant: column, bank, rank, row.
        da.col = burst % burstsPerRow_;
        burst /= burstsPerRow_;
        da.bank = static_cast<unsigned>(burst % banks_);
        burst /= banks_;
        da.rank = static_cast<unsigned>(burst % ranks_);
        burst /= ranks_;
        da.row = burst;
        break;
      case AddrMapping::RoCoRaBaCh:
        // Fields from least significant: bank, rank, column, row.
        da.bank = static_cast<unsigned>(burst % banks_);
        burst /= banks_;
        da.rank = static_cast<unsigned>(burst % ranks_);
        burst /= ranks_;
        da.col = burst % burstsPerRow_;
        burst /= burstsPerRow_;
        da.row = burst;
        break;
    }

    if (da.row >= rows_)
        panic("address %#llx decodes to row %llu beyond capacity "
              "(%llu rows)",
              static_cast<unsigned long long>(dense),
              static_cast<unsigned long long>(da.row),
              static_cast<unsigned long long>(rows_));
    return da;
}

Addr
AddrDecoder::encode(const DRAMAddr &da) const
{
    DC_ASSERT(da.rank < ranks_ && da.bank < banks_ && da.row < rows_ &&
                  da.col < burstsPerRow_,
              "coordinate out of range (rank %u bank %u row %llu col "
              "%llu)",
              da.rank, da.bank,
              static_cast<unsigned long long>(da.row),
              static_cast<unsigned long long>(da.col));

    std::uint64_t burst = 0;
    switch (mapping_) {
      case AddrMapping::RoRaBaCoCh:
      case AddrMapping::RoRaBaChCo:
        burst = ((da.row * ranks_ + da.rank) * banks_ + da.bank) *
                    burstsPerRow_ +
                da.col;
        break;
      case AddrMapping::RoCoRaBaCh:
        burst = ((da.row * burstsPerRow_ + da.col) * ranks_ + da.rank) *
                    banks_ +
                da.bank;
        break;
    }
    return burst * burstSize_;
}

} // namespace dramctrl
