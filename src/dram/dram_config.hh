/**
 * @file
 * Configuration structures for the DRAM controller model.
 *
 * These are the knobs from Table I of the paper plus the memory
 * organisation and the pruned DRAM timing set from Section II-B.
 */

#ifndef DRAMCTRL_DRAM_DRAM_CONFIG_H
#define DRAMCTRL_DRAM_DRAM_CONFIG_H

#include <string>
#include <vector>

#include "sim/types.hh"

namespace dramctrl {

/**
 * Address decoding schemes (Table I). Letters from least significant
 * field upwards read right to left: e.g. RoRaBaCoCh decodes channel from
 * the lowest bits, then column, bank, rank, row.
 *
 * Channel bits are consumed by the crossbar's interleaved ranges before
 * the packet reaches a controller, so within the controller the mapping
 * orders only {row, rank, bank, column}.
 */
enum class AddrMapping {
    RoRaBaCoCh, ///< row:rank:bank:column:channel — page hits for
                ///< sequential streams (open-page friendly)
    RoRaBaChCo, ///< row:rank:bank:channel:column — page interleaving
                ///< across channels
    RoCoRaBaCh, ///< row:column:rank:bank:channel — maximum bank
                ///< parallelism (closed-page friendly)
};

/** Row buffer management policies (Section II-C). */
enum class PagePolicy {
    Open,           ///< leave row open until a bank conflict
    OpenAdaptive,   ///< close early when only conflicting accesses queue
    Closed,         ///< auto-precharge after every column access
    ClosedAdaptive, ///< auto-precharge unless row hits are queued
};

/** Request arbitration (Section II-C). */
enum class SchedPolicy {
    Fcfs,       ///< strict arrival order
    FrFcfs,     ///< first-ready FCFS: row hits first, then oldest-ready
    FrFcfsPrio, ///< FR-FCFS with per-requestor QoS priorities — an
                ///< example of the "more elaborate schedulers" the
                ///< paper's framework is designed to host
};

const char *toString(AddrMapping m);
const char *toString(PagePolicy p);
const char *toString(SchedPolicy s);

/**
 * Inverse of the toString()s above, for CLIs and repro files.
 * @return false when @p name matches no enumerator (@p out untouched).
 */
bool addrMappingFromString(const std::string &name, AddrMapping &out);
bool pagePolicyFromString(const std::string &name, PagePolicy &out);
bool schedPolicyFromString(const std::string &name, SchedPolicy &out);

/**
 * Memory organisation of one channel (Section II-A): geometry the
 * controller decodes addresses against. The channel data-bus width is
 * deviceBusWidth x devicesPerRank bits, and one DRAM burst moves
 * burstSize() bytes.
 */
struct DRAMOrg
{
    /** Beats per burst (BL). */
    unsigned burstLength = 8;
    /** Data pins per device. */
    unsigned deviceBusWidth = 8;
    /** Devices ganged into one rank. */
    unsigned devicesPerRank = 8;
    /** Ranks sharing this channel's busses. */
    unsigned ranksPerChannel = 1;
    /** Banks in each rank. */
    unsigned banksPerRank = 8;
    /**
     * Bank groups per rank (DDR4/HBM-generation devices). 1 models the
     * ungrouped DDR3-era organisation; values > 1 split the banks into
     * groups and arm the long/short timing distinction (tCCD_L/tCCD_S,
     * tRRD_L). Banks are numbered group-minor: group(bank) = bank %
     * bankGroupsPerRank, so consecutive bank numbers alternate groups
     * and bank-interleaved streams naturally enjoy the short timings.
     */
    unsigned bankGroupsPerRank = 1;
    /**
     * Pseudochannels per physical channel (HBM-generation stacks). The
     * controller always models ONE pseudochannel; this field is
     * organisational metadata the harness uses to instantiate
     * pseudoChannels controllers per physical channel and the address
     * decoder uses to size the interleave.
     */
    unsigned pseudoChannels = 1;
    /** Row-buffer (page) size per bank across the whole rank, bytes. */
    std::uint64_t rowBufferSize = 1024;
    /** Total channel capacity in bytes. */
    std::uint64_t channelCapacity = 256ULL * 1024 * 1024;

    /** Bytes moved by one burst on this channel. */
    std::uint64_t
    burstSize() const
    {
        return std::uint64_t(burstLength) * deviceBusWidth *
               devicesPerRank / 8;
    }

    /** Column positions (bursts) per row. */
    std::uint64_t
    burstsPerRow() const
    {
        return rowBufferSize / burstSize();
    }

    /** Rows per bank implied by the capacity. */
    std::uint64_t
    rowsPerBank() const
    {
        return channelCapacity /
               (rowBufferSize * banksPerRank * ranksPerChannel);
    }

    /** Total banks across all ranks. */
    unsigned
    totalBanks() const
    {
        return banksPerRank * ranksPerChannel;
    }

    /** True when the organisation has a real bank-group structure. */
    bool
    hasBankGroups() const
    {
        return bankGroupsPerRank > 1;
    }

    /** Banks in each bank group. */
    unsigned
    banksPerGroup() const
    {
        return banksPerRank / bankGroupsPerRank;
    }

    /** Bank group of a bank number (group-minor numbering). */
    unsigned
    bankGroup(unsigned bank) const
    {
        return bank % bankGroupsPerRank;
    }

    /** Validate internal consistency; calls fatal() on user error. */
    void check() const;
};

/**
 * The pruned DRAM timing set (Section II-B, Table IV). All values in
 * ticks. tXAW generalises tFAW/tTAW: at most activationLimit activates
 * may be issued in any rolling tXAW window.
 */
struct DRAMTiming
{
    Tick tCK = fromNs(1.5);      ///< interface clock period
    Tick tBURST = fromNs(6.0);   ///< data bus occupancy of one burst
    Tick tRCD = fromNs(13.75);   ///< activate to column command
    Tick tCL = fromNs(13.75);    ///< column command to first read data
    Tick tRP = fromNs(13.75);    ///< precharge to activate
    Tick tRAS = fromNs(35.0);    ///< activate to precharge (min)
    Tick tWR = fromNs(15.0);     ///< end of write data to precharge
    Tick tWTR = fromNs(7.5);     ///< end of write data to read command
    Tick tRTW = fromNs(2.5);     ///< extra read-to-write bus turnaround
    Tick tRRD = fromNs(6.25);    ///< activate to activate, any bank
    Tick tXAW = fromNs(40.0);    ///< rolling activation window
    Tick tREFI = fromUs(7.8);    ///< refresh interval
    Tick tRFC = fromNs(160.0);   ///< refresh cycle time
    unsigned activationLimit = 4; ///< activates allowed per tXAW window
                                  ///< (0 disables the constraint)

    /**
     * Bank-group timings (DDR4/HBM generations). All default to 0 =
     * "inherit the ungrouped value", so DDR3-era presets keep their
     * exact behaviour: tCCD_L and tCCD_S fall back to tBURST, tRRD_L
     * falls back to tRRD. tRRD itself keeps its historical role as the
     * short (cross-group) activate spacing.
     */
    Tick tCCD_L = 0; ///< column-to-column, same bank group
    Tick tCCD_S = 0; ///< column-to-column, different bank group
    Tick tRRD_L = 0; ///< activate-to-activate, same bank group
    /**
     * Same-bank (per-bank) refresh cycle time (LPDDR4 tRFCpb / HBM
     * REFsb). 0 = the device has no same-bank refresh mode. Presets
     * that set it arm the checker's REFpb blackout even without a
     * per-bank refresh-manager plugin.
     */
    Tick tRFCsb = 0;

    /** Same-group column spacing; tBURST when tCCD_L is unset. */
    Tick
    tCCDLong() const
    {
        return tCCD_L ? tCCD_L : tBURST;
    }

    /** Cross-group column spacing; tBURST when tCCD_S is unset. */
    Tick
    tCCDShort() const
    {
        return tCCD_S ? tCCD_S : tBURST;
    }

    /** Same-group activate spacing; tRRD when tRRD_L is unset. */
    Tick
    tRRDLong() const
    {
        return tRRD_L ? tRRD_L : tRRD;
    }

    /** Validate internal consistency; calls fatal() on user error. */
    void check() const;
};

/**
 * One entry of a controller plugin chain (see src/dram/plugin/). The
 * kind selects the plugin; the remaining fields parameterise it and
 * are only read by the matching kind:
 *
 *  "ecc"       ECC/EDC with seeded bit-error injection (ecc* fields)
 *  "prac"      PRAC-style activation-counting RowHammer mitigation
 *              (pracThreshold, tRFM)
 *  "refmgr"    all-bank refresh manager (the baseline refresh policy,
 *              routed through the plugin)
 *  "refmgr-pb" per-bank refresh manager (tRFCpb; event model only)
 */
struct PluginSpec
{
    std::string kind;

    /** ECC: data bits per codeword. */
    unsigned eccDataBits = 64;
    /** ECC: check bits per codeword. */
    unsigned eccCheckBits = 8;
    /** ECC: errors per codeword the code corrects (e.g. SEC = 1). */
    unsigned eccCorrectBits = 1;
    /** ECC: errors per codeword the code detects (e.g. DED = 2). */
    unsigned eccDetectBits = 2;
    /** ECC: raw bit error rate injected per stored bit. */
    double eccBer = 0.0;
    /** ECC: injection seed (deterministic per address/codeword). */
    std::uint64_t eccSeed = 1;

    /** PRAC: per-row activation count that raises the alert. */
    unsigned pracThreshold = 32;
    /** PRAC: bank busy time of one mitigation refresh (tRFM). */
    Tick tRFM = fromNs(80.0);

    /** Per-bank refresh: bank busy time of one REFpb (tRFCpb). */
    Tick tRFCpb = fromNs(60.0);
};

/**
 * Full controller configuration: Table I of the paper, plus the
 * organisation and timing of the attached DRAM.
 */
struct DRAMCtrlConfig
{
    DRAMOrg org;
    DRAMTiming timing;

    /** Number of read queue entries (bursts). */
    unsigned readBufferSize = 32;
    /** Number of write queue entries (bursts). */
    unsigned writeBufferSize = 64;
    /** Fraction of the write queue that forces a switch to writes. */
    double writeHighThreshold = 0.85;
    /** Fraction below which draining stops / idle draining starts. */
    double writeLowThreshold = 0.50;
    /** Minimum bursts drained once a write switch happens. */
    unsigned minWritesPerSwitch = 16;

    SchedPolicy schedPolicy = SchedPolicy::FrFcfs;
    AddrMapping addrMapping = AddrMapping::RoRaBaCoCh;
    PagePolicy pagePolicy = PagePolicy::Open;

    /** Static controller pipeline latency (Section II-B). */
    Tick frontendLatency = fromNs(10.0);
    /** Static PHY/IO latency (Section II-B). */
    Tick backendLatency = fromNs(10.0);

    /**
     * Cap on consecutive accesses serviced from one open row before the
     * scheduler moves on (starvation guard for FR-FCFS); 0 = unlimited.
     */
    unsigned maxAccessesPerRow = 16;

    /**
     * Model precharge power-down (an extension beyond the paper, which
     * lists low-power states as future work in Section II-G). When
     * enabled, the DRAM enters power-down after powerDownDelay of bus
     * idleness with all banks precharged; the first access afterwards
     * pays tXP, and the time spent powered down feeds the power model
     * (IDD2P instead of IDD2N).
     */
    bool enablePowerDown = false;
    /** Idle time before entering power-down. */
    Tick powerDownDelay = fromNs(50.0);
    /** Power-down exit latency (tXP). */
    Tick tXP = fromNs(6.0);

    /**
     * Model self-refresh: after selfRefreshDelay of power-down the
     * device transitions to self-refresh (it refreshes itself, the
     * controller stops issuing REF, background current drops to IDD6)
     * and the next access pays the slower tXS exit. Requires
     * enablePowerDown.
     */
    bool enableSelfRefresh = false;
    /** Power-down time before the self-refresh transition. */
    Tick selfRefreshDelay = fromUs(1.0);
    /** Self-refresh exit latency (tXS, roughly tRFC + margin). */
    Tick tXS = fromNs(170.0);

    /**
     * QoS priorities for SchedPolicy::FrFcfsPrio, indexed by
     * RequestorId; higher wins. Requestors beyond the vector's size
     * (and everyone, under the other policies) get priority 0.
     */
    std::vector<unsigned> requestorPriorities;

    /**
     * Device temperature in Celsius (an extension along the paper's
     * closing future-work note about refresh-rate vs temperature).
     * JEDEC halves the refresh interval for each step above the
     * standard 85C rating: the effective tREFI is
     * tREFI / 2^ceil((T - 85) / 10) for T > 85, unchanged otherwise.
     */
    double temperatureC = 85.0;

    /** Effective refresh interval at the configured temperature. */
    Tick effectiveREFI() const;

    /**
     * Refresh ranks independently, staggered by tREFI/ranks, instead
     * of the paper's controller-wide refresh. Other ranks keep
     * serving while one refreshes — the standard multi-rank
     * optimisation (event model only; the cycle comparator always
     * refreshes controller-wide, like DRAMSim2).
     */
    bool perRankRefresh = false;

    /**
     * Ordered plugin chain layered onto the controller (hooks at
     * request enqueue, command issue, command completion, and stats
     * dump — see src/dram/plugin/ and docs/PLUGINS.md). Order is the
     * dispatch order. At most one entry per kind and at most one
     * refresh manager ("refmgr"/"refmgr-pb") are allowed.
     */
    std::vector<PluginSpec> plugins;

    /** First plugin of @p kind in the chain, or nullptr. */
    const PluginSpec *findPlugin(const std::string &kind) const;

    /** True when the chain contains a plugin of @p kind. */
    bool
    hasPlugin(const std::string &kind) const
    {
        return findPlugin(kind) != nullptr;
    }

    /** Validate internal consistency; calls fatal() on user error. */
    void check() const;

    /**
     * Human-readable summary of every knob (the gem5 config.ini
     * analogue), for logs and reproducibility records.
     */
    std::string describe() const;
};

} // namespace dramctrl

#endif // DRAMCTRL_DRAM_DRAM_CONFIG_H
