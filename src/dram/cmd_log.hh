/**
 * @file
 * DRAM command logging.
 *
 * Both controller models can emit the explicit command stream they
 * imply — ACT, PRE, RD, WR, REF with launch ticks and coordinates.
 * The event-based model never materialises these commands at run time
 * (that is the point of Section II-D); the log reconstructs them from
 * its analytic timing computations, which lets the ProtocolChecker
 * audit that the pruned model still honours the full JEDEC constraint
 * set.
 */

#ifndef DRAMCTRL_DRAM_CMD_LOG_H
#define DRAMCTRL_DRAM_CMD_LOG_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace dramctrl {

enum class DRAMCmd : std::uint8_t {
    Act,
    Pre,
    Rd,
    Wr,
    Ref,   ///< all-bank (rank-wide) refresh
    RefPb, ///< per-bank refresh (one bank of one rank)
    RefM,  ///< RowHammer mitigation refresh (PRAC-style, one bank)
};

const char *toString(DRAMCmd cmd);

/** One DRAM command as launched on the command bus. */
struct CmdRecord
{
    /** Launch tick of the command. */
    Tick tick = 0;
    DRAMCmd cmd = DRAMCmd::Act;
    unsigned rank = 0;
    /** Bank within the rank; unused for REF (rank-wide). */
    unsigned bank = 0;
    /** Row for ACT; unused otherwise. */
    std::uint64_t row = 0;

    std::string toString() const;
};

/**
 * Destination for a live command stream. Implemented by the online
 * ProtocolChecker (and anything else that wants to audit or count
 * commands as they are issued, without buffering the whole log).
 */
class CmdSink
{
  public:
    virtual ~CmdSink() = default;

    /** One command, in emission order (may be out of tick order). */
    virtual void onCmdRecord(const CmdRecord &rec) = 0;
};

/**
 * Collects command records. Controllers may emit records out of tick
 * order (the event model computes future launch times analytically),
 * so consumers sort first.
 *
 * The in-memory log is unbounded by default; long runs can cap it with
 * setMaxRecords() (excess records are counted in dropped(), not
 * stored) or divert the stream to a file with streamTo(), which keeps
 * nothing in memory. totalRecorded() always counts every record seen.
 *
 * An attached CmdSink receives every record as it is emitted,
 * independent of storage — combine setSink() with setMaxRecords(0)
 * for a pure streaming audit that keeps nothing in memory.
 */
class CmdLogger
{
  public:
    void
    record(Tick tick, DRAMCmd cmd, unsigned rank, unsigned bank,
           std::uint64_t row = 0)
    {
        ++totalRecorded_;
        if (sink_ != nullptr)
            sink_->onCmdRecord(CmdRecord{tick, cmd, rank, bank, row});
        if (streaming_ || log_.size() >= maxRecords_) {
            recordSlow(CmdRecord{tick, cmd, rank, bank, row});
            return;
        }
        log_.push_back(CmdRecord{tick, cmd, rank, bank, row});
    }

    /** Attach a live sink (nullptr detaches). Not owned. */
    void setSink(CmdSink *sink) { sink_ = sink; }
    CmdSink *sink() const { return sink_; }

    const std::vector<CmdRecord> &log() const { return log_; }
    void clear();
    std::size_t size() const { return log_.size(); }

    /**
     * Cap the in-memory log at @p max records; further records are
     * dropped (and counted). Existing excess records are not trimmed.
     */
    void setMaxRecords(std::size_t max) { maxRecords_ = max; }
    std::size_t maxRecords() const { return maxRecords_; }

    /** Records seen since construction/clear, stored or not. */
    std::uint64_t totalRecorded() const { return totalRecorded_; }

    /** Records discarded by the setMaxRecords() cap. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Stream records to @p path (one line each, "tick cmd rank bank
     * row") instead of keeping them in memory. Any records already
     * collected are flushed to the file first.
     *
     * @return false if the file could not be opened.
     */
    bool streamTo(const std::string &path);

    bool streaming() const { return streaming_; }

  private:
    /** Cold path: streaming or at the cap. */
    void recordSlow(const CmdRecord &rec);

    std::vector<CmdRecord> log_;
    std::size_t maxRecords_ = SIZE_MAX;
    std::uint64_t totalRecorded_ = 0;
    std::uint64_t dropped_ = 0;
    bool streaming_ = false;
    std::ofstream stream_;
    CmdSink *sink_ = nullptr;
};

} // namespace dramctrl

#endif // DRAMCTRL_DRAM_CMD_LOG_H
