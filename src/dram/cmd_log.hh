/**
 * @file
 * DRAM command logging.
 *
 * Both controller models can emit the explicit command stream they
 * imply — ACT, PRE, RD, WR, REF with launch ticks and coordinates.
 * The event-based model never materialises these commands at run time
 * (that is the point of Section II-D); the log reconstructs them from
 * its analytic timing computations, which lets the ProtocolChecker
 * audit that the pruned model still honours the full JEDEC constraint
 * set.
 */

#ifndef DRAMCTRL_DRAM_CMD_LOG_H
#define DRAMCTRL_DRAM_CMD_LOG_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace dramctrl {

enum class DRAMCmd : std::uint8_t { Act, Pre, Rd, Wr, Ref };

const char *toString(DRAMCmd cmd);

/** One DRAM command as launched on the command bus. */
struct CmdRecord
{
    /** Launch tick of the command. */
    Tick tick = 0;
    DRAMCmd cmd = DRAMCmd::Act;
    unsigned rank = 0;
    /** Bank within the rank; unused for REF (rank-wide). */
    unsigned bank = 0;
    /** Row for ACT; unused otherwise. */
    std::uint64_t row = 0;

    std::string toString() const;
};

/**
 * Collects command records. Controllers may emit records out of tick
 * order (the event model computes future launch times analytically),
 * so consumers sort first.
 */
class CmdLogger
{
  public:
    void
    record(Tick tick, DRAMCmd cmd, unsigned rank, unsigned bank,
           std::uint64_t row = 0)
    {
        log_.push_back(CmdRecord{tick, cmd, rank, bank, row});
    }

    const std::vector<CmdRecord> &log() const { return log_; }
    void clear() { log_.clear(); }
    std::size_t size() const { return log_.size(); }

  private:
    std::vector<CmdRecord> log_;
};

} // namespace dramctrl

#endif // DRAMCTRL_DRAM_CMD_LOG_H
