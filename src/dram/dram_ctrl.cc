#include "dram/dram_ctrl.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ckpt/ckpt.hh"
#include "obs/chrome_trace.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace dramctrl {

DRAMCtrl::CtrlStats::CtrlStats(DRAMCtrl &ctrl)
    : readReqs(&ctrl.statGroup(), "readReqs",
               "read requests accepted"),
      writeReqs(&ctrl.statGroup(), "writeReqs",
                "write requests accepted"),
      readBursts(&ctrl.statGroup(), "readBursts",
                 "read bursts (including write-queue hits)"),
      writeBursts(&ctrl.statGroup(), "writeBursts",
                  "write bursts (including merged)"),
      servicedByWrQ(&ctrl.statGroup(), "servicedByWrQ",
                    "read bursts forwarded from the write queue"),
      mergedWrBursts(&ctrl.statGroup(), "mergedWrBursts",
                     "write bursts merged into queued bursts"),
      readRowHits(&ctrl.statGroup(), "readRowHits",
                  "read bursts that hit an open row"),
      writeRowHits(&ctrl.statGroup(), "writeRowHits",
                   "write bursts that hit an open row"),
      numActs(&ctrl.statGroup(), "numActs", "activate commands"),
      numPrecharges(&ctrl.statGroup(), "numPrecharges",
                    "precharge commands"),
      numRefreshes(&ctrl.statGroup(), "numRefreshes",
                   "refresh commands"),
      bytesRead(&ctrl.statGroup(), "bytesRead",
                "bytes moved by read bursts"),
      bytesWritten(&ctrl.statGroup(), "bytesWritten",
                   "bytes moved by write bursts"),
      numRdRetry(&ctrl.statGroup(), "numRdRetry",
                 "reads refused on a full read queue"),
      numWrRetry(&ctrl.statGroup(), "numWrRetry",
                 "writes refused on a full write queue"),
      totQLat(&ctrl.statGroup(), "totQLat",
              "total read-burst queueing time (ticks)"),
      totSvcLat(&ctrl.statGroup(), "totSvcLat",
                "total read-burst service time (ticks)"),
      totMemAccLat(&ctrl.statGroup(), "totMemAccLat",
                   "total read-burst access time (ticks)"),
      prechargeAllTime(&ctrl.statGroup(), "prechargeAllTime",
                       "time with every bank precharged (ticks)"),
      powerDownTime(&ctrl.statGroup(), "powerDownTime",
                    "time in precharge power-down (ticks)"),
      powerDownEntries(&ctrl.statGroup(), "powerDownEntries",
                       "power-down entries"),
      selfRefreshTime(&ctrl.statGroup(), "selfRefreshTime",
                      "time in self-refresh (ticks)"),
      selfRefreshEntries(&ctrl.statGroup(), "selfRefreshEntries",
                         "self-refresh entries"),
      rdQOccupancyTicks(&ctrl.statGroup(), "rdQOccupancyTicks",
                        "time-weighted read queue occupancy"),
      wrQOccupancyTicks(&ctrl.statGroup(), "wrQOccupancyTicks",
                        "time-weighted write queue occupancy"),
      rdPerTurnAround(&ctrl.statGroup(), "rdPerTurnAround",
                      "reads serviced per bus turnaround"),
      wrPerTurnAround(&ctrl.statGroup(), "wrPerTurnAround",
                      "writes drained per write episode"),
      readLatencyHist(&ctrl.statGroup(), "readLatencyHist",
                      "controller read latency distribution (ns)", 48),
      lat(&ctrl.statGroup(), "lat", "read"),
      perBankRdBursts(&ctrl.statGroup(), "perBankRdBursts",
                      "read bursts per bank",
                      ctrl.cfg_.org.totalBanks()),
      perBankWrBursts(&ctrl.statGroup(), "perBankWrBursts",
                      "write bursts per bank",
                      ctrl.cfg_.org.totalBanks()),
      rowHitRate(&ctrl.statGroup(), "rowHitRate",
                 "fraction of DRAM bursts hitting an open row",
                 [this] {
                     double serviced = readBursts.value() -
                                       servicedByWrQ.value() +
                                       writeBursts.value() -
                                       mergedWrBursts.value();
                     return serviced > 0 ? (readRowHits.value() +
                                            writeRowHits.value()) /
                                               serviced
                                         : 0.0;
                 }),
      busUtil(&ctrl.statGroup(), "busUtil",
              "data bus utilisation, both directions",
              [&ctrl] { return ctrl.busUtilisation(); }),
      busUtilRead(&ctrl.statGroup(), "busUtilRead",
                  "data bus utilisation by reads",
                  [this, &ctrl] {
                      double w = toSeconds(ctrl.curTick() -
                                           ctrl.windowStart_);
                      return w > 0 ? bytesRead.value() / 1e9 /
                                         ctrl.peakBandwidthGBs() / w
                                   : 0.0;
                  }),
      busUtilWrite(&ctrl.statGroup(), "busUtilWrite",
                   "data bus utilisation by writes",
                   [this, &ctrl] {
                       double w = toSeconds(ctrl.curTick() -
                                            ctrl.windowStart_);
                       return w > 0 ? bytesWritten.value() / 1e9 /
                                          ctrl.peakBandwidthGBs() / w
                                    : 0.0;
                   }),
      avgRdQLen(&ctrl.statGroup(), "avgRdQLen",
                "time-weighted average read queue length",
                [this, &ctrl] {
                    double w = static_cast<double>(
                        ctrl.curTick() - ctrl.windowStart_);
                    return w > 0 ? rdQOccupancyTicks.value() / w : 0.0;
                }),
      avgWrQLen(&ctrl.statGroup(), "avgWrQLen",
                "time-weighted average write queue length",
                [this, &ctrl] {
                    double w = static_cast<double>(
                        ctrl.curTick() - ctrl.windowStart_);
                    return w > 0 ? wrQOccupancyTicks.value() / w : 0.0;
                }),
      avgQLatNs(&ctrl.statGroup(), "avgQLatNs",
                "average read-burst queueing latency (ns)",
                [this] {
                    double n = readBursts.value() - servicedByWrQ.value();
                    return n > 0 ? toNs(static_cast<Tick>(
                                       totQLat.value())) / n
                                 : 0.0;
                }),
      avgMemAccLatNs(&ctrl.statGroup(), "avgMemAccLatNs",
                     "average read-burst access latency (ns)",
                     [this] {
                         double n = readBursts.value() -
                                    servicedByWrQ.value();
                         return n > 0 ? toNs(static_cast<Tick>(
                                            totMemAccLat.value())) / n
                                      : 0.0;
                     }),
      avgRdBWGBs(&ctrl.statGroup(), "avgRdBWGBs",
                 "achieved read bandwidth (GByte/s)",
                 [this, &ctrl] {
                     double w = toSeconds(ctrl.curTick() -
                                          ctrl.windowStart_);
                     return w > 0 ? bytesRead.value() / 1e9 / w : 0.0;
                 }),
      avgWrBWGBs(&ctrl.statGroup(), "avgWrBWGBs",
                 "achieved write bandwidth (GByte/s)",
                 [this, &ctrl] {
                     double w = toSeconds(ctrl.curTick() -
                                          ctrl.windowStart_);
                     return w > 0 ? bytesWritten.value() / 1e9 / w : 0.0;
                 }),
      peakBWGBs(&ctrl.statGroup(), "peakBWGBs",
                "theoretical peak bandwidth (GByte/s)",
                [&ctrl] { return ctrl.peakBandwidthGBs(); })
{
}

DRAMCtrl::DRAMCtrl(Simulator &sim, std::string name,
                   DRAMCtrlConfig config, AddrRange range)
    : MemCtrlBase(sim, std::move(name)), cfg_(config), range_(range),
      decoder_(cfg_.org, cfg_.addrMapping),
      port_(this->name() + ".port", *this),
      respQueue_(this->eventq(), port_, this->name() + ".respQueue"),
      nextReqEvent_([this] { processNextReqEvent(); },
                    this->name() + ".nextReqEvent"),
      refreshEvent_([this] { processRefreshEvent(); },
                    this->name() + ".refreshEvent",
                    Event::kRefreshPriority)
{
    cfg_.check();

    if (range_.localSize() != cfg_.org.channelCapacity)
        fatal("controller '%s': address range provides %llu bytes but "
              "the DRAM organisation has %llu",
              this->name().c_str(),
              static_cast<unsigned long long>(range_.localSize()),
              static_cast<unsigned long long>(cfg_.org.channelCapacity));

    ranks_.resize(cfg_.org.ranksPerChannel);
    for (Rank &rank : ranks_)
        rank.actWindow.init(cfg_.timing.activationLimit);

    const unsigned total_banks = cfg_.org.totalBanks();
    bankOpenRow_.assign(total_banks, kNoRow);
    bankPreAllowedAt_.assign(total_banks, 0);
    bankActAllowedAt_.assign(total_banks, 0);
    bankColAllowedAt_.assign(total_banks, 0);
    bankRowAccesses_.assign(total_banks, 0);
    hasBankGroups_ = cfg_.org.hasBankGroups();
    if (hasBankGroups_) {
        const unsigned total_groups =
            cfg_.org.ranksPerChannel * cfg_.org.bankGroupsPerRank;
        grpColAllowedAt_.assign(total_groups, 0);
        grpNextActAt_.assign(total_groups, 0);
    }
    readyCache_.resize(total_banks);
    bankGen_.assign(total_banks, 0);
    rankGen_.assign(cfg_.org.ranksPerChannel, 0);
    rdRowHitCounts_.assign(total_banks, 0);
    wrRowHitCounts_.assign(total_banks, 0);
    rdBankCounts_.assign(total_banks, 0);
    wrBankCounts_.assign(total_banks, 0);
    starvedHits_.assign(total_banks, 0);
    for (unsigned p : cfg_.requestorPriorities)
        maxReqPriority_ = std::max(maxReqPriority_, p);

    // All steady-state queue traffic stays within these reservations.
    readQueue_.reserve(cfg_.readBufferSize);
    writeQueue_.reserve(cfg_.writeBufferSize);
    rdKeys_.reserve(cfg_.readBufferSize);
    wrKeys_.reserve(cfg_.writeBufferSize);

    plugins_ = plugin::buildChain(cfg_, statGroup(), false,
                                  this->name());
    refMgr_ = plugins_.refreshManager();
    pracPlugin_ = plugins_.prac();

    stats_ = std::make_unique<CtrlStats>(*this);
    statGroup().onDump([this] { plugins_.onStatsDump(); });
    statGroup().onReset([this] {
        windowStart_ = curTick();
        // A fresh window starts from the current (unknown-split) state;
        // treat "now" as the precharge-accounting origin.
        allBanksPreSince_ = curTick();
        lastQStatUpdate_ = curTick();
    });
}

DRAMCtrl::~DRAMCtrl()
{
    if (nextReqEvent_.scheduled())
        deschedule(nextReqEvent_);
    if (refreshEvent_.scheduled())
        deschedule(refreshEvent_);

    std::unordered_set<BurstHelper *> helpers;
    std::unordered_set<Packet *> unanswered;
    for (DRAMPacket *dp : readQueue_) {
        if (dp->burstHelper)
            helpers.insert(dp->burstHelper);
        if (dp->pkt)
            unanswered.insert(dp->pkt);
        delete dp;
    }
    for (DRAMPacket *dp : writeQueue_)
        delete dp;
    for (BurstHelper *h : helpers)
        delete h;
    for (Packet *pkt : unanswered) {
        while (pkt->senderState() != nullptr)
            delete pkt->popSenderState();
        delete pkt;
    }
}

void
DRAMCtrl::startup()
{
    windowStart_ = curTick();
    allBanksPreSince_ = curTick();
    lastQStatUpdate_ = curTick();
    if (cfg_.timing.tREFI > 0) {
        Tick refi = cfg_.effectiveREFI();
        if (refMgr_ && refMgr_->perBank()) {
            // The per-bank manager replaces the all-bank schedule:
            // one REFpb per rank every tREFI / banksPerRank.
            nextRefreshAt_ = curTick() + refMgr_->interval(cfg_);
            schedule(refreshEvent_, nextRefreshAt_);
        } else if (cfg_.perRankRefresh) {
            // Stagger the ranks across the interval.
            rankRefreshDue_.resize(ranks_.size());
            for (std::size_t r = 0; r < ranks_.size(); ++r)
                rankRefreshDue_[r] =
                    curTick() + refi * (r + 1) / ranks_.size();
            schedule(refreshEvent_,
                     *std::min_element(rankRefreshDue_.begin(),
                                       rankRefreshDue_.end()));
        } else {
            nextRefreshAt_ = curTick() + refi;
            schedule(refreshEvent_, nextRefreshAt_);
        }
    }
}

void
DRAMCtrl::serialize(ckpt::CkptOut &out) const
{
    ckpt::putCheck(out, "cfgHash", ckpt::fnv1a(cfg_.describe()));

    // Bank timing state is already flat rank-major struct-of-arrays,
    // the exact layout the checkpoint format records.
    std::vector<std::uint64_t> next_act;
    for (const Rank &rank : ranks_)
        next_act.push_back(rank.nextActAt);
    out.putU64Vec("bank.openRow", bankOpenRow_);
    out.putU64Vec("bank.preAllowedAt", bankPreAllowedAt_);
    out.putU64Vec("bank.actAllowedAt", bankActAllowedAt_);
    out.putU64Vec("bank.colAllowedAt", bankColAllowedAt_);
    out.putU64Vec("bank.rowAccesses",
                  std::vector<std::uint64_t>(bankRowAccesses_.begin(),
                                             bankRowAccesses_.end()));
    out.putU64Vec("rank.nextActAt", next_act);
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        std::vector<std::uint64_t> window;
        for (std::size_t i = 0; i < ranks_[r].actWindow.size(); ++i)
            window.push_back(ranks_[r].actWindow[i]);
        out.putU64Vec("rank.actWindow" + std::to_string(r), window);
    }
    out.putU64Vec("starvedHits",
                  std::vector<std::uint64_t>(starvedHits_.begin(),
                                             starvedHits_.end()));
    if (hasBankGroups_) {
        // Bank-group lanes only exist for grouped organisations; the
        // keys are absent from (and never read out of) legacy
        // checkpoints, which keeps old files restorable.
        out.putU64Vec("grp.colAllowedAt", grpColAllowedAt_);
        out.putU64Vec("grp.nextActAt", grpNextActAt_);
        out.putTick("nextColAllowedAt", nextColAllowedAt_);
    }

    // Unique system packets and burst helpers the read queue refers
    // to; queue entries reference them by index (0 = none). Parked
    // writes were answered on acceptance and carry neither.
    std::vector<const Packet *> pkts;
    std::unordered_map<const Packet *, std::uint64_t> pkt_idx;
    std::vector<const BurstHelper *> helpers;
    std::unordered_map<const BurstHelper *, std::uint64_t> helper_idx;
    for (const DRAMPacket *dp : readQueue_) {
        if (dp->pkt != nullptr && pkt_idx.emplace(
                dp->pkt, pkts.size() + 1).second)
            pkts.push_back(dp->pkt);
        if (dp->burstHelper != nullptr && helper_idx.emplace(
                dp->burstHelper, helpers.size() + 1).second)
            helpers.push_back(dp->burstHelper);
    }
    out.putU64("pkts.count", pkts.size());
    for (std::size_t i = 0; i < pkts.size(); ++i)
        out.putPacket("pkts." + std::to_string(i), pkts[i]);
    out.putU64("helpers.count", helpers.size());
    for (std::size_t i = 0; i < helpers.size(); ++i)
        out.putU64Vec("helpers." + std::to_string(i),
                      {helpers[i]->burstCount,
                       helpers[i]->burstsServiced});

    auto save_queue = [&](const char *prefix,
                          const std::vector<DRAMPacket *> &queue) {
        out.putU64(std::string(prefix) + ".count", queue.size());
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const DRAMPacket *dp = queue[i];
            out.putU64Vec(
                std::string(prefix) + "." + std::to_string(i),
                {dp->entryTime, dp->readyTime,
                 dp->isRead ? std::uint64_t(1) : 0, dp->requestorId,
                 dp->rank, dp->bank, dp->row, dp->col, dp->burstAddr,
                 dp->lo, dp->hi,
                 dp->pkt != nullptr ? pkt_idx.at(dp->pkt) : 0,
                 dp->burstHelper != nullptr
                     ? helper_idx.at(dp->burstHelper)
                     : 0});
        }
    };
    save_queue("rq", readQueue_);
    save_queue("wq", writeQueue_);

    out.putU64("maxReqPriority", maxReqPriority_);
    out.putBool("busStateWrite", busState_ == BusState::Write);
    out.putTick("busBusyUntil", busBusyUntil_);
    out.putTick("nextReqTime", nextReqTime_);
    out.putTick("nextRdCmdAt", nextRdCmdAt_);
    out.putTick("nextWrDataAt", nextWrDataAt_);
    out.putBool("lastBurstWasRead", lastBurstWasRead_);
    out.putU64("readsThisTime", readsThisTime_);
    out.putU64("writesThisTime", writesThisTime_);
    out.putBool("retryReq", retryReq_);
    out.putTick("nextRefreshAt", nextRefreshAt_);
    out.putU64Vec("rankRefreshDue",
                  std::vector<std::uint64_t>(rankRefreshDue_.begin(),
                                             rankRefreshDue_.end()));
    out.putTick("refNotBefore", refNotBefore_);
    out.putTick("poweredDownAt", poweredDownAt_);
    out.putTick("wakeConstraint", wakeConstraint_);
    out.putU64("numBanksActive", numBanksActive_);
    out.putTick("allBanksPreSince", allBanksPreSince_);
    out.putTick("windowStart", windowStart_);
    out.putTick("lastQStatUpdate", lastQStatUpdate_);

    respQueue_.serialize(out);
    out.putEvent("nextReqEvent", eventq(), nextReqEvent_);
    out.putEvent("refreshEvent", eventq(), refreshEvent_);

    plugins_.serialize(out);
}

void
DRAMCtrl::unserialize(ckpt::CkptIn &in)
{
    ckpt::verifyCheck(in, "cfgHash", ckpt::fnv1a(cfg_.describe()),
                      "DRAM controller configuration");
    DC_ASSERT(readQueue_.empty() && writeQueue_.empty(),
              "restore into a non-empty controller");

    const unsigned total_banks = cfg_.org.totalBanks();
    const auto &open_row = in.getU64Vec("bank.openRow");
    const auto &pre_at = in.getU64Vec("bank.preAllowedAt");
    const auto &act_at = in.getU64Vec("bank.actAllowedAt");
    const auto &col_at = in.getU64Vec("bank.colAllowedAt");
    const auto &row_acc = in.getU64Vec("bank.rowAccesses");
    if (open_row.size() != total_banks)
        fatal("checkpoint controller '%s' covers %zu banks, this one "
              "has %u", name().c_str(), open_row.size(), total_banks);
    const auto &next_act = in.getU64Vec("rank.nextActAt");
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        Rank &rank = ranks_[r];
        rank.nextActAt = next_act.at(r);
        const auto &window =
            in.getU64Vec("rank.actWindow" + std::to_string(r));
        rank.actWindow.clear();
        for (std::uint64_t t : window)
            rank.actWindow.push_back(t);
    }
    for (unsigned flat = 0; flat < total_banks; ++flat) {
        bankOpenRow_[flat] = open_row[flat];
        bankPreAllowedAt_[flat] = pre_at.at(flat);
        bankActAllowedAt_[flat] = act_at.at(flat);
        bankColAllowedAt_[flat] = col_at.at(flat);
        bankRowAccesses_[flat] =
            static_cast<std::uint32_t>(row_acc.at(flat));
    }
    const auto &starved = in.getU64Vec("starvedHits");
    if (starved.size() != starvedHits_.size())
        fatal("checkpoint controller '%s': starvation map size "
              "mismatch", name().c_str());
    for (std::size_t i = 0; i < starved.size(); ++i)
        starvedHits_[i] = static_cast<std::uint8_t>(starved[i]);
    if (hasBankGroups_) {
        const auto &grp_col = in.getU64Vec("grp.colAllowedAt");
        const auto &grp_act = in.getU64Vec("grp.nextActAt");
        if (grp_col.size() != grpColAllowedAt_.size() ||
            grp_act.size() != grpNextActAt_.size())
            fatal("checkpoint controller '%s': bank-group lane size "
                  "mismatch", name().c_str());
        grpColAllowedAt_ = grp_col;
        grpNextActAt_ = grp_act;
        nextColAllowedAt_ = in.getTick("nextColAllowedAt");
    }

    std::vector<Packet *> pkts;
    std::size_t pkt_count = in.getU64("pkts.count");
    for (std::size_t i = 0; i < pkt_count; ++i)
        pkts.push_back(in.getPacket("pkts." + std::to_string(i)));
    std::vector<BurstHelper *> helpers;
    std::size_t helper_count = in.getU64("helpers.count");
    for (std::size_t i = 0; i < helper_count; ++i) {
        const auto &h =
            in.getU64Vec("helpers." + std::to_string(i));
        if (h.size() != 2)
            fatal("checkpoint controller '%s': malformed burst "
                  "helper %zu", name().c_str(), i);
        auto *helper =
            new BurstHelper(static_cast<unsigned>(h[0]));
        helper->burstsServiced = static_cast<unsigned>(h[1]);
        helpers.push_back(helper);
    }

    auto load_queue = [&](const char *prefix,
                          std::vector<DRAMPacket *> &queue) {
        std::size_t count =
            in.getU64(std::string(prefix) + ".count");
        for (std::size_t i = 0; i < count; ++i) {
            const auto &f = in.getU64Vec(std::string(prefix) + "." +
                                         std::to_string(i));
            if (f.size() != 13)
                fatal("checkpoint controller '%s': malformed queue "
                      "entry %s.%zu", name().c_str(), prefix, i);
            auto *dp = new DRAMPacket;
            dp->entryTime = f[0];
            dp->readyTime = f[1];
            dp->isRead = f[2] != 0;
            dp->requestorId = static_cast<RequestorId>(f[3]);
            dp->rank = static_cast<unsigned>(f[4]);
            dp->bank = static_cast<unsigned>(f[5]);
            dp->row = f[6];
            dp->col = f[7];
            dp->burstAddr = f[8];
            dp->lo = f[9];
            dp->hi = f[10];
            dp->pkt = f[11] != 0 ? pkts.at(f[11] - 1) : nullptr;
            dp->burstHelper =
                f[12] != 0 ? helpers.at(f[12] - 1) : nullptr;
            queue.push_back(dp);
            // Replaying the enqueue bookkeeping against the restored
            // bank state rebuilds the packed key arrays and the
            // incremental row-hit/bank counters exactly.
            noteEnqueued(*dp, dp->isRead);
        }
    };
    load_queue("rq", readQueue_);
    load_queue("wq", writeQueue_);

    maxReqPriority_ =
        static_cast<unsigned>(in.getU64("maxReqPriority"));
    busState_ = in.getBool("busStateWrite") ? BusState::Write
                                            : BusState::Read;
    busBusyUntil_ = in.getTick("busBusyUntil");
    nextReqTime_ = in.getTick("nextReqTime");
    nextRdCmdAt_ = in.getTick("nextRdCmdAt");
    nextWrDataAt_ = in.getTick("nextWrDataAt");
    lastBurstWasRead_ = in.getBool("lastBurstWasRead");
    readsThisTime_ =
        static_cast<unsigned>(in.getU64("readsThisTime"));
    writesThisTime_ =
        static_cast<unsigned>(in.getU64("writesThisTime"));
    retryReq_ = in.getBool("retryReq");
    nextRefreshAt_ = in.getTick("nextRefreshAt");
    const auto &due = in.getU64Vec("rankRefreshDue");
    rankRefreshDue_.assign(due.begin(), due.end());
    refNotBefore_ = in.getTick("refNotBefore");
    poweredDownAt_ = in.getTick("poweredDownAt");
    wakeConstraint_ = in.getTick("wakeConstraint");
    numBanksActive_ =
        static_cast<unsigned>(in.getU64("numBanksActive"));
    allBanksPreSince_ = in.getTick("allBanksPreSince");
    windowStart_ = in.getTick("windowStart");
    lastQStatUpdate_ = in.getTick("lastQStatUpdate");

    respQueue_.unserialize(in);
    in.getEvent("nextReqEvent", eventq(), nextReqEvent_);
    in.getEvent("refreshEvent", eventq(), refreshEvent_);

    plugins_.unserialize(in);
}

bool
DRAMCtrl::idle() const
{
    // Parked writes have already been acknowledged (early write
    // response), so only unanswered reads count as outstanding work.
    return readQueue_.empty() && respQueue_.empty();
}

double
DRAMCtrl::peakBandwidthGBs() const
{
    return static_cast<double>(cfg_.org.burstSize()) /
           toSeconds(cfg_.timing.tBURST) / 1e9;
}

double
DRAMCtrl::busUtilisation() const
{
    double w = toSeconds(curTick() - windowStart_);
    if (w <= 0)
        return 0.0;
    return (stats_->bytesRead.value() + stats_->bytesWritten.value()) /
           1e9 / peakBandwidthGBs() / w;
}

PowerInputs
DRAMCtrl::powerInputs() const
{
    PowerInputs in;
    in.window = curTick() - windowStart_;
    in.numActs = stats_->numActs.value();
    in.numPrecharges = stats_->numPrecharges.value();
    in.numRefreshes = stats_->numRefreshes.value();
    in.readBursts =
        stats_->bytesRead.value() /
        static_cast<double>(cfg_.org.burstSize());
    in.writeBursts =
        stats_->bytesWritten.value() /
        static_cast<double>(cfg_.org.burstSize());
    in.prechargeAllTime = static_cast<Tick>(
        stats_->prechargeAllTime.value());
    in.powerDownTime =
        static_cast<Tick>(stats_->powerDownTime.value());
    in.selfRefreshTime =
        static_cast<Tick>(stats_->selfRefreshTime.value());
    double w = toSeconds(in.window);
    if (w > 0) {
        double peak_bytes = peakBandwidthGBs() * 1e9;
        in.readBusFraction = stats_->bytesRead.value() / peak_bytes / w;
        in.writeBusFraction =
            stats_->bytesWritten.value() / peak_bytes / w;
    }
    return in;
}

double
DRAMCtrl::achievedBandwidthGBs() const
{
    double w = toSeconds(curTick() - windowStart_);
    if (w <= 0)
        return 0.0;
    return (stats_->bytesRead.value() + stats_->bytesWritten.value()) /
           1e9 / w;
}

unsigned
DRAMCtrl::burstCountFor(Addr local_addr, unsigned size) const
{
    std::uint64_t burst_size = cfg_.org.burstSize();
    Addr first = local_addr / burst_size;
    Addr last = (local_addr + size - 1) / burst_size;
    return static_cast<unsigned>(last - first + 1);
}

DRAMCtrl::DRAMPacket *
DRAMCtrl::makeDRAMPacket(Packet *pkt, Addr lo, Addr hi,
                         bool is_read) const
{
    auto *dp = new DRAMPacket;
    dp->pkt = pkt;
    dp->isRead = is_read;
    if (pkt != nullptr)
        dp->requestorId = pkt->requestorId();
    dp->lo = lo;
    dp->hi = hi;
    dp->burstAddr = decoder_.burstAlign(lo);
    DRAMAddr da = decoder_.decode(dp->burstAddr);
    dp->rank = da.rank;
    dp->bank = da.bank;
    dp->row = da.row;
    dp->col = da.col;
    return dp;
}

void
DRAMCtrl::armPowerDown()
{
    if (!cfg_.enablePowerDown || poweredDownAt_ != kMaxTick)
        return;

    // Precharge power-down requires all banks closed; include the time
    // to close any open rows in the entry point. The rows themselves
    // are only given up if the power-down is later confirmed (see
    // exitPowerDown), so a request arriving inside the delay window
    // still enjoys its open pages.
    Tick entry = std::max(curTick(), busBusyUntil_);
    for (std::size_t flat = 0; flat < bankOpenRow_.size(); ++flat) {
        if (bankOpenRow_[flat] != kNoRow)
            entry = std::max(entry,
                             std::max(curTick(),
                                      bankPreAllowedAt_[flat]) +
                                 cfg_.timing.tRP);
    }
    poweredDownAt_ = entry + cfg_.powerDownDelay;
    TRACE(Power, "%s: power-down armed for %llu", name().c_str(),
          static_cast<unsigned long long>(poweredDownAt_));
}

Tick
DRAMCtrl::exitPowerDown(Tick now)
{
    if (!cfg_.enablePowerDown || poweredDownAt_ == kMaxTick)
        return 0;
    if (now < poweredDownAt_) {
        // Activity resumed before the entry threshold: disarm.
        poweredDownAt_ = kMaxTick;
        return 0;
    }

    TRACE(Power, "%s: waking from power-down entered at %llu",
          name().c_str(),
          static_cast<unsigned long long>(poweredDownAt_));

    // Power-down confirmed: the idle controller closed its open rows
    // on the way in (retroactively, since the model is lazy).
    for (unsigned flat = 0; flat < bankOpenRow_.size(); ++flat) {
        if (bankOpenRow_[flat] != kNoRow)
            prechargeBank(flat,
                          std::max(bankPreAllowedAt_[flat],
                                   poweredDownAt_ -
                                       cfg_.powerDownDelay));
    }

    // The episode may have deepened into self-refresh.
    Tick sr_at = poweredDownAt_ + cfg_.selfRefreshDelay;
    bool in_sr = cfg_.enableSelfRefresh && now >= sr_at;
    if (in_sr) {
        stats_->powerDownTime +=
            static_cast<double>(sr_at - poweredDownAt_);
        stats_->selfRefreshTime += static_cast<double>(now - sr_at);
        ++stats_->selfRefreshEntries;
    } else {
        stats_->powerDownTime +=
            static_cast<double>(now - poweredDownAt_);
    }
    ++stats_->powerDownEntries;
    poweredDownAt_ = kMaxTick;
    return now + (in_sr ? cfg_.tXS : cfg_.tXP);
}

bool
DRAMCtrl::recvTimingReq(Packet *pkt)
{
    DC_ASSERT(pkt->isRequest(), "controller received %s",
              pkt->toString().c_str());
    if (!range_.contains(pkt->addr()))
        panic("controller '%s' received misrouted packet %s",
              name().c_str(), pkt->toString().c_str());

    if (cfg_.enablePowerDown) {
        Tick wake = exitPowerDown(curTick());
        if (wake != 0)
            wakeConstraint_ = std::max(wakeConstraint_, wake);
    }

    touchQueueStats();

    Addr local = range_.removeIntlvBits(pkt->addr());
    unsigned pkt_count = burstCountFor(local, pkt->size());

    // A packet spanning more bursts than the whole queue can never be
    // accepted; refusing it would retry forever (a silent deadlock the
    // differential fuzzer once shrank to a single unaligned request).
    // Fail fast and name the knob instead.
    unsigned cap = pkt->isRead() ? cfg_.readBufferSize
                                 : cfg_.writeBufferSize;
    if (pkt_count > cap)
        fatal("%s: %s spans %u bursts but the %s queue only holds %u; "
              "increase %sBufferSize",
              name().c_str(), pkt->toString().c_str(), pkt_count,
              pkt->isRead() ? "read" : "write", cap,
              pkt->isRead() ? "read" : "write");

    if (pkt->isRead()) {
        if (readQueue_.size() + pkt_count > cfg_.readBufferSize) {
            TRACE(DRAMCtrl, "%s: refuse %s, read queue full (%zu)",
                  name().c_str(), pkt->toString().c_str(),
                  readQueue_.size());
            ++stats_->numRdRetry;
            retryReq_ = true;
            return false;
        }
        TRACE(DRAMCtrl, "%s: accept %s (%u bursts)", name().c_str(),
              pkt->toString().c_str(), pkt_count);
        if (auto *ct = obs::chromeTracer())
            ct->beginSpan(name(), pkt->id(),
                          "read " + std::to_string(pkt->addr()),
                          curTick());
        ++stats_->readReqs;
        if (!plugins_.empty())
            plugins_.onEnqueue(
                {true, pkt->addr(), pkt->size(), curTick()});
        addToReadQueue(pkt, local);
    } else {
        if (writeQueue_.size() + pkt_count > cfg_.writeBufferSize) {
            TRACE(DRAMCtrl, "%s: refuse %s, write queue full (%zu)",
                  name().c_str(), pkt->toString().c_str(),
                  writeQueue_.size());
            ++stats_->numWrRetry;
            retryReq_ = true;
            return false;
        }
        TRACE(DRAMCtrl, "%s: accept %s (%u bursts)", name().c_str(),
              pkt->toString().c_str(), pkt_count);
        if (auto *ct = obs::chromeTracer())
            ct->beginSpan(name(), pkt->id(),
                          "write " + std::to_string(pkt->addr()),
                          curTick());
        ++stats_->writeReqs;
        if (!plugins_.empty())
            plugins_.onEnqueue(
                {false, pkt->addr(), pkt->size(), curTick()});
        addToWriteQueue(pkt, local);
        // Early write response (Section II-A): acknowledge as soon as
        // the burst sits in the write queue. The observed latency is
        // pure frontend pipeline, so every DRAM stage is zero.
        pkt->setSpan(
            stats::LatencySpan::immediate(curTick(),
                                          cfg_.frontendLatency));
        accessAndRespond(pkt, cfg_.frontendLatency, curTick());
    }

    if (auto *ct = obs::chromeTracer()) {
        ct->counter(name(), "readQ", curTick(),
                    static_cast<double>(readQueue_.size()));
        ct->counter(name(), "writeQ", curTick(),
                    static_cast<double>(writeQueue_.size()));
    }

    if (!nextReqEvent_.scheduled())
        schedule(nextReqEvent_, std::max(curTick(), nextReqTime_));
    return true;
}

void
DRAMCtrl::recvRespRetry()
{
    respQueue_.retry();
}

DRAMCtrl::DRAMPacket *
DRAMCtrl::findWriteEntry(Addr burst_addr) const
{
    // Burst windows are unique in the write queue (merges coalesce),
    // so a linear scan over the small contiguous queue replaces the
    // old hash map — and with it the per-write node churn.
    for (DRAMPacket *dp : writeQueue_) {
        if (dp->burstAddr == burst_addr)
            return dp;
    }
    return nullptr;
}

void
DRAMCtrl::addToReadQueue(Packet *pkt, Addr local_addr)
{
    std::uint64_t burst_size = cfg_.org.burstSize();
    Addr end = local_addr + pkt->size();
    unsigned pkt_count = burstCountFor(local_addr, pkt->size());
    stats_->readBursts += pkt_count;

    // Pass 1: snoop the write queue (Section II-A): a read fully
    // covered by queued write data is serviced without touching the
    // DRAM. Counting first (instead of buffering new bursts) keeps the
    // enqueue path allocation-free.
    unsigned forwarded = 0;
    for (Addr addr = local_addr; addr < end;) {
        Addr window = decoder_.burstAlign(addr);
        Addr hi = std::min<Addr>(window + burst_size, end);
        const DRAMPacket *entry = findWriteEntry(window);
        if (entry != nullptr && entry->lo <= addr && hi <= entry->hi) {
            ++forwarded;
            ++stats_->servicedByWrQ;
        }
        addr = window + burst_size;
    }

    if (forwarded == pkt_count) {
        // Entirely satisfied by the write queue: no DRAM stage ran.
        pkt->setSpan(
            stats::LatencySpan::immediate(curTick(),
                                          cfg_.frontendLatency));
        accessAndRespond(pkt, cfg_.frontendLatency, curTick());
        return;
    }

    BurstHelper *helper = nullptr;
    if (pkt_count > 1) {
        helper = new BurstHelper(pkt_count);
        helper->burstsServiced = forwarded;
    }

    // Pass 2: enqueue the bursts the DRAM must provide.
    for (Addr addr = local_addr; addr < end;) {
        Addr window = decoder_.burstAlign(addr);
        Addr hi = std::min<Addr>(window + burst_size, end);
        const DRAMPacket *entry = findWriteEntry(window);
        if (entry == nullptr || entry->lo > addr || hi > entry->hi) {
            DRAMPacket *dp = makeDRAMPacket(pkt, addr, hi, true);
            dp->entryTime = curTick();
            dp->burstHelper = helper;
            readQueue_.push_back(dp);
            noteEnqueued(*dp, true);
        }
        addr = window + burst_size;
    }
}

void
DRAMCtrl::addToWriteQueue(Packet *pkt, Addr local_addr)
{
    std::uint64_t burst_size = cfg_.org.burstSize();
    Addr addr = local_addr;
    Addr end = local_addr + pkt->size();
    stats_->writeBursts += burstCountFor(local_addr, pkt->size());

    while (addr < end) {
        Addr window = decoder_.burstAlign(addr);
        Addr hi = std::min<Addr>(window + burst_size, end);

        DRAMPacket *entry = findWriteEntry(window);
        if (entry != nullptr) {
            // Merge into the queued burst (Section II-A). The byte
            // coverage is tracked as a hull; this is a timing model, so
            // gaps inside the hull only make read forwarding slightly
            // optimistic.
            entry->lo = std::min(entry->lo, addr);
            entry->hi = std::max(entry->hi, hi);
            ++stats_->mergedWrBursts;
        } else {
            DRAMPacket *dp = makeDRAMPacket(nullptr, addr, hi, false);
            dp->entryTime = curTick();
            writeQueue_.push_back(dp);
            noteEnqueued(*dp, false);
        }
        addr = window + burst_size;
    }
}

void
DRAMCtrl::noteEnqueued(const DRAMPacket &pkt, bool is_read)
{
    unsigned flat = pkt.rank * cfg_.org.banksPerRank + pkt.bank;
    DC_ASSERT(pkt.row < (std::uint64_t(1) << kRowKeyBits),
              "row index exceeds the packed key width");
    (is_read ? rdKeys_ : wrKeys_).push_back(packKey(flat, pkt.row));
    if (is_read)
        ++rdBankCounts_[flat];
    else
        ++wrBankCounts_[flat];
    if (bankOpenRow_[flat] == pkt.row) {
        bool usable = !starvedHits_[flat];
        if (is_read) {
            ++rdRowHitCounts_[flat];
            if (usable)
                ++rdRowHitTotal_;
        } else {
            ++wrRowHitCounts_[flat];
            if (usable)
                ++wrRowHitTotal_;
        }
    }
}

void
DRAMCtrl::noteDequeued(const DRAMPacket &pkt, bool is_read)
{
    unsigned flat = pkt.rank * cfg_.org.banksPerRank + pkt.bank;
    if (is_read)
        --rdBankCounts_[flat];
    else
        --wrBankCounts_[flat];
    if (bankOpenRow_[flat] == pkt.row) {
        bool usable = !starvedHits_[flat];
        if (is_read) {
            --rdRowHitCounts_[flat];
            if (usable)
                --rdRowHitTotal_;
        } else {
            --wrRowHitCounts_[flat];
            if (usable)
                --wrRowHitTotal_;
        }
    }
}

void
DRAMCtrl::rowClosed(unsigned flat_bank)
{
    if (!starvedHits_[flat_bank]) {
        rdRowHitTotal_ -= rdRowHitCounts_[flat_bank];
        wrRowHitTotal_ -= wrRowHitCounts_[flat_bank];
    }
    rdRowHitCounts_[flat_bank] = 0;
    wrRowHitCounts_[flat_bank] = 0;
    starvedHits_[flat_bank] = 0;
}

void
DRAMCtrl::rowOpened(unsigned rank, unsigned bank, std::uint64_t row)
{
    unsigned flat = rank * cfg_.org.banksPerRank + bank;
    DC_ASSERT(rdRowHitCounts_[flat] == 0 && wrRowHitCounts_[flat] == 0,
              "row opened over stale hit counts");
    DC_ASSERT(!starvedHits_[flat], "row opened on a starved bank");
    if (rdBankCounts_[flat] == 0 && wrBankCounts_[flat] == 0)
        return;
    std::uint64_t key = packKey(flat, row);
    auto rd = rdBankCounts_[flat] == 0
                  ? 0
                  : static_cast<std::uint32_t>(
                        std::count(rdKeys_.begin(), rdKeys_.end(), key));
    auto wr = wrBankCounts_[flat] == 0
                  ? 0
                  : static_cast<std::uint32_t>(
                        std::count(wrKeys_.begin(), wrKeys_.end(), key));
    rdRowHitCounts_[flat] = rd;
    wrRowHitCounts_[flat] = wr;
    rdRowHitTotal_ += rd;
    wrRowHitTotal_ += wr;
}

Tick
DRAMCtrl::activationWindowConstraint(const Rank &rank,
                                     Tick act_tick) const
{
    unsigned limit = cfg_.timing.activationLimit;
    if (limit == 0 || rank.actWindow.size() < limit)
        return act_tick;
    return std::max(act_tick, rank.actWindow.front() + cfg_.timing.tXAW);
}

void
DRAMCtrl::recordActivate(Rank &rank, Tick act_tick)
{
    rank.nextActAt = std::max(rank.nextActAt,
                              act_tick + cfg_.timing.tRRD);
    // The ring is sized to the activation limit, so overwriting the
    // oldest launch tick is exactly the old push-then-trim.
    if (cfg_.timing.activationLimit > 0)
        rank.actWindow.push_back_overwrite(act_tick);
    invalidateRank(static_cast<unsigned>(&rank - ranks_.data()));
}

void
DRAMCtrl::prechargeBank(unsigned flat, Tick pre_tick)
{
    DC_ASSERT(bankOpenRow_[flat] != kNoRow,
              "precharging a closed bank");
    logCmd(pre_tick, DRAMCmd::Pre, flat / cfg_.org.banksPerRank,
           flat % cfg_.org.banksPerRank);
    rowClosed(flat);
    invalidateBank(flat);
    bankOpenRow_[flat] = kNoRow;
    bankRowAccesses_[flat] = 0;
    Tick pre_done = pre_tick + cfg_.timing.tRP;
    bankActAllowedAt_[flat] =
        std::max(bankActAllowedAt_[flat], pre_done);
    refNotBefore_ = std::max(refNotBefore_, pre_done);
    ++stats_->numPrecharges;
    bankPrecharged(pre_done);
    if (auto *ct = obs::chromeTracer()) {
        ct->counter(name(), "openBanks", pre_done,
                    static_cast<double>(numBanksActive_));
        ct->counter(name() + ".banks", "bank" + std::to_string(flat),
                    pre_done, 0.0);
    }
}

Tick
DRAMCtrl::pracMitigate(unsigned flat_bank, unsigned rank, unsigned bank,
                       Tick act_from)
{
    if (pracPlugin_ == nullptr ||
        !pracPlugin_->mitigationPending(flat_bank) || testSkipPrac_)
        return act_from;
    // The mitigation refresh targets the (closed) bank: @p act_from
    // already covers tRP after any precharge, so it doubles as the
    // earliest legal REFm launch. The RefM record clears the plugin's
    // pending flag as it flows through onCommand.
    Tick ref_at = act_from;
    logCmd(ref_at, DRAMCmd::RefM, rank, bank);
    invalidateBank(flat_bank);
    return ref_at + pracPlugin_->tRFM();
}

void
DRAMCtrl::bankActivated(Tick act_tick)
{
    if (numBanksActive_ == 0 && act_tick > allBanksPreSince_)
        stats_->prechargeAllTime += static_cast<double>(
            act_tick - allBanksPreSince_);
    ++numBanksActive_;
}

void
DRAMCtrl::bankPrecharged(Tick pre_done_tick)
{
    DC_ASSERT(numBanksActive_ > 0, "precharge with no active banks");
    --numBanksActive_;
    if (numBanksActive_ == 0)
        allBanksPreSince_ = pre_done_tick;
}

Tick
DRAMCtrl::estimateReadyTick(const DRAMPacket &pkt) const
{
    unsigned flat = flatIdx(pkt.rank, pkt.bank);
    if (bankOpenRow_[flat] == pkt.row)
        return std::max(colAllowedAt(flat), curTick());

    return estimateBankReady(pkt.rank, pkt.bank);
}

Tick
DRAMCtrl::estimateBankReady(unsigned rank_idx, unsigned bank_idx) const
{
    const Rank &rank = ranks_[rank_idx];

    // The miss estimate max-distributes into a state-dependent part
    // (cacheable per bank) and a curTick-relative floor:
    //   conflict: max(preAllowedAt + tRP, nextActAt, tXAW) + tRCD
    //             vs now + tRP + tRCD
    //   closed:   max(actAllowedAt, nextActAt, tXAW) + tRCD
    //             vs now + tRCD
    // The cached part survives until the owning bank or rank mutates
    // (generation counters), so a scheduling scan computes each bank's
    // estimate once no matter how many queued bursts target it.
    unsigned flat = rank_idx * cfg_.org.banksPerRank + bank_idx;
    ReadyCache &rc = readyCache_[flat];
    std::uint64_t tag = bankGen_[flat] + rankGen_[rank_idx] + 1;
    if (rc.tag != tag) {
        const DRAMTiming &t = cfg_.timing;
        Tick awc = 0;
        unsigned limit = t.activationLimit;
        if (limit != 0 && rank.actWindow.size() >= limit)
            awc = rank.actWindow.front() + t.tXAW;
        // Same-group activate spacing (tRRD_L) is rank state for cache
        // purposes: recordActivate bumps it and invalidates the rank.
        Tick grp_act =
            hasBankGroups_ ? grpNextActAt_[grpIdx(flat)] : 0;
        if (bankOpenRow_[flat] != kNoRow) {
            rc.base = std::max({bankPreAllowedAt_[flat] + t.tRP,
                                rank.nextActAt, grp_act, awc}) +
                      t.tRCD;
            rc.nowOffset = t.tRP + t.tRCD;
        } else {
            rc.base = std::max({bankActAllowedAt_[flat],
                                rank.nextActAt, grp_act, awc}) +
                      t.tRCD;
            rc.nowOffset = t.tRCD;
        }
        rc.tag = tag;
    }
    return std::max(rc.base, curTick() + rc.nowOffset);
}

unsigned
DRAMCtrl::priorityOf(const DRAMPacket &pkt) const
{
    if (cfg_.schedPolicy != SchedPolicy::FrFcfsPrio)
        return 0;
    if (pkt.requestorId < cfg_.requestorPriorities.size())
        return cfg_.requestorPriorities[pkt.requestorId];
    return 0;
}

std::vector<DRAMCtrl::DRAMPacket *>::iterator
DRAMCtrl::chooseNext(std::vector<DRAMPacket *> &queue)
{
    DC_ASSERT(!queue.empty(), "choosing from an empty queue");

    if (cfg_.schedPolicy == SchedPolicy::Fcfs || queue.size() == 1)
        return queue.begin();

    // Plain FR-FCFS has two counter-driven fast paths.
    if (cfg_.schedPolicy == SchedPolicy::FrFcfs) {
        const bool is_read = &queue == &readQueue_;
        unsigned hits = is_read ? rdRowHitTotal_ : wrRowHitTotal_;
        if (hits > 0) {
            // The totals say a usable (non-starved) hit is queued: the
            // winner is the oldest one, no ready ticks needed.
            for (auto it = queue.begin(); it != queue.end(); ++it) {
                const DRAMPacket &dp = **it;
                unsigned flat = flatIdx(dp.rank, dp.bank);
                if (bankOpenRow_[flat] == dp.row &&
                    !starvedHits_[flat])
                    return it;
            }
            DC_ASSERT(false, "row-hit counter out of sync");
        } else {
            // No usable hits, so every entry's estimate is a pure
            // function of its bank: queued hits can only sit on
            // starved banks, where they all share the column-path
            // estimate, and misses share the bank's activate
            // estimate. Take the minimum over banks that have queued
            // bursts here (far fewer than queue entries), then return
            // the oldest burst achieving it — exactly what the
            // entry-by-entry scan selects.
            const auto &bank_counts =
                is_read ? rdBankCounts_ : wrBankCounts_;
            const auto &hit_counts =
                is_read ? rdRowHitCounts_ : wrRowHitCounts_;
            const unsigned nbanks = cfg_.org.banksPerRank;
            const Tick now = curTick();
            Tick best_ready = kMaxTick;
            for (unsigned flat = 0; flat < bank_counts.size();
                 ++flat) {
                if (bank_counts[flat] == 0)
                    continue;
                if (hit_counts[flat] > 0)
                    best_ready = std::min(
                        best_ready,
                        std::max(colAllowedAt(flat), now));
                if (bank_counts[flat] > hit_counts[flat])
                    best_ready =
                        std::min(best_ready,
                                 estimateBankReady(flat / nbanks,
                                                   flat % nbanks));
            }
            for (auto it = queue.begin(); it != queue.end(); ++it) {
                const DRAMPacket &dp = **it;
                unsigned flat = flatIdx(dp.rank, dp.bank);
                // Bank estimates were cached by the pass above.
                Tick est =
                    bankOpenRow_[flat] == dp.row
                        ? std::max(colAllowedAt(flat), now)
                        : estimateBankReady(dp.rank, dp.bank);
                if (est == best_ready)
                    return it;
            }
            DC_ASSERT(false, "no burst matches the minimum estimate");
        }
    }

    // FR-FCFS: prefer the oldest row hit; otherwise the request whose
    // bank is ready first (Section II-C). The QoS variant searches
    // priority tier by tier, so a high-priority conflict beats a
    // low-priority row hit.
    const bool prio_sched = cfg_.schedPolicy == SchedPolicy::FrFcfsPrio;
    auto best = queue.end();
    auto best_hit = queue.end();
    Tick best_ready = kMaxTick;
    unsigned best_prio = 0;
    unsigned best_hit_prio = 0;
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        const DRAMPacket &dp = **it;
        unsigned flat = flatIdx(dp.rank, dp.bank);
        unsigned prio = priorityOf(dp);
        bool row_hit = bankOpenRow_[flat] == dp.row;
        bool starved =
            cfg_.maxAccessesPerRow > 0 &&
            bankRowAccesses_[flat] >= cfg_.maxAccessesPerRow;
        if (row_hit && !starved) {
            if (!prio_sched)
                return it; // plain FR-FCFS: oldest row hit wins
            if (best_hit == queue.end() || prio > best_hit_prio) {
                best_hit = it;
                best_hit_prio = prio;
                // A hit at the top tier wins outright: later hits only
                // displace it at strictly higher priority, and a
                // non-hit only wins at strictly higher priority.
                if (best_hit_prio >= maxReqPriority_)
                    return best_hit;
            }
            continue;
        }
        // A non-hit at or below the best queued hit's tier can never
        // be selected; skip its ready-tick estimate entirely.
        if (prio_sched && best_hit != queue.end() &&
            prio <= best_hit_prio)
            continue;
        Tick ready = estimateReadyTick(dp);
        if (best == queue.end() || prio > best_prio ||
            (prio == best_prio && ready < best_ready)) {
            best_ready = ready;
            best = it;
            best_prio = prio;
        }
    }

    if (best_hit != queue.end() &&
        (best == queue.end() || best_hit_prio >= best_prio))
        return best_hit;
    return best;
}

void
DRAMCtrl::doDRAMAccess(DRAMPacket *pkt)
{
    const DRAMTiming &t = cfg_.timing;
    Rank &rank = ranks_[pkt->rank];
    const unsigned flat_bank = flatIdx(pkt->rank, pkt->bank);

    bool row_hit = bankOpenRow_[flat_bank] == pkt->row;
    if (!row_hit) {
        if (bankOpenRow_[flat_bank] != kNoRow)
            prechargeBank(flat_bank,
                          std::max(curTick(),
                                   bankPreAllowedAt_[flat_bank]));

        Tick act = std::max({curTick(), bankActAllowedAt_[flat_bank],
                             rank.nextActAt, wakeConstraint_});
        if (hasBankGroups_)
            act = std::max(act, grpNextActAt_[grpIdx(flat_bank)]);
        // A pending RowHammer mitigation must land before this ACT.
        act = pracMitigate(flat_bank, pkt->rank, pkt->bank, act);
        act = activationWindowConstraint(rank, act);
        recordActivate(rank, act);
        // Same-group activates additionally respect tRRD_L; the rank
        // invalidation recordActivate just did covers this mutation
        // for the ready cache.
        if (hasBankGroups_) {
            Tick &g = grpNextActAt_[grpIdx(flat_bank)];
            g = std::max(g, act + t.tRRDLong());
        }
        bankActivated(act);
        ++stats_->numActs;
        logCmd(act, DRAMCmd::Act, pkt->rank, pkt->bank, pkt->row);

        bankOpenRow_[flat_bank] = pkt->row;
        bankRowAccesses_[flat_bank] = 0;
        bankColAllowedAt_[flat_bank] = act + t.tRCD;
        bankPreAllowedAt_[flat_bank] = act + t.tRAS;
        rowOpened(pkt->rank, pkt->bank, pkt->row);
        if (auto *ct = obs::chromeTracer()) {
            ct->counter(name(), "openBanks", act,
                        static_cast<double>(numBanksActive_));
            ct->counter(name() + ".banks",
                        "bank" + std::to_string(flat_bank), act, 1.0);
        }
    }

    // Column access: constrained by the bank, the shared data bus, and
    // the read/write turnaround timings (Section II-B). The three
    // intermediate ticks are the attribution stamps: bank_ready is
    // when the bank alone would let the column command go, cmd_at is
    // when it actually goes (turnaround/wake stalls on top), and
    // data_start is when the bus is free for the data.
    Tick bank_ready = std::max(colAllowedAt(flat_bank), curTick());
    Tick cmd_at;
    Tick data_start;
    if (pkt->isRead) {
        cmd_at = std::max({bank_ready, nextRdCmdAt_, wakeConstraint_});
        data_start = std::max(cmd_at + t.tCL, busBusyUntil_);
    } else {
        cmd_at = std::max(bank_ready, wakeConstraint_);
        data_start = std::max({cmd_at + t.tCL, busBusyUntil_,
                               nextWrDataAt_});
    }
    Tick data_done = data_start + t.tBURST;
    busBusyUntil_ = data_done;
    pkt->readyTime = data_done;
    if (auto *ct = obs::chromeTracer()) {
        // Bus-occupancy counter track: 1 while a burst's data is on
        // the wire. Back-to-back bursts toggle at the same tick.
        ct->counter(name(), "busBusy", data_start, 1.0);
        ct->counter(name(), "busBusy", data_done, 0.0);
    }
    TRACE(DRAMCtrl,
          "%s: %s burst rank %u bank %u row %llu %s, data %llu-%llu",
          name().c_str(), pkt->isRead ? "RD" : "WR", pkt->rank,
          pkt->bank, static_cast<unsigned long long>(pkt->row),
          row_hit ? "hit" : "miss",
          static_cast<unsigned long long>(data_start),
          static_cast<unsigned long long>(data_done));
    logCmd(data_start - t.tCL,
           pkt->isRead ? DRAMCmd::Rd : DRAMCmd::Wr, pkt->rank,
           pkt->bank, pkt->row);
    if (!plugins_.empty())
        plugins_.onBurstComplete({pkt->isRead, pkt->rank, pkt->bank,
                                  pkt->row, pkt->col, data_done});

    if (pkt->isRead) {
        nextWrDataAt_ = std::max(nextWrDataAt_, data_done + t.tRTW);
        bankPreAllowedAt_[flat_bank] =
            std::max(bankPreAllowedAt_[flat_bank], data_done);
    } else {
        nextRdCmdAt_ = std::max(nextRdCmdAt_, data_done + t.tWTR);
        bankPreAllowedAt_[flat_bank] =
            std::max(bankPreAllowedAt_[flat_bank], data_done + t.tWR);
    }
    lastBurstWasRead_ = pkt->isRead;

    // The burst occupies the bank's column path for tBURST (tCCD).
    // With bank groups the *effective* command tick (data_start - tCL,
    // the tick logCmd stamped) additionally blocks the whole group for
    // tCCD_L and the channel for tCCD_S; without groups both collapse
    // into the per-bank tBURST term below.
    Tick eff_cmd = data_start - t.tCL;
    bankColAllowedAt_[flat_bank] =
        std::max(bankColAllowedAt_[flat_bank],
                 eff_cmd + t.tCCDLong());
    if (hasBankGroups_) {
        Tick &g = grpColAllowedAt_[grpIdx(flat_bank)];
        g = std::max(g, eff_cmd + t.tCCDLong());
        nextColAllowedAt_ =
            std::max(nextColAllowedAt_, eff_cmd + t.tCCDShort());
    }
    ++bankRowAccesses_[flat_bank];

    invalidateBank(flat_bank);

    // Crossing the per-row access limit demotes this bank's queued
    // hits: FR-FCFS must now treat them as conflicts, so they leave
    // the usable-hit totals (the raw counts stay, the page policy
    // still wants them).
    if (cfg_.maxAccessesPerRow > 0 && !starvedHits_[flat_bank] &&
        bankRowAccesses_[flat_bank] >= cfg_.maxAccessesPerRow) {
        starvedHits_[flat_bank] = 1;
        rdRowHitTotal_ -= rdRowHitCounts_[flat_bank];
        wrRowHitTotal_ -= wrRowHitCounts_[flat_bank];
    }

    std::uint64_t burst_size = cfg_.org.burstSize();
    if (pkt->isRead) {
        if (row_hit)
            ++stats_->readRowHits;
        stats_->perBankRdBursts[flat_bank] += 1;
        stats_->bytesRead += static_cast<double>(burst_size);
        stats_->totQLat += static_cast<double>(curTick() -
                                               pkt->entryTime);
        stats_->totSvcLat += static_cast<double>(data_done - curTick());
        stats_->totMemAccLat += static_cast<double>(data_done -
                                                    pkt->entryTime);
        stats_->readLatencyHist.sample(
            toNs(data_done - pkt->entryTime + cfg_.frontendLatency +
                 cfg_.backendLatency));

        // Attribution span: the stamps above decompose exactly the
        // latency readLatencyHist just sampled. For a chopped packet
        // every burst overwrites the span; the burst that completes
        // the response (the last one, since data_done is monotonic on
        // the shared bus) is the one the requestor sees.
        stats::LatencySpan span;
        span.enqueue = pkt->entryTime;
        span.pick = curTick();
        span.bankReady = bank_ready;
        span.issue = cmd_at;
        span.burstStart = data_start;
        span.done = data_done;
        span.staticLat = cfg_.frontendLatency + cfg_.backendLatency;
        span.valid = true;
        stats_->lat.record(span);
        if (pkt->pkt != nullptr)
            pkt->pkt->setSpan(span);
    } else {
        if (row_hit)
            ++stats_->writeRowHits;
        stats_->perBankWrBursts[flat_bank] += 1;
        stats_->bytesWritten += static_cast<double>(burst_size);
    }

    applyPagePolicy(*pkt);
}

bool
DRAMCtrl::queuedRowHits(unsigned rank, unsigned bank,
                        std::uint64_t row) const
{
    // When asking about the currently open row (the page-policy case)
    // the maintained hit counters already hold the answer.
    if (bankOpenRow_[flatIdx(rank, bank)] == row) {
        unsigned flat = flatIdx(rank, bank);
        return rdRowHitCounts_[flat] + wrRowHitCounts_[flat] > 0;
    }
    auto match = [&](const DRAMPacket *dp) {
        return dp->rank == rank && dp->bank == bank && dp->row == row;
    };
    return std::any_of(readQueue_.begin(), readQueue_.end(), match) ||
           std::any_of(writeQueue_.begin(), writeQueue_.end(), match);
}

bool
DRAMCtrl::queuedBankConflicts(unsigned rank, unsigned bank,
                              std::uint64_t row) const
{
    // Queued-for-this-bank minus queued-for-the-open-row leaves the
    // conflicting entries, again counter-only for the open row.
    if (bankOpenRow_[flatIdx(rank, bank)] == row) {
        unsigned flat = flatIdx(rank, bank);
        return (rdBankCounts_[flat] - rdRowHitCounts_[flat]) +
                   (wrBankCounts_[flat] - wrRowHitCounts_[flat]) >
               0;
    }
    auto conflict = [&](const DRAMPacket *dp) {
        return dp->rank == rank && dp->bank == bank && dp->row != row;
    };
    return std::any_of(readQueue_.begin(), readQueue_.end(), conflict) ||
           std::any_of(writeQueue_.begin(), writeQueue_.end(), conflict);
}

void
DRAMCtrl::applyPagePolicy(const DRAMPacket &pkt)
{
    const unsigned flat = flatIdx(pkt.rank, pkt.bank);
    DC_ASSERT(bankOpenRow_[flat] == pkt.row, "page policy on stale row");

    bool auto_precharge = false;
    switch (cfg_.pagePolicy) {
      case PagePolicy::Closed:
        auto_precharge = true;
        break;
      case PagePolicy::ClosedAdaptive:
        // Keep the row open only when more accesses to it are queued.
        auto_precharge = !queuedRowHits(pkt.rank, pkt.bank, pkt.row);
        break;
      case PagePolicy::Open:
        break;
      case PagePolicy::OpenAdaptive:
        // Close early when a conflicting access waits and nothing more
        // wants this row.
        auto_precharge =
            queuedBankConflicts(pkt.rank, pkt.bank, pkt.row) &&
            !queuedRowHits(pkt.rank, pkt.bank, pkt.row);
        break;
    }

    if (auto_precharge)
        prechargeBank(flat,
                      std::max(curTick(), bankPreAllowedAt_[flat]));
}

void
DRAMCtrl::accessAndRespond(Packet *pkt, Tick static_latency,
                           Tick ready_time)
{
    pkt->makeResponse();
    respQueue_.schedSendResp(pkt, std::max(curTick(), ready_time) +
                                      static_latency);
}

void
DRAMCtrl::retryBlockedReq()
{
    if (retryReq_) {
        retryReq_ = false;
        port_.sendReqRetry();
    }
}

void
DRAMCtrl::touchQueueStats()
{
    Tick now = curTick();
    if (now > lastQStatUpdate_) {
        double dt = static_cast<double>(now - lastQStatUpdate_);
        stats_->rdQOccupancyTicks +=
            static_cast<double>(readQueue_.size()) * dt;
        stats_->wrQOccupancyTicks +=
            static_cast<double>(writeQueue_.size()) * dt;
    }
    lastQStatUpdate_ = now;
}

void
DRAMCtrl::processNextReqEvent()
{
    const auto low_entries = static_cast<std::size_t>(
        cfg_.writeLowThreshold * cfg_.writeBufferSize);
    const auto high_entries = static_cast<std::size_t>(
        cfg_.writeHighThreshold * cfg_.writeBufferSize);

    // Stage 1: read/write switching (Section II-C write drain mode).
    if (busState_ == BusState::Read) {
        bool switch_to_writes = false;
        if (writeQueue_.size() >= high_entries) {
            // Forced switch at the high watermark.
            switch_to_writes = true;
        } else if (readQueue_.empty() && !writeQueue_.empty() &&
                   writeQueue_.size() >= low_entries) {
            // No reads pending: drain from the low watermark.
            switch_to_writes = true;
        }
        if (switch_to_writes) {
            if (readsThisTime_ > 0)
                stats_->rdPerTurnAround.sample(readsThisTime_);
            readsThisTime_ = 0;
            busState_ = BusState::Write;
        }
    } else {
        bool switch_to_reads = false;
        if (writeQueue_.empty()) {
            switch_to_reads = true;
        } else if (!readQueue_.empty() &&
                   writesThisTime_ >= cfg_.minWritesPerSwitch &&
                   writeQueue_.size() < low_entries) {
            // Drained the minimum burst of writes and dropped below the
            // low watermark with reads waiting: switch back.
            switch_to_reads = true;
        }
        if (switch_to_reads) {
            if (writesThisTime_ > 0)
                stats_->wrPerTurnAround.sample(writesThisTime_);
            writesThisTime_ = 0;
            busState_ = BusState::Read;
        }
    }

    // Stage 2: service one burst in the current direction.
    touchQueueStats();
    bool serviced = false;
    if (busState_ == BusState::Read) {
        if (!readQueue_.empty()) {
            auto it = chooseNext(readQueue_);
            DRAMPacket *pkt = *it;
            noteDequeued(*pkt, true);
            rdKeys_.erase(rdKeys_.begin() + (it - readQueue_.begin()));
            readQueue_.erase(it);
            doDRAMAccess(pkt);
            ++readsThisTime_;
            serviced = true;

            if (pkt->burstHelper) {
                ++pkt->burstHelper->burstsServiced;
                if (pkt->burstHelper->burstsServiced ==
                    pkt->burstHelper->burstCount) {
                    accessAndRespond(pkt->pkt,
                                     cfg_.frontendLatency +
                                         cfg_.backendLatency,
                                     pkt->readyTime);
                    delete pkt->burstHelper;
                }
            } else {
                accessAndRespond(pkt->pkt,
                                 cfg_.frontendLatency +
                                     cfg_.backendLatency,
                                 pkt->readyTime);
            }
            delete pkt;
            retryBlockedReq();
        }
    } else {
        if (!writeQueue_.empty()) {
            auto it = chooseNext(writeQueue_);
            DRAMPacket *pkt = *it;
            noteDequeued(*pkt, false);
            wrKeys_.erase(wrKeys_.begin() + (it - writeQueue_.begin()));
            writeQueue_.erase(it);
            doDRAMAccess(pkt);
            ++writesThisTime_;
            serviced = true;
            delete pkt;
            retryBlockedReq();
        }
    }

    (void)serviced;

    // Stage 3: decide whether and when to wake up again. Writes parked
    // below the low watermark with no reads pending are intentionally
    // not actionable: they stay on chip until more traffic arrives
    // (Section II-C). The wake-up is early enough that the worst-case
    // bank preparation (precharge + activate + column) for the next
    // burst can overlap the tail of the current data transfer.
    bool actionable =
        !readQueue_.empty() ||
        (busState_ == BusState::Write && !writeQueue_.empty()) ||
        (!writeQueue_.empty() &&
         writeQueue_.size() >= std::max<std::size_t>(low_entries, 1));

    Tick prep = cfg_.timing.tRP + cfg_.timing.tRCD + cfg_.timing.tCL;
    nextReqTime_ = busBusyUntil_ > prep ? busBusyUntil_ - prep : 0;

    if (actionable && !nextReqEvent_.scheduled())
        schedule(nextReqEvent_, std::max(curTick(), nextReqTime_));
    else if (!actionable)
        armPowerDown();
}

void
DRAMCtrl::refreshRank(unsigned rank_idx)
{
    const DRAMTiming &t = cfg_.timing;

    // Only this rank's banks must be closed; the bus must be quiet so
    // no in-flight data to this rank overlaps the refresh (shared-bus
    // conservatism: transfers to other ranks also push this out).
    const unsigned lo = rank_idx * cfg_.org.banksPerRank;
    const unsigned hi = lo + cfg_.org.banksPerRank;
    Tick start = std::max(curTick(), busBusyUntil_);
    for (unsigned flat = lo; flat < hi; ++flat) {
        if (bankOpenRow_[flat] != kNoRow)
            start = std::max(start, bankPreAllowedAt_[flat]);
    }
    for (unsigned flat = lo; flat < hi; ++flat) {
        if (bankOpenRow_[flat] != kNoRow)
            prechargeBank(flat,
                          std::max(start, bankPreAllowedAt_[flat]));
    }
    start = std::max(start, refNotBefore_);

    Tick done = start + t.tRFC;
    TRACE(Refresh, "%s: REF rank %u at %llu, done %llu",
          name().c_str(), rank_idx,
          static_cast<unsigned long long>(start),
          static_cast<unsigned long long>(done));
    logCmd(start, DRAMCmd::Ref, rank_idx, 0);
    for (unsigned flat = lo; flat < hi; ++flat)
        bankActAllowedAt_[flat] = std::max(bankActAllowedAt_[flat],
                                           done);
    invalidateRank(rank_idx);
    ++stats_->numRefreshes;
}

void
DRAMCtrl::processPerBankRefreshEvent()
{
    // refmgr-pb mode: one REFpb per rank each interval, rotating
    // through the banks so every bank refreshes once per tREFI. Only
    // the target bank needs to be closed — the rest of the rank keeps
    // serving requests, which is the whole point of per-bank refresh.
    const unsigned bank = refMgr_->advance();
    for (unsigned r = 0; r < ranks_.size(); ++r) {
        const unsigned flat = flatIdx(r, bank);
        if (flat == testStallRefPbFlat_)
            continue; // fault injection: starve this bank
        if (bankOpenRow_[flat] != kNoRow)
            prechargeBank(flat,
                          std::max(curTick(),
                                   bankPreAllowedAt_[flat]));
        // bankActAllowedAt_ covers tRP after the precharge, so it is
        // also the earliest legal REFpb launch.
        Tick ref_at = std::max(curTick(), bankActAllowedAt_[flat]);
        logCmd(ref_at, DRAMCmd::RefPb, r, bank);
        Tick busy = static_cast<Tick>(
            static_cast<double>(refMgr_->tRFCpb()) * testTRFCpbScale_);
        bankActAllowedAt_[flat] =
            std::max(bankActAllowedAt_[flat], ref_at + busy);
        invalidateBank(flat);
        ++stats_->numRefreshes;
    }
    nextRefreshAt_ += refMgr_->interval(cfg_);
    schedule(refreshEvent_, std::max(nextRefreshAt_, curTick() + 1));
}

void
DRAMCtrl::processRefreshEvent()
{
    const DRAMTiming &t = cfg_.timing;

    if (refMgr_ && refMgr_->perBank()) {
        processPerBankRefreshEvent();
        return;
    }

    // A device in self-refresh refreshes itself: the controller skips
    // its REF and just keeps the schedule ticking.
    if (cfg_.enableSelfRefresh && poweredDownAt_ != kMaxTick &&
        curTick() >= poweredDownAt_ + cfg_.selfRefreshDelay) {
        Tick refi = cfg_.effectiveREFI();
        if (cfg_.perRankRefresh) {
            for (Tick &due : rankRefreshDue_) {
                while (due <= curTick())
                    due += refi;
            }
            schedule(refreshEvent_,
                     *std::min_element(rankRefreshDue_.begin(),
                                       rankRefreshDue_.end()));
        } else {
            nextRefreshAt_ += refi;
            schedule(refreshEvent_,
                     std::max(nextRefreshAt_, curTick() + 1));
        }
        return;
    }

    // A refresh does not end a power-down episode: a real controller
    // briefly raises CKE, refreshes the (already closed) banks and
    // drops back to sleep — the lazy power-down state carries across,
    // which is also what lets a long episode deepen into self-refresh.
    if (cfg_.perRankRefresh) {
        Tick refi = cfg_.effectiveREFI();
        for (std::size_t r = 0; r < ranks_.size(); ++r) {
            if (curTick() >= rankRefreshDue_[r]) {
                refreshRank(static_cast<unsigned>(r));
                rankRefreshDue_[r] += refi;
            }
        }
        if (cfg_.enablePowerDown && readQueue_.empty() &&
            writeQueue_.empty())
            armPowerDown();
        Tick next = *std::min_element(rankRefreshDue_.begin(),
                                      rankRefreshDue_.end());
        schedule(refreshEvent_, std::max(next, curTick() + 1));
        return;
    }

    // All banks must be precharged and the data bus quiet before the
    // refresh can launch (Section II-B: refreshes cause latency spikes).
    Tick start = std::max({curTick(), busBusyUntil_, wakeConstraint_});
    bool any_open = false;
    for (std::size_t flat = 0; flat < bankOpenRow_.size(); ++flat) {
        if (bankOpenRow_[flat] != kNoRow) {
            any_open = true;
            start = std::max(start, bankPreAllowedAt_[flat]);
        }
    }

    if (any_open) {
        for (unsigned flat = 0; flat < bankOpenRow_.size(); ++flat) {
            if (bankOpenRow_[flat] != kNoRow)
                prechargeBank(flat,
                              std::max(start,
                                       bankPreAllowedAt_[flat]));
        }
    } else if (numBanksActive_ == 0) {
        // Idle window up to the refresh: account precharge-standby time
        // and restart accounting after the refresh completes.
        Tick quiet_until = std::max(start, refNotBefore_);
        if (quiet_until > allBanksPreSince_)
            stats_->prechargeAllTime += static_cast<double>(
                quiet_until - allBanksPreSince_);
    }

    // The refresh launches tRP after the last precharge anywhere —
    // including the drain precharges just issued (prechargeBank folded
    // their completion into refNotBefore_).
    start = std::max(start, refNotBefore_);

    Tick done = start + t.tRFC;
    TRACE(Refresh, "%s: REF all %zu ranks at %llu, done %llu",
          name().c_str(), ranks_.size(),
          static_cast<unsigned long long>(start),
          static_cast<unsigned long long>(done));
    for (unsigned r = 0; r < ranks_.size(); ++r) {
        logCmd(start, DRAMCmd::Ref, r, 0);
        invalidateRank(r);
    }
    for (std::size_t flat = 0; flat < bankOpenRow_.size(); ++flat)
        bankActAllowedAt_[flat] = std::max(bankActAllowedAt_[flat],
                                           done);
    allBanksPreSince_ = done;
    ++stats_->numRefreshes;

    // Arm power-down after the refresh if nothing is pending (an
    // already-running episode is left untouched so it can deepen into
    // self-refresh).
    if (cfg_.enablePowerDown && poweredDownAt_ == kMaxTick &&
        readQueue_.empty() && writeQueue_.empty())
        poweredDownAt_ = done + cfg_.powerDownDelay;

    nextRefreshAt_ += cfg_.effectiveREFI();
    schedule(refreshEvent_, std::max(nextRefreshAt_, curTick() + 1));
}

} // namespace dramctrl
