/**
 * @file
 * JEDEC protocol checker for DRAM command streams.
 *
 * Validates a CmdLogger stream against the full timing constraint set
 * the controller is supposed to enforce:
 *
 *  bank level:  ACT before any column command to that bank, to the
 *               activated row; tRCD activate-to-column; tRAS
 *               activate-to-precharge; tRP precharge-to-activate;
 *               tRC activate-to-activate; tCCD (= tBURST) between
 *               column commands; write recovery tWR before precharge.
 *  rank level:  tRRD between activates; at most activationLimit
 *               activates per rolling tXAW window; all banks
 *               precharged at REF; no activate during tRFC.
 *  channel:     data bus occupancy windows never overlap; tWTR from
 *               write data end to the next read command; tRTW
 *               turnaround from read data end to write data start.
 *
 * The checker is the verification backstop for the paper's central
 * claim (Section II-B/II-D): pruning the *modelled* state transitions
 * must not mean violating the *real* constraints.
 */

#ifndef DRAMCTRL_DRAM_PROTOCOL_CHECKER_H
#define DRAMCTRL_DRAM_PROTOCOL_CHECKER_H

#include <string>
#include <vector>

#include "dram/cmd_log.hh"
#include "dram/dram_config.hh"

namespace dramctrl {

/** One detected protocol violation. */
struct ProtocolViolation
{
    CmdRecord cmd;
    std::string rule;
    std::string detail;

    std::string toString() const;
};

class ProtocolChecker
{
  public:
    ProtocolChecker(const DRAMOrg &org, const DRAMTiming &timing);

    /**
     * Check a full command stream (sorted internally by tick).
     * @return all violations found, empty when compliant.
     */
    std::vector<ProtocolViolation>
    check(const std::vector<CmdRecord> &log);

  private:
    struct BankState
    {
        bool rowOpen = false;
        std::uint64_t row = 0;
        Tick lastAct = 0;
        Tick lastPre = 0;
        Tick lastColCmd = 0;
        /** End of the last write data into this bank (for tWR). */
        Tick lastWrDataEnd = 0;
        bool everActivated = false;
        bool everPrecharged = false;
        bool everCol = false;
        bool everWrote = false;
    };

    struct RankState
    {
        std::vector<Tick> actTimes;
        Tick refUntil = 0;
    };

    void fail(std::vector<ProtocolViolation> &out, const CmdRecord &c,
              const char *rule, std::string detail);

    DRAMOrg org_;
    DRAMTiming t_;
};

} // namespace dramctrl

#endif // DRAMCTRL_DRAM_PROTOCOL_CHECKER_H
