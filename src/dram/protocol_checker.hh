/**
 * @file
 * JEDEC protocol checker for DRAM command streams.
 *
 * Validates a CmdRecord stream against the full timing constraint set
 * the controller is supposed to enforce:
 *
 *  bank level:  ACT before any column command to that bank, to the
 *               activated row; tRCD activate-to-column; tRAS
 *               activate-to-precharge; tRP precharge-to-activate;
 *               tRC activate-to-activate; tCCD (= tBURST) between
 *               column commands; write recovery tWR before precharge.
 *  rank level:  tRRD between activates; at most activationLimit
 *               activates per rolling tXAW window; all banks
 *               precharged at REF; no activate during tRFC; every
 *               bank refreshed at least every refSlack x tREFI (the
 *               JEDEC refresh deadline — DDR3 allows postponing up to
 *               eight refreshes, hence the default slack of nine
 *               intervals). The deadline is tracked per bank and any
 *               refresh command covering a bank — all-bank REF,
 *               per-bank REFpb, mitigation REFm — restarts its clock.
 *  group level: for organisations with bankGroupsPerRank > 1, tCCD_L
 *               between column commands within one bank group and
 *               tCCD_S across groups (replacing the flat per-bank
 *               tCCD rule); tRRD_L between same-group activates while
 *               tRRD keeps its cross-group (short) role. A timing set
 *               with tRFCsb arms the REFpb blackout even without a
 *               per-bank refresh manager.
 *  plugins:     with setPerBankRefresh(), REFpb must target a closed,
 *               precharge-settled bank and blocks its ACTs for
 *               tRFCpb; with setPracGuard(), an ACT to a bank holding
 *               a row at the activation threshold without an
 *               intervening refresh is a "prac" violation, and REFm
 *               blocks the bank for tRFM (mirrors
 *               plugin::PracPlugin's alert semantics).
 *  channel:     data bus occupancy windows never overlap; tWTR from
 *               write data end to the next read command; tRTW
 *               turnaround from read data end to write data start.
 *
 * The checker is the verification backstop for the paper's central
 * claim (Section II-B/II-D): pruning the *modelled* state transitions
 * must not mean violating the *real* constraints.
 *
 * Two modes share one rule engine:
 *
 *  - Batch: check(log) takes a whole command log (sorted internally)
 *    and returns every violation. Convenient for hand-built streams.
 *  - Online: attach the checker as a CmdLogger sink (or call
 *    observe() directly) and it audits commands *as they are issued*,
 *    holding only a bounded reorder window in memory. Controllers emit
 *    records out of tick order — the event model computes future
 *    launch ticks analytically — but never with a tick earlier than
 *    the simulation time of emission, so drainUpTo(curTick()) may
 *    finalise everything at or before the current tick. Call finish()
 *    at end of stream. Memory is O(scheduling look-ahead), not
 *    O(commands issued).
 */

#ifndef DRAMCTRL_DRAM_PROTOCOL_CHECKER_H
#define DRAMCTRL_DRAM_PROTOCOL_CHECKER_H

#include <map>
#include <queue>
#include <string>
#include <vector>

#include "dram/cmd_log.hh"
#include "dram/dram_config.hh"

namespace dramctrl {

/** One detected protocol violation. */
struct ProtocolViolation
{
    CmdRecord cmd;
    std::string rule;
    std::string detail;

    std::string toString() const;
};

class ProtocolChecker : public CmdSink
{
  public:
    ProtocolChecker(const DRAMOrg &org, const DRAMTiming &timing);

    /**
     * Check a full command stream (sorted internally by tick).
     * Resets any online state accumulated so far.
     * @return all violations found, empty when compliant.
     */
    std::vector<ProtocolViolation>
    check(const std::vector<CmdRecord> &log);

    // ----- online (incremental) mode -------------------------------

    /** Drop all state and start a fresh audit. */
    void reset();

    /**
     * Feed one command. Records are buffered in a reorder heap and
     * checked once drainUpTo()/finish() declares them final (or when
     * the heap exceeds its safety bound).
     */
    void observe(const CmdRecord &rec);

    /** CmdLogger sink hookup: every record() lands in observe(). */
    void onCmdRecord(const CmdRecord &rec) override { observe(rec); }

    /**
     * Finalise all buffered records with tick <= @p now. Safe with
     * now = current simulation tick: no controller emits a command
     * with a launch tick in its past.
     */
    void drainUpTo(Tick now);

    /** Finalise every buffered record (end of stream). */
    void finish();

    /**
     * Violations found so far. At most maxStoredViolations() are kept
     * (violationCount() counts them all); online users should poll or
     * check after finish().
     */
    const std::vector<ProtocolViolation> &violations() const
    {
        return violations_;
    }

    /** Total violations detected, stored or not. */
    std::uint64_t violationCount() const { return violationCount_; }

    /** Commands run through the rule engine so far. */
    std::uint64_t commandsChecked() const { return commandsChecked_; }

    /** Records waiting in the reorder heap (observed, not yet final). */
    std::size_t pendingRecords() const { return pending_.size(); }

    /** Cap on stored violations (default 64); further ones only count. */
    void setMaxStoredViolations(std::size_t max) { maxStored_ = max; }
    std::size_t maxStoredViolations() const { return maxStored_; }

    /**
     * Refresh-deadline slack as a multiple of tREFI (default 9.0, the
     * DDR3 maximum-postponement bound). 0 disables the rule, as does
     * tREFI == 0 in the timing set.
     */
    void setRefSlack(double slack) { refSlack_ = slack; }
    double refSlack() const { return refSlack_; }

    /**
     * Arm the PRAC mitigation invariant: track per-row ACT counts
     * (mirroring plugin::PracPlugin) and require a REFm to a bank
     * holding a row at @p threshold activations before that bank's
     * next ACT; a REFm blocks the bank's ACTs for @p trfm. 0 disarms.
     */
    void
    setPracGuard(unsigned threshold, Tick trfm)
    {
        pracThreshold_ = threshold;
        pracTRFM_ = trfm;
    }

    unsigned pracThreshold() const { return pracThreshold_; }

    /**
     * Arm per-bank refresh timing: a REFpb blocks its bank's ACTs for
     * @p trfcpb. Legality (closed bank, tRP settle) and the per-bank
     * tREFI deadline are checked whether or not this is armed.
     */
    void setPerBankRefresh(Tick trfcpb) { tRFCpb_ = trfcpb; }

  private:
    struct BankState
    {
        bool rowOpen = false;
        std::uint64_t row = 0;
        Tick lastAct = 0;
        Tick lastPre = 0;
        Tick lastColCmd = 0;
        /** End of the last write data into this bank (for tWR). */
        Tick lastWrDataEnd = 0;
        bool everActivated = false;
        bool everPrecharged = false;
        bool everCol = false;
        bool everWrote = false;
        /** ACTs blocked by a bank-scoped refresh (REFpb/REFm). */
        Tick refUntil = 0;
        /** refUntil stems from a REFm (names the violated rule). */
        bool refBusyMitigation = false;
        /** Launch of the last refresh covering this bank. */
        Tick lastRefreshed = 0;
        /** The current refresh lapse has already been reported. */
        bool refOverdueFlagged = false;
        /** PRAC mirror: ACT count per row (armed mode only). */
        std::map<std::uint64_t, unsigned> pracCounts;
        /** A row reached the threshold; next ACT here needs a REFm. */
        bool pracAlert = false;
    };

    struct RankState
    {
        /**
         * Launch ticks of the last activationLimit activates, a ring
         * so tXAW bookkeeping stays O(1) over arbitrarily long runs.
         */
        std::vector<Tick> actRing;
        std::size_t actHead = 0;
        std::size_t actCount = 0;
        Tick lastAct = 0;
        bool everActivated = false;
        Tick refUntil = 0;
        /**
         * Bank-group rules (grouped organisations only; empty
         * otherwise): last same-group column command / activate per
         * group, and the rank-wide last column command for the short
         * cross-group spacing.
         */
        std::vector<Tick> grpLastColCmd;
        std::vector<bool> grpEverCol;
        std::vector<Tick> grpLastAct;
        std::vector<bool> grpEverAct;
        Tick lastColCmd = 0;
        bool everCol = false;
    };

    /** Run one final (ordered) record through the rule engine. */
    void step(const CmdRecord &c);

    void fail(const CmdRecord &c, const char *rule, std::string detail);

    Tick refDeadlineTicks() const;
    void checkRefreshDeadline(const CmdRecord &c);
    void bankRefreshed(BankState &bank, Tick tick);

    DRAMOrg org_;
    DRAMTiming t_;
    double refSlack_ = 9.0;
    unsigned pracThreshold_ = 0;
    Tick pracTRFM_ = 0;
    Tick tRFCpb_ = 0;

    // ----- rule-engine state (valid between reset()s) --------------
    std::vector<std::vector<BankState>> banks_;
    std::vector<RankState> ranks_;
    Tick busFreeAt_ = 0;
    Tick lastWrDataEnd_ = 0;
    Tick lastRdDataEnd_ = 0;
    bool anyWrite_ = false;
    bool anyRead_ = false;
    Tick processedUpTo_ = 0;
    bool anyProcessed_ = false;

    // ----- reorder buffer ------------------------------------------
    struct Seqd
    {
        CmdRecord rec;
        std::uint64_t seq;
    };
    struct SeqdLater
    {
        bool
        operator()(const Seqd &a, const Seqd &b) const
        {
            if (a.rec.tick != b.rec.tick)
                return a.rec.tick > b.rec.tick;
            return a.seq > b.seq; // emission order breaks ties
        }
    };
    std::priority_queue<Seqd, std::vector<Seqd>, SeqdLater> pending_;
    std::uint64_t nextSeq_ = 0;
    /**
     * Safety valve: if the caller never drains, finalise the earliest
     * record once this many are buffered, keeping memory bounded.
     */
    std::size_t maxPending_ = 16384;

    std::vector<ProtocolViolation> violations_;
    std::size_t maxStored_ = 64;
    std::uint64_t violationCount_ = 0;
    std::uint64_t commandsChecked_ = 0;
};

} // namespace dramctrl

#endif // DRAMCTRL_DRAM_PROTOCOL_CHECKER_H
