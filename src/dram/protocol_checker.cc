#include "dram/protocol_checker.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dramctrl {

const char *
toString(DRAMCmd cmd)
{
    switch (cmd) {
      case DRAMCmd::Act: return "ACT";
      case DRAMCmd::Pre: return "PRE";
      case DRAMCmd::Rd: return "RD";
      case DRAMCmd::Wr: return "WR";
      case DRAMCmd::Ref: return "REF";
      case DRAMCmd::RefPb: return "REFpb";
      case DRAMCmd::RefM: return "REFm";
    }
    return "???";
}

std::string
CmdRecord::toString() const
{
    return formatString("%8llu ps %-3s rank %u bank %u row %llu",
                        static_cast<unsigned long long>(tick),
                        dramctrl::toString(cmd), rank, bank,
                        static_cast<unsigned long long>(row));
}

std::string
ProtocolViolation::toString() const
{
    return cmd.toString() + " violates " + rule + ": " + detail;
}

ProtocolChecker::ProtocolChecker(const DRAMOrg &org,
                                 const DRAMTiming &timing)
    : org_(org), t_(timing)
{
    reset();
}

void
ProtocolChecker::reset()
{
    banks_.assign(org_.ranksPerChannel,
                  std::vector<BankState>(org_.banksPerRank));
    ranks_.assign(org_.ranksPerChannel, RankState{});
    for (RankState &r : ranks_) {
        r.actRing.assign(std::max(1u, t_.activationLimit), 0);
        if (org_.hasBankGroups()) {
            r.grpLastColCmd.assign(org_.bankGroupsPerRank, 0);
            r.grpEverCol.assign(org_.bankGroupsPerRank, false);
            r.grpLastAct.assign(org_.bankGroupsPerRank, 0);
            r.grpEverAct.assign(org_.bankGroupsPerRank, false);
        }
    }
    busFreeAt_ = 0;
    lastWrDataEnd_ = 0;
    lastRdDataEnd_ = 0;
    anyWrite_ = false;
    anyRead_ = false;
    processedUpTo_ = 0;
    anyProcessed_ = false;
    pending_ = {};
    nextSeq_ = 0;
    violations_.clear();
    violationCount_ = 0;
    commandsChecked_ = 0;
}

void
ProtocolChecker::fail(const CmdRecord &c, const char *rule,
                      std::string detail)
{
    ++violationCount_;
    if (violations_.size() < maxStored_)
        violations_.push_back(
            ProtocolViolation{c, rule, std::move(detail)});
}

std::vector<ProtocolViolation>
ProtocolChecker::check(const std::vector<CmdRecord> &log)
{
    std::size_t saved_cap = maxStored_;
    maxStored_ = SIZE_MAX;
    reset();

    std::vector<CmdRecord> cmds = log;
    std::stable_sort(cmds.begin(), cmds.end(),
                     [](const CmdRecord &a, const CmdRecord &b) {
                         return a.tick < b.tick;
                     });
    for (const CmdRecord &c : cmds)
        step(c);

    maxStored_ = saved_cap;
    return violations_;
}

void
ProtocolChecker::observe(const CmdRecord &rec)
{
    pending_.push(Seqd{rec, nextSeq_++});
    while (pending_.size() > maxPending_) {
        step(pending_.top().rec);
        pending_.pop();
    }
}

void
ProtocolChecker::drainUpTo(Tick now)
{
    while (!pending_.empty() && pending_.top().rec.tick <= now) {
        step(pending_.top().rec);
        pending_.pop();
    }
}

void
ProtocolChecker::finish()
{
    while (!pending_.empty()) {
        step(pending_.top().rec);
        pending_.pop();
    }
}

Tick
ProtocolChecker::refDeadlineTicks() const
{
    if (t_.tREFI == 0 || refSlack_ <= 0)
        return 0;
    return static_cast<Tick>(
        std::llround(refSlack_ * static_cast<double>(t_.tREFI)));
}

void
ProtocolChecker::checkRefreshDeadline(const CmdRecord &c)
{
    // Per-bank deadline: with a per-bank refresh manager (or
    // mitigation refreshes), rank-level bookkeeping would let a
    // starved bank hide behind its neighbours' REFpb stream. Every
    // command audits all banks of its rank, each with its own overdue
    // latch.
    Tick deadline = refDeadlineTicks();
    if (deadline == 0)
        return;
    // Coalesce: one report per command covering every newly-overdue
    // bank (an all-bank lapse would otherwise flood banksPerRank
    // identical lines), each bank latched until its next refresh.
    unsigned overdue = 0;
    unsigned worst_bank = 0;
    Tick worst_gap = 0;
    for (unsigned b = 0; b < org_.banksPerRank; ++b) {
        BankState &bank = banks_[c.rank][b];
        Tick gap = c.tick - bank.lastRefreshed;
        if (gap > deadline && !bank.refOverdueFlagged) {
            bank.refOverdueFlagged = true;
            ++overdue;
            if (gap > worst_gap) {
                worst_gap = gap;
                worst_bank = b;
            }
        }
    }
    if (overdue > 0) {
        fail(c, "tREFI",
             formatString("%u bank(s) of rank %u past the refresh "
                          "deadline; worst is bank %u at %llu ps "
                          "since last refresh (deadline %llu ps = "
                          "%.1f x tREFI)",
                          overdue, c.rank, worst_bank,
                          static_cast<unsigned long long>(worst_gap),
                          static_cast<unsigned long long>(deadline),
                          refSlack_));
    }
}

void
ProtocolChecker::bankRefreshed(BankState &bank, Tick tick)
{
    bank.lastRefreshed = tick;
    bank.refOverdueFlagged = false;
    bank.pracCounts.clear();
    bank.pracAlert = false;
}

void
ProtocolChecker::step(const CmdRecord &c)
{
    ++commandsChecked_;

    if (anyProcessed_ && c.tick < processedUpTo_) {
        // A record surfaced after later ticks were finalised; either
        // drainUpTo() ran ahead of the emitter or the controller
        // logged a command in its own past. Flag it rather than
        // corrupt the bank state with a backwards step.
        fail(c, "order",
             formatString("command finalised out of order (stream "
                          "already checked up to %llu ps)",
                          static_cast<unsigned long long>(
                              processedUpTo_)));
        return;
    }
    processedUpTo_ = c.tick;
    anyProcessed_ = true;

    if (c.rank >= org_.ranksPerChannel ||
        (c.cmd != DRAMCmd::Ref && c.bank >= org_.banksPerRank)) {
        fail(c, "geometry", "rank/bank out of range");
        return;
    }
    RankState &rank = ranks_[c.rank];
    checkRefreshDeadline(c);

    switch (c.cmd) {
      case DRAMCmd::Act: {
        BankState &bank = banks_[c.rank][c.bank];
        if (bank.rowOpen)
            fail(c, "state", "activate with a row open");
        if (c.tick < bank.refUntil)
            fail(c, bank.refBusyMitigation ? "tRFM" : "tRFCpb",
                 formatString("activate %llu ps into the bank's "
                              "refresh (busy until %llu ps)",
                              static_cast<unsigned long long>(c.tick),
                              static_cast<unsigned long long>(
                                  bank.refUntil)));
        if (pracThreshold_ > 0) {
            if (bank.pracAlert)
                fail(c, "prac",
                     formatString("activate to bank %u with a row at "
                                  "the %u-activation threshold and no "
                                  "mitigation refresh issued",
                                  c.bank, pracThreshold_));
            unsigned &count = bank.pracCounts[c.row];
            ++count;
            if (count >= pracThreshold_)
                bank.pracAlert = true;
        }
        if (bank.everPrecharged && c.tick < bank.lastPre + t_.tRP)
            fail(c, "tRP",
                 formatString("only %llu ps after precharge",
                              static_cast<unsigned long long>(
                                  c.tick - bank.lastPre)));
        if (bank.everActivated &&
            c.tick < bank.lastAct + t_.tRAS + t_.tRP)
            fail(c, "tRC",
                 formatString("only %llu ps after activate",
                              static_cast<unsigned long long>(
                                  c.tick - bank.lastAct)));
        if (c.tick < rank.refUntil)
            fail(c, "tRFC", "activate during refresh");
        if (rank.everActivated && c.tick < rank.lastAct + t_.tRRD)
            fail(c, "tRRD",
                 formatString("only %llu ps after previous "
                              "activate in rank",
                              static_cast<unsigned long long>(
                                  c.tick - rank.lastAct)));
        if (org_.hasBankGroups()) {
            unsigned g = org_.bankGroup(c.bank);
            if (rank.grpEverAct[g] &&
                c.tick < rank.grpLastAct[g] + t_.tRRDLong())
                fail(c, "tRRD_L",
                     formatString("only %llu ps after previous "
                                  "activate in bank group %u",
                                  static_cast<unsigned long long>(
                                      c.tick - rank.grpLastAct[g]),
                                  g));
            rank.grpLastAct[g] = c.tick;
            rank.grpEverAct[g] = true;
        }
        if (t_.activationLimit > 0 &&
            rank.actCount >= t_.activationLimit) {
            // Oldest activate still inside the rolling window.
            Tick window_start = rank.actRing[rank.actHead];
            if (c.tick < window_start + t_.tXAW)
                fail(c, "tXAW",
                     formatString("%u activates within %llu ps",
                                  t_.activationLimit + 1,
                                  static_cast<unsigned long long>(
                                      c.tick - window_start)));
        }
        if (t_.activationLimit > 0) {
            if (rank.actCount < t_.activationLimit) {
                rank.actRing[(rank.actHead + rank.actCount) %
                             rank.actRing.size()] = c.tick;
                ++rank.actCount;
            } else {
                rank.actRing[rank.actHead] = c.tick;
                rank.actHead = (rank.actHead + 1) %
                               rank.actRing.size();
            }
        }
        rank.lastAct = c.tick;
        rank.everActivated = true;
        bank.rowOpen = true;
        bank.row = c.row;
        bank.lastAct = c.tick;
        bank.everActivated = true;
        break;
      }
      case DRAMCmd::Pre: {
        BankState &bank = banks_[c.rank][c.bank];
        if (!bank.rowOpen) {
            fail(c, "state", "precharge with no row open");
        } else {
            if (c.tick < bank.lastAct + t_.tRAS)
                fail(c, "tRAS",
                     formatString("only %llu ps after activate",
                                  static_cast<unsigned long long>(
                                      c.tick - bank.lastAct)));
            if (bank.everWrote &&
                c.tick < bank.lastWrDataEnd + t_.tWR)
                fail(c, "tWR",
                     formatString("only %llu ps after write data",
                                  static_cast<unsigned long long>(
                                      c.tick - bank.lastWrDataEnd)));
        }
        bank.rowOpen = false;
        bank.lastPre = c.tick;
        bank.everPrecharged = true;
        break;
      }
      case DRAMCmd::Rd:
      case DRAMCmd::Wr: {
        BankState &bank = banks_[c.rank][c.bank];
        bool is_read = c.cmd == DRAMCmd::Rd;
        if (!bank.rowOpen) {
            fail(c, "state", "column command to a closed bank");
        } else {
            if (bank.row != c.row)
                fail(c, "state",
                     formatString("row %llu open, row %llu addressed",
                                  static_cast<unsigned long long>(
                                      bank.row),
                                  static_cast<unsigned long long>(
                                      c.row)));
            if (c.tick < bank.lastAct + t_.tRCD)
                fail(c, "tRCD",
                     formatString("only %llu ps after activate",
                                  static_cast<unsigned long long>(
                                      c.tick - bank.lastAct)));
        }
        if (!org_.hasBankGroups()) {
            if (bank.everCol && c.tick < bank.lastColCmd + t_.tBURST)
                fail(c, "tCCD",
                     formatString("only %llu ps after previous column "
                                  "command",
                                  static_cast<unsigned long long>(
                                      c.tick - bank.lastColCmd)));
        } else {
            // Bank groups split the flat tCCD rule: long within a
            // group (which subsumes the same-bank case), short across
            // groups within the rank.
            unsigned g = org_.bankGroup(c.bank);
            if (rank.grpEverCol[g] &&
                c.tick < rank.grpLastColCmd[g] + t_.tCCDLong())
                fail(c, "tCCD_L",
                     formatString("only %llu ps after previous column "
                                  "command in bank group %u",
                                  static_cast<unsigned long long>(
                                      c.tick - rank.grpLastColCmd[g]),
                                  g));
            if (rank.everCol &&
                c.tick < rank.lastColCmd + t_.tCCDShort())
                fail(c, "tCCD_S",
                     formatString("only %llu ps after previous column "
                                  "command in rank",
                                  static_cast<unsigned long long>(
                                      c.tick - rank.lastColCmd)));
        }

        Tick data_start = c.tick + t_.tCL;
        Tick data_end = data_start + t_.tBURST;
        if (data_start < busFreeAt_)
            fail(c, "bus",
                 formatString("data bus busy until %llu ps",
                              static_cast<unsigned long long>(
                                  busFreeAt_)));
        if (data_start < rank.refUntil &&
            c.tick >= rank.refUntil - t_.tRFC)
            fail(c, "tRFC", "data during refresh");
        if (is_read) {
            if (anyWrite_ && c.tick < lastWrDataEnd_ + t_.tWTR)
                fail(c, "tWTR",
                     formatString("read command only %llu ps after "
                                  "write data end",
                                  static_cast<unsigned long long>(
                                      c.tick - lastWrDataEnd_)));
            lastRdDataEnd_ = std::max(lastRdDataEnd_, data_end);
            anyRead_ = true;
        } else {
            if (anyRead_ && data_start < lastRdDataEnd_ + t_.tRTW &&
                lastRdDataEnd_ <= data_start)
                fail(c, "tRTW",
                     formatString("write data only %llu ps after "
                                  "read data end",
                                  static_cast<unsigned long long>(
                                      data_start - lastRdDataEnd_)));
            lastWrDataEnd_ = std::max(lastWrDataEnd_, data_end);
            bank.lastWrDataEnd = data_end;
            bank.everWrote = true;
            anyWrite_ = true;
        }
        busFreeAt_ = std::max(busFreeAt_, data_end);
        bank.lastColCmd = c.tick;
        bank.everCol = true;
        if (org_.hasBankGroups()) {
            unsigned g = org_.bankGroup(c.bank);
            rank.grpLastColCmd[g] = c.tick;
            rank.grpEverCol[g] = true;
            rank.lastColCmd = c.tick;
            rank.everCol = true;
        }
        break;
      }
      case DRAMCmd::Ref: {
        for (unsigned b = 0; b < org_.banksPerRank; ++b) {
            BankState &bank = banks_[c.rank][b];
            if (bank.rowOpen)
                fail(c, "state",
                     formatString("bank %u open at refresh", b));
            if (bank.everPrecharged &&
                c.tick < bank.lastPre + t_.tRP)
                fail(c, "tRP",
                     formatString("refresh only %llu ps after bank "
                                  "%u precharge",
                                  static_cast<unsigned long long>(
                                      c.tick - bank.lastPre),
                                  b));
            bankRefreshed(bank, c.tick);
        }
        rank.refUntil = c.tick + t_.tRFC;
        break;
      }
      case DRAMCmd::RefPb:
      case DRAMCmd::RefM: {
        BankState &bank = banks_[c.rank][c.bank];
        bool mitigation = c.cmd == DRAMCmd::RefM;
        if (bank.rowOpen)
            fail(c, "state",
                 formatString("bank %u open at %s", c.bank,
                              dramctrl::toString(c.cmd)));
        if (bank.everPrecharged && c.tick < bank.lastPre + t_.tRP)
            fail(c, "tRP",
                 formatString("%s only %llu ps after precharge",
                              dramctrl::toString(c.cmd),
                              static_cast<unsigned long long>(
                                  c.tick - bank.lastPre)));
        // REFpb blackout: an armed per-bank refresh manager supplies
        // its tRFCpb; otherwise a timing set with same-bank refresh
        // (tRFCsb) arms the rule on its own.
        Tick busy = mitigation ? pracTRFM_
                               : (tRFCpb_ ? tRFCpb_ : t_.tRFCsb);
        if (busy > 0) {
            bank.refUntil = std::max(bank.refUntil, c.tick + busy);
            bank.refBusyMitigation = mitigation;
        }
        bankRefreshed(bank, c.tick);
        break;
      }
    }
}

} // namespace dramctrl
