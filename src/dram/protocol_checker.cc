#include "dram/protocol_checker.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dramctrl {

const char *
toString(DRAMCmd cmd)
{
    switch (cmd) {
      case DRAMCmd::Act: return "ACT";
      case DRAMCmd::Pre: return "PRE";
      case DRAMCmd::Rd: return "RD";
      case DRAMCmd::Wr: return "WR";
      case DRAMCmd::Ref: return "REF";
    }
    return "???";
}

std::string
CmdRecord::toString() const
{
    return formatString("%8llu ps %-3s rank %u bank %u row %llu",
                        static_cast<unsigned long long>(tick),
                        dramctrl::toString(cmd), rank, bank,
                        static_cast<unsigned long long>(row));
}

std::string
ProtocolViolation::toString() const
{
    return cmd.toString() + " violates " + rule + ": " + detail;
}

ProtocolChecker::ProtocolChecker(const DRAMOrg &org,
                                 const DRAMTiming &timing)
    : org_(org), t_(timing)
{
}

void
ProtocolChecker::fail(std::vector<ProtocolViolation> &out,
                      const CmdRecord &c, const char *rule,
                      std::string detail)
{
    out.push_back(ProtocolViolation{c, rule, std::move(detail)});
}

std::vector<ProtocolViolation>
ProtocolChecker::check(const std::vector<CmdRecord> &log)
{
    std::vector<ProtocolViolation> out;

    std::vector<CmdRecord> cmds = log;
    std::stable_sort(cmds.begin(), cmds.end(),
                     [](const CmdRecord &a, const CmdRecord &b) {
                         return a.tick < b.tick;
                     });

    std::vector<std::vector<BankState>> banks(
        org_.ranksPerChannel,
        std::vector<BankState>(org_.banksPerRank));
    std::vector<RankState> ranks(org_.ranksPerChannel);

    // Channel-wide data bus state.
    Tick bus_free_at = 0;
    Tick last_wr_data_end = 0;
    Tick last_rd_data_end = 0;
    bool any_write = false;
    bool any_read = false;

    for (const CmdRecord &c : cmds) {
        if (c.rank >= org_.ranksPerChannel ||
            (c.cmd != DRAMCmd::Ref && c.bank >= org_.banksPerRank)) {
            fail(out, c, "geometry", "rank/bank out of range");
            continue;
        }
        RankState &rank = ranks[c.rank];

        switch (c.cmd) {
          case DRAMCmd::Act: {
            BankState &bank = banks[c.rank][c.bank];
            if (bank.rowOpen)
                fail(out, c, "state", "activate with a row open");
            if (bank.everPrecharged &&
                c.tick < bank.lastPre + t_.tRP)
                fail(out, c, "tRP",
                     formatString("only %llu ps after precharge",
                                  static_cast<unsigned long long>(
                                      c.tick - bank.lastPre)));
            if (bank.everActivated &&
                c.tick < bank.lastAct + t_.tRAS + t_.tRP)
                fail(out, c, "tRC",
                     formatString("only %llu ps after activate",
                                  static_cast<unsigned long long>(
                                      c.tick - bank.lastAct)));
            if (c.tick < rank.refUntil)
                fail(out, c, "tRFC", "activate during refresh");
            if (!rank.actTimes.empty() &&
                c.tick < rank.actTimes.back() + t_.tRRD)
                fail(out, c, "tRRD",
                     formatString("only %llu ps after previous "
                                  "activate in rank",
                                  static_cast<unsigned long long>(
                                      c.tick -
                                      rank.actTimes.back())));
            if (t_.activationLimit > 0 &&
                rank.actTimes.size() >= t_.activationLimit) {
                Tick window_start =
                    rank.actTimes[rank.actTimes.size() -
                                  t_.activationLimit];
                if (c.tick < window_start + t_.tXAW)
                    fail(out, c, "tXAW",
                         formatString(
                             "%u activates within %llu ps",
                             t_.activationLimit + 1,
                             static_cast<unsigned long long>(
                                 c.tick - window_start)));
            }
            rank.actTimes.push_back(c.tick);
            bank.rowOpen = true;
            bank.row = c.row;
            bank.lastAct = c.tick;
            bank.everActivated = true;
            break;
          }
          case DRAMCmd::Pre: {
            BankState &bank = banks[c.rank][c.bank];
            if (!bank.rowOpen) {
                fail(out, c, "state", "precharge with no row open");
            } else {
                if (c.tick < bank.lastAct + t_.tRAS)
                    fail(out, c, "tRAS",
                         formatString(
                             "only %llu ps after activate",
                             static_cast<unsigned long long>(
                                 c.tick - bank.lastAct)));
                if (bank.everWrote &&
                    c.tick < bank.lastWrDataEnd + t_.tWR)
                    fail(out, c, "tWR",
                         formatString(
                             "only %llu ps after write data",
                             static_cast<unsigned long long>(
                                 c.tick - bank.lastWrDataEnd)));
            }
            bank.rowOpen = false;
            bank.lastPre = c.tick;
            bank.everPrecharged = true;
            break;
          }
          case DRAMCmd::Rd:
          case DRAMCmd::Wr: {
            BankState &bank = banks[c.rank][c.bank];
            bool is_read = c.cmd == DRAMCmd::Rd;
            if (!bank.rowOpen) {
                fail(out, c, "state",
                     "column command to a closed bank");
            } else {
                if (bank.row != c.row)
                    fail(out, c, "state",
                         formatString("row %llu open, row %llu "
                                      "addressed",
                                      static_cast<unsigned long long>(
                                          bank.row),
                                      static_cast<unsigned long long>(
                                          c.row)));
                if (c.tick < bank.lastAct + t_.tRCD)
                    fail(out, c, "tRCD",
                         formatString(
                             "only %llu ps after activate",
                             static_cast<unsigned long long>(
                                 c.tick - bank.lastAct)));
            }
            if (bank.everCol &&
                c.tick < bank.lastColCmd + t_.tBURST)
                fail(out, c, "tCCD",
                     formatString("only %llu ps after previous "
                                  "column command",
                                  static_cast<unsigned long long>(
                                      c.tick - bank.lastColCmd)));

            Tick data_start = c.tick + t_.tCL;
            Tick data_end = data_start + t_.tBURST;
            if (data_start < bus_free_at)
                fail(out, c, "bus",
                     formatString("data bus busy until %llu ps",
                                  static_cast<unsigned long long>(
                                      bus_free_at)));
            if (data_start < rank.refUntil && c.tick >= rank.refUntil - t_.tRFC)
                fail(out, c, "tRFC", "data during refresh");
            if (is_read) {
                if (any_write &&
                    c.tick < last_wr_data_end + t_.tWTR)
                    fail(out, c, "tWTR",
                         formatString(
                             "read command only %llu ps after "
                             "write data end",
                             static_cast<unsigned long long>(
                                 c.tick - last_wr_data_end)));
                last_rd_data_end = std::max(last_rd_data_end,
                                            data_end);
                any_read = true;
            } else {
                if (any_read &&
                    data_start < last_rd_data_end + t_.tRTW &&
                    last_rd_data_end <= data_start)
                    fail(out, c, "tRTW",
                         formatString(
                             "write data only %llu ps after read "
                             "data end",
                             static_cast<unsigned long long>(
                                 data_start - last_rd_data_end)));
                last_wr_data_end = std::max(last_wr_data_end,
                                            data_end);
                bank.lastWrDataEnd = data_end;
                bank.everWrote = true;
                any_write = true;
            }
            bus_free_at = std::max(bus_free_at, data_end);
            bank.lastColCmd = c.tick;
            bank.everCol = true;
            break;
          }
          case DRAMCmd::Ref: {
            for (unsigned b = 0; b < org_.banksPerRank; ++b) {
                BankState &bank = banks[c.rank][b];
                if (bank.rowOpen)
                    fail(out, c, "state",
                         formatString("bank %u open at refresh", b));
                if (bank.everPrecharged &&
                    c.tick < bank.lastPre + t_.tRP)
                    fail(out, c, "tRP",
                         formatString(
                             "refresh only %llu ps after bank %u "
                             "precharge",
                             static_cast<unsigned long long>(
                                 c.tick - bank.lastPre),
                             b));
            }
            rank.refUntil = c.tick + t_.tRFC;
            break;
          }
        }
    }
    return out;
}

} // namespace dramctrl
