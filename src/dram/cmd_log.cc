#include "dram/cmd_log.hh"

namespace dramctrl {

void
CmdLogger::clear()
{
    log_.clear();
    totalRecorded_ = 0;
    dropped_ = 0;
    if (streaming_)
        stream_.flush();
}

bool
CmdLogger::streamTo(const std::string &path)
{
    stream_.open(path);
    if (!stream_.is_open())
        return false;
    streaming_ = true;
    for (const CmdRecord &rec : log_)
        stream_ << rec.toString() << '\n';
    log_.clear();
    return true;
}

void
CmdLogger::recordSlow(const CmdRecord &rec)
{
    if (streaming_) {
        stream_ << rec.toString() << '\n';
        return;
    }
    ++dropped_;
}

} // namespace dramctrl
