/**
 * @file
 * Controller plugin chain.
 *
 * A CtrlPlugin layers an orthogonal concern — ECC, RowHammer
 * mitigation, refresh management — onto a DRAM controller without
 * forking the controller itself (the decomposition argued by
 * Ramulator 2; see docs/PLUGINS.md). Plugins are registered as an
 * ordered chain built from DRAMCtrlConfig::plugins and receive hooks
 * from both controller models at:
 *
 *  - request enqueue     (onEnqueue, when a packet is accepted)
 *  - command issue       (onCommand, every ACT/PRE/RD/WR/REF/... the
 *                         controller launches, in emission order)
 *  - command completion  (onBurstComplete, when a column burst's data
 *                         transfer finishes)
 *  - stats dump          (onStatsDump, before the stats tree prints)
 *
 * Each plugin owns a stats::Group child of the controller's group, so
 * its counters flow into stats dumps, the golden corpus, the metrics
 * registry and checkpoints like any controller statistic. Non-stat
 * plugin state checkpoints through PluginChain::serialize() inside the
 * controller's section, under "plugin.<kind>.*" keys with a per-plugin
 * version tag.
 *
 * Plugins are passive observers except where a controller explicitly
 * consults them: PracPlugin::mitigationPending() gates activates (the
 * controller issues a DRAMCmd::RefM first) and a per-bank
 * RefreshManager replaces the all-bank refresh schedule in the event
 * model.
 */

#ifndef DRAMCTRL_DRAM_PLUGIN_PLUGIN_H
#define DRAMCTRL_DRAM_PLUGIN_PLUGIN_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dram/cmd_log.hh"
#include "dram/dram_config.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace dramctrl {

namespace ckpt {
class CkptOut;
class CkptIn;
} // namespace ckpt

class ProtocolChecker;

namespace plugin {

/** Request-enqueue hook payload. */
struct EnqueueInfo
{
    bool isRead = true;
    Addr addr = 0;
    unsigned size = 0;
    Tick tick = 0;
};

/** Column-burst completion hook payload. */
struct BurstInfo
{
    bool isRead = true;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    std::uint64_t col = 0;
    /** Tick the burst's data transfer completes. */
    Tick doneTick = 0;
};

class CtrlPlugin
{
  public:
    virtual ~CtrlPlugin() = default;

    CtrlPlugin(const CtrlPlugin &) = delete;
    CtrlPlugin &operator=(const CtrlPlugin &) = delete;

    /** Stable kind string; matches PluginSpec::kind. */
    virtual const char *kind() const = 0;

    virtual void onEnqueue(const EnqueueInfo &) {}
    virtual void onCommand(const CmdRecord &) {}
    virtual void onBurstComplete(const BurstInfo &) {}
    virtual void onStatsDump() {}

    /** Version tag written with this plugin's checkpoint state. */
    virtual std::uint32_t ckptVersion() const { return 1; }

    /**
     * Write non-stat state under @p prefix ("plugin.<kind>.") into the
     * controller section currently open on @p out. Statistics live in
     * the stats tree and checkpoint there; only extra state (counter
     * tables, rotation indices, ...) goes here.
     */
    virtual void serialize(ckpt::CkptOut &out,
                           const std::string &prefix) const;
    virtual void unserialize(ckpt::CkptIn &in,
                             const std::string &prefix);

    /** Requests accepted while this plugin was attached. */
    std::uint64_t enqueuesSeen() const { return enqueuesSeen_; }

  protected:
    CtrlPlugin() = default;

    /** Derived onEnqueue() overrides should call through. */
    void noteEnqueue() { ++enqueuesSeen_; }

  private:
    std::uint64_t enqueuesSeen_ = 0;

    friend class PluginChain;
};

/**
 * ECC/EDC with seeded bit-error injection.
 *
 * Every read burst is split into codewords of dataBits + checkBits
 * bits. For each codeword a deterministic hash of (seed, rank, bank,
 * row, col, codeword index) drives an inverse-CDF binomial draw of the
 * number of injected bit errors at the configured raw bit error rate;
 * the code then corrects up to eccCorrectBits errors, detects up to
 * eccDetectBits, and anything beyond escapes silently. The draw
 * depends only on the codeword's address, never on arrival order, so
 * the counters are deterministic per model and checkpoint-stable.
 *
 * Conservation law (checked by the differential runner and the
 * property test): wordsWithErrors == corrected + detected + escaped,
 * and wordsProcessed == read bursts from DRAM x words per burst.
 */
class EccPlugin : public CtrlPlugin
{
  public:
    EccPlugin(const PluginSpec &spec, const DRAMOrg &org,
              stats::Group &parent);

    const char *kind() const override { return "ecc"; }

    void onEnqueue(const EnqueueInfo &e) override;
    void onBurstComplete(const BurstInfo &b) override;

    unsigned codewordBits() const { return codewordBits_; }
    unsigned wordsPerBurst() const { return wordsPerBurst_; }

    std::uint64_t wordsProcessed() const
    {
        return static_cast<std::uint64_t>(stats_.wordsProcessed.value());
    }
    std::uint64_t wordsWithErrors() const
    {
        return static_cast<std::uint64_t>(stats_.wordsWithErrors.value());
    }
    std::uint64_t correctedWords() const
    {
        return static_cast<std::uint64_t>(stats_.correctedWords.value());
    }
    std::uint64_t detectedWords() const
    {
        return static_cast<std::uint64_t>(stats_.detectedWords.value());
    }
    std::uint64_t escapedWords() const
    {
        return static_cast<std::uint64_t>(stats_.escapedWords.value());
    }
    std::uint64_t bitErrorsInjected() const
    {
        return static_cast<std::uint64_t>(
            stats_.bitErrorsInjected.value());
    }

  private:
    /** Injected bit errors for one codeword (inverse binomial CDF). */
    unsigned drawErrors(std::uint64_t key) const;

    PluginSpec spec_;
    unsigned codewordBits_;
    unsigned wordsPerBurst_;

    stats::Group group_;
    struct Stats
    {
        explicit Stats(stats::Group &g);
        stats::Scalar wordsProcessed;
        stats::Scalar wordsWithErrors;
        stats::Scalar bitErrorsInjected;
        stats::Scalar correctedWords;
        stats::Scalar detectedWords;
        stats::Scalar escapedWords;
        stats::Scalar wordsEncoded;
    } stats_;
};

/**
 * PRAC-style activation-counting RowHammer mitigation.
 *
 * Counts ACTs per (bank, row). When a row's count reaches the
 * configured threshold the bank raises an alert; the owning controller
 * must issue a DRAMCmd::RefM mitigation refresh to that bank before
 * its next ACT (the checker enforces exactly this deadline). Any
 * refresh command covering a bank — REF, REFpb or REFm — resets that
 * bank's counters and alert, which both bounds the tracking tables and
 * models the victim rows being restored.
 */
class PracPlugin : public CtrlPlugin
{
  public:
    PracPlugin(const PluginSpec &spec, const DRAMOrg &org,
               stats::Group &parent);

    const char *kind() const override { return "prac"; }

    void onEnqueue(const EnqueueInfo &e) override;
    void onCommand(const CmdRecord &rec) override;
    void onStatsDump() override;

    /** The controller must mitigate before the next ACT to @p flat. */
    bool
    mitigationPending(unsigned flat) const
    {
        return pending_[flat] != 0;
    }

    unsigned threshold() const { return spec_.pracThreshold; }
    Tick tRFM() const { return spec_.tRFM; }

    /** Current ACT count of (flat bank, row); 0 when untracked. */
    unsigned rowCount(unsigned flat, std::uint64_t row) const;

    std::uint64_t alertsRaised() const
    {
        return static_cast<std::uint64_t>(stats_.alertsRaised.value());
    }
    std::uint64_t mitigations() const
    {
        return static_cast<std::uint64_t>(stats_.mitigations.value());
    }

    void serialize(ckpt::CkptOut &out,
                   const std::string &prefix) const override;
    void unserialize(ckpt::CkptIn &in,
                     const std::string &prefix) override;

  private:
    void clearBank(unsigned flat);

    PluginSpec spec_;
    unsigned banksPerRank_;

    /** Per flat bank: ACT count per row (ordered for checkpoints). */
    std::vector<std::map<std::uint64_t, unsigned>> counts_;
    /** Per flat bank: alert raised, mitigation outstanding. */
    std::vector<std::uint8_t> pending_;

    stats::Group group_;
    struct Stats
    {
        explicit Stats(stats::Group &g);
        stats::Scalar actsObserved;
        stats::Scalar alertsRaised;
        stats::Scalar mitigations;
        stats::Scalar rowsTracked;
    } stats_;
};

/**
 * Pluggable refresh manager: the all-bank baseline policy routed
 * through a plugin ("refmgr"), or per-bank rotating refresh
 * ("refmgr-pb", event model only). The controller consults interval()
 * for its refresh schedule; per-bank mode additionally rotates
 * advance() through the banks, issuing DRAMCmd::RefPb to one bank per
 * rank each interval so every bank is refreshed once per tREFI.
 */
class RefreshManager : public CtrlPlugin
{
  public:
    RefreshManager(const PluginSpec &spec, const DRAMOrg &org,
                   stats::Group &parent, bool per_bank);

    const char *kind() const override
    {
        return perBank_ ? "refmgr-pb" : "refmgr";
    }

    bool perBank() const { return perBank_; }
    Tick tRFCpb() const { return spec_.tRFCpb; }

    /** Spacing of refresh events under this manager. */
    Tick interval(const DRAMCtrlConfig &cfg) const;

    /** Bank index the next per-bank refresh targets. */
    unsigned nextBank() const { return rotation_; }

    /** Consume the current rotation slot and move to the next bank. */
    unsigned advance();

    void onEnqueue(const EnqueueInfo &e) override;
    void onCommand(const CmdRecord &rec) override;

    void serialize(ckpt::CkptOut &out,
                   const std::string &prefix) const override;
    void unserialize(ckpt::CkptIn &in,
                     const std::string &prefix) override;

  private:
    PluginSpec spec_;
    bool perBank_;
    unsigned banksPerRank_;
    unsigned rotation_ = 0;

    stats::Group group_;
    struct Stats
    {
        explicit Stats(stats::Group &g);
        stats::Scalar allBankRefs;
        stats::Scalar perBankRefs;
        stats::Scalar mitigationRefs;
    } stats_;
};

/**
 * The ordered plugin chain a controller owns. Dispatch order is
 * registration order. Movable, not copyable.
 */
class PluginChain
{
  public:
    PluginChain() = default;
    PluginChain(PluginChain &&) = default;
    PluginChain &operator=(PluginChain &&) = default;

    /** Append @p p; fatal() on a duplicate kind. */
    void add(std::unique_ptr<CtrlPlugin> p);

    bool empty() const { return plugins_.empty(); }
    std::size_t size() const { return plugins_.size(); }

    const std::vector<std::unique_ptr<CtrlPlugin>> &
    plugins() const
    {
        return plugins_;
    }

    void
    onEnqueue(const EnqueueInfo &e)
    {
        for (auto &p : plugins_)
            p->onEnqueue(e);
    }

    void
    onCommand(const CmdRecord &rec)
    {
        for (auto &p : plugins_)
            p->onCommand(rec);
    }

    void
    onBurstComplete(const BurstInfo &b)
    {
        for (auto &p : plugins_)
            p->onBurstComplete(b);
    }

    void
    onStatsDump()
    {
        for (auto &p : plugins_)
            p->onStatsDump();
    }

    /** Typed accessors; nullptr when the kind is not in the chain. */
    EccPlugin *ecc() const { return ecc_; }
    PracPlugin *prac() const { return prac_; }
    RefreshManager *refreshManager() const { return refMgr_; }

    /**
     * Checkpoint every plugin's state into the section currently open
     * on @p out, under "plugin.<kind>.*" keys plus a per-plugin
     * version tag. unserialize() fatal()s on a version mismatch.
     */
    void serialize(ckpt::CkptOut &out) const;
    void unserialize(ckpt::CkptIn &in);

  private:
    std::vector<std::unique_ptr<CtrlPlugin>> plugins_;
    EccPlugin *ecc_ = nullptr;
    PracPlugin *prac_ = nullptr;
    RefreshManager *refMgr_ = nullptr;
};

/**
 * Build the chain cfg.plugins describes, parenting plugin statistics
 * under @p stat_parent. @p cycle_model rejects event-only plugins
 * (refmgr-pb) with a fatal() naming @p owner.
 */
PluginChain buildChain(const DRAMCtrlConfig &cfg,
                       stats::Group &stat_parent, bool cycle_model,
                       const std::string &owner);

/**
 * Arm @p checker with the plugin-derived invariants of @p cfg: the
 * PRAC mitigation deadline and the per-bank refresh timing. No-op for
 * a plugin-free config.
 */
void armChecker(ProtocolChecker &checker, const DRAMCtrlConfig &cfg);

/**
 * Parse a comma-separated plugin list ("ecc,prac,refmgr") into
 * cfg.plugins (appending specs with default parameters).
 * @return false with @p err set on an unknown kind.
 */
bool parsePluginList(const std::string &list, DRAMCtrlConfig &cfg,
                     std::string &err);

} // namespace plugin
} // namespace dramctrl

#endif // DRAMCTRL_DRAM_PLUGIN_PLUGIN_H
