#include "dram/plugin/plugin.hh"

#include <algorithm>
#include <cmath>

#include "ckpt/ckpt.hh"
#include "dram/protocol_checker.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace plugin {

namespace {

/** splitmix64 finaliser — decorrelates the packed address key. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a 64-bit hash. */
double
hash01(std::uint64_t x)
{
    return static_cast<double>(mix64(x) >> 11) * 0x1.0p-53;
}

} // namespace

void
CtrlPlugin::serialize(ckpt::CkptOut &, const std::string &) const
{}

void
CtrlPlugin::unserialize(ckpt::CkptIn &, const std::string &)
{}

// ---------------------------------------------------------------- ECC

EccPlugin::Stats::Stats(stats::Group &g)
    : wordsProcessed(&g, "wordsProcessed",
                     "ECC codewords decoded on read bursts"),
      wordsWithErrors(&g, "wordsWithErrors",
                      "codewords with at least one injected error"),
      bitErrorsInjected(&g, "bitErrorsInjected",
                        "raw bit errors injected"),
      correctedWords(&g, "correctedWords",
                     "codewords corrected (errors <= correct bits)"),
      detectedWords(&g, "detectedWords",
                    "codewords detected uncorrectable"),
      escapedWords(&g, "escapedWords",
                   "codewords with silently escaping errors"),
      wordsEncoded(&g, "wordsEncoded",
                   "ECC codewords encoded on write bursts")
{}

EccPlugin::EccPlugin(const PluginSpec &spec, const DRAMOrg &org,
                     stats::Group &parent)
    : spec_(spec), codewordBits_(spec.eccDataBits + spec.eccCheckBits),
      group_("ecc", &parent), stats_(group_)
{
    std::uint64_t burst_bits = org.burstSize() * 8;
    wordsPerBurst_ = static_cast<unsigned>(
        (burst_bits + spec.eccDataBits - 1) / spec.eccDataBits);
}

unsigned
EccPlugin::drawErrors(std::uint64_t key) const
{
    if (spec_.eccBer <= 0.0)
        return 0;
    const double p = spec_.eccBer;
    const unsigned n = codewordBits_;
    const double u = hash01(key ^ spec_.eccSeed);

    // Inverse-CDF binomial draw: walk the pmf upward from k = 0. For
    // the small bit error rates ECC is built for this terminates after
    // one or two steps.
    double pmf = std::pow(1.0 - p, static_cast<double>(n));
    double cdf = pmf;
    unsigned k = 0;
    while (u >= cdf && k < n) {
        pmf *= (static_cast<double>(n - k) /
                static_cast<double>(k + 1)) *
               (p / (1.0 - p));
        cdf += pmf;
        ++k;
        if (pmf <= 0.0)
            break;
    }
    return k;
}

void
EccPlugin::onEnqueue(const EnqueueInfo &)
{
    noteEnqueue();
}

void
EccPlugin::onBurstComplete(const BurstInfo &b)
{
    if (!b.isRead) {
        stats_.wordsEncoded += wordsPerBurst_;
        return;
    }
    // Pack the burst's DRAM coordinates into the injection key so the
    // draw is a pure function of the stored location, not of arrival
    // order: both models and any resumed run see identical errors.
    std::uint64_t base = (static_cast<std::uint64_t>(b.rank) << 58) ^
                         (static_cast<std::uint64_t>(b.bank) << 50) ^
                         (b.row << 16) ^ b.col;
    for (unsigned w = 0; w < wordsPerBurst_; ++w) {
        unsigned k = drawErrors(mix64(base) + w);
        ++stats_.wordsProcessed;
        if (k == 0)
            continue;
        ++stats_.wordsWithErrors;
        stats_.bitErrorsInjected += k;
        if (k <= spec_.eccCorrectBits)
            ++stats_.correctedWords;
        else if (k <= spec_.eccDetectBits)
            ++stats_.detectedWords;
        else
            ++stats_.escapedWords;
    }
}

// --------------------------------------------------------------- PRAC

PracPlugin::Stats::Stats(stats::Group &g)
    : actsObserved(&g, "actsObserved", "activate commands counted"),
      alertsRaised(&g, "alertsRaised",
                   "rows that reached the activation threshold"),
      mitigations(&g, "mitigations",
                  "mitigation refreshes (REFm) issued"),
      rowsTracked(&g, "rowsTracked",
                  "rows with a live activation count (at stats dump)")
{}

PracPlugin::PracPlugin(const PluginSpec &spec, const DRAMOrg &org,
                       stats::Group &parent)
    : spec_(spec), banksPerRank_(org.banksPerRank),
      counts_(org.totalBanks()), pending_(org.totalBanks(), 0),
      group_("prac", &parent), stats_(group_)
{}

void
PracPlugin::onEnqueue(const EnqueueInfo &)
{
    noteEnqueue();
}

void
PracPlugin::clearBank(unsigned flat)
{
    counts_[flat].clear();
    pending_[flat] = 0;
}

unsigned
PracPlugin::rowCount(unsigned flat, std::uint64_t row) const
{
    auto it = counts_[flat].find(row);
    return it == counts_[flat].end() ? 0 : it->second;
}

void
PracPlugin::onCommand(const CmdRecord &rec)
{
    switch (rec.cmd) {
      case DRAMCmd::Act: {
        unsigned flat = rec.rank * banksPerRank_ + rec.bank;
        ++stats_.actsObserved;
        unsigned &count = counts_[flat][rec.row];
        ++count;
        if (count == spec_.pracThreshold) {
            pending_[flat] = 1;
            ++stats_.alertsRaised;
        }
        break;
      }
      case DRAMCmd::Ref:
        // An all-bank refresh restores every row of the rank.
        for (unsigned b = 0; b < banksPerRank_; ++b)
            clearBank(rec.rank * banksPerRank_ + b);
        break;
      case DRAMCmd::RefM:
        ++stats_.mitigations;
        [[fallthrough]];
      case DRAMCmd::RefPb:
        clearBank(rec.rank * banksPerRank_ + rec.bank);
        break;
      default:
        break;
    }
}

void
PracPlugin::onStatsDump()
{
    std::uint64_t rows = 0;
    for (const auto &bank : counts_)
        rows += bank.size();
    stats_.rowsTracked = static_cast<double>(rows);
}

void
PracPlugin::serialize(ckpt::CkptOut &out,
                      const std::string &prefix) const
{
    std::vector<std::uint64_t> pend(pending_.begin(), pending_.end());
    out.putU64Vec(prefix + "pending", pend);
    // One flat [row, count, row, count, ...] vector per bank; the
    // std::map iteration order makes it deterministic.
    for (std::size_t flat = 0; flat < counts_.size(); ++flat) {
        std::vector<std::uint64_t> rows;
        rows.reserve(counts_[flat].size() * 2);
        for (const auto &[row, count] : counts_[flat]) {
            rows.push_back(row);
            rows.push_back(count);
        }
        out.putU64Vec(prefix + "counts" + std::to_string(flat), rows);
    }
}

void
PracPlugin::unserialize(ckpt::CkptIn &in, const std::string &prefix)
{
    const auto &pend = in.getU64Vec(prefix + "pending");
    if (pend.size() != pending_.size())
        fatal("prac checkpoint has %zu banks, config has %zu",
              pend.size(), pending_.size());
    for (std::size_t i = 0; i < pend.size(); ++i)
        pending_[i] = static_cast<std::uint8_t>(pend[i]);
    for (std::size_t flat = 0; flat < counts_.size(); ++flat) {
        counts_[flat].clear();
        const auto &rows =
            in.getU64Vec(prefix + "counts" + std::to_string(flat));
        for (std::size_t i = 0; i + 1 < rows.size(); i += 2)
            counts_[flat][rows[i]] =
                static_cast<unsigned>(rows[i + 1]);
    }
}

// ---------------------------------------------------- refresh manager

RefreshManager::Stats::Stats(stats::Group &g)
    : allBankRefs(&g, "allBankRefs", "all-bank REF commands observed"),
      perBankRefs(&g, "perBankRefs", "per-bank REFpb commands issued"),
      mitigationRefs(&g, "mitigationRefs",
                     "mitigation REFm commands observed")
{}

RefreshManager::RefreshManager(const PluginSpec &spec,
                               const DRAMOrg &org,
                               stats::Group &parent, bool per_bank)
    : spec_(spec), perBank_(per_bank), banksPerRank_(org.banksPerRank),
      group_(per_bank ? "refmgr_pb" : "refmgr", &parent),
      stats_(group_)
{}

Tick
RefreshManager::interval(const DRAMCtrlConfig &cfg) const
{
    Tick refi = cfg.effectiveREFI();
    if (!perBank_)
        return refi;
    // One REFpb per rank per slot, rotating: every bank refreshed
    // once per tREFI.
    return std::max<Tick>(refi / banksPerRank_, 1);
}

unsigned
RefreshManager::advance()
{
    unsigned bank = rotation_;
    rotation_ = (rotation_ + 1) % banksPerRank_;
    return bank;
}

void
RefreshManager::onEnqueue(const EnqueueInfo &)
{
    noteEnqueue();
}

void
RefreshManager::onCommand(const CmdRecord &rec)
{
    switch (rec.cmd) {
      case DRAMCmd::Ref:
        ++stats_.allBankRefs;
        break;
      case DRAMCmd::RefPb:
        ++stats_.perBankRefs;
        break;
      case DRAMCmd::RefM:
        ++stats_.mitigationRefs;
        break;
      default:
        break;
    }
}

void
RefreshManager::serialize(ckpt::CkptOut &out,
                          const std::string &prefix) const
{
    out.putU64(prefix + "rotation", rotation_);
}

void
RefreshManager::unserialize(ckpt::CkptIn &in,
                            const std::string &prefix)
{
    rotation_ = static_cast<unsigned>(in.getU64(prefix + "rotation"));
}

// ---------------------------------------------------------- the chain

void
PluginChain::add(std::unique_ptr<CtrlPlugin> p)
{
    for (const auto &existing : plugins_) {
        if (std::string(existing->kind()) == p->kind())
            fatal("plugin '%s' registered twice on one controller",
                  p->kind());
    }
    if (auto *e = dynamic_cast<EccPlugin *>(p.get()))
        ecc_ = e;
    if (auto *pr = dynamic_cast<PracPlugin *>(p.get()))
        prac_ = pr;
    if (auto *rm = dynamic_cast<RefreshManager *>(p.get())) {
        if (refMgr_ != nullptr)
            fatal("two refresh manager plugins on one controller");
        refMgr_ = rm;
    }
    plugins_.push_back(std::move(p));
}

void
PluginChain::serialize(ckpt::CkptOut &out) const
{
    for (const auto &p : plugins_) {
        std::string prefix = std::string("plugin.") + p->kind() + ".";
        out.putU64(prefix + "version", p->ckptVersion());
        out.putU64(prefix + "enqueues", p->enqueuesSeen_);
        p->serialize(out, prefix);
    }
}

void
PluginChain::unserialize(ckpt::CkptIn &in)
{
    for (const auto &p : plugins_) {
        std::string prefix = std::string("plugin.") + p->kind() + ".";
        auto version = in.getU64(prefix + "version");
        if (version != p->ckptVersion())
            fatal("checkpoint holds %s plugin state version %llu, "
                  "this build expects %u",
                  p->kind(),
                  static_cast<unsigned long long>(version),
                  p->ckptVersion());
        p->enqueuesSeen_ = in.getU64(prefix + "enqueues");
        p->unserialize(in, prefix);
    }
}

// ------------------------------------------------------------ helpers

PluginChain
buildChain(const DRAMCtrlConfig &cfg, stats::Group &stat_parent,
           bool cycle_model, const std::string &owner)
{
    PluginChain chain;
    for (const PluginSpec &spec : cfg.plugins) {
        if (spec.kind == "ecc") {
            chain.add(std::make_unique<EccPlugin>(spec, cfg.org,
                                                  stat_parent));
        } else if (spec.kind == "prac") {
            chain.add(std::make_unique<PracPlugin>(spec, cfg.org,
                                                   stat_parent));
        } else if (spec.kind == "refmgr") {
            chain.add(std::make_unique<RefreshManager>(
                spec, cfg.org, stat_parent, false));
        } else if (spec.kind == "refmgr-pb") {
            if (cycle_model)
                fatal("%s: the refmgr-pb plugin is event model only "
                      "(the cycle comparator refreshes all banks, "
                      "like DRAMSim2)",
                      owner.c_str());
            chain.add(std::make_unique<RefreshManager>(
                spec, cfg.org, stat_parent, true));
        } else {
            fatal("%s: unknown plugin kind '%s'", owner.c_str(),
                  spec.kind.c_str());
        }
    }
    return chain;
}

void
armChecker(ProtocolChecker &checker, const DRAMCtrlConfig &cfg)
{
    if (const PluginSpec *prac = cfg.findPlugin("prac"))
        checker.setPracGuard(prac->pracThreshold, prac->tRFM);
    if (const PluginSpec *pb = cfg.findPlugin("refmgr-pb"))
        checker.setPerBankRefresh(pb->tRFCpb);
}

bool
parsePluginList(const std::string &list, DRAMCtrlConfig &cfg,
                std::string &err)
{
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        std::string kind =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (!kind.empty()) {
            if (kind != "ecc" && kind != "prac" && kind != "refmgr" &&
                kind != "refmgr-pb") {
                err = "unknown plugin '" + kind +
                      "' (known: ecc, prac, refmgr, refmgr-pb)";
                return false;
            }
            PluginSpec spec;
            spec.kind = kind;
            cfg.plugins.push_back(spec);
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

} // namespace plugin
} // namespace dramctrl
