/**
 * @file
 * Ready-made controller configurations for the memories used in the
 * paper.
 *
 * ddr3_1333() matches the validation setup of Section III (2 Gbit, 8x8
 * devices, 666 MHz). The other three implement Table IV for the future
 * system exploration of Section IV-B: all three offer 12.8 GByte/s, as
 *
 *   DDR3-1600:  1 channel  x 64 bit x 1600 MT/s
 *   LPDDR3:     2 channels x 32 bit x 1600 MT/s
 *   WideIO:     4 channels x 128 bit x 200 MT/s (SDR)
 *
 * hmcVault() approximates one vault of a Hybrid Memory Cube; Section
 * II-F notes an HMC model is "only a matter of combining the crossbar
 * model with 16 instances of our controller model".
 *
 * Note on tREFI: the paper's Table IV prints refresh intervals whose
 * units are garbled in the available text; the values used here are the
 * JEDEC ones (7.8 us for DDR3 and WideIO, 3.9 us for LPDDR3), which is
 * what the original gem5 configurations shipped.
 */

#ifndef DRAMCTRL_DRAM_DRAM_PRESETS_H
#define DRAMCTRL_DRAM_DRAM_PRESETS_H

#include <functional>
#include <string>
#include <vector>

#include "dram/dram_config.hh"

namespace dramctrl {
namespace presets {

/** DDR3-1333 x64: the Section III validation device. */
DRAMCtrlConfig ddr3_1333();

/** DDR3-1600 x64, one channel of 12.8 GB/s (Table IV column 1). */
DRAMCtrlConfig ddr3_1600();

/** LPDDR3-1600 x32, one of two channels (Table IV column 2). */
DRAMCtrlConfig lpddr3_1600();

/** WideIO-200 x128 SDR, one of four channels (Table IV column 3). */
DRAMCtrlConfig wideio_200();

/** One HMC-like vault: narrow, fast, many-channel stacked DRAM. */
DRAMCtrlConfig hmcVault();

/** DDR4-2400 x64 with four bank groups (tCCD_L/S, tRRD_L/S). */
DRAMCtrlConfig ddr4_2400();

/** LPDDR4-3200 x16 with same-bank refresh (tRFCsb). */
DRAMCtrlConfig lpddr4_3200();

/** One HBM2 pseudochannel: bank groups + same-bank refresh. */
DRAMCtrlConfig hbm2();

/** Factory producing a fully-checked controller configuration. */
using PresetFactory = std::function<DRAMCtrlConfig()>;

/**
 * Register a preset under @p name (Ramulator-2 style extension point).
 * Later registrations of an existing name replace the factory in
 * place, so tools can shadow a builtin with a file-loaded config;
 * fresh names append in registration order, which is the order
 * names() reports.
 */
void registerPreset(const std::string &name, PresetFactory factory);

/** Look a preset up by name; fatal() on unknown names. */
DRAMCtrlConfig byName(const std::string &name);

/** True when @p name resolves to a registered preset. */
bool hasPreset(const std::string &name);

/** All preset names in registration order, builtins first. */
std::vector<std::string> names();

} // namespace presets
} // namespace dramctrl

#endif // DRAMCTRL_DRAM_DRAM_PRESETS_H
