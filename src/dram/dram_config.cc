#include "dram/dram_config.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dramctrl {

const char *
toString(AddrMapping m)
{
    switch (m) {
      case AddrMapping::RoRaBaCoCh: return "RoRaBaCoCh";
      case AddrMapping::RoRaBaChCo: return "RoRaBaChCo";
      case AddrMapping::RoCoRaBaCh: return "RoCoRaBaCh";
    }
    return "InvalidMapping";
}

const char *
toString(PagePolicy p)
{
    switch (p) {
      case PagePolicy::Open: return "open";
      case PagePolicy::OpenAdaptive: return "open_adaptive";
      case PagePolicy::Closed: return "closed";
      case PagePolicy::ClosedAdaptive: return "closed_adaptive";
    }
    return "InvalidPolicy";
}

const char *
toString(SchedPolicy s)
{
    switch (s) {
      case SchedPolicy::Fcfs: return "fcfs";
      case SchedPolicy::FrFcfs: return "frfcfs";
      case SchedPolicy::FrFcfsPrio: return "frfcfs_prio";
    }
    return "InvalidPolicy";
}

bool
addrMappingFromString(const std::string &name, AddrMapping &out)
{
    for (AddrMapping m : {AddrMapping::RoRaBaCoCh,
                          AddrMapping::RoRaBaChCo,
                          AddrMapping::RoCoRaBaCh}) {
        if (name == toString(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

bool
pagePolicyFromString(const std::string &name, PagePolicy &out)
{
    for (PagePolicy p : {PagePolicy::Open, PagePolicy::OpenAdaptive,
                         PagePolicy::Closed,
                         PagePolicy::ClosedAdaptive}) {
        if (name == toString(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

bool
schedPolicyFromString(const std::string &name, SchedPolicy &out)
{
    for (SchedPolicy s : {SchedPolicy::Fcfs, SchedPolicy::FrFcfs,
                          SchedPolicy::FrFcfsPrio}) {
        if (name == toString(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

void
DRAMOrg::check() const
{
    if (burstLength == 0 || deviceBusWidth == 0 || devicesPerRank == 0)
        fatal("DRAM organisation has a zero burst/width/devices field");
    if (!isPowerOf2(ranksPerChannel) || !isPowerOf2(banksPerRank))
        fatal("rank (%u) and bank (%u) counts must be powers of two",
              ranksPerChannel, banksPerRank);
    if (!isPowerOf2(burstSize()))
        fatal("burst size %llu is not a power of two",
              static_cast<unsigned long long>(burstSize()));
    if (!isPowerOf2(rowBufferSize) || rowBufferSize < burstSize())
        fatal("row buffer size %llu must be a power of two >= burst "
              "size %llu",
              static_cast<unsigned long long>(rowBufferSize),
              static_cast<unsigned long long>(burstSize()));
    if (channelCapacity %
            (rowBufferSize * banksPerRank * ranksPerChannel) != 0 ||
        !isPowerOf2(rowsPerBank())) {
        fatal("channel capacity %llu does not give a power-of-two row "
              "count",
              static_cast<unsigned long long>(channelCapacity));
    }
    if (bankGroupsPerRank == 0 || !isPowerOf2(bankGroupsPerRank))
        fatal("bank groups per rank (%u) must be a power of two",
              bankGroupsPerRank);
    if (bankGroupsPerRank > banksPerRank ||
        banksPerRank % bankGroupsPerRank != 0)
        fatal("bank groups (%u) must evenly divide the banks per rank "
              "(%u)",
              bankGroupsPerRank, banksPerRank);
    if (pseudoChannels == 0 || !isPowerOf2(pseudoChannels))
        fatal("pseudochannels per channel (%u) must be a power of two",
              pseudoChannels);
}

void
DRAMTiming::check() const
{
    if (tCK == 0 || tBURST == 0)
        fatal("tCK and tBURST must be non-zero");
    if (tRAS < tRCD)
        fatal("tRAS (%llu) must cover at least tRCD (%llu)",
              static_cast<unsigned long long>(tRAS),
              static_cast<unsigned long long>(tRCD));
    if (tREFI != 0 && tRFC >= tREFI)
        fatal("tRFC (%llu) must be far smaller than tREFI (%llu)",
              static_cast<unsigned long long>(tRFC),
              static_cast<unsigned long long>(tREFI));
    if (activationLimit == 1)
        fatal("an activation limit of 1 serialises all activates; use 0 "
              "to disable the tXAW constraint instead");
    if (tCCD_L != 0 && tCCD_S != 0 && tCCD_L < tCCD_S)
        fatal("tCCD_L (%llu) must be at least tCCD_S (%llu)",
              static_cast<unsigned long long>(tCCD_L),
              static_cast<unsigned long long>(tCCD_S));
    if (tCCD_S != 0 && tCCD_S > tBURST)
        fatal("tCCD_S (%llu) above tBURST (%llu) would starve the data "
              "bus; fold the gap into tBURST instead",
              static_cast<unsigned long long>(tCCD_S),
              static_cast<unsigned long long>(tBURST));
    if (tRRD_L != 0 && tRRD_L < tRRD)
        fatal("tRRD_L (%llu) must be at least tRRD (%llu)",
              static_cast<unsigned long long>(tRRD_L),
              static_cast<unsigned long long>(tRRD));
    if (tRFCsb != 0 && tRFC != 0 && tRFCsb > tRFC)
        fatal("tRFCsb (%llu) must not exceed the all-bank tRFC (%llu)",
              static_cast<unsigned long long>(tRFCsb),
              static_cast<unsigned long long>(tRFC));
}

std::string
DRAMCtrlConfig::describe() const
{
    std::string s;
    s += "[organisation]\n";
    s += formatString("  burst length        %u\n", org.burstLength);
    s += formatString("  device bus width    %u bits\n",
                      org.deviceBusWidth);
    s += formatString("  devices per rank    %u\n",
                      org.devicesPerRank);
    s += formatString("  ranks per channel   %u\n",
                      org.ranksPerChannel);
    s += formatString("  banks per rank      %u\n", org.banksPerRank);
    s += formatString("  row buffer size     %llu B\n",
                      static_cast<unsigned long long>(
                          org.rowBufferSize));
    s += formatString("  channel capacity    %llu MiB\n",
                      static_cast<unsigned long long>(
                          org.channelCapacity >> 20));
    s += formatString("  burst size          %llu B\n",
                      static_cast<unsigned long long>(
                          org.burstSize()));
    // Bank-group / pseudochannel organisation only appears when it
    // departs from the ungrouped DDR3-era default, so the describe()
    // fingerprints of legacy configs are unchanged.
    if (org.bankGroupsPerRank != 1)
        s += formatString("  bank groups         %u\n",
                          org.bankGroupsPerRank);
    if (org.pseudoChannels != 1)
        s += formatString("  pseudochannels      %u\n",
                          org.pseudoChannels);
    s += "[timing]\n";
    auto ns = [](Tick t) { return toNs(t); };
    s += formatString("  tCK %.2f  tBURST %.2f  tRCD %.2f  tCL %.2f  "
                      "tRP %.2f  tRAS %.2f ns\n",
                      ns(timing.tCK), ns(timing.tBURST),
                      ns(timing.tRCD), ns(timing.tCL), ns(timing.tRP),
                      ns(timing.tRAS));
    s += formatString("  tWR %.2f  tWTR %.2f  tRTW %.2f  tRRD %.2f  "
                      "tXAW %.2f ns (limit %u)\n",
                      ns(timing.tWR), ns(timing.tWTR), ns(timing.tRTW),
                      ns(timing.tRRD), ns(timing.tXAW),
                      timing.activationLimit);
    s += formatString("  tREFI %.2f us (effective %.2f us at %.0f C)  "
                      "tRFC %.2f ns\n",
                      ns(timing.tREFI) / 1e3,
                      ns(effectiveREFI()) / 1e3, temperatureC,
                      ns(timing.tRFC));
    if (timing.tCCD_L != 0 || timing.tCCD_S != 0 ||
        timing.tRRD_L != 0) {
        s += formatString("  tCCD_L %.2f  tCCD_S %.2f  tRRD_L %.2f ns\n",
                          ns(timing.tCCDLong()),
                          ns(timing.tCCDShort()),
                          ns(timing.tRRDLong()));
    }
    if (timing.tRFCsb != 0)
        s += formatString("  tRFCsb %.2f ns\n", ns(timing.tRFCsb));
    s += "[controller]\n";
    s += formatString("  read buffer %u  write buffer %u  watermarks "
                      "%.2f/%.2f  min writes %u\n",
                      readBufferSize, writeBufferSize,
                      writeHighThreshold, writeLowThreshold,
                      minWritesPerSwitch);
    s += formatString("  scheduler %s  mapping %s  page policy %s\n",
                      toString(schedPolicy), toString(addrMapping),
                      toString(pagePolicy));
    s += formatString("  frontend %.2f ns  backend %.2f ns  max row "
                      "accesses %u\n",
                      ns(frontendLatency), ns(backendLatency),
                      maxAccessesPerRow);
    s += formatString("  power-down %s (delay %.0f ns, tXP %.0f ns)  "
                      "self-refresh %s (delay %.1f us, tXS %.0f ns)\n",
                      enablePowerDown ? "on" : "off",
                      ns(powerDownDelay), ns(tXP),
                      enableSelfRefresh ? "on" : "off",
                      ns(selfRefreshDelay) / 1e3, ns(tXS));
    s += formatString("  per-rank refresh %s\n",
                      perRankRefresh ? "on" : "off");
    if (!requestorPriorities.empty()) {
        s += "  qos priorities     ";
        for (unsigned p : requestorPriorities)
            s += formatString("%u ", p);
        s += "\n";
    }
    if (!plugins.empty()) {
        s += "[plugins]\n";
        for (const PluginSpec &p : plugins) {
            if (p.kind == "ecc") {
                s += formatString("  ecc (%u+%u) correct %u detect %u "
                                  "ber %g seed %llu\n",
                                  p.eccDataBits, p.eccCheckBits,
                                  p.eccCorrectBits, p.eccDetectBits,
                                  p.eccBer,
                                  static_cast<unsigned long long>(
                                      p.eccSeed));
            } else if (p.kind == "prac") {
                s += formatString("  prac threshold %u tRFM %.2f ns\n",
                                  p.pracThreshold, ns(p.tRFM));
            } else if (p.kind == "refmgr-pb") {
                s += formatString("  refmgr-pb tRFCpb %.2f ns\n",
                                  ns(p.tRFCpb));
            } else {
                s += formatString("  %s\n", p.kind.c_str());
            }
        }
    }
    return s;
}

const PluginSpec *
DRAMCtrlConfig::findPlugin(const std::string &kind) const
{
    for (const PluginSpec &p : plugins) {
        if (p.kind == kind)
            return &p;
    }
    return nullptr;
}

Tick
DRAMCtrlConfig::effectiveREFI() const
{
    if (timing.tREFI == 0 || temperatureC <= 85.0)
        return timing.tREFI;
    auto steps = static_cast<unsigned>(
        (temperatureC - 85.0 + 9.999) / 10.0);
    Tick refi = timing.tREFI >> std::min(steps, 6u);
    // Never let derating push tREFI below the refresh itself.
    return std::max(refi, timing.tRFC * 2);
}

void
DRAMCtrlConfig::check() const
{
    org.check();
    timing.check();
    if (readBufferSize == 0 || writeBufferSize == 0)
        fatal("queue sizes must be non-zero");
    if (writeLowThreshold >= writeHighThreshold)
        fatal("write low threshold (%.2f) must be below the high "
              "threshold (%.2f)",
              writeLowThreshold, writeHighThreshold);
    if (writeHighThreshold > 1.0 || writeLowThreshold < 0.0)
        fatal("write thresholds must lie in [0, 1]");
    if (minWritesPerSwitch == 0)
        fatal("minWritesPerSwitch must be at least 1");
    if (minWritesPerSwitch > writeBufferSize)
        fatal("minWritesPerSwitch (%u) exceeds the write buffer (%u)",
              minWritesPerSwitch, writeBufferSize);
    if (enableSelfRefresh && !enablePowerDown)
        fatal("self-refresh requires enablePowerDown");
    if (enableSelfRefresh && selfRefreshDelay == 0)
        fatal("selfRefreshDelay must be non-zero");

    unsigned refresh_managers = 0;
    for (std::size_t i = 0; i < plugins.size(); ++i) {
        const PluginSpec &p = plugins[i];
        if (p.kind != "ecc" && p.kind != "prac" && p.kind != "refmgr" &&
            p.kind != "refmgr-pb")
            fatal("unknown plugin kind '%s'", p.kind.c_str());
        for (std::size_t j = 0; j < i; ++j) {
            if (plugins[j].kind == p.kind)
                fatal("plugin '%s' registered twice", p.kind.c_str());
        }
        if (p.kind == "refmgr" || p.kind == "refmgr-pb")
            ++refresh_managers;
        if (p.kind == "ecc") {
            if (p.eccDataBits == 0)
                fatal("ecc plugin needs non-zero data bits");
            if (p.eccCorrectBits > p.eccDetectBits)
                fatal("ecc correct capability (%u) cannot exceed "
                      "detect capability (%u)",
                      p.eccCorrectBits, p.eccDetectBits);
            if (p.eccBer < 0.0 || p.eccBer >= 1.0)
                fatal("ecc bit error rate %g outside [0, 1)", p.eccBer);
        }
        if (p.kind == "prac") {
            if (p.pracThreshold == 0)
                fatal("prac threshold must be at least 1");
            if (p.tRFM == 0)
                fatal("prac tRFM must be non-zero");
        }
        if (p.kind == "refmgr-pb") {
            if (p.tRFCpb == 0)
                fatal("refmgr-pb tRFCpb must be non-zero");
            if (timing.tREFI == 0)
                fatal("refmgr-pb requires a non-zero tREFI");
            if (perRankRefresh)
                fatal("refmgr-pb replaces the refresh schedule and "
                      "cannot combine with perRankRefresh");
            if (enablePowerDown || enableSelfRefresh)
                fatal("refmgr-pb does not model power-down or "
                      "self-refresh interactions");
        }
    }
    if (refresh_managers > 1)
        fatal("at most one refresh manager plugin may be registered");
}

} // namespace dramctrl
