/**
 * @file
 * Address decoding into rank, bank, row and column.
 *
 * Decoding happens inside each controller on the dense local address
 * (channel bits already stripped by the crossbar's interleaved ranges,
 * Section II-A/II-F). The mapping names read most-significant field
 * first; the trailing "Ch" (or embedded "Ch") positions are the ones the
 * crossbar consumed, which is why RoRaBaCoCh and RoRaBaChCo decode
 * identically here and differ only in the interleaving granularity the
 * system configures the crossbar with (burst vs row).
 */

#ifndef DRAMCTRL_DRAM_ADDR_DECODER_H
#define DRAMCTRL_DRAM_ADDR_DECODER_H

#include "dram/dram_config.hh"
#include "sim/types.hh"

namespace dramctrl {

/** One decoded DRAM coordinate. The column counts whole bursts. */
struct DRAMAddr
{
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    std::uint64_t col = 0;

    bool operator==(const DRAMAddr &) const = default;
};

class AddrDecoder
{
  public:
    AddrDecoder(const DRAMOrg &org, AddrMapping mapping);

    /** Decode a dense local byte address. */
    DRAMAddr decode(Addr dense) const;

    /** Compose a dense local byte address (inverse of decode). */
    Addr encode(const DRAMAddr &da) const;

    AddrMapping mapping() const { return mapping_; }

    /** Burst-aligned base of the burst containing @p dense. */
    Addr
    burstAlign(Addr dense) const
    {
        return dense & ~(burstSize_ - 1);
    }

  private:
    AddrMapping mapping_;
    std::uint64_t burstSize_;
    std::uint64_t burstsPerRow_;
    unsigned banks_;
    unsigned ranks_;
    std::uint64_t rows_;
};

} // namespace dramctrl

#endif // DRAMCTRL_DRAM_ADDR_DECODER_H
