/**
 * @file
 * Deterministic batch engine over shared-nothing simulation jobs.
 *
 * A batch is N independent jobs, each a pure function of its index
 * (and, by convention, of a seed derived from (master seed, index) via
 * deriveSeed()). BatchRunner executes them on a fixed-size worker
 * pool and delivers the outcomes to a consumer callback **on the
 * calling thread, in submission order**, as soon as each next-in-line
 * job finishes. That contract is what makes parallel batches
 * reproducible:
 *
 *  - a job never observes which thread runs it or how many jobs run
 *    concurrently (every Simulator is shared-nothing, and the
 *    library's cross-cutting state — pools, tick sources, trace
 *    sinks — is thread-local);
 *  - the consumer sees outcome i before outcome i+1, always, so
 *    anything it prints or writes is byte-identical regardless of the
 *    worker count;
 *  - a job that throws is isolated: its outcome carries the error
 *    text, later jobs are unaffected, and the consumer can react (log
 *    the seed, start shrinking) while the remaining jobs drain in the
 *    background.
 *
 * fatal()/panic() terminate the process rather than throw unless
 * setThrowOnError(true) is active; batch front ends that want
 * per-job failure isolation enable it around the batch.
 */

#ifndef DRAMCTRL_EXEC_BATCH_RUNNER_H
#define DRAMCTRL_EXEC_BATCH_RUNNER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"

namespace dramctrl {
namespace exec {

/**
 * Derive the seed of job @p index from @p master: a splitmix64 hash
 * of the pair, so consecutive indices get independent, well-mixed
 * streams and job N is reproducible without running jobs 0..N-1.
 */
std::uint64_t deriveSeed(std::uint64_t master, std::uint64_t index);

/** What one job produced (or how it failed). */
template <typename Result>
struct JobOutcome
{
    std::size_t index = 0;
    /** False when the job threw; @p error carries the message. */
    bool ok = false;
    std::string error;
    /** Wall-clock seconds the job spent executing. */
    double hostSeconds = 0;
    Result value{};
};

/**
 * Runs batches of independent jobs on a fixed worker pool with
 * deterministic, in-submission-order result delivery.
 */
class BatchRunner
{
  public:
    /** @param jobs worker threads (0 and 1 both mean one worker). */
    explicit BatchRunner(unsigned jobs)
        : pool_(jobs == 0 ? 1 : jobs)
    {
    }

    unsigned jobs() const { return pool_.numThreads(); }

    /**
     * Execute @p fn(0..n-1) on the pool. @p consume — when set — is
     * called once per job on the calling thread, strictly in index
     * order, interleaved with execution (outcome i is delivered as
     * soon as jobs 0..i have all finished). Blocks until every job
     * has run and every outcome has been consumed.
     *
     * @return the number of jobs that threw.
     */
    template <typename Result>
    std::size_t
    run(std::size_t n, const std::function<Result(std::size_t)> &fn,
        const std::function<void(const JobOutcome<Result> &)>
            &consume = {})
    {
        struct Shared
        {
            std::mutex mutex;
            std::condition_variable advanced;
            std::vector<JobOutcome<Result>> slots;
            std::vector<char> done;
        };
        Shared sh;
        sh.slots.resize(n);
        sh.done.assign(n, 0);

        for (std::size_t i = 0; i < n; ++i) {
            pool_.post([&sh, &fn, i] {
                JobOutcome<Result> out;
                out.index = i;
                auto t0 = std::chrono::steady_clock::now();
                try {
                    out.value = fn(i);
                    out.ok = true;
                } catch (const std::exception &e) {
                    out.error = e.what();
                } catch (...) {
                    out.error = "unknown exception";
                }
                out.hostSeconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                {
                    std::unique_lock<std::mutex> lock(sh.mutex);
                    sh.slots[i] = std::move(out);
                    sh.done[i] = 1;
                }
                sh.advanced.notify_all();
            });
        }

        std::size_t failures = 0;
        for (std::size_t next = 0; next < n; ++next) {
            JobOutcome<Result> out;
            {
                std::unique_lock<std::mutex> lock(sh.mutex);
                sh.advanced.wait(
                    lock, [&] { return sh.done[next] != 0; });
                out = std::move(sh.slots[next]);
            }
            if (!out.ok)
                ++failures;
            if (consume)
                consume(out);
        }
        // All n slots were consumed, so every task has finished; the
        // drain keeps the invariant explicit for the next run().
        pool_.drain();
        return failures;
    }

    /**
     * Convenience wrapper: run the batch and return all outcomes in
     * index order (no streaming consumer).
     */
    template <typename Result>
    std::vector<JobOutcome<Result>>
    runCollect(std::size_t n,
               const std::function<Result(std::size_t)> &fn)
    {
        std::vector<JobOutcome<Result>> all;
        all.reserve(n);
        run<Result>(n, fn,
                    [&all](const JobOutcome<Result> &out) {
                        all.push_back(out);
                    });
        return all;
    }

  private:
    ThreadPool pool_;
};

} // namespace exec
} // namespace dramctrl

#endif // DRAMCTRL_EXEC_BATCH_RUNNER_H
