#include "exec/thread_pool.hh"

namespace dramctrl {
namespace exec {

ThreadPool::ThreadPool(unsigned threads,
                       std::function<void()> thread_init)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back(
            [this, thread_init] { workerLoop(thread_init); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
        ++outstanding_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock, [this] { return outstanding_ == 0; });
}

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

void
ThreadPool::workerLoop(const std::function<void()> &thread_init)
{
    if (thread_init)
        thread_init();
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            if (tasks_.empty())
                return; // stopping, queue drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (--outstanding_ == 0)
                allIdle_.notify_all();
        }
    }
}

} // namespace exec
} // namespace dramctrl
