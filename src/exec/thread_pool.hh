/**
 * @file
 * Fixed-size worker pool for the batch-execution engine.
 *
 * The pool is deliberately minimal: a fixed set of workers created up
 * front, a FIFO task queue, and a drain barrier. All the scheduling
 * intelligence (ordering, seeding, failure isolation) lives one layer
 * up in BatchRunner; the pool only guarantees that every posted task
 * runs exactly once on some worker thread.
 *
 * Workers run an optional per-thread init hook before their first
 * task, so callers can replicate main-thread environment (trace
 * channel masks, quiet flags) into the pool when they want it —
 * by default worker threads start with the library's thread-local
 * state at its defaults, which is what the deterministic batch
 * front ends rely on.
 */

#ifndef DRAMCTRL_EXEC_THREAD_POOL_H
#define DRAMCTRL_EXEC_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dramctrl {
namespace exec {

class ThreadPool
{
  public:
    /**
     * Start @p threads workers (clamped to at least one). @p
     * thread_init, when set, runs once on each worker before it
     * services any task.
     */
    explicit ThreadPool(unsigned threads,
                        std::function<void()> thread_init = {});

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; it runs exactly once on some worker. */
    void post(std::function<void()> task);

    /** Block until every posted task has finished. */
    void drain();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Best-effort host parallelism for "--jobs 0 = auto" style flags:
     * hardware_concurrency(), or 1 when the runtime cannot tell.
     */
    static unsigned hardwareThreads();

  private:
    void workerLoop(const std::function<void()> &thread_init);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allIdle_;
    /** Tasks posted but not yet finished (queued + running). */
    std::size_t outstanding_ = 0;
    bool stopping_ = false;
};

} // namespace exec
} // namespace dramctrl

#endif // DRAMCTRL_EXEC_THREAD_POOL_H
