#include "exec/batch_runner.hh"

namespace dramctrl {
namespace exec {

std::uint64_t
deriveSeed(std::uint64_t master, std::uint64_t index)
{
    // splitmix64 over (master, index): independent well-mixed
    // streams, and the historic derivation of fuzz_cli's case seeds
    // (repro files in the wild depend on it staying put).
    std::uint64_t z = master + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace exec
} // namespace dramctrl
