#include "exec/sweep.hh"

#include <algorithm>
#include <memory>

#include "ckpt/ckpt.hh"
#include "dram/dram_ctrl.hh"
#include "dram/dram_presets.hh"
#include "dram/plugin/plugin.hh"
#include "exec/batch_runner.hh"
#include "harness/multichannel.hh"
#include "sim/logging.hh"
#include "trafficgen/dram_gen.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"
#include "trafficgen/trace_file.hh"

namespace dramctrl {
namespace exec {

std::vector<SweepPoint>
expandGrid(const SweepSpec &spec)
{
    std::vector<SweepPoint> grid;
    unsigned seeds = std::max(1u, spec.numSeeds);
    for (const std::string &preset : spec.presets)
        for (const std::string &pattern : spec.patterns)
            for (PagePolicy page : spec.pages)
                for (AddrMapping mapping : spec.mappings)
                    for (unsigned read_pct : spec.readPcts)
                        for (double itt_ns : spec.ittNs)
                            for (harness::CtrlModel model : spec.models)
                                for (unsigned s = 0; s < seeds; ++s) {
                                    SweepPoint pt;
                                    pt.index = grid.size();
                                    pt.preset = preset;
                                    pt.pattern = pattern;
                                    pt.page = page;
                                    pt.mapping = mapping;
                                    pt.readPct = read_pct;
                                    pt.ittNs = itt_ns;
                                    pt.model = model;
                                    pt.seedIndex = s;
                                    pt.seed = deriveSeed(
                                        spec.masterSeed, pt.index);
                                    grid.push_back(std::move(pt));
                                }
    return grid;
}

bool
checkSpec(const SweepSpec &spec, std::string *err)
{
    auto known = presets::names();
    for (const std::string &p : spec.presets) {
        if (std::find(known.begin(), known.end(), p) == known.end()) {
            if (err != nullptr)
                *err = "unknown preset '" + p + "'";
            return false;
        }
    }
    bool has_trace = false;
    for (const std::string &p : spec.patterns) {
        if (p != "linear" && p != "random" && p != "dram" &&
            p != "trace") {
            if (err != nullptr)
                *err = "unknown pattern '" + p + "'";
            return false;
        }
        has_trace = has_trace || p == "trace";
    }
    if (has_trace && spec.tracePath.empty()) {
        if (err != nullptr)
            *err = "the trace pattern needs a trace path";
        return false;
    }
    if (has_trace && spec.warmupRequests > 0) {
        if (err != nullptr)
            *err = "the trace pattern does not support warm-up";
        return false;
    }
    if (spec.traceScale <= 0) {
        if (err != nullptr)
            *err = "trace time scale must be positive";
        return false;
    }
    for (unsigned pct : spec.readPcts) {
        if (pct > 100) {
            if (err != nullptr)
                *err = "read-pct above 100";
            return false;
        }
    }
    if (!spec.plugins.empty()) {
        DRAMCtrlConfig probe;
        std::string perr;
        if (!plugin::parsePluginList(spec.plugins, probe, perr)) {
            if (err != nullptr)
                *err = perr;
            return false;
        }
        if (probe.hasPlugin("refmgr-pb")) {
            for (harness::CtrlModel m : spec.models) {
                if (m == harness::CtrlModel::Cycle) {
                    if (err != nullptr)
                        *err = "refmgr-pb is event-model-only; drop "
                               "the cycle model axis";
                    return false;
                }
            }
        }
    }
    if (spec.presets.empty() || spec.patterns.empty() ||
        spec.pages.empty() || spec.mappings.empty() ||
        spec.readPcts.empty() || spec.ittNs.empty() ||
        spec.models.empty()) {
        if (err != nullptr)
            *err = "empty sweep axis";
        return false;
    }
    if (spec.channels == 0) {
        if (err != nullptr)
            *err = "channels must be at least 1";
        return false;
    }
    if (spec.channels > 1) {
        for (const std::string &p : spec.patterns) {
            if (p == "dram") {
                if (err != nullptr)
                    *err = "the dram pattern is single-channel; "
                           "multi-channel sweeps use linear/random";
                return false;
            }
        }
        if (spec.warmupRequests > 0) {
            if (err != nullptr)
                *err = "multi-channel sweeps do not support warm-up";
            return false;
        }
    }
    return true;
}

namespace {

/** A built-but-not-yet-run sweep point system. */
struct BuiltPoint
{
    std::unique_ptr<harness::SingleChannelSystem> tb;
    BaseGen *gen = nullptr;
    TracePlayer *player = nullptr; ///< set instead of gen for "trace"

    bool
    done() const
    {
        return gen != nullptr ? gen->done() : player->done();
    }
};

/** Per-point capture file: "<prefix><index>.dtrc". */
std::string
capturePathOf(const SweepSpec &spec, const SweepPoint &point)
{
    return spec.traceCapturePrefix + std::to_string(point.index) +
           ".dtrc";
}

/**
 * Assemble the system for @p point with an explicit request budget and
 * seed (so the warm-up and measured phases can use the same assembly).
 */
BuiltPoint
buildPoint(const SweepPoint &point, const SweepSpec &spec,
           std::uint64_t num_requests, std::uint64_t seed)
{
    DRAMCtrlConfig cfg = presets::byName(point.preset);
    cfg.pagePolicy = point.page;
    cfg.addrMapping = point.mapping;
    cfg.writeLowThreshold = 0.0; // drain fully so every run terminates
    if (!spec.plugins.empty()) {
        std::string perr;
        if (!plugin::parsePluginList(spec.plugins, cfg, perr))
            fatal("%s", perr.c_str());
    }
    cfg.check();

    BuiltPoint built;
    built.tb =
        std::make_unique<harness::SingleChannelSystem>(cfg, point.model);
    if (!spec.traceCapturePrefix.empty())
        built.tb->enableCapture(capturePathOf(spec, point));

    if (point.pattern == "trace") {
        built.player = &built.tb->addGen<TracePlayer>(
            makeTracePlayerConfig(spec.tracePath, spec.traceScale));
        return built;
    }

    GenConfig gc;
    gc.windowSize =
        std::min<std::uint64_t>(cfg.org.channelCapacity, 1ULL << 26);
    gc.readPct = point.readPct;
    gc.minITT = gc.maxITT = fromNs(point.ittNs);
    gc.numRequests = num_requests;
    gc.seed = seed;

    if (point.pattern == "linear") {
        built.gen = &built.tb->addGen<LinearGen>(gc);
    } else if (point.pattern == "random") {
        built.gen = &built.tb->addGen<RandomGen>(gc);
    } else if (point.pattern == "dram") {
        DramGenConfig dgc;
        static_cast<GenConfig &>(dgc) = gc;
        dgc.org = cfg.org;
        dgc.mapping = cfg.addrMapping;
        dgc.strideBytes = spec.strideBytes;
        dgc.numBanksTarget = spec.banks;
        built.gen = &built.tb->addGen<DramGen>(dgc);
    } else {
        fatal("unknown sweep pattern '%s'", point.pattern.c_str());
    }
    return built;
}

SweepRow
collectRow(const SweepPoint &point, BuiltPoint &built)
{
    harness::SingleChannelSystem &tb = *built.tb;
    tb.finishCapture();

    SweepRow row;
    row.point = point;
    row.simulatedUs = toSeconds(tb.sim().curTick()) * 1e6;
    row.bandwidthGBs = tb.ctrl().achievedBandwidthGBs();
    row.busUtil = tb.ctrl().busUtilisation();
    if (point.model == harness::CtrlModel::Event)
        row.rowHitRate = tb.eventCtrl().ctrlStats().rowHitRate.value();
    if (built.gen != nullptr) {
        row.avgReadLatencyNs = built.gen->avgReadLatencyNs();
        row.responses = static_cast<std::uint64_t>(
            built.gen->genStats().recvResponses.value());
    } else {
        row.avgReadLatencyNs = built.player->avgReadLatencyNs();
        row.responses = built.player->responses();
    }
    return row;
}

/**
 * One sharded multi-channel point: spec.channels controllers behind
 * the crossbar, one generator per channel, spec.simThreads workers.
 * The row depends only on (point, spec) — never on the thread count.
 */
SweepRow
runMultiPoint(const SweepPoint &point, const SweepSpec &spec)
{
    DRAMCtrlConfig cfg = presets::byName(point.preset);
    cfg.pagePolicy = point.page;
    cfg.addrMapping = point.mapping;
    cfg.writeLowThreshold = 0.0; // drain fully so every run terminates
    if (!spec.plugins.empty()) {
        std::string perr;
        if (!plugin::parsePluginList(spec.plugins, cfg, perr))
            fatal("%s", perr.c_str());
    }
    cfg.check();

    harness::MultiChannelConfig mcfg;
    mcfg.channels = spec.channels;
    mcfg.ctrl = cfg;
    mcfg.model = point.model;
    mcfg.simThreads = spec.simThreads;
    harness::MultiChannelSystem mc(mcfg);
    if (!spec.traceCapturePrefix.empty())
        mc.enableCapture(capturePathOf(spec, point));

    if (point.pattern == "trace") {
        harness::addTracePlayers(mc, spec.tracePath, spec.traceScale);
    } else {
        GenConfig gc;
        gc.readPct = point.readPct;
        gc.minITT = gc.maxITT = fromNs(point.ittNs);
        gc.numRequests =
            std::max<std::uint64_t>(1, spec.requests / spec.channels);
        gc.windowSize =
            std::min<std::uint64_t>(mc.totalCapacity(), 1ULL << 26);
        for (unsigned i = 0; i < spec.channels; ++i) {
            GenConfig g = harness::sliceGenWindow(gc, i, spec.channels,
                                                  mc.totalCapacity());
            g.seed = deriveSeed(point.seed, i);
            if (point.pattern == "linear")
                mc.addGen<LinearGen>(g);
            else if (point.pattern == "random")
                mc.addGen<RandomGen>(g);
            else
                fatal("unknown sweep pattern '%s'",
                      point.pattern.c_str());
        }
    }

    mc.runToCompletion();
    mc.finishCapture();

    SweepRow row;
    row.point = point;
    row.simulatedUs = toSeconds(mc.sim().curTick()) * 1e6;
    row.bandwidthGBs = mc.totalBandwidthGBs();
    row.avgReadLatencyNs = mc.avgReadLatencyNs();
    row.busUtil = mc.avgBusUtil();
    if (point.model == harness::CtrlModel::Event) {
        // Unweighted mean over the channels (the generators drive
        // them symmetrically).
        double hit = 0;
        for (unsigned ch = 0; ch < mc.numChannels(); ++ch)
            hit += static_cast<DRAMCtrl &>(mc.ctrl(ch))
                       .ctrlStats()
                       .rowHitRate.value();
        row.rowHitRate = hit / mc.numChannels();
    }
    for (unsigned i = 0; i < mc.numGens(); ++i)
        row.responses += static_cast<std::uint64_t>(
            mc.gen(i).genStats().recvResponses.value());
    for (unsigned i = 0; i < mc.numPlayers(); ++i)
        row.responses += mc.player(i).responses();
    return row;
}

/**
 * The warm-up stimulus stream: one seed per config group, disjoint
 * from every measured seed (which derive from masterSeed and the point
 * index directly).
 */
std::uint64_t
warmupSeedOf(const SweepSpec &spec, std::size_t group)
{
    return deriveSeed(spec.masterSeed ^ 0x5741524d55500aULL, group);
}

} // namespace

std::size_t
configGroupOf(const SweepPoint &point, const SweepSpec &spec)
{
    return point.index / std::max(1u, spec.numSeeds);
}

SweepRow
runSweepPoint(const SweepPoint &point, const SweepSpec &spec)
{
    if (spec.channels > 1)
        return runMultiPoint(point, spec);

    if (spec.warmupRequests == 0 || point.pattern == "trace") {
        BuiltPoint built =
            buildPoint(point, spec, spec.requests, point.seed);
        built.tb->runToCompletion([&] { return built.done(); });
        return collectRow(point, built);
    }

    // Cold warm-up: run the group's warm-up stream inline, reset the
    // statistics, then extend the run with the measured requests.
    BuiltPoint built =
        buildPoint(point, spec, spec.warmupRequests,
                   warmupSeedOf(spec, configGroupOf(point, spec)));
    built.tb->runToCompletion([&] { return built.gen->done(); });
    built.tb->sim().resetStats();
    built.gen->extendRun(spec.requests, point.seed);
    built.tb->runToCompletion([&] { return built.gen->done(); });
    return collectRow(point, built);
}

std::string
captureWarmupSnapshot(const SweepPoint &point, const SweepSpec &spec)
{
    DC_ASSERT(spec.warmupRequests > 0,
              "warm-start snapshot requested without warmupRequests");
    BuiltPoint built =
        buildPoint(point, spec, spec.warmupRequests,
                   warmupSeedOf(spec, configGroupOf(point, spec)));
    built.tb->runToCompletion([&] { return built.gen->done(); });
    built.tb->sim().resetStats();
    return ckpt::saveToString(built.tb->sim());
}

SweepRow
runMeasuredFromSnapshot(const SweepPoint &point, const SweepSpec &spec,
                        const std::string &snapshot)
{
    BuiltPoint built =
        buildPoint(point, spec, spec.warmupRequests,
                   warmupSeedOf(spec, configGroupOf(point, spec)));
    ckpt::restoreFromString(built.tb->sim(), snapshot);
    built.gen->extendRun(spec.requests, point.seed);
    built.tb->runToCompletion([&] { return built.gen->done(); });
    return collectRow(point, built);
}

std::string
csvHeader()
{
    return "index,preset,pattern,page,mapping,read_pct,itt_ns,model,"
           "seed_index,seed,simulated_us,bandwidth_gbs,"
           "avg_read_latency_ns,bus_util,row_hit_rate,responses";
}

std::string
toCsv(const SweepRow &row)
{
    const SweepPoint &pt = row.point;
    return formatString(
        "%zu,%s,%s,%s,%s,%u,%.3f,%s,%u,%llu,%.3f,%.4f,%.2f,%.4f,"
        "%.4f,%llu",
        pt.index, pt.preset.c_str(), pt.pattern.c_str(),
        toString(pt.page), toString(pt.mapping), pt.readPct, pt.ittNs,
        harness::toString(pt.model), pt.seedIndex,
        static_cast<unsigned long long>(pt.seed), row.simulatedUs,
        row.bandwidthGBs, row.avgReadLatencyNs, row.busUtil,
        row.rowHitRate,
        static_cast<unsigned long long>(row.responses));
}

std::string
toJsonl(const SweepRow &row)
{
    const SweepPoint &pt = row.point;
    return formatString(
        "{\"index\": %zu, \"preset\": \"%s\", \"pattern\": \"%s\", "
        "\"page\": \"%s\", \"mapping\": \"%s\", \"read_pct\": %u, "
        "\"itt_ns\": %.3f, \"model\": \"%s\", \"seed_index\": %u, "
        "\"seed\": %llu, \"simulated_us\": %.3f, "
        "\"bandwidth_gbs\": %.4f, \"avg_read_latency_ns\": %.2f, "
        "\"bus_util\": %.4f, \"row_hit_rate\": %.4f, "
        "\"responses\": %llu}",
        pt.index, pt.preset.c_str(), pt.pattern.c_str(),
        toString(pt.page), toString(pt.mapping), pt.readPct, pt.ittNs,
        harness::toString(pt.model), pt.seedIndex,
        static_cast<unsigned long long>(pt.seed), row.simulatedUs,
        row.bandwidthGBs, row.avgReadLatencyNs, row.busUtil,
        row.rowHitRate,
        static_cast<unsigned long long>(row.responses));
}

} // namespace exec
} // namespace dramctrl
