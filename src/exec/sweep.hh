/**
 * @file
 * Design-space sweeps: a config-grid x seed x traffic-pattern product
 * expanded into independent simulation jobs, one result row per run.
 *
 * This is the paper's whole use case (Section IV: fast models exist
 * to make full design-space exploration tractable) packaged as a
 * library: describe the axes once, expand the cartesian product, run
 * every point as a shared-nothing job — serially or on the batch
 * engine — and emit one CSV/JSONL row per run. Rows contain only
 * simulated quantities (no wall-clock), so a sweep's output file is
 * byte-identical however many worker threads produced it.
 */

#ifndef DRAMCTRL_EXEC_SWEEP_H
#define DRAMCTRL_EXEC_SWEEP_H

#include <cstdint>
#include <string>
#include <vector>

#include "dram/dram_config.hh"
#include "harness/testbench.hh"

namespace dramctrl {
namespace exec {

/** The axes of one sweep; the grid is their cartesian product. */
struct SweepSpec
{
    std::vector<std::string> presets{"ddr3_1333"};
    /** Traffic patterns: "linear", "random", "dram" or "trace". */
    std::vector<std::string> patterns{"random"};
    std::vector<PagePolicy> pages{PagePolicy::Open};
    std::vector<AddrMapping> mappings{AddrMapping::RoRaBaCoCh};
    std::vector<unsigned> readPcts{100};
    std::vector<double> ittNs{6.0};
    std::vector<harness::CtrlModel> models{harness::CtrlModel::Event};
    /** Seeds per grid point, derived from (masterSeed, run index). */
    unsigned numSeeds = 1;
    std::uint64_t masterSeed = 1;

    /** Fixed per-run stimulus parameters. */
    std::uint64_t requests = 5000;
    std::uint64_t strideBytes = 256;
    unsigned banks = 4;

    /**
     * Controller plugin chain applied to every point, as the csv list
     * parsePluginList() accepts ("ecc,prac,refmgr"). Empty = none.
     * Per-bank refresh ("refmgr-pb") needs an all-Event model axis.
     */
    std::string plugins;

    /**
     * Channels per run (1 = classic single-channel point). With more
     * than one channel every point builds a sharded multi-channel
     * system — one controller and one generator per channel, requests
     * split evenly — and @ref simThreads worker threads execute it.
     * Rows are byte-identical for every simThreads value, so the two
     * parallelism axes (outer --jobs, inner sim threads) compose
     * freely. Multi-channel points support the linear/random patterns
     * and no warm-up phase.
     */
    unsigned channels = 1;
    /** Worker threads inside each run (0 = one per core). */
    unsigned simThreads = 1;

    /**
     * Warm-up requests injected (from a seed-independent stream)
     * before statistics reset and the measured @ref requests begin.
     * 0 disables warm-up. With warm-up on, a sweep can run in
     * warm-start mode: one warm-up per config group, checkpointed,
     * with the measured phases fanned out from the shared snapshot
     * (see captureWarmupSnapshot / runMeasuredFromSnapshot).
     */
    std::uint64_t warmupRequests = 0;

    /**
     * Stimulus file for the "trace" pattern (text or .dtrc, sniffed
     * by content). Single-channel points stream it through one
     * player; multi-channel points add one player per recorded
     * source id, fanning the file out across the channels. The trace
     * pattern ignores seeds and supports no warm-up.
     */
    std::string tracePath;
    /** Stretch (>1) / compress (<1) replayed inter-request gaps. */
    double traceScale = 1.0;

    /**
     * When non-empty, every run also records the request stream it
     * actually injected to "<prefix><index>.dtrc" — any synthetic
     * sweep becomes a reusable trace corpus. Points run in parallel
     * write distinct files, so capture composes with --jobs.
     */
    std::string traceCapturePrefix;
};

/** One expanded grid point: a fully specified run. */
struct SweepPoint
{
    std::size_t index = 0; ///< position in the expanded grid
    std::string preset;
    std::string pattern;
    PagePolicy page = PagePolicy::Open;
    AddrMapping mapping = AddrMapping::RoRaBaCoCh;
    unsigned readPct = 100;
    double ittNs = 6.0;
    harness::CtrlModel model = harness::CtrlModel::Event;
    unsigned seedIndex = 0;
    /** Generator seed: deriveSeed(masterSeed, index). */
    std::uint64_t seed = 0;
};

/** Simulated results of one run (deliberately no host timings). */
struct SweepRow
{
    SweepPoint point;
    double simulatedUs = 0;
    double bandwidthGBs = 0;
    double avgReadLatencyNs = 0;
    double busUtil = 0;
    /** Event model only; 0 for the cycle model. */
    double rowHitRate = 0;
    std::uint64_t responses = 0;
};

/**
 * Expand @p spec into the full grid, seeds varying fastest, in a
 * fixed documented order (preset, pattern, page, mapping, read-pct,
 * itt, model, seed — rightmost fastest). Point i is independent of
 * every other point, so any subset can run in any order.
 */
std::vector<SweepPoint> expandGrid(const SweepSpec &spec);

/**
 * Simulate one point to completion. Deterministic: depends only on
 * @p point and @p spec, never on threads or timing. fatal()s on
 * unknown preset/pattern names (validate the spec up front with
 * checkSpec() for a softer failure mode).
 */
SweepRow runSweepPoint(const SweepPoint &point, const SweepSpec &spec);

/**
 * Validate names in @p spec without running anything.
 * @return false and fill @p err with the first offending name.
 */
bool checkSpec(const SweepSpec &spec, std::string *err);

/**
 * Config-group index of @p point: all seeds of one configuration share
 * a group (seeds vary fastest in expandGrid), and therefore share one
 * warm-up phase in warm-start mode.
 */
std::size_t configGroupOf(const SweepPoint &point, const SweepSpec &spec);

/**
 * Run the warm-up phase for @p point's config group and return the
 * post-warm-up, post-stats-reset checkpoint as a string. The warm-up
 * stimulus depends only on the configuration (not on point.seed), so
 * any point of the group produces the same snapshot. Requires
 * spec.warmupRequests > 0.
 */
std::string captureWarmupSnapshot(const SweepPoint &point,
                                  const SweepSpec &spec);

/**
 * Complete @p point from a warm-up snapshot captured by
 * captureWarmupSnapshot() for the same config group: rebuild the
 * system, restore the snapshot, inject the measured requests with the
 * point's own seed. The row is byte-identical to what runSweepPoint()
 * produces for the same point with the same spec (which runs the
 * warm-up inline).
 */
SweepRow runMeasuredFromSnapshot(const SweepPoint &point,
                                 const SweepSpec &spec,
                                 const std::string &snapshot);

/** Header line matching toCsv()'s columns (no trailing newline). */
std::string csvHeader();

/** One fixed-precision CSV row (no trailing newline). */
std::string toCsv(const SweepRow &row);

/** One JSONL object (no trailing newline). */
std::string toJsonl(const SweepRow &row);

} // namespace exec
} // namespace dramctrl

#endif // DRAMCTRL_EXEC_SWEEP_H
