#include "xbar/xbar.hh"

#include <algorithm>

#include "obs/chrome_trace.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace dramctrl {

std::vector<AddrRange>
interleavedRanges(Addr base, std::uint64_t total_size,
                  std::uint64_t granularity, unsigned channels)
{
    std::vector<AddrRange> ranges;
    ranges.reserve(channels);
    if (channels == 1) {
        ranges.emplace_back(base, total_size);
        return ranges;
    }
    for (unsigned ch = 0; ch < channels; ++ch)
        ranges.emplace_back(base, total_size, granularity, channels, ch);
    return ranges;
}

Crossbar::XBarStats::XBarStats(Crossbar &xbar)
    : reqPackets(&xbar.statGroup(), "reqPackets",
                 "requests forwarded"),
      respPackets(&xbar.statGroup(), "respPackets",
                  "responses forwarded"),
      reqRetries(&xbar.statGroup(), "reqRetries",
                 "requests refused on a busy layer"),
      bytesForwarded(&xbar.statGroup(), "bytesForwarded",
                     "payload bytes forwarded (both directions)")
{
}

Crossbar::Layer::Layer(EventQueue &eq, std::string name,
                       unsigned queue_limit)
    : eq_(eq), name_(name), queueLimit_(queue_limit),
      sendEvent_([this] { trySend(); }, name + ".sendEvent")
{
}

Crossbar::Layer::~Layer()
{
    if (sendEvent_.scheduled())
        eq_.deschedule(sendEvent_);
    for (Entry &e : queue_) {
        while (e.pkt->senderState() != nullptr)
            delete e.pkt->popSenderState();
        delete e.pkt;
    }
}

void
Crossbar::Layer::admit(Packet *pkt, Tick occupancy, Tick latency)
{
    DC_ASSERT(!full(), "admit to a full layer");
    Tick now = eq_.curTick();
    busyUntil_ = std::max(busyUntil_, now) + occupancy;
    Tick deliver_at = busyUntil_ + latency;
    queue_.push_back(Entry{deliver_at, pkt});
    if (auto *ct = obs::chromeTracer())
        ct->counter(name_, "depth", now,
                    static_cast<double>(queue_.size()));
    if (!waitingForRetry_ && !sendEvent_.scheduled())
        eq_.schedule(sendEvent_,
                               std::max(now, queue_.front().deliverAt));
}

void
Crossbar::Layer::retry()
{
    DC_ASSERT(waitingForRetry_, "unexpected layer retry");
    waitingForRetry_ = false;
    trySend();
}

void
Crossbar::Layer::trySend()
{
    bool sent = false;
    while (!queue_.empty() &&
           queue_.front().deliverAt <= eq_.curTick()) {
        if (!sendFn(queue_.front().pkt)) {
            waitingForRetry_ = true;
            break;
        }
        queue_.pop_front();
        sent = true;
        if (onSlotFreed)
            onSlotFreed();
    }
    if (sent) {
        if (auto *ct = obs::chromeTracer())
            ct->counter(name_, "depth", eq_.curTick(),
                        static_cast<double>(queue_.size()));
    }
    if (waitingForRetry_)
        return;
    if (!queue_.empty() && !sendEvent_.scheduled())
        eq_.schedule(
            sendEvent_,
            std::max(eq_.curTick(), queue_.front().deliverAt));
}

Crossbar::Crossbar(Simulator &sim, std::string name, XBarConfig cfg)
    : SimObject(sim, std::move(name)), cfg_(cfg)
{
    if (cfg_.width == 0 || cfg_.clockPeriod == 0)
        fatal("crossbar '%s': zero width or clock period",
              this->name().c_str());
    if (cfg_.layerQueueLimit == 0)
        fatal("crossbar '%s': layer queue limit must be non-zero",
              this->name().c_str());
    stats_ = std::make_unique<XBarStats>(*this);
}

Crossbar::~Crossbar() = default;

unsigned
Crossbar::addCpuSidePort()
{
    unsigned idx = static_cast<unsigned>(cpuPorts_.size());
    cpuPorts_.push_back(std::make_unique<CpuSidePort>(
        name() + ".cpuSide" + std::to_string(idx), *this, idx));

    auto layer = std::make_unique<Layer>(
        eventq(), name() + ".respLayer" + std::to_string(idx),
        cfg_.layerQueueLimit);
    layer->sendFn = [this, idx](Packet *pkt) {
        return cpuPorts_[idx]->sendTimingResp(pkt);
    };
    layer->onSlotFreed = [this, idx] {
        retryWaiters(respWaiters_[idx], false);
    };
    respLayers_.push_back(std::move(layer));
    respWaiters_.emplace_back();
    return idx;
}

ResponsePort &
Crossbar::cpuSidePort(unsigned idx)
{
    return *cpuPorts_.at(idx);
}

unsigned
Crossbar::addMemSidePort(const AddrRange &range)
{
    for (const AddrRange &r : ranges_) {
        if (!r.disjoint(range))
            fatal("crossbar '%s': range %s overlaps existing range %s",
                  name().c_str(), range.toString().c_str(),
                  r.toString().c_str());
    }

    unsigned idx = static_cast<unsigned>(memPorts_.size());
    memPorts_.push_back(std::make_unique<MemSidePort>(
        name() + ".memSide" + std::to_string(idx), *this, idx));
    ranges_.push_back(range);

    auto layer = std::make_unique<Layer>(
        eventq(), name() + ".reqLayer" + std::to_string(idx),
        cfg_.layerQueueLimit);
    layer->sendFn = [this, idx](Packet *pkt) {
        return memPorts_[idx]->sendTimingReq(pkt);
    };
    layer->onSlotFreed = [this, idx] {
        retryWaiters(reqWaiters_[idx], true);
    };
    reqLayers_.push_back(std::move(layer));
    reqWaiters_.emplace_back();
    return idx;
}

RequestPort &
Crossbar::memSidePort(unsigned idx)
{
    return *memPorts_.at(idx);
}

unsigned
Crossbar::route(Addr addr) const
{
    for (std::size_t i = 0; i < ranges_.size(); ++i) {
        if (ranges_[i].contains(addr))
            return static_cast<unsigned>(i);
    }
    fatal("crossbar '%s': no range covers address %#llx",
          name().c_str(), static_cast<unsigned long long>(addr));
}

std::size_t
Crossbar::queuedPackets() const
{
    std::size_t n = 0;
    for (const auto &layer : reqLayers_)
        n += layer->size();
    for (const auto &layer : respLayers_)
        n += layer->size();
    return n;
}

bool
Crossbar::idle() const
{
    for (const auto &layer : reqLayers_) {
        if (!layer->empty())
            return false;
    }
    for (const auto &layer : respLayers_) {
        if (!layer->empty())
            return false;
    }
    return true;
}

Tick
Crossbar::occupancyFor(const Packet *pkt) const
{
    return cfg_.clockPeriod *
           divCeil<std::uint64_t>(pkt->size(), cfg_.width);
}

bool
Crossbar::handleReq(Packet *pkt, unsigned src)
{
    unsigned dst = route(pkt->addr());
    Layer &layer = *reqLayers_[dst];
    if (layer.full()) {
        TRACE(XBar, "%s: block %s from port %u, req layer %u busy",
              name().c_str(), pkt->toString().c_str(), src, dst);
        ++stats_->reqRetries;
        auto &waiters = reqWaiters_[dst];
        if (std::find(waiters.begin(), waiters.end(), src) ==
            waiters.end())
            waiters.push_back(src);
        return false;
    }

    TRACE(XBar, "%s: forward %s from port %u to layer %u",
          name().c_str(), pkt->toString().c_str(), src, dst);
    if (auto *ct = obs::chromeTracer())
        ct->instant(name(), "req port " + std::to_string(src) +
                                " -> mem " + std::to_string(dst),
                    curTick());

    auto *rs = new RouteState;
    rs->srcPort = src;
    pkt->pushSenderState(rs);

    ++stats_->reqPackets;
    stats_->bytesForwarded += pkt->size();
    layer.admit(pkt, occupancyFor(pkt), cfg_.frontendLatency);
    return true;
}

bool
Crossbar::handleResp(Packet *pkt, unsigned mem_idx)
{
    auto *rs = static_cast<RouteState *>(pkt->senderState());
    DC_ASSERT(rs != nullptr, "response without route state");
    unsigned src = rs->srcPort;

    Layer &layer = *respLayers_[src];
    if (layer.full()) {
        TRACE(XBar, "%s: block %s from mem %u, resp layer %u busy",
              name().c_str(), pkt->toString().c_str(), mem_idx, src);
        auto &waiters = respWaiters_[src];
        if (std::find(waiters.begin(), waiters.end(), mem_idx) ==
            waiters.end())
            waiters.push_back(mem_idx);
        return false;
    }

    TRACE(XBar, "%s: forward %s from mem %u back to port %u",
          name().c_str(), pkt->toString().c_str(), mem_idx, src);

    pkt->popSenderState();
    delete rs;

    ++stats_->respPackets;
    stats_->bytesForwarded += pkt->size();
    layer.admit(pkt, occupancyFor(pkt), cfg_.responseLatency);
    return true;
}

void
Crossbar::retryWaiters(std::deque<unsigned> &waiters, bool cpu_side)
{
    if (waiters.empty())
        return;
    unsigned idx = waiters.front();
    waiters.pop_front();
    if (cpu_side)
        cpuPorts_[idx]->sendReqRetry();
    else
        memPorts_[idx]->sendRespRetry();
}

} // namespace dramctrl
