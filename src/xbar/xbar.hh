/**
 * @file
 * Transaction-level crossbar with address interleaving.
 *
 * The paper's multi-channel systems (Section II-F, Figure 1) put the
 * channel interleaving outside the controllers, in a crossbar: each
 * mem-side port owns a (typically interleaved) AddrRange, and requests
 * route by address. Each destination has a request layer and each
 * source a response layer; a layer serialises packets at the crossbar's
 * width and clock, models the forwarding latency, bounds its queue, and
 * propagates back pressure both ways — so a slow channel stalls exactly
 * the requestors that target it.
 */

#ifndef DRAMCTRL_XBAR_XBAR_H
#define DRAMCTRL_XBAR_XBAR_H

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "mem/addr_range.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/simulator.hh"
#include "stats/stats.hh"

namespace dramctrl {

struct XBarConfig
{
    /** Crossbar clock period. */
    Tick clockPeriod = fromNs(1.0);
    /** Bytes moved per clock on a layer. */
    unsigned width = 16;
    /** Pipeline latency added to every forwarded request. */
    Tick frontendLatency = fromNs(3.0);
    /** Pipeline latency added to every forwarded response. */
    Tick responseLatency = fromNs(3.0);
    /** Packets a layer may hold before pushing back. */
    unsigned layerQueueLimit = 2;
};

/**
 * Build the per-channel interleaved ranges for a memory of
 * @p total_size bytes starting at @p base, split over @p channels
 * channels at @p granularity bytes.
 */
std::vector<AddrRange> interleavedRanges(Addr base,
                                         std::uint64_t total_size,
                                         std::uint64_t granularity,
                                         unsigned channels);

class Crossbar : public SimObject
{
  public:
    Crossbar(Simulator &sim, std::string name, XBarConfig cfg);
    ~Crossbar() override;

    /**
     * Create a new cpu-side (requestor-facing) port.
     * @return its index, used to retrieve the port for binding.
     */
    unsigned addCpuSidePort();
    ResponsePort &cpuSidePort(unsigned idx);

    /**
     * Create a new mem-side port responsible for @p range.
     * @return its index.
     */
    unsigned addMemSidePort(const AddrRange &range);
    RequestPort &memSidePort(unsigned idx);

    const XBarConfig &config() const { return cfg_; }

    /** Index of the mem-side port covering @p addr; fatal if none. */
    unsigned route(Addr addr) const;

    /** True when no packet is held in any layer. */
    bool idle() const;

    /**
     * Packets currently buffered across every layer — the in-flight
     * crossbar occupancy the introspection endpoint reports.
     */
    std::size_t queuedPackets() const;

    struct XBarStats
    {
        explicit XBarStats(Crossbar &xbar);

        stats::Scalar reqPackets;
        stats::Scalar respPackets;
        stats::Scalar reqRetries;
        stats::Scalar bytesForwarded;
    };

    const XBarStats &xbarStats() const { return *stats_; }

  private:
    /**
     * One serialising pipeline stage. Packets are admitted with a
     * computed delivery tick and sent in order; a refused send stalls
     * the layer until the peer's retry.
     */
    class Layer
    {
      public:
        Layer(EventQueue &eq, std::string name, unsigned queue_limit);
        ~Layer();

        bool full() const { return queue_.size() >= queueLimit_; }
        bool empty() const { return queue_.empty(); }
        std::size_t size() const { return queue_.size(); }

        /** Admit a packet; the caller must have checked full(). */
        void admit(Packet *pkt, Tick occupancy, Tick latency);

        /** Forwarding hook: sendTimingReq or sendTimingResp. */
        std::function<bool(Packet *)> sendFn;
        /** Invoked whenever the layer frees a slot. */
        std::function<void()> onSlotFreed;

        /** Peer retry received. */
        void retry();

      private:
        void trySend();

        struct Entry
        {
            Tick deliverAt;
            Packet *pkt;
        };

        EventQueue &eq_;
        std::string name_;
        std::deque<Entry> queue_;
        unsigned queueLimit_;
        /** Serialisation horizon of admitted packets. */
        Tick busyUntil_ = 0;
        bool waitingForRetry_ = false;
        EventFunctionWrapper sendEvent_;
    };

    /** Route-back breadcrumb pushed on the request path. */
    struct RouteState : Packet::SenderState
    {
        unsigned srcPort;
    };

    class CpuSidePort : public ResponsePort
    {
      public:
        CpuSidePort(std::string name, Crossbar &xbar, unsigned idx)
            : ResponsePort(std::move(name)), xbar_(xbar), idx_(idx)
        {}

        bool recvTimingReq(Packet *pkt) override
        {
            return xbar_.handleReq(pkt, idx_);
        }

        void recvRespRetry() override
        {
            xbar_.respLayers_[idx_]->retry();
        }

      private:
        Crossbar &xbar_;
        unsigned idx_;
    };

    class MemSidePort : public RequestPort
    {
      public:
        MemSidePort(std::string name, Crossbar &xbar, unsigned idx)
            : RequestPort(std::move(name)), xbar_(xbar), idx_(idx)
        {}

        bool recvTimingResp(Packet *pkt) override
        {
            return xbar_.handleResp(pkt, idx_);
        }

        void recvReqRetry() override
        {
            xbar_.reqLayers_[idx_]->retry();
        }

      private:
        Crossbar &xbar_;
        unsigned idx_;
    };

    bool handleReq(Packet *pkt, unsigned src);
    bool handleResp(Packet *pkt, unsigned mem_idx);

    /** Serialisation time of @p pkt on a layer. */
    Tick occupancyFor(const Packet *pkt) const;

    void retryWaiters(std::deque<unsigned> &waiters, bool cpu_side);

    XBarConfig cfg_;

    std::vector<std::unique_ptr<CpuSidePort>> cpuPorts_;
    std::vector<std::unique_ptr<MemSidePort>> memPorts_;
    std::vector<AddrRange> ranges_;

    std::vector<std::unique_ptr<Layer>> reqLayers_;  // per mem port
    std::vector<std::unique_ptr<Layer>> respLayers_; // per cpu port

    /** Sources waiting on a full request layer, per mem port. */
    std::vector<std::deque<unsigned>> reqWaiters_;
    /** Mem ports waiting on a full response layer, per cpu port. */
    std::vector<std::deque<unsigned>> respWaiters_;

    std::unique_ptr<XBarStats> stats_;
};

} // namespace dramctrl

#endif // DRAMCTRL_XBAR_XBAR_H
