/**
 * @file
 * Shard-aware memory crossbar for parallel multi-channel simulation.
 *
 * The plain Crossbar (xbar/xbar.hh) assumes every port lives on one
 * event queue: a refused sendTimingReq() is retried synchronously, and
 * layer occupancy is tracked with zero-latency peeks across ports.
 * None of that survives sharding, where each channel controller runs
 * on its own event queue (possibly on another thread) and the only
 * legal cross-shard interaction is a message with latency >= the
 * engine's lookahead.
 *
 * ShardedCrossbar therefore splits the crossbar at the shard boundary:
 *
 *  - A FrontPort lives on the requestor's shard. It models the front
 *    layer's serialisation (one request lane per front port) and pays
 *    the frontend latency on the way to a channel.
 *  - A ChannelPort lives on its controller's shard. It models the
 *    response lane of that channel and pays the response latency on
 *    the way back.
 *  - All traffic between the two sides — requests, responses and the
 *    flow-control credits that replace synchronous retries — travels
 *    through ShardedEngine::post() and is applied at window barriers
 *    in the engine's deterministic merge order.
 *
 * Back pressure is credit based. Each front port holds reqCredits
 *  tokens per channel; a request consumes one and the channel returns
 * it (with response latency) once the controller accepted the packet.
 * Each channel holds respCredits tokens per front port; a response
 * consumes one and the front returns it (with frontend latency) once
 * the requestor accepted the packet. A side with no credit refuses its
 * local peer exactly like a plain port would, so generators and
 * controllers see the ordinary timing-port protocol, unchanged.
 *
 * The minimum latency of any cross-shard message is
 * min(frontendLatency, responseLatency) — the lookahead to configure
 * the simulator's shards with (see lookahead()).
 *
 * Construction order matters: add every channel first (inside that
 * channel's ShardScope), then every front port (inside its
 * requestor's shard scope); addFrontPort() needs the channel count
 * for credit sizing and addChannel() fatals once a front exists.
 */

#ifndef DRAMCTRL_XBAR_SHARDED_XBAR_H
#define DRAMCTRL_XBAR_SHARDED_XBAR_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/addr_range.hh"
#include "mem/port.hh"
#include "sim/shard.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace dramctrl {

class ShardedEngine;
class Simulator;

/** Sharded crossbar parameters (one layer per direction per port). */
struct ShardedXBarConfig
{
    /** Crossbar clock period. */
    Tick clockPeriod = fromNs(1.0);
    /** Datapath width in bytes per crossbar cycle. */
    unsigned width = 16;
    /** Latency of any front-side -> channel-side message. */
    Tick frontendLatency = fromNs(3.0);
    /** Latency of any channel-side -> front-side message. */
    Tick responseLatency = fromNs(3.0);
    /** Per-(front, channel) request tokens: in-flight request cap. */
    unsigned reqCredits = 4;
    /** Per-(channel, front) response tokens: in-flight response cap. */
    unsigned respCredits = 4;
};

/**
 * Ordered inbound queue of one cross-shard link, owned by a SimObject
 * on the receiving shard. deliver() (called at engine barriers, or
 * directly when the simulator is unsharded) inserts the message sorted
 * by due tick and keeps a wake-up event scheduled for the head; the
 * handler is then invoked on the owner's shard at exactly the due
 * tick. A handler returning false stalls the queue (the head entry
 * stays put) until the owner calls resume().
 */
class ShardInbox : public ShardMailbox
{
  public:
    /** Invoked on the owner's shard; false = stall until resume(). */
    using Handler = std::function<bool(Tick, Packet *, std::uint64_t)>;

    ShardInbox(SimObject &owner, const std::string &name,
               Handler handler);

    /** Deschedules the wake-up and frees still-queued packets. */
    ~ShardInbox() override;

    void deliver(Tick when, Packet *pkt, std::uint64_t arg) override;

    /** Clear a stall and re-pump pending entries. */
    void resume();

    bool empty() const { return entries_.empty(); }
    bool stalled() const { return stalled_; }

    /** Checkpoint the queued entries under @p prefix-scoped keys. */
    void serialize(ckpt::CkptOut &out, const std::string &prefix) const;
    void unserialize(ckpt::CkptIn &in, const std::string &prefix);

  private:
    struct Entry
    {
        Tick when;
        Packet *pkt;
        std::uint64_t arg;
    };

    void pump();
    void scheduleWake();

    SimObject &owner_;
    Handler handler_;
    std::deque<Entry> entries_;
    bool stalled_ = false;
    EventFunctionWrapper wakeEvent_;
};

/**
 * Channel count, address map and shard-aware routing fabric between
 * front-side requestors and per-channel memory controllers. Not a
 * SimObject itself — it owns one FrontPort / ChannelPort SimObject
 * per attached port, each living on the shard that was current when
 * it was added.
 */
class ShardedCrossbar
{
  public:
    ShardedCrossbar(Simulator &sim, std::string name,
                    const ShardedXBarConfig &cfg);
    ~ShardedCrossbar();

    ShardedCrossbar(const ShardedCrossbar &) = delete;
    ShardedCrossbar &operator=(const ShardedCrossbar &) = delete;

    /** Minimum cross-shard latency: the engine lookahead to use. */
    static Tick lookahead(const ShardedXBarConfig &cfg);

    const std::string &name() const { return name_; }
    const ShardedXBarConfig &config() const { return cfg_; }

    /**
     * Attach channel @p range served by @p ctrl_port. Call inside the
     * channel's ShardScope; must precede every addFrontPort().
     */
    void addChannel(ResponsePort &ctrl_port, AddrRange range);

    /**
     * Create the front port for requestor @p id and return the
     * ResponsePort to bind its RequestPort to. Call inside the
     * requestor's ShardScope.
     */
    ResponsePort &addFrontPort(RequestorId id);

    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }
    unsigned numFronts() const
    {
        return static_cast<unsigned>(fronts_.size());
    }

    /** No queued message, no stall, every credit back home. */
    bool idle() const;

    /** Channel index serving @p addr; fatals when unmapped. */
    unsigned routeChannel(Addr addr) const;

  private:
    class FrontPort;
    class ChannelPort;

    /** Front-port index for requestor @p id; fatals when unknown. */
    unsigned routeFront(RequestorId id) const;

    /** Ticks a packet of @p size bytes occupies a crossbar lane. */
    Tick occupancy(unsigned size) const;

    /**
     * Send @p pkt / @p arg to @p box on @p to_shard, due @p when.
     * Routes through the sharded engine when one exists, else
     * delivers directly (same queue, same ordering).
     */
    void postMsg(unsigned from_shard, unsigned to_shard, Tick when,
                 ShardInbox &box, Packet *pkt, std::uint64_t arg);

    Simulator &sim_;
    std::string name_;
    ShardedXBarConfig cfg_;

    std::vector<std::unique_ptr<ChannelPort>> channels_;
    std::vector<std::unique_ptr<FrontPort>> fronts_;
    std::vector<AddrRange> ranges_;
    /** requestorId -> front index (dense, grows as fronts attach). */
    std::vector<unsigned> frontByRequestor_;

    /**
     * Fast interleaved route: all ranges share one (granularity,
     * channel-count) interleave and range i matches channel i.
     */
    bool fastRoute_ = true;
    unsigned granShift_ = 0;
    Addr chanMask_ = 0;
};

} // namespace dramctrl

#endif // DRAMCTRL_XBAR_SHARDED_XBAR_H
