#include "xbar/sharded_xbar.hh"

#include <algorithm>

#include "ckpt/ckpt.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/simulator.hh"

namespace dramctrl {

// --------------------------------------------------------------------
// ShardInbox
// --------------------------------------------------------------------

ShardInbox::ShardInbox(SimObject &owner, const std::string &name,
                       Handler handler)
    : owner_(owner), handler_(std::move(handler)),
      wakeEvent_([this] { pump(); }, owner.name() + "." + name + ".wake")
{
}

ShardInbox::~ShardInbox()
{
    if (wakeEvent_.scheduled())
        owner_.deschedule(wakeEvent_);
    for (Entry &e : entries_) {
        if (e.pkt == nullptr)
            continue;
        while (e.pkt->senderState() != nullptr)
            delete e.pkt->popSenderState();
        delete e.pkt;
    }
}

void
ShardInbox::deliver(Tick when, Packet *pkt, std::uint64_t arg)
{
    // Keep entries sorted by due tick; equal ticks preserve delivery
    // order (upper_bound), which is the engine's deterministic merge
    // order — so the pump drains equal-tick entries exactly as they
    // were merged.
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), when,
        [](Tick t, const Entry &e) { return t < e.when; });
    entries_.insert(it, Entry{when, pkt, arg});
    if (!stalled_)
        scheduleWake();
}

void
ShardInbox::resume()
{
    if (!stalled_)
        return;
    stalled_ = false;
    pump();
}

void
ShardInbox::pump()
{
    while (!entries_.empty() &&
           entries_.front().when <= owner_.curTick()) {
        Entry &head = entries_.front();
        if (!handler_(head.when, head.pkt, head.arg)) {
            stalled_ = true;
            return;
        }
        entries_.pop_front();
    }
    if (!entries_.empty())
        scheduleWake();
}

void
ShardInbox::scheduleWake()
{
    DC_ASSERT(!entries_.empty(), "waking an empty inbox");
    Tick head = entries_.front().when;
    if (wakeEvent_.scheduled()) {
        if (wakeEvent_.when() != head)
            owner_.reschedule(wakeEvent_, head);
    } else {
        owner_.schedule(wakeEvent_, head);
    }
}

void
ShardInbox::serialize(ckpt::CkptOut &out,
                      const std::string &prefix) const
{
    out.putBool(prefix + ".stalled", stalled_);
    std::vector<std::uint64_t> whens, args;
    whens.reserve(entries_.size());
    args.reserve(entries_.size());
    for (const Entry &e : entries_) {
        whens.push_back(e.when);
        args.push_back(e.arg);
    }
    out.putU64Vec(prefix + ".when", whens);
    out.putU64Vec(prefix + ".arg", args);
    for (std::size_t i = 0; i < entries_.size(); ++i)
        out.putPacket(prefix + ".pkt" + std::to_string(i),
                      entries_[i].pkt);
    out.putEvent(prefix + ".wake", owner_.eventq(), wakeEvent_);
}

void
ShardInbox::unserialize(ckpt::CkptIn &in, const std::string &prefix)
{
    DC_ASSERT(entries_.empty(), "unserialize into a non-empty inbox");
    stalled_ = in.getBool(prefix + ".stalled");
    const auto &whens = in.getU64Vec(prefix + ".when");
    const auto &args = in.getU64Vec(prefix + ".arg");
    DC_ASSERT(whens.size() == args.size(), "inbox vector mismatch");
    for (std::size_t i = 0; i < whens.size(); ++i) {
        Packet *pkt =
            in.getPacket(prefix + ".pkt" + std::to_string(i));
        entries_.push_back(Entry{whens[i], pkt, args[i]});
    }
    in.getEvent(prefix + ".wake", owner_.eventq(), wakeEvent_);
}

// --------------------------------------------------------------------
// FrontPort — requestor-shard half of the crossbar
// --------------------------------------------------------------------

/**
 * The requestor-facing half: owns the inbound ResponsePort the
 * generator binds to, one request lane shared across channels, and
 * the per-channel request credits.
 */
class ShardedCrossbar::FrontPort : public SimObject
{
  public:
    FrontPort(Simulator &sim, const std::string &name,
              ShardedCrossbar &xbar, unsigned index, RequestorId id)
        : SimObject(sim, name), xbar_(xbar), index_(index), id_(id),
          gate_(name + ".port", *this),
          reqCredits_(xbar.numChannels(), xbar.cfg_.reqCredits),
          respInbox_(*this, "resp",
                     [this](Tick t, Packet *p, std::uint64_t a) {
                         return handleResp(t, p, a);
                     }),
          creditInbox_(*this, "credit",
                       [this](Tick t, Packet *p, std::uint64_t a) {
                           return handleCredit(t, p, a);
                       }),
          stats_(*this)
    {
    }

    ResponsePort &gate() { return gate_; }
    RequestorId requestorId() const { return id_; }
    ShardInbox &respInbox() { return respInbox_; }
    ShardInbox &creditInbox() { return creditInbox_; }

    bool
    idle() const
    {
        if (!respInbox_.empty() || !creditInbox_.empty())
            return false;
        if (waitingRetry_)
            return false;
        for (unsigned c : reqCredits_)
            if (c != xbar_.cfg_.reqCredits)
                return false;
        return true;
    }

    void
    serialize(ckpt::CkptOut &out) const override
    {
        out.putU64("req_busy_until", reqBusyUntil_);
        out.putBool("waiting_retry", waitingRetry_);
        out.putU64("waiting_channel", waitingChannel_);
        std::vector<std::uint64_t> credits(reqCredits_.begin(),
                                           reqCredits_.end());
        out.putU64Vec("req_credits", credits);
        respInbox_.serialize(out, "resp_inbox");
        creditInbox_.serialize(out, "credit_inbox");
    }

    void
    unserialize(ckpt::CkptIn &in) override
    {
        reqBusyUntil_ = in.getU64("req_busy_until");
        waitingRetry_ = in.getBool("waiting_retry");
        waitingChannel_ =
            static_cast<unsigned>(in.getU64("waiting_channel"));
        const auto &credits = in.getU64Vec("req_credits");
        DC_ASSERT(credits.size() == reqCredits_.size(),
                  "%s: credit vector shape changed", name().c_str());
        for (std::size_t i = 0; i < credits.size(); ++i)
            reqCredits_[i] = static_cast<unsigned>(credits[i]);
        respInbox_.unserialize(in, "resp_inbox");
        creditInbox_.unserialize(in, "credit_inbox");
    }

  private:
    class Gate : public ResponsePort
    {
      public:
        Gate(std::string name, FrontPort &front)
            : ResponsePort(std::move(name)), front_(front)
        {
        }

        bool
        recvTimingReq(Packet *pkt) override
        {
            return front_.handleReq(pkt);
        }

        void recvRespRetry() override { front_.respInbox_.resume(); }

      private:
        FrontPort &front_;
    };

    /** Request from the local requestor: route, charge, forward. */
    bool handleReq(Packet *pkt);

    /** Response arriving from channel @p arg, due now. */
    bool handleResp(Tick when, Packet *pkt, std::uint64_t arg);

    /** Request credit returned by channel @p arg. */
    bool
    handleCredit(Tick when, Packet *pkt, std::uint64_t arg)
    {
        (void)when;
        DC_ASSERT(pkt == nullptr, "credit message carries a packet");
        unsigned ch = static_cast<unsigned>(arg);
        DC_ASSERT(reqCredits_[ch] < xbar_.cfg_.reqCredits,
                  "%s: credit overflow on channel %u", name().c_str(),
                  ch);
        ++reqCredits_[ch];
        if (waitingRetry_ && waitingChannel_ == ch) {
            waitingRetry_ = false;
            gate_.sendReqRetry();
        }
        return true;
    }

    struct FrontStats
    {
        explicit FrontStats(FrontPort &front)
            : reqsForwarded(&front.statGroup(), "reqs_forwarded",
                            "requests forwarded to a channel"),
              reqStalls(&front.statGroup(), "req_stalls",
                        "requests refused for lack of credit")
        {
        }

        stats::Scalar reqsForwarded;
        stats::Scalar reqStalls;
    };

    friend class ShardedCrossbar;

    ShardedCrossbar &xbar_;
    const unsigned index_;
    const RequestorId id_;
    Gate gate_;

    /** When this front's request lane frees up. */
    Tick reqBusyUntil_ = 0;
    std::vector<unsigned> reqCredits_;
    bool waitingRetry_ = false;
    unsigned waitingChannel_ = 0;

    ShardInbox respInbox_;
    ShardInbox creditInbox_;
    FrontStats stats_;
};

// --------------------------------------------------------------------
// ChannelPort — controller-shard half of the crossbar
// --------------------------------------------------------------------

/**
 * The controller-facing half: owns the RequestPort bound to the
 * channel's controller, the channel's response lane, and the per-front
 * response credits.
 */
class ShardedCrossbar::ChannelPort : public SimObject
{
  public:
    ChannelPort(Simulator &sim, const std::string &name,
                ShardedCrossbar &xbar, unsigned index)
        : SimObject(sim, name), xbar_(xbar), index_(index),
          ctrlPort_(name + ".port", *this),
          reqInbox_(*this, "req",
                    [this](Tick t, Packet *p, std::uint64_t a) {
                        return handleReq(t, p, a);
                    }),
          creditInbox_(*this, "credit",
                       [this](Tick t, Packet *p, std::uint64_t a) {
                           return handleCredit(t, p, a);
                       }),
          stats_(*this)
    {
    }

    RequestPort &ctrlPort() { return ctrlPort_; }
    ShardInbox &reqInbox() { return reqInbox_; }
    ShardInbox &creditInbox() { return creditInbox_; }

    /** Called once per front port attached (fronts follow channels). */
    void
    addFront()
    {
        respCredits_.push_back(xbar_.cfg_.respCredits);
    }

    bool
    idle() const
    {
        if (!reqInbox_.empty() || !creditInbox_.empty())
            return false;
        if (respBlocked_)
            return false;
        for (unsigned c : respCredits_)
            if (c != xbar_.cfg_.respCredits)
                return false;
        return true;
    }

    void
    serialize(ckpt::CkptOut &out) const override
    {
        out.putU64("resp_busy_until", respBusyUntil_);
        out.putBool("resp_blocked", respBlocked_);
        out.putU64("resp_blocked_front", respBlockedFront_);
        std::vector<std::uint64_t> credits(respCredits_.begin(),
                                           respCredits_.end());
        out.putU64Vec("resp_credits", credits);
        reqInbox_.serialize(out, "req_inbox");
        creditInbox_.serialize(out, "credit_inbox");
    }

    void
    unserialize(ckpt::CkptIn &in) override
    {
        respBusyUntil_ = in.getU64("resp_busy_until");
        respBlocked_ = in.getBool("resp_blocked");
        respBlockedFront_ =
            static_cast<unsigned>(in.getU64("resp_blocked_front"));
        const auto &credits = in.getU64Vec("resp_credits");
        DC_ASSERT(credits.size() == respCredits_.size(),
                  "%s: credit vector shape changed", name().c_str());
        for (std::size_t i = 0; i < credits.size(); ++i)
            respCredits_[i] = static_cast<unsigned>(credits[i]);
        reqInbox_.unserialize(in, "req_inbox");
        creditInbox_.unserialize(in, "credit_inbox");
    }

  private:
    class CtrlPort : public RequestPort
    {
      public:
        CtrlPort(std::string name, ChannelPort &channel)
            : RequestPort(std::move(name)), channel_(channel)
        {
        }

        bool
        recvTimingResp(Packet *pkt) override
        {
            return channel_.handleResp(pkt);
        }

        void recvReqRetry() override { channel_.reqInbox_.resume(); }

      private:
        ChannelPort &channel_;
    };

    /** Request from front @p arg, due now: offer to the controller. */
    bool
    handleReq(Tick when, Packet *pkt, std::uint64_t arg)
    {
        (void)when;
        if (!ctrlPort_.sendTimingReq(pkt))
            return false;
        // Controller accepted: the front may send another request on
        // this channel.
        unsigned front = static_cast<unsigned>(arg);
        xbar_.postMsg(shardId(), xbar_.fronts_[front]->shardId(),
                      curTick() + xbar_.cfg_.responseLatency,
                      xbar_.fronts_[front]->creditInbox(), nullptr,
                      index_);
        return true;
    }

    /** Response from the controller: route back to its front. */
    bool
    handleResp(Packet *pkt)
    {
        unsigned front = xbar_.routeFront(pkt->requestorId());
        if (respCredits_[front] == 0) {
            DC_ASSERT(!respBlocked_,
                      "%s: second response while one is blocked",
                      name().c_str());
            respBlocked_ = true;
            respBlockedFront_ = front;
            ++stats_.respStalls;
            return false;
        }
        --respCredits_[front];
        Tick now = curTick();
        respBusyUntil_ = std::max(respBusyUntil_, now) +
                         xbar_.occupancy(pkt->size());
        ++stats_.respsForwarded;
        xbar_.postMsg(shardId(), xbar_.fronts_[front]->shardId(),
                      respBusyUntil_ + xbar_.cfg_.responseLatency,
                      xbar_.fronts_[front]->respInbox(), pkt, index_);
        return true;
    }

    /** Response credit returned by front @p arg. */
    bool
    handleCredit(Tick when, Packet *pkt, std::uint64_t arg)
    {
        (void)when;
        DC_ASSERT(pkt == nullptr, "credit message carries a packet");
        unsigned front = static_cast<unsigned>(arg);
        DC_ASSERT(respCredits_[front] < xbar_.cfg_.respCredits,
                  "%s: credit overflow on front %u", name().c_str(),
                  front);
        ++respCredits_[front];
        if (respBlocked_ && respBlockedFront_ == front) {
            respBlocked_ = false;
            ctrlPort_.sendRespRetry();
        }
        return true;
    }

    struct ChannelStats
    {
        explicit ChannelStats(ChannelPort &channel)
            : respsForwarded(&channel.statGroup(), "resps_forwarded",
                             "responses forwarded to a front port"),
              respStalls(&channel.statGroup(), "resp_stalls",
                         "responses refused for lack of credit")
        {
        }

        stats::Scalar respsForwarded;
        stats::Scalar respStalls;
    };

    friend class ShardedCrossbar;

    ShardedCrossbar &xbar_;
    const unsigned index_;
    CtrlPort ctrlPort_;

    /** When this channel's response lane frees up. */
    Tick respBusyUntil_ = 0;
    std::vector<unsigned> respCredits_;
    bool respBlocked_ = false;
    unsigned respBlockedFront_ = 0;

    ShardInbox reqInbox_;
    ShardInbox creditInbox_;
    ChannelStats stats_;
};

bool
ShardedCrossbar::FrontPort::handleReq(Packet *pkt)
{
    unsigned ch = xbar_.routeChannel(pkt->addr());
    if (reqCredits_[ch] == 0) {
        DC_ASSERT(!waitingRetry_,
                  "%s: second request while one is blocked",
                  name().c_str());
        waitingRetry_ = true;
        waitingChannel_ = ch;
        ++stats_.reqStalls;
        return false;
    }
    --reqCredits_[ch];
    Tick now = curTick();
    reqBusyUntil_ =
        std::max(reqBusyUntil_, now) + xbar_.occupancy(pkt->size());
    ++stats_.reqsForwarded;
    xbar_.postMsg(shardId(), xbar_.channels_[ch]->shardId(),
                  reqBusyUntil_ + xbar_.cfg_.frontendLatency,
                  xbar_.channels_[ch]->reqInbox(), pkt, index_);
    return true;
}

bool
ShardedCrossbar::FrontPort::handleResp(Tick when, Packet *pkt,
                                       std::uint64_t arg)
{
    (void)when;
    if (!gate_.sendTimingResp(pkt))
        return false;
    // The requestor took the response: hand the channel its response
    // credit back.
    unsigned ch = static_cast<unsigned>(arg);
    xbar_.postMsg(shardId(), xbar_.channels_[ch]->shardId(),
                  curTick() + xbar_.cfg_.frontendLatency,
                  xbar_.channels_[ch]->creditInbox(), nullptr, index_);
    return true;
}

// --------------------------------------------------------------------
// ShardedCrossbar
// --------------------------------------------------------------------

ShardedCrossbar::ShardedCrossbar(Simulator &sim, std::string name,
                                 const ShardedXBarConfig &cfg)
    : sim_(sim), name_(std::move(name)), cfg_(cfg)
{
    if (cfg_.width == 0 || cfg_.clockPeriod == 0)
        fatal("%s: zero crossbar width or clock", name_.c_str());
    if (cfg_.reqCredits == 0 || cfg_.respCredits == 0)
        fatal("%s: credit counts must be positive", name_.c_str());
    if (lookahead(cfg_) == 0)
        fatal("%s: crossbar latencies must be positive for sharding",
              name_.c_str());
}

ShardedCrossbar::~ShardedCrossbar() = default;

Tick
ShardedCrossbar::lookahead(const ShardedXBarConfig &cfg)
{
    return std::min(cfg.frontendLatency, cfg.responseLatency);
}

void
ShardedCrossbar::addChannel(ResponsePort &ctrl_port, AddrRange range)
{
    if (!fronts_.empty())
        fatal("%s: add all channels before any front port",
              name_.c_str());
    unsigned index = numChannels();
    auto channel = std::make_unique<ChannelPort>(
        sim_, name_ + ".ch" + std::to_string(index), *this, index);
    channel->ctrlPort().bind(ctrl_port);
    channels_.push_back(std::move(channel));
    ranges_.push_back(range);

    // Maintain the fast interleaved route: every range must use one
    // shared interleave with range i answering match i.
    if (range.numChannels() == 1 || range.intlvMatch() != index) {
        fastRoute_ = false;
    } else if (index == 0) {
        std::uint64_t gran = range.granularity();
        granShift_ = 0;
        while ((std::uint64_t(1) << granShift_) < gran)
            ++granShift_;
        chanMask_ = range.numChannels() - 1;
    } else if (ranges_[0].granularity() != range.granularity() ||
               ranges_[0].numChannels() != range.numChannels()) {
        fastRoute_ = false;
    }
}

ResponsePort &
ShardedCrossbar::addFrontPort(RequestorId id)
{
    if (channels_.empty())
        fatal("%s: no channels to route to", name_.c_str());
    unsigned index = numFronts();
    if (frontByRequestor_.size() <= id)
        frontByRequestor_.resize(id + 1, ~0u);
    if (frontByRequestor_[id] != ~0u)
        fatal("%s: requestor %u already has a front port",
              name_.c_str(), unsigned(id));
    frontByRequestor_[id] = index;
    auto front = std::make_unique<FrontPort>(
        sim_, name_ + ".front" + std::to_string(index), *this, index,
        id);
    for (auto &channel : channels_)
        channel->addFront();
    fronts_.push_back(std::move(front));
    return fronts_.back()->gate();
}

bool
ShardedCrossbar::idle() const
{
    for (const auto &front : fronts_)
        if (!front->idle())
            return false;
    for (const auto &channel : channels_)
        if (!channel->idle())
            return false;
    return true;
}

unsigned
ShardedCrossbar::routeChannel(Addr addr) const
{
    if (fastRoute_ && !channels_.empty()) {
        unsigned ch =
            static_cast<unsigned>((addr >> granShift_) & chanMask_);
        if (ch < numChannels() && ranges_[ch].contains(addr))
            return ch;
    }
    for (unsigned i = 0; i < numChannels(); ++i)
        if (ranges_[i].contains(addr))
            return i;
    fatal("%s: address %#llx maps to no channel", name_.c_str(),
          static_cast<unsigned long long>(addr));
}

unsigned
ShardedCrossbar::routeFront(RequestorId id) const
{
    if (id >= frontByRequestor_.size() || frontByRequestor_[id] == ~0u)
        fatal("%s: response for unknown requestor %u", name_.c_str(),
              unsigned(id));
    return frontByRequestor_[id];
}

Tick
ShardedCrossbar::occupancy(unsigned size) const
{
    std::uint64_t beats = (size + cfg_.width - 1) / cfg_.width;
    if (beats == 0)
        beats = 1;
    return cfg_.clockPeriod * beats;
}

void
ShardedCrossbar::postMsg(unsigned from_shard, unsigned to_shard,
                         Tick when, ShardInbox &box, Packet *pkt,
                         std::uint64_t arg)
{
    if (sim_.sharded()) {
        sim_.shardEngine().post(from_shard, to_shard, when, box, pkt,
                                arg);
    } else {
        box.deliver(when, pkt, arg);
    }
}

} // namespace dramctrl
