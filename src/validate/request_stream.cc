#include "validate/request_stream.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dramctrl {
namespace validate {

std::uint64_t
RequestStream::totalBytes() const
{
    std::uint64_t total = 0;
    for (const StreamRequest &r : reqs)
        total += r.size;
    return total;
}

RequestStream
generateStream(const StreamParams &params, std::uint64_t seed)
{
    static const unsigned kSizes[] = {16, 32, 64, 128, 256};

    Random rng(seed);
    RequestStream stream;
    stream.reqs.reserve(params.numRequests);
    for (std::uint64_t i = 0; i < params.numRequests; ++i) {
        StreamRequest r;
        r.gap = params.minITT == params.maxITT
                    ? params.minITT
                    : rng.uniform(params.minITT, params.maxITT);
        r.isRead = rng.uniform(1, 100) <= params.readPct;
        r.size = params.mixedSizes
                     ? kSizes[rng.uniform(0, 4)]
                     : params.blockSize;
        // Align to 16 bytes and keep the span inside the window.
        Addr limit = params.windowSize > r.size
                         ? params.windowSize - r.size
                         : 0;
        r.addr = rng.uniform(0, limit / 16) * 16;
        stream.reqs.push_back(r);
    }
    return stream;
}

StreamPlayer::StreamPlayer(Simulator &sim, std::string name,
                           const RequestStream &stream, RequestorId id)
    : SimObject(sim, std::move(name)), stream_(stream), id_(id),
      port_(this->name() + ".port", *this),
      completions_(stream.reqs.size(), 0),
      injectEvent_([this] { inject(); }, this->name() + ".injectEvent")
{
    inflight_.reserve(64);
}

StreamPlayer::~StreamPlayer()
{
    if (injectEvent_.scheduled())
        deschedule(injectEvent_);
    delete blockedPkt_;
}

void
StreamPlayer::startup()
{
    if (!stream_.reqs.empty())
        schedule(injectEvent_,
                 curTick() + stream_.reqs.front().gap);
}

bool
StreamPlayer::done() const
{
    return injected_ >= stream_.reqs.size() &&
           blockedPkt_ == nullptr && inflight_.empty();
}

std::uint64_t
StreamPlayer::unansweredRequests() const
{
    return static_cast<std::uint64_t>(std::count(
        completions_.begin(), completions_.end(), Tick(0)));
}

double
StreamPlayer::avgReadLatencyNs() const
{
    if (readResponses_ == 0)
        return 0.0;
    return toNs(totReadLatency_) /
           static_cast<double>(readResponses_);
}

void
StreamPlayer::scheduleNext()
{
    if (injected_ >= stream_.reqs.size() || blockedPkt_ != nullptr)
        return;
    if (!injectEvent_.scheduled())
        schedule(injectEvent_,
                 curTick() + stream_.reqs[injected_].gap);
}

void
StreamPlayer::inject()
{
    DC_ASSERT(blockedPkt_ == nullptr, "inject while blocked");
    DC_ASSERT(injected_ < stream_.reqs.size(), "stream exhausted");

    std::size_t idx = injected_;
    const StreamRequest &r = stream_.reqs[idx];
    auto *pkt =
        new Packet(r.isRead ? MemCmd::ReadReq : MemCmd::WriteReq,
                   r.addr, r.size, id_);
    pkt->setInjectedTick(curTick());
    inflight_.emplace_back(pkt->id(), idx);
    ++injected_;

    if (!port_.sendTimingReq(pkt)) {
        blockedPkt_ = pkt;
        blockedIdx_ = idx;
        return;
    }
    scheduleNext();
}

void
StreamPlayer::retry()
{
    DC_ASSERT(blockedPkt_ != nullptr, "retry with no blocked packet");
    Packet *pkt = blockedPkt_;
    blockedPkt_ = nullptr;
    if (!port_.sendTimingReq(pkt)) {
        blockedPkt_ = pkt;
        return;
    }
    scheduleNext();
}

bool
StreamPlayer::recvResp(Packet *pkt)
{
    DC_ASSERT(pkt->isResponse(), "player received %s",
              pkt->toString().c_str());
    ++responses_;
    lastResponseTick_ = curTick();

    auto it = std::find_if(inflight_.begin(), inflight_.end(),
                           [&](const auto &e) {
                               return e.first == pkt->id();
                           });
    if (it == inflight_.end()) {
        ++spurious_;
        delete pkt;
        return true;
    }
    std::size_t idx = it->second;
    inflight_.erase(it);

    if (completions_[idx] != 0)
        ++duplicates_;
    completions_[idx] = curTick();

    const StreamRequest &r = stream_.reqs[idx];
    if (pkt->isRead() != r.isRead || pkt->addr() != r.addr ||
        pkt->size() != r.size)
        ++mismatched_;

    if (pkt->cmd() == MemCmd::ReadResp) {
        ++readResponses_;
        totReadLatency_ += curTick() - pkt->injectedTick();
    }
    delete pkt;
    return true;
}

} // namespace validate
} // namespace dramctrl
