#include "validate/shard_diff.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include "dram/cmd_log.hh"
#include "exec/batch_runner.hh"
#include "harness/multichannel.hh"
#include "sim/logging.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"

namespace dramctrl {
namespace validate {

ShardCase
sampleShardCase(Random &rng)
{
    ShardCase sc;
    const unsigned channel_choices[] = {2, 2, 4, 4, 8};
    sc.channels = channel_choices[rng.uniform(0, 4)];
    // 2..8 workers; the engine clamps to the channel count, so a draw
    // above it exercises the clamping path too.
    sc.simThreads = static_cast<unsigned>(rng.uniform(2, 8));
    sc.pattern = rng.uniform(0, 1) == 0 ? "linear" : "random";
    const unsigned pct_choices[] = {0, 50, 100};
    sc.readPct = pct_choices[rng.uniform(0, 2)];
    sc.ittNs = 2.0 + static_cast<double>(rng.uniform(0, 6));
    sc.requestsPerGen = rng.uniform(30, 120);
    sc.seed = rng.next();
    return sc;
}

std::string
summarize(const ShardCase &sc)
{
    return formatString(
        "%u channels, %u threads, %s %u%% reads, itt %.0f ns, "
        "%llu reqs/gen",
        sc.channels, sc.simThreads, sc.pattern.c_str(), sc.readPct,
        sc.ittNs,
        static_cast<unsigned long long>(sc.requestsPerGen));
}

std::string
ShardDiffResult::describe() const
{
    std::string out;
    for (const std::string &f : failures)
        out += "  shard-diff: " + f + "\n";
    if (!out.empty())
        out.pop_back();
    return out;
}

namespace {

/** One full run at @p threads; stats JSON, merged cmd log, end tick. */
struct ShardRun
{
    std::string statsJson;
    std::string cmdLog;
    Tick finalTick = 0;
    bool drained = false;
};

ShardRun
runOnce(const DRAMCtrlConfig &cfg, const ShardCase &sc,
        unsigned threads)
{
    harness::MultiChannelConfig mcfg;
    mcfg.channels = sc.channels;
    mcfg.ctrl = cfg;
    mcfg.ctrl.writeLowThreshold = 0.0; // drain fully: terminate
    mcfg.ctrl.check();
    mcfg.simThreads = threads;
    harness::MultiChannelSystem mc(mcfg);

    GenConfig gc;
    gc.readPct = sc.readPct;
    gc.minITT = gc.maxITT = fromNs(sc.ittNs);
    gc.numRequests = sc.requestsPerGen;
    gc.windowSize =
        std::min<std::uint64_t>(mc.totalCapacity(), 1ULL << 24);
    for (unsigned i = 0; i < sc.channels; ++i) {
        GenConfig g = harness::sliceGenWindow(gc, i, sc.channels,
                                              mc.totalCapacity());
        g.seed = exec::deriveSeed(sc.seed, i);
        if (sc.pattern == "linear")
            mc.addGen<LinearGen>(g);
        else
            mc.addGen<RandomGen>(g);
    }
    std::vector<CmdLogger> &loggers = mc.attachCmdLoggers();

    ShardRun run;
    run.finalTick = mc.runToCompletion();
    run.drained = mc.drained();

    std::ostringstream os;
    mc.sim().dumpStatsJson(os);
    run.statsJson = os.str();

    // Channel-major concatenation, stably re-sorted by tick: a total
    // command order that is independent of how the run was threaded.
    struct Tagged
    {
        unsigned ch;
        const CmdRecord *rec;
    };
    std::vector<Tagged> cmds;
    for (unsigned ch = 0; ch < sc.channels; ++ch)
        for (const CmdRecord &rec : loggers[ch].log())
            cmds.push_back({ch, &rec});
    std::stable_sort(cmds.begin(), cmds.end(),
                     [](const Tagged &a, const Tagged &b) {
                         return a.rec->tick < b.rec->tick;
                     });
    std::string log;
    for (const Tagged &t : cmds)
        log += "ch" + std::to_string(t.ch) + " " +
               t.rec->toString() + "\n";
    run.cmdLog = std::move(log);
    return run;
}

} // namespace

ShardDiffResult
runShardDiff(const DRAMCtrlConfig &cfg, const ShardCase &sc)
{
    ShardRun seq = runOnce(cfg, sc, 1);
    ShardRun par = runOnce(cfg, sc, sc.simThreads);

    ShardDiffResult res;
    if (!seq.drained)
        res.failures.push_back("sequential run did not drain");
    if (!par.drained)
        res.failures.push_back("parallel run did not drain");
    if (seq.finalTick != par.finalTick)
        res.failures.push_back(formatString(
            "final tick diverged: %llu sequential vs %llu with %u "
            "threads",
            static_cast<unsigned long long>(seq.finalTick),
            static_cast<unsigned long long>(par.finalTick),
            sc.simThreads));
    if (seq.statsJson != par.statsJson)
        res.failures.push_back(formatString(
            "stats JSON diverged between 1 and %u threads",
            sc.simThreads));
    if (seq.cmdLog != par.cmdLog)
        res.failures.push_back(formatString(
            "DRAM command streams diverged between 1 and %u threads",
            sc.simThreads));
    res.pass = res.failures.empty();
    return res;
}

} // namespace validate
} // namespace dramctrl
