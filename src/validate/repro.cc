#include "validate/repro.hh"

#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace dramctrl {
namespace validate {

namespace {

Json
orgToJson(const DRAMOrg &org)
{
    Json j = Json::object();
    j.set("burstLength", org.burstLength);
    j.set("deviceBusWidth", org.deviceBusWidth);
    j.set("devicesPerRank", org.devicesPerRank);
    j.set("ranksPerChannel", org.ranksPerChannel);
    j.set("banksPerRank", org.banksPerRank);
    j.set("rowBufferSize", org.rowBufferSize);
    j.set("channelCapacity", org.channelCapacity);
    j.set("bankGroupsPerRank", org.bankGroupsPerRank);
    j.set("pseudoChannels", org.pseudoChannels);
    return j;
}

void
orgFromJson(const Json &j, DRAMOrg &org)
{
    org.burstLength =
        static_cast<unsigned>(j["burstLength"].asUInt(org.burstLength));
    org.deviceBusWidth = static_cast<unsigned>(
        j["deviceBusWidth"].asUInt(org.deviceBusWidth));
    org.devicesPerRank = static_cast<unsigned>(
        j["devicesPerRank"].asUInt(org.devicesPerRank));
    org.ranksPerChannel = static_cast<unsigned>(
        j["ranksPerChannel"].asUInt(org.ranksPerChannel));
    org.banksPerRank = static_cast<unsigned>(
        j["banksPerRank"].asUInt(org.banksPerRank));
    org.rowBufferSize = j["rowBufferSize"].asUInt(org.rowBufferSize);
    org.channelCapacity =
        j["channelCapacity"].asUInt(org.channelCapacity);
    org.bankGroupsPerRank = static_cast<unsigned>(
        j["bankGroupsPerRank"].asUInt(org.bankGroupsPerRank));
    org.pseudoChannels = static_cast<unsigned>(
        j["pseudoChannels"].asUInt(org.pseudoChannels));
}

Json
timingToJson(const DRAMTiming &t)
{
    // Ticks serialised raw (64-bit integers stay exact in this JSON
    // model), so no ns round-trip error.
    Json j = Json::object();
    j.set("tCK", t.tCK);
    j.set("tBURST", t.tBURST);
    j.set("tRCD", t.tRCD);
    j.set("tCL", t.tCL);
    j.set("tRP", t.tRP);
    j.set("tRAS", t.tRAS);
    j.set("tWR", t.tWR);
    j.set("tWTR", t.tWTR);
    j.set("tRTW", t.tRTW);
    j.set("tRRD", t.tRRD);
    j.set("tXAW", t.tXAW);
    j.set("tREFI", t.tREFI);
    j.set("tRFC", t.tRFC);
    j.set("tCCD_L", t.tCCD_L);
    j.set("tCCD_S", t.tCCD_S);
    j.set("tRRD_L", t.tRRD_L);
    j.set("tRFCsb", t.tRFCsb);
    j.set("activationLimit", t.activationLimit);
    return j;
}

void
timingFromJson(const Json &j, DRAMTiming &t)
{
    t.tCK = j["tCK"].asUInt(t.tCK);
    t.tBURST = j["tBURST"].asUInt(t.tBURST);
    t.tRCD = j["tRCD"].asUInt(t.tRCD);
    t.tCL = j["tCL"].asUInt(t.tCL);
    t.tRP = j["tRP"].asUInt(t.tRP);
    t.tRAS = j["tRAS"].asUInt(t.tRAS);
    t.tWR = j["tWR"].asUInt(t.tWR);
    t.tWTR = j["tWTR"].asUInt(t.tWTR);
    t.tRTW = j["tRTW"].asUInt(t.tRTW);
    t.tRRD = j["tRRD"].asUInt(t.tRRD);
    t.tXAW = j["tXAW"].asUInt(t.tXAW);
    t.tREFI = j["tREFI"].asUInt(t.tREFI);
    t.tRFC = j["tRFC"].asUInt(t.tRFC);
    t.tCCD_L = j["tCCD_L"].asUInt(t.tCCD_L);
    t.tCCD_S = j["tCCD_S"].asUInt(t.tCCD_S);
    t.tRRD_L = j["tRRD_L"].asUInt(t.tRRD_L);
    t.tRFCsb = j["tRFCsb"].asUInt(t.tRFCsb);
    t.activationLimit = static_cast<unsigned>(
        j["activationLimit"].asUInt(t.activationLimit));
}

Json
pluginToJson(const PluginSpec &ps)
{
    Json j = Json::object();
    j.set("kind", ps.kind);
    j.set("eccDataBits", ps.eccDataBits);
    j.set("eccCheckBits", ps.eccCheckBits);
    j.set("eccCorrectBits", ps.eccCorrectBits);
    j.set("eccDetectBits", ps.eccDetectBits);
    j.set("eccBer", ps.eccBer);
    j.set("eccSeed", ps.eccSeed);
    j.set("pracThreshold", ps.pracThreshold);
    j.set("tRFM", ps.tRFM);
    j.set("tRFCpb", ps.tRFCpb);
    return j;
}

void
pluginFromJson(const Json &j, PluginSpec &ps)
{
    ps.kind = j["kind"].asString();
    ps.eccDataBits = static_cast<unsigned>(
        j["eccDataBits"].asUInt(ps.eccDataBits));
    ps.eccCheckBits = static_cast<unsigned>(
        j["eccCheckBits"].asUInt(ps.eccCheckBits));
    ps.eccCorrectBits = static_cast<unsigned>(
        j["eccCorrectBits"].asUInt(ps.eccCorrectBits));
    ps.eccDetectBits = static_cast<unsigned>(
        j["eccDetectBits"].asUInt(ps.eccDetectBits));
    ps.eccBer = j["eccBer"].asDouble(ps.eccBer);
    ps.eccSeed = j["eccSeed"].asUInt(ps.eccSeed);
    ps.pracThreshold = static_cast<unsigned>(
        j["pracThreshold"].asUInt(ps.pracThreshold));
    ps.tRFM = j["tRFM"].asUInt(ps.tRFM);
    ps.tRFCpb = j["tRFCpb"].asUInt(ps.tRFCpb);
}

Json
cfgToJson(const DRAMCtrlConfig &cfg)
{
    Json j = Json::object();
    j.set("org", orgToJson(cfg.org));
    j.set("timing", timingToJson(cfg.timing));
    j.set("readBufferSize", cfg.readBufferSize);
    j.set("writeBufferSize", cfg.writeBufferSize);
    j.set("writeHighThreshold", cfg.writeHighThreshold);
    j.set("writeLowThreshold", cfg.writeLowThreshold);
    j.set("minWritesPerSwitch", cfg.minWritesPerSwitch);
    j.set("schedPolicy", toString(cfg.schedPolicy));
    j.set("addrMapping", toString(cfg.addrMapping));
    j.set("pagePolicy", toString(cfg.pagePolicy));
    j.set("frontendLatency", cfg.frontendLatency);
    j.set("backendLatency", cfg.backendLatency);
    j.set("maxAccessesPerRow", cfg.maxAccessesPerRow);
    j.set("enablePowerDown", cfg.enablePowerDown);
    j.set("enableSelfRefresh", cfg.enableSelfRefresh);
    j.set("perRankRefresh", cfg.perRankRefresh);
    if (!cfg.plugins.empty()) {
        Json arr = Json::array();
        for (const PluginSpec &ps : cfg.plugins)
            arr.push(pluginToJson(ps));
        j.set("plugins", arr);
    }
    return j;
}

bool
cfgFromJson(const Json &j, DRAMCtrlConfig &cfg, std::string *err)
{
    orgFromJson(j["org"], cfg.org);
    timingFromJson(j["timing"], cfg.timing);
    cfg.readBufferSize = static_cast<unsigned>(
        j["readBufferSize"].asUInt(cfg.readBufferSize));
    cfg.writeBufferSize = static_cast<unsigned>(
        j["writeBufferSize"].asUInt(cfg.writeBufferSize));
    cfg.writeHighThreshold =
        j["writeHighThreshold"].asDouble(cfg.writeHighThreshold);
    cfg.writeLowThreshold =
        j["writeLowThreshold"].asDouble(cfg.writeLowThreshold);
    cfg.minWritesPerSwitch = static_cast<unsigned>(
        j["minWritesPerSwitch"].asUInt(cfg.minWritesPerSwitch));
    if (j.has("schedPolicy") &&
        !schedPolicyFromString(j["schedPolicy"].asString(),
                               cfg.schedPolicy)) {
        if (err)
            *err = "unknown schedPolicy '" +
                   j["schedPolicy"].asString() + "'";
        return false;
    }
    if (j.has("addrMapping") &&
        !addrMappingFromString(j["addrMapping"].asString(),
                               cfg.addrMapping)) {
        if (err)
            *err = "unknown addrMapping '" +
                   j["addrMapping"].asString() + "'";
        return false;
    }
    if (j.has("pagePolicy") &&
        !pagePolicyFromString(j["pagePolicy"].asString(),
                              cfg.pagePolicy)) {
        if (err)
            *err = "unknown pagePolicy '" +
                   j["pagePolicy"].asString() + "'";
        return false;
    }
    cfg.frontendLatency =
        j["frontendLatency"].asUInt(cfg.frontendLatency);
    cfg.backendLatency = j["backendLatency"].asUInt(cfg.backendLatency);
    cfg.maxAccessesPerRow = static_cast<unsigned>(
        j["maxAccessesPerRow"].asUInt(cfg.maxAccessesPerRow));
    cfg.enablePowerDown =
        j["enablePowerDown"].asBool(cfg.enablePowerDown);
    cfg.enableSelfRefresh =
        j["enableSelfRefresh"].asBool(cfg.enableSelfRefresh);
    cfg.perRankRefresh = j["perRankRefresh"].asBool(cfg.perRankRefresh);
    cfg.plugins.clear();
    if (j.has("plugins")) {
        for (const Json &row : j["plugins"].items()) {
            PluginSpec ps;
            pluginFromJson(row, ps);
            if (ps.kind.empty()) {
                if (err)
                    *err = "plugin entry without a kind";
                return false;
            }
            cfg.plugins.push_back(ps);
        }
    }
    return true;
}

Json
streamParamsToJson(const StreamParams &sp)
{
    Json j = Json::object();
    j.set("numRequests", sp.numRequests);
    j.set("windowSize", sp.windowSize);
    j.set("readPct", sp.readPct);
    j.set("minITT", sp.minITT);
    j.set("maxITT", sp.maxITT);
    j.set("mixedSizes", sp.mixedSizes);
    j.set("blockSize", sp.blockSize);
    return j;
}

void
streamParamsFromJson(const Json &j, StreamParams &sp)
{
    sp.numRequests = j["numRequests"].asUInt(sp.numRequests);
    sp.windowSize = j["windowSize"].asUInt(sp.windowSize);
    sp.readPct = static_cast<unsigned>(j["readPct"].asUInt(sp.readPct));
    sp.minITT = j["minITT"].asUInt(sp.minITT);
    sp.maxITT = j["maxITT"].asUInt(sp.maxITT);
    sp.mixedSizes = j["mixedSizes"].asBool(sp.mixedSizes);
    sp.blockSize = static_cast<unsigned>(
        j["blockSize"].asUInt(sp.blockSize));
}

Json
streamToJson(const RequestStream &stream)
{
    // Compact row form: [gap, addr, size, isRead].
    Json arr = Json::array();
    for (const StreamRequest &r : stream.reqs) {
        Json row = Json::array();
        row.push(r.gap);
        row.push(r.addr);
        row.push(r.size);
        row.push(r.isRead);
        arr.push(row);
    }
    return arr;
}

void
streamFromJson(const Json &arr, RequestStream &stream)
{
    stream.reqs.clear();
    stream.reqs.reserve(arr.size());
    for (const Json &row : arr.items()) {
        StreamRequest r;
        r.gap = row.at(0).asUInt();
        r.addr = row.at(1).asUInt();
        r.size = static_cast<unsigned>(row.at(2).asUInt(64));
        r.isRead = row.at(3).asBool(true);
        stream.reqs.push_back(r);
    }
}

Json
optsToJson(const DiffOptions &opts)
{
    Json j = Json::object();
    j.set("bandwidthRelTol", opts.bandwidthRelTol);
    j.set("bandwidthAbsSlackNs", opts.bandwidthAbsSlackNs);
    j.set("latencyRelTol", opts.latencyRelTol);
    j.set("latencyAbsSlackNs", opts.latencyAbsSlackNs);
    j.set("saturationRatio", opts.saturationRatio);
    j.set("congestionFactor", opts.congestionFactor);
    j.set("maxTicks", opts.maxTicks);
    j.set("injectTRCDScale", opts.injectTRCDScale);
    j.set("injectPracSkip", opts.injectPracSkip);
    j.set("injectTRFCpbScale", opts.injectTRFCpbScale);
    j.set("injectRefPbStallFlat", opts.injectRefPbStallFlat);
    j.set("audit", opts.audit);
    j.set("runCycle", opts.runCycle);
    return j;
}

void
optsFromJson(const Json &j, DiffOptions &opts)
{
    opts.bandwidthRelTol =
        j["bandwidthRelTol"].asDouble(opts.bandwidthRelTol);
    opts.bandwidthAbsSlackNs =
        j["bandwidthAbsSlackNs"].asDouble(opts.bandwidthAbsSlackNs);
    opts.latencyRelTol = j["latencyRelTol"].asDouble(opts.latencyRelTol);
    opts.latencyAbsSlackNs =
        j["latencyAbsSlackNs"].asDouble(opts.latencyAbsSlackNs);
    opts.saturationRatio =
        j["saturationRatio"].asDouble(opts.saturationRatio);
    opts.congestionFactor =
        j["congestionFactor"].asDouble(opts.congestionFactor);
    opts.maxTicks = j["maxTicks"].asUInt(opts.maxTicks);
    opts.injectTRCDScale =
        j["injectTRCDScale"].asDouble(opts.injectTRCDScale);
    opts.injectPracSkip =
        j["injectPracSkip"].asBool(opts.injectPracSkip);
    opts.injectTRFCpbScale =
        j["injectTRFCpbScale"].asDouble(opts.injectTRFCpbScale);
    opts.injectRefPbStallFlat = static_cast<unsigned>(
        j["injectRefPbStallFlat"].asUInt(opts.injectRefPbStallFlat));
    opts.audit = j["audit"].asBool(opts.audit);
    opts.runCycle = j["runCycle"].asBool(opts.runCycle);
}

} // namespace

RequestStream
ReproFile::materialise() const
{
    return stream.empty() ? generateStream(fc.stream, streamSeed)
                          : stream;
}

Json
toJson(const ReproFile &repro)
{
    Json j = Json::object();
    j.set("format", "dramctrl-fuzz-repro-v1");
    j.set("note", repro.note);
    j.set("preset", repro.fc.presetName);
    j.set("config", cfgToJson(repro.fc.cfg));
    j.set("streamParams", streamParamsToJson(repro.fc.stream));
    j.set("streamSeed", repro.streamSeed);
    j.set("options", optsToJson(repro.opts));
    if (!repro.stream.empty())
        j.set("stream", streamToJson(repro.stream));
    return j;
}

bool
fromJson(const Json &j, ReproFile &repro, std::string *err)
{
    if (!j.isObject()) {
        if (err)
            *err = "repro root is not an object";
        return false;
    }
    if (j["format"].asString() != "dramctrl-fuzz-repro-v1") {
        if (err)
            *err = "unknown repro format '" + j["format"].asString() +
                   "'";
        return false;
    }
    repro.note = j["note"].asString();
    repro.fc.presetName = j["preset"].asString();
    if (!cfgFromJson(j["config"], repro.fc.cfg, err))
        return false;
    streamParamsFromJson(j["streamParams"], repro.fc.stream);
    repro.streamSeed = j["streamSeed"].asUInt();
    optsFromJson(j["options"], repro.opts);
    if (j.has("stream"))
        streamFromJson(j["stream"], repro.stream);
    return true;
}

bool
writeReproFile(const std::string &path, const ReproFile &repro)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson(repro).dump(2) << "\n";
    return static_cast<bool>(out);
}

bool
loadReproFile(const std::string &path, ReproFile &repro,
              std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    Json j;
    if (!parseJson(ss.str(), j, err))
        return false;
    return fromJson(j, repro, err);
}

DiffResult
replay(const ReproFile &repro)
{
    return runDiffStream(repro.fc, repro.materialise(), repro.opts);
}

} // namespace validate
} // namespace dramctrl
