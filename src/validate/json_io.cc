#include "validate/json_io.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dramctrl {
namespace validate {

namespace {

const Json kNull;

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

struct Parser
{
    const char *p;
    const char *end;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    literal(const char *lit)
    {
        const char *q = p;
        while (*lit != '\0') {
            if (q >= end || *q != *lit)
                return false;
            ++q;
            ++lit;
        }
        p = q;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("dangling escape");
                switch (*p) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (end - p < 5)
                        return fail("short \\u escape");
                    char buf[5] = {p[1], p[2], p[3], p[4], 0};
                    auto code = static_cast<unsigned>(
                        std::strtoul(buf, nullptr, 16));
                    // Repro files are ASCII; keep it simple.
                    out += static_cast<char>(code & 0x7f);
                    p += 4;
                    break;
                  }
                  default: return fail("unknown escape");
                }
                ++p;
            } else {
                out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseValue(Json &out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            out = Json::object();
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                Json v;
                if (!parseValue(v))
                    return false;
                out.set(key, std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++p;
            out = Json::array();
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                Json v;
                if (!parseValue(v))
                    return false;
                out.push(std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
          }
          case 't':
            if (literal("true")) {
                out = Json(true);
                return true;
            }
            return fail("bad literal");
          case 'f':
            if (literal("false")) {
                out = Json(false);
                return true;
            }
            return fail("bad literal");
          case 'n':
            if (literal("null")) {
                out = Json();
                return true;
            }
            return fail("bad literal");
          default: {
            const char *start = p;
            if (*p == '-' || *p == '+')
                ++p;
            bool integral = true;
            while (p < end &&
                   (std::isdigit(static_cast<unsigned char>(*p)) ||
                    *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                    *p == '+')) {
                if (*p == '.' || *p == 'e' || *p == 'E')
                    integral = false;
                ++p;
            }
            if (p == start)
                return fail("unexpected character");
            std::string num(start, p);
            if (integral && num[0] != '-') {
                errno = 0;
                char *endp = nullptr;
                std::uint64_t u =
                    std::strtoull(num.c_str(), &endp, 10);
                if (errno == 0 && endp != nullptr && *endp == '\0') {
                    out = Json(u);
                    return true;
                }
            }
            out = Json(std::strtod(num.c_str(), nullptr));
            return true;
          }
        }
    }
};

} // namespace

const Json &
Json::at(std::size_t i) const
{
    return i < arr_.size() ? arr_[i] : kNull;
}

const Json &
Json::operator[](const std::string &key) const
{
    auto it = obj_.find(key);
    return it == obj_.end() ? kNull : it->second;
}

bool
Json::has(const std::string &key) const
{
    return obj_.find(key) != obj_.end();
}

void
Json::set(const std::string &key, Json v)
{
    obj_[key] = std::move(v);
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent >= 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (type_) {
      case Type::Null: out += "null"; break;
      case Type::Bool: out += bool_ ? "true" : "false"; break;
      case Type::Number: {
        char buf[40];
        if (isUInt_)
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(uint_));
        else
            std::snprintf(buf, sizeof(buf), "%.17g", num_);
        out += buf;
        break;
      }
      case Type::String: appendEscaped(out, str_); break;
      case Type::Array: {
        out += '[';
        bool first = true;
        for (const Json &v : arr_) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out += ']';
        break;
      }
      case Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : obj_) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            appendEscaped(out, k);
            out += indent >= 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

bool
parseJson(const std::string &text, Json &out, std::string *err)
{
    Parser parser{text.data(), text.data() + text.size(), {}};
    if (!parser.parseValue(out)) {
        if (err != nullptr)
            *err = parser.err;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        if (err != nullptr)
            *err = "trailing characters";
        return false;
    }
    return true;
}

} // namespace validate
} // namespace dramctrl
