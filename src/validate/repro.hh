/**
 * @file
 * Self-contained reproducer files for fuzz failures.
 *
 * A repro file captures everything a failing differential run needs to
 * be replayed in a fresh process: the full controller configuration
 * (serialised knob by knob, so the file stays valid even if presets
 * drift), the stream parameters and seed, the — usually shrunk —
 * explicit request stream, the tolerances, and any injected fault.
 * `fuzz_cli --repro file.json` and the validate_repro test target
 * replay them.
 */

#ifndef DRAMCTRL_VALIDATE_REPRO_H
#define DRAMCTRL_VALIDATE_REPRO_H

#include <string>

#include "validate/config_fuzzer.hh"
#include "validate/diff_runner.hh"
#include "validate/json_io.hh"
#include "validate/request_stream.hh"

namespace dramctrl {
namespace validate {

/** One replayable fuzz scenario. */
struct ReproFile
{
    FuzzCase fc;
    std::uint64_t streamSeed = 0;
    /**
     * Explicit request stream. When empty, replay regenerates it from
     * fc.stream and streamSeed; a shrunk repro stores it explicitly.
     */
    RequestStream stream;
    DiffOptions opts;
    /** Free-form context (what failed, fuzzer seed/run index). */
    std::string note;

    /** The stream replay will actually use. */
    RequestStream materialise() const;
};

Json toJson(const ReproFile &repro);
bool fromJson(const Json &j, ReproFile &repro,
              std::string *err = nullptr);

/** Write @p repro to @p path (pretty-printed). @return success. */
bool writeReproFile(const std::string &path, const ReproFile &repro);

/** Load and validate a repro file. @return success; *err on failure. */
bool loadReproFile(const std::string &path, ReproFile &repro,
                   std::string *err = nullptr);

/** Replay: run the differential check the file describes. */
DiffResult replay(const ReproFile &repro);

} // namespace validate
} // namespace dramctrl

#endif // DRAMCTRL_VALIDATE_REPRO_H
