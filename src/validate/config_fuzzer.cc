#include "validate/config_fuzzer.hh"

#include <algorithm>

#include "dram/dram_presets.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace validate {

namespace {

template <typename T, std::size_t N>
const T &
pick(Random &rng, const T (&options)[N])
{
    return options[rng.uniform(0, N - 1)];
}

} // namespace

FuzzCase
sampleCase(Random &rng, const FuzzerOptions &opts)
{
    static const char *kPresets[] = {
        "ddr3_1333", "ddr3_1600", "lpddr3_1600", "wideio_200",
        "hmc_vault",
    };

    FuzzCase fc;
    if (!opts.standards.empty()) {
        fc.presetName = opts.standards[rng.uniform(
            0, static_cast<unsigned>(opts.standards.size()) - 1)];
    } else {
        fc.presetName = pick(rng, kPresets);
    }
    fc.cfg = presets::byName(fc.presetName);
    DRAMCtrlConfig &cfg = fc.cfg;

    // Organisation: multi-rank variants keep rowsPerBank a power of
    // two because every preset capacity / geometry field already is.
    static const unsigned kRanks[] = {1, 1, 2, 4};
    cfg.org.ranksPerChannel = pick(rng, kRanks);

    // Controller knobs (Table I space).
    static const unsigned kReadBuf[] = {8, 16, 32, 64};
    static const unsigned kWriteBuf[] = {16, 32, 64, 128};
    cfg.readBufferSize = pick(rng, kReadBuf);
    cfg.writeBufferSize = pick(rng, kWriteBuf);
    static const double kHighWm[] = {0.7, 0.85, 0.9};
    static const double kLowWm[] = {0.3, 0.4, 0.5};
    cfg.writeHighThreshold = pick(rng, kHighWm);
    cfg.writeLowThreshold = pick(rng, kLowWm);
    cfg.minWritesPerSwitch = static_cast<unsigned>(rng.uniform(
        1, std::min(cfg.writeBufferSize, 18u)));

    if (opts.cycleCompatible) {
        // Strict FCFS means different things to the two models: the
        // event model serialises whole transactions analytically,
        // the cycle model still overlaps bank preparation through its
        // per-bank command queues. Both are defensible FCFS
        // controllers, but they are not each other's reference, so
        // differential runs stick to FR-FCFS (the paper's default).
        cfg.schedPolicy = SchedPolicy::FrFcfs;
    } else {
        static const SchedPolicy kSched[] = {SchedPolicy::Fcfs,
                                             SchedPolicy::FrFcfs};
        cfg.schedPolicy = pick(rng, kSched);
    }

    static const AddrMapping kMaps[] = {AddrMapping::RoRaBaCoCh,
                                        AddrMapping::RoRaBaChCo,
                                        AddrMapping::RoCoRaBaCh};
    cfg.addrMapping = pick(rng, kMaps);

    if (opts.cycleCompatible) {
        // The cycle comparator only implements the two plain policies.
        static const PagePolicy kPages[] = {PagePolicy::Open,
                                            PagePolicy::Closed};
        cfg.pagePolicy = pick(rng, kPages);
    } else {
        static const PagePolicy kPages[] = {
            PagePolicy::Open, PagePolicy::OpenAdaptive,
            PagePolicy::Closed, PagePolicy::ClosedAdaptive};
        cfg.pagePolicy = pick(rng, kPages);
    }

    static const unsigned kMaxRow[] = {0, 4, 16};
    cfg.maxAccessesPerRow = pick(rng, kMaxRow);

    // Timing mutations that stay inside DRAMTiming::check(): the
    // activation limit (0 disables tXAW; never 1) and the refresh
    // interval (0 disables refresh; otherwise far above every preset
    // tRFC). Short tREFI values make refresh interactions frequent
    // enough to matter within a short fuzz run.
    static const unsigned kActLimit[] = {0, 2, 4};
    cfg.timing.activationLimit = pick(rng, kActLimit);

    switch (rng.uniform(0, 3)) {
      case 0: cfg.timing.tREFI = 0; break;
      case 1: cfg.timing.tREFI = fromUs(1.0); break;
      case 2: cfg.timing.tREFI = fromUs(2.0); break;
      default: break; // keep the preset value
    }

    static const double kStaticNs[] = {0.0, 5.0, 10.0, 20.0};
    cfg.frontendLatency = fromNs(pick(rng, kStaticNs));
    cfg.backendLatency = fromNs(pick(rng, kStaticNs));

    if (!opts.cycleCompatible) {
        // Event-model-only features: low-power states and staggered
        // per-rank refresh have no cycle-model counterpart.
        cfg.enablePowerDown = rng.chance(0.3);
        if (cfg.enablePowerDown)
            cfg.enableSelfRefresh = rng.chance(0.3);
        cfg.perRankRefresh = rng.chance(0.5);
    }

    if (opts.withPlugins) {
        // Random plugin chain. Error rates span "never fires" to
        // "every burst is noisy"; PRAC thresholds are far below real
        // silicon so mitigations actually trigger within a short run.
        if (rng.chance(0.5)) {
            PluginSpec ecc;
            ecc.kind = "ecc";
            if (rng.chance(0.3)) {
                ecc.eccDataBits = 128;
                ecc.eccCheckBits = 16;
            }
            static const double kBer[] = {0.0, 1e-7, 1e-5, 1e-3};
            ecc.eccBer = pick(rng, kBer);
            ecc.eccSeed = rng.uniform(1, 1u << 20);
            cfg.plugins.push_back(ecc);
        }
        if (rng.chance(0.4)) {
            PluginSpec prac;
            prac.kind = "prac";
            static const unsigned kThresh[] = {4, 8, 16, 64};
            prac.pracThreshold = pick(rng, kThresh);
            cfg.plugins.push_back(prac);
        }
        // Per-bank refresh is event-only and needs a live refresh
        // schedule free of the per-rank stagger and low-power states.
        bool pbOk = !opts.cycleCompatible && cfg.timing.tREFI != 0 &&
                    !cfg.perRankRefresh && !cfg.enablePowerDown &&
                    !cfg.enableSelfRefresh;
        switch (rng.uniform(0, 3)) {
          case 0: {
            PluginSpec mgr;
            mgr.kind = "refmgr";
            cfg.plugins.push_back(mgr);
            break;
          }
          case 1:
            if (pbOk) {
                PluginSpec mgr;
                mgr.kind = "refmgr-pb";
                cfg.plugins.push_back(mgr);
            }
            break;
          default:
            break; // no refresh manager
        }
    }

    // Stimulus: window sized to stress either row locality (small) or
    // bank/rank spread (large), always inside the channel.
    StreamParams &sp = fc.stream;
    static const std::uint64_t kWindow[] = {
        1ULL << 16, 1ULL << 20, 1ULL << 22, 1ULL << 24};
    sp.windowSize = std::min<std::uint64_t>(pick(rng, kWindow),
                                            cfg.org.channelCapacity);
    static const unsigned kReadPct[] = {0, 30, 50, 70, 100};
    sp.readPct = pick(rng, kReadPct);
    sp.numRequests = opts.numRequests
                         ? opts.numRequests
                         : rng.uniform(200, 600);
    // Gap range spans back-to-back pressure to near-idle trickle.
    static const double kGapLo[] = {0.0, 2.0, 10.0};
    static const double kGapSpan[] = {5.0, 30.0, 120.0};
    double lo = pick(rng, kGapLo);
    double hi = lo + pick(rng, kGapSpan);
    sp.minITT = fromNs(lo);
    sp.maxITT = fromNs(hi);
    sp.mixedSizes = rng.chance(0.3);
    sp.blockSize = 64;

    // A request spanning more bursts than a whole queue can never be
    // accepted (the controller fatals on it); keep every sampled
    // config able to hold the worst-case request. Streams align to
    // 16 B, so an unaligned max-size request may touch one extra
    // burst. Differential runs additionally want room for several
    // such requests: the event model buffers *bursts* where the cycle
    // model buffers *transactions*, and with multi-burst requests
    // squeezed into a tiny queue that accounting difference dominates
    // saturated throughput.
    unsigned maxReqBytes = sp.mixedSizes ? 256 : sp.blockSize;
    auto worstBursts = static_cast<unsigned>(
        maxReqBytes / cfg.org.burstSize() + 1);
    unsigned floor = opts.cycleCompatible ? 4 * worstBursts
                                          : worstBursts;
    cfg.readBufferSize = std::max(cfg.readBufferSize, floor);
    cfg.writeBufferSize = std::max(cfg.writeBufferSize, floor);

    cfg.check();
    return fc;
}

std::string
summarize(const FuzzCase &fc)
{
    const DRAMCtrlConfig &cfg = fc.cfg;
    const StreamParams &sp = fc.stream;
    std::string plugins;
    for (const PluginSpec &ps : cfg.plugins) {
        plugins += plugins.empty() ? " plugins=" : ",";
        if (ps.kind == "ecc")
            plugins += formatString("ecc(%u+%u,ber=%g)",
                                    ps.eccDataBits, ps.eccCheckBits,
                                    ps.eccBer);
        else if (ps.kind == "prac")
            plugins += formatString("prac(t=%u)", ps.pracThreshold);
        else
            plugins += ps.kind;
    }
    return formatString(
        "%s ranks=%u map=%s page=%s sched=%s rq=%u wq=%u xaw=%u "
        "refi=%.1fus maxrow=%u | n=%llu win=%lluKiB rd%%=%u "
        "itt=[%.0f,%.0f]ns%s",
        fc.presetName.c_str(), cfg.org.ranksPerChannel,
        toString(cfg.addrMapping), toString(cfg.pagePolicy),
        toString(cfg.schedPolicy), cfg.readBufferSize,
        cfg.writeBufferSize, cfg.timing.activationLimit,
        toNs(cfg.timing.tREFI) / 1e3, cfg.maxAccessesPerRow,
        static_cast<unsigned long long>(sp.numRequests),
        static_cast<unsigned long long>(sp.windowSize >> 10),
        sp.readPct, toNs(sp.minITT), toNs(sp.maxITT),
        sp.mixedSizes ? " mixed" : "") + plugins;
}

} // namespace validate
} // namespace dramctrl
