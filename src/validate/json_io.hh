/**
 * @file
 * Minimal JSON document model for the validation subsystem.
 *
 * Repro files (seed + config + shrunk request stream) must be written
 * on failure and replayed later, so the subsystem needs both a writer
 * and a parser. The stats tree already knows how to *emit* JSON; this
 * adds the tiny self-contained value model and recursive-descent
 * parser the repro format needs — objects, arrays, strings, bools,
 * null, and numbers (64-bit unsigned integers kept exact).
 */

#ifndef DRAMCTRL_VALIDATE_JSON_IO_H
#define DRAMCTRL_VALIDATE_JSON_IO_H

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

namespace dramctrl {
namespace validate {

class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(std::uint64_t u)
        : type_(Type::Number), num_(static_cast<double>(u)), uint_(u),
          isUInt_(true)
    {}
    Json(int i) : Json(static_cast<double>(i)) {}
    Json(unsigned u) : Json(static_cast<std::uint64_t>(u)) {}
    template <typename T,
              typename = std::enable_if_t<
                  std::is_unsigned_v<T> &&
                  !std::is_same_v<T, bool> &&
                  !std::is_same_v<T, unsigned> &&
                  !std::is_same_v<T, std::uint64_t>>>
    Json(T u) : Json(static_cast<std::uint64_t>(u))
    {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }

    bool asBool(bool fallback = false) const
    {
        return type_ == Type::Bool ? bool_ : fallback;
    }
    double asDouble(double fallback = 0) const
    {
        return type_ == Type::Number ? num_ : fallback;
    }
    std::uint64_t
    asUInt(std::uint64_t fallback = 0) const
    {
        if (type_ != Type::Number)
            return fallback;
        return isUInt_ ? uint_ : static_cast<std::uint64_t>(num_);
    }
    const std::string &
    asString(const std::string &fallback = std::string()) const
    {
        return type_ == Type::String ? str_ : fallback;
    }

    /** Array element access; returns a shared null for misses. */
    const Json &at(std::size_t i) const;
    std::size_t size() const { return arr_.size(); }
    void push(Json v) { arr_.push_back(std::move(v)); }
    const std::vector<Json> &items() const { return arr_; }

    /** Object member access; returns a shared null for misses. */
    const Json &operator[](const std::string &key) const;
    bool has(const std::string &key) const;
    void set(const std::string &key, Json v);
    const std::map<std::string, Json> &members() const { return obj_; }

    /** Serialise; indent >= 0 pretty-prints. */
    std::string dump(int indent = -1) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0;
    std::uint64_t uint_ = 0;
    bool isUInt_ = false;
    std::string str_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;
};

/**
 * Parse @p text into @p out.
 * @return false (with *err set when given) on malformed input.
 */
bool parseJson(const std::string &text, Json &out,
               std::string *err = nullptr);

} // namespace validate
} // namespace dramctrl

#endif // DRAMCTRL_VALIDATE_JSON_IO_H
