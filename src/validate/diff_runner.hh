/**
 * @file
 * Differential event-vs-cycle runner.
 *
 * Feeds one materialised request stream to the event-based DRAMCtrl
 * and the cycle-by-cycle CycleDRAMCtrl under an identical
 * configuration, with an online ProtocolChecker auditing each model's
 * implied command stream as it is issued. A run passes when
 *
 *  - both models answer every request exactly once (no lost, spurious,
 *    duplicated or mismatched responses) and drain before the timeout;
 *  - neither command stream violates a JEDEC constraint;
 *  - the event model's command stream satisfies the write-queue
 *    conservation law (RD commands == read bursts minus the reads
 *    serviced by write-queue forwarding);
 *  - aggregate completion time (inverse bandwidth) and mean read
 *    latency agree between the models within configured tolerances.
 *
 * The two models are *supposed* to differ in exact timing — the event
 * model is the paper's fast abstraction, the cycle model the
 * DRAMSim2-style reference — so the timing checks are tolerance bands,
 * not equality; the functional and protocol checks are exact.
 */

#ifndef DRAMCTRL_VALIDATE_DIFF_RUNNER_H
#define DRAMCTRL_VALIDATE_DIFF_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "dram/protocol_checker.hh"
#include "validate/config_fuzzer.hh"
#include "validate/request_stream.hh"

namespace dramctrl {
namespace validate {

/** Knobs of one differential run. */
struct DiffOptions
{
    /**
     * Relative completion-time (inverse bandwidth) tolerance. The
     * default is wide because the models legitimately disagree on
     * saturated throughput: the cycle model ceil-quantises every
     * timing parameter to its clock (up to +11% each on slow-clock
     * parts like WideIO), and queue capacities are accounted in
     * bursts (event) vs transactions (cycle). Genuine scheduling bugs
     * show up as 2x-plus gaps, timeouts, or protocol violations, all
     * far outside this band.
     */
    double bandwidthRelTol = 0.5;
    /**
     * Absolute completion-time slack added to the relative band, ns.
     * Shrunk streams are a handful of requests, where fixed
     * pipeline-latency differences between the models dominate and a
     * purely relative check would flag every short run.
     */
    double bandwidthAbsSlackNs = 1500.0;
    /** Relative mean-read-latency tolerance. */
    double latencyRelTol = 0.60;
    /** Absolute latency slack added to the relative band, ns. */
    double latencyAbsSlackNs = 60.0;
    /**
     * Completion-to-injection-span ratio above which a model counts
     * as bandwidth-bound. When either model saturates, queueing
     * delay — not service latency — dominates mean read latency, and
     * near-identical models can legitimately differ by integer
     * factors there; the latency comparison is skipped (the
     * completion-time comparison still covers saturated throughput).
     */
    double saturationRatio = 1.25;
    /**
     * Second congestion guard: skip the latency band when either
     * model's mean read latency exceeds this multiple of the
     * zero-load latency (static latencies + tRP + tRCD + tCL +
     * tBURST). Bursty arrivals can congest queues — where latency is
     * hypersensitive to small throughput differences — without
     * stretching overall completion past saturationRatio.
     */
    double congestionFactor = 5.0;
    /** Give up (and fail) after this much simulated time. */
    Tick maxTicks = fromUs(50000.0);
    /**
     * Test-only fault injection: scale the event model's internal
     * tRCD by this factor after construction (see
     * DRAMCtrl::testScaleTRCD). 1.0 = no fault. The protocol checker
     * keeps the unscaled timing, so factors < 1 must be caught.
     */
    double injectTRCDScale = 1.0;
    /**
     * Test-only fault injection: make the event model skip the PRAC
     * mitigation refresh a pending alert demands (see
     * DRAMCtrl::testSkipPracMitigation). The armed checker's "prac"
     * rule must flag the unmitigated ACT.
     */
    bool injectPracSkip = false;
    /**
     * Test-only fault injection: scale the event model's per-bank
     * refresh blackout (tRFCpb) by this factor. Factors < 1 shrink the
     * blackout under what the checker enforces, so following ACTs must
     * trip the "tRFCpb" rule. 1.0 = no fault.
     */
    double injectTRFCpbScale = 1.0;
    /**
     * Test-only fault injection: the event model silently skips every
     * per-bank refresh of this flat bank index, starving it past the
     * per-bank tREFI deadline. ~0u = no fault.
     */
    unsigned injectRefPbStallFlat = ~0u;
    /** Audit command streams with the online ProtocolChecker. */
    bool audit = true;
    /** Also run the cycle model (off = event model + checker only). */
    bool runCycle = true;
};

/** What one model did with the stream. */
struct ModelResult
{
    bool completed = false;
    Tick completionTick = 0;
    std::uint64_t responses = 0;
    std::uint64_t spurious = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t mismatched = 0;
    std::uint64_t unanswered = 0;
    double avgReadLatencyNs = 0.0;
    std::uint64_t readResponses = 0;

    std::uint64_t protocolViolations = 0;
    /** First few violations, pre-formatted for reports. */
    std::vector<std::string> violationSamples;

    /** Commands seen on the (logged) command bus. */
    std::uint64_t actCmds = 0;
    std::uint64_t rdCmds = 0;
    std::uint64_t wrCmds = 0;

    /** Event model only: read bursts serviced from the write queue. */
    std::uint64_t servicedByWrQ = 0;
    std::uint64_t readBursts = 0;

    /** ECC plugin counters (all zero when no ecc plugin is armed). */
    bool eccArmed = false;
    unsigned eccWordsPerBurst = 0;
    std::uint64_t eccWordsProcessed = 0;
    std::uint64_t eccWordsWithErrors = 0;
    std::uint64_t eccCorrected = 0;
    std::uint64_t eccDetected = 0;
    std::uint64_t eccEscaped = 0;
};

/** Verdict of one differential run. */
struct DiffResult
{
    bool pass = true;
    /** Human-readable reasons, empty on pass. */
    std::vector<std::string> failures;

    ModelResult event;
    ModelResult cycle;

    std::string describe() const;
};

/**
 * Run @p fc.stream (materialised from @p streamSeed) through both
 * models and compare. Deterministic for fixed inputs.
 */
DiffResult runDiff(const FuzzCase &fc, std::uint64_t streamSeed,
                   const DiffOptions &opts = {});

/** Run a pre-materialised stream (the shrinker's entry point). */
DiffResult runDiffStream(const FuzzCase &fc,
                         const RequestStream &stream,
                         const DiffOptions &opts = {});

} // namespace validate
} // namespace dramctrl

#endif // DRAMCTRL_VALIDATE_DIFF_RUNNER_H
