#include "validate/shrinker.hh"

#include <algorithm>

namespace dramctrl {
namespace validate {

namespace {

RequestStream
without(const RequestStream &s, std::size_t from, std::size_t count)
{
    RequestStream out;
    out.reqs.reserve(s.reqs.size() - count);
    for (std::size_t i = 0; i < s.reqs.size(); ++i)
        if (i < from || i >= from + count)
            out.reqs.push_back(s.reqs[i]);
    return out;
}

} // namespace

ShrinkOutcome
shrinkStreamWith(const RequestStream &failing,
                 const std::function<bool(const RequestStream &)> &fails,
                 unsigned maxEvaluations)
{
    ShrinkOutcome out;
    out.stream = failing;

    std::size_t chunk = std::max<std::size_t>(out.stream.size() / 2, 1);
    while (chunk >= 1) {
        bool removedAny = false;
        for (std::size_t from = 0; from < out.stream.size();) {
            if (out.evaluations >= maxEvaluations)
                return out;
            std::size_t count =
                std::min(chunk, out.stream.size() - from);
            if (count == out.stream.size())
                break; // never probe the empty stream
            RequestStream cand = without(out.stream, from, count);
            ++out.evaluations;
            if (fails(cand)) {
                out.stream = std::move(cand);
                removedAny = true;
                // Same index now names the next chunk; stay put.
            } else {
                from += count;
            }
        }
        if (chunk == 1) {
            // A full single-request sweep with no removal: minimal.
            if (!removedAny) {
                out.minimal = true;
                break;
            }
        } else {
            chunk = chunk / 2;
        }
    }
    return out;
}

ShrinkOutcome
shrinkStream(const FuzzCase &fc, const RequestStream &failing,
             const DiffOptions &opts, unsigned maxEvaluations)
{
    return shrinkStreamWith(
        failing,
        [&](const RequestStream &cand) {
            return !runDiffStream(fc, cand, opts).pass;
        },
        maxEvaluations);
}

} // namespace validate
} // namespace dramctrl
