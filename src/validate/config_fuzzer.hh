/**
 * @file
 * Seeded sampling of valid controller configurations and stimulus
 * parameters for differential fuzzing.
 *
 * Each fuzz run draws one FuzzCase: a DRAMCtrlConfig (preset timing
 * set plus randomised organisation and controller knobs — queue
 * depths, page policies, address maps, ranks, activation limits,
 * drain watermarks, refresh intervals) and the StreamParams for the
 * randomised request stream. Sampling stays inside the intersection
 * both models support (the cycle comparator handles only the plain
 * Open and Closed page policies) and every sampled configuration
 * passes DRAMCtrlConfig::check() by construction.
 */

#ifndef DRAMCTRL_VALIDATE_CONFIG_FUZZER_H
#define DRAMCTRL_VALIDATE_CONFIG_FUZZER_H

#include <string>
#include <vector>

#include "dram/dram_config.hh"
#include "sim/random.hh"
#include "validate/request_stream.hh"

namespace dramctrl {
namespace validate {

/** One sampled differential-fuzz scenario. */
struct FuzzCase
{
    DRAMCtrlConfig cfg;
    StreamParams stream;
    /** Preset the timing set came from (for reports). */
    std::string presetName;
};

/** Sampling restrictions. */
struct FuzzerOptions
{
    /** Override for the per-run request count (0 keeps the sample). */
    std::uint64_t numRequests = 0;
    /**
     * Keep the sample inside what the cycle comparator supports
     * (Open/Closed page policy). Always wanted for differential runs;
     * switch off to fuzz the event model alone against the checker.
     */
    bool cycleCompatible = true;
    /**
     * Also draw a random plugin chain (ECC geometry/error rate, PRAC
     * thresholds, refresh managers) for each case. Per-bank refresh
     * only appears in event-only samples — the cycle model rejects it.
     */
    bool withPlugins = false;
    /**
     * Preset names to draw the base timing set from. Empty keeps the
     * historical pool (the five DDR3-era presets), so old seeds keep
     * reproducing the same cases; fuzz_cli --standards widens it to
     * the bank-grouped DDR4/LPDDR4/HBM standards.
     */
    std::vector<std::string> standards;
};

/** Draw one valid scenario from @p rng. */
FuzzCase sampleCase(Random &rng, const FuzzerOptions &opts = {});

/** One-line summary of a sampled case, for logs. */
std::string summarize(const FuzzCase &fc);

} // namespace validate
} // namespace dramctrl

#endif // DRAMCTRL_VALIDATE_CONFIG_FUZZER_H
