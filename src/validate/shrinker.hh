/**
 * @file
 * Delta-debugging shrinker for failing request streams.
 *
 * Given a stream that makes the differential check fail, repeatedly
 * tries removing chunks of requests (classic ddmin: halves, then
 * quarters, down to single requests) and keeps any removal that still
 * fails. The result is a locally-minimal reproducer: removing any
 * single remaining request makes the failure disappear (up to the
 * evaluation budget). Each probe is a full deterministic re-run of
 * both models, so shrinking is expensive — it only happens once a
 * failure is already in hand.
 */

#ifndef DRAMCTRL_VALIDATE_SHRINKER_H
#define DRAMCTRL_VALIDATE_SHRINKER_H

#include <functional>

#include "validate/diff_runner.hh"
#include "validate/request_stream.hh"

namespace dramctrl {
namespace validate {

struct ShrinkOutcome
{
    RequestStream stream;
    /** Differential runs spent probing. */
    unsigned evaluations = 0;
    /** True when the loop converged before exhausting the budget. */
    bool minimal = false;
};

/**
 * Shrink @p failing under the predicate "runDiffStream still fails".
 * @p maxEvaluations bounds the probe count (each probe simulates both
 * models end to end).
 */
ShrinkOutcome shrinkStream(const FuzzCase &fc,
                           const RequestStream &failing,
                           const DiffOptions &opts,
                           unsigned maxEvaluations = 300);

/**
 * Generic ddmin over a stream for an arbitrary "still interesting"
 * predicate (exposed for tests).
 */
ShrinkOutcome
shrinkStreamWith(const RequestStream &failing,
                 const std::function<bool(const RequestStream &)> &fails,
                 unsigned maxEvaluations = 300);

} // namespace validate
} // namespace dramctrl

#endif // DRAMCTRL_VALIDATE_SHRINKER_H
