/**
 * @file
 * Explicit request streams for differential validation.
 *
 * The differential runner must feed *byte-identical* stimulus to both
 * controller models, and the shrinker must be able to cut the stimulus
 * down to a minimal reproducer. Both needs point away from re-seeding
 * live generators and towards a materialised stream: a vector of
 * (gap, address, size, is-read) tuples generated once from a seed,
 * replayed into each model by a StreamPlayer, and trivially sliceable
 * for delta debugging.
 */

#ifndef DRAMCTRL_VALIDATE_REQUEST_STREAM_H
#define DRAMCTRL_VALIDATE_REQUEST_STREAM_H

#include <string>
#include <vector>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace dramctrl {
namespace validate {

/** One scripted request. */
struct StreamRequest
{
    /** Delay after the previous injection (first: after tick 0). */
    Tick gap = 0;
    Addr addr = 0;
    unsigned size = 64;
    bool isRead = true;

    bool operator==(const StreamRequest &) const = default;
};

struct RequestStream
{
    std::vector<StreamRequest> reqs;

    std::size_t size() const { return reqs.size(); }
    bool empty() const { return reqs.empty(); }

    /** Total bytes requested (both directions). */
    std::uint64_t totalBytes() const;
};

/** Knobs for stream sampling (serialised into repro files). */
struct StreamParams
{
    std::uint64_t numRequests = 500;
    /** Address window [0, windowSize); must fit the channel. */
    std::uint64_t windowSize = 1ULL << 22;
    unsigned readPct = 70;
    Tick minITT = fromNs(3.0);
    Tick maxITT = fromNs(30.0);
    /**
     * With mixedSizes, request sizes are drawn from {16, 32, 64, 128,
     * 256} bytes to exercise burst chopping and sub-burst accesses;
     * otherwise every request is blockSize bytes.
     */
    bool mixedSizes = false;
    unsigned blockSize = 64;
};

/** Materialise a stream from @p params and @p seed (deterministic). */
RequestStream generateStream(const StreamParams &params,
                             std::uint64_t seed);

/**
 * Replays a RequestStream through a RequestPort, honouring flow
 * control, and records one completion tick per request. The player is
 * the functional-equivalence probe of the differential runner: after a
 * run it knows whether every request was answered exactly once.
 */
class StreamPlayer : public SimObject
{
  public:
    StreamPlayer(Simulator &sim, std::string name,
                 const RequestStream &stream, RequestorId id = 0);
    ~StreamPlayer() override;

    RequestPort &port() { return port_; }

    void startup() override;

    /** All requests injected and every response received. */
    bool done() const;

    std::uint64_t injected() const { return injected_; }
    std::uint64_t responses() const { return responses_; }

    /** Responses carrying an id the player never injected. */
    std::uint64_t spuriousResponses() const { return spurious_; }

    /** Responses for a request that was already answered. */
    std::uint64_t duplicateResponses() const { return duplicates_; }

    /** Read responses whose command does not match the request. */
    std::uint64_t mismatchedResponses() const { return mismatched_; }

    /** Requests still unanswered (after a timeout: the lost ones). */
    std::uint64_t unansweredRequests() const;

    /** Completion tick per stream index; 0 = no response (yet). */
    const std::vector<Tick> &completionTicks() const
    {
        return completions_;
    }

    Tick lastResponseTick() const { return lastResponseTick_; }

    std::uint64_t readResponses() const { return readResponses_; }

    /** Mean end-to-end read latency in nanoseconds. */
    double avgReadLatencyNs() const;

  private:
    class Port : public RequestPort
    {
      public:
        Port(std::string name, StreamPlayer &player)
            : RequestPort(std::move(name)), player_(player)
        {}

        bool recvTimingResp(Packet *pkt) override
        {
            return player_.recvResp(pkt);
        }

        void recvReqRetry() override { player_.retry(); }

      private:
        StreamPlayer &player_;
    };

    void inject();
    void retry();
    bool recvResp(Packet *pkt);
    void scheduleNext();

    const RequestStream stream_;
    RequestorId id_;
    Port port_;

    std::uint64_t injected_ = 0;
    std::uint64_t responses_ = 0;
    std::uint64_t spurious_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t mismatched_ = 0;
    std::uint64_t readResponses_ = 0;
    Tick totReadLatency_ = 0;
    Tick lastResponseTick_ = 0;

    std::vector<Tick> completions_;
    /** Packet id -> stream index of in-flight requests. */
    std::vector<std::pair<std::uint64_t, std::size_t>> inflight_;

    Packet *blockedPkt_ = nullptr;
    std::size_t blockedIdx_ = 0;

    EventFunctionWrapper injectEvent_;
};

} // namespace validate
} // namespace dramctrl

#endif // DRAMCTRL_VALIDATE_REQUEST_STREAM_H
