#include "validate/diff_runner.hh"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "cyclesim/cycle_ctrl.hh"
#include "dram/cmd_log.hh"
#include "dram/dram_ctrl.hh"
#include "dram/plugin/plugin.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace dramctrl {
namespace validate {

namespace {

/**
 * Sink interposer: counts commands by kind, then hands the record to
 * the online checker.
 */
class CountingSink : public CmdSink
{
  public:
    explicit CountingSink(ProtocolChecker *checker)
        : checker_(checker)
    {}

    void
    onCmdRecord(const CmdRecord &rec) override
    {
        switch (rec.cmd) {
          case DRAMCmd::Act: ++acts_; break;
          case DRAMCmd::Rd: ++rds_; break;
          case DRAMCmd::Wr: ++wrs_; break;
          default: break;
        }
        if (checker_)
            checker_->onCmdRecord(rec);
    }

    std::uint64_t acts() const { return acts_; }
    std::uint64_t rds() const { return rds_; }
    std::uint64_t wrs() const { return wrs_; }

  private:
    ProtocolChecker *checker_;
    std::uint64_t acts_ = 0;
    std::uint64_t rds_ = 0;
    std::uint64_t wrs_ = 0;
};

template <typename CtrlT>
ModelResult
runModel(const FuzzCase &fc, const RequestStream &stream,
         const DiffOptions &opts, bool isEvent)
{
    ModelResult mr;

    Simulator sim;
    AddrRange range(0, fc.cfg.org.channelCapacity);
    CtrlT ctrl(sim, "mem_ctrl", fc.cfg, range);

    ProtocolChecker checker(fc.cfg.org, fc.cfg.timing);
    plugin::armChecker(checker, fc.cfg);
    CountingSink sink(opts.audit ? &checker : nullptr);
    CmdLogger logger;
    logger.setMaxRecords(0); // pure streaming: the sink sees it all
    logger.setSink(&sink);
    ctrl.setCmdLogger(&logger);

    if constexpr (std::is_same_v<CtrlT, DRAMCtrl>) {
        if (isEvent && opts.injectTRCDScale != 1.0)
            ctrl.testScaleTRCD(opts.injectTRCDScale);
        if (isEvent && opts.injectPracSkip)
            ctrl.testSkipPracMitigation();
        if (isEvent && opts.injectTRFCpbScale != 1.0)
            ctrl.testScaleTRFCpb(opts.injectTRFCpbScale);
        if (isEvent && opts.injectRefPbStallFlat != ~0u)
            ctrl.testStallPerBankRefresh(opts.injectRefPbStallFlat);
    }

    StreamPlayer player(sim, "player", stream);
    player.port().bind(ctrl.port());

    Tick end = harness::runUntil(
        sim,
        [&] {
            checker.drainUpTo(sim.curTick());
            return player.done() && ctrl.idle();
        },
        fromUs(1.0), opts.maxTicks);
    checker.finish();

    mr.completed = player.done();
    mr.completionTick = player.lastResponseTick()
                            ? player.lastResponseTick()
                            : end;
    mr.responses = player.responses();
    mr.spurious = player.spuriousResponses();
    mr.duplicates = player.duplicateResponses();
    mr.mismatched = player.mismatchedResponses();
    mr.unanswered = player.unansweredRequests();
    mr.readResponses = player.readResponses();
    mr.avgReadLatencyNs = player.avgReadLatencyNs();

    mr.protocolViolations = checker.violationCount();
    for (const ProtocolViolation &v : checker.violations()) {
        if (mr.violationSamples.size() >= 5)
            break;
        mr.violationSamples.push_back(v.toString());
    }

    mr.actCmds = sink.acts();
    mr.rdCmds = sink.rds();
    mr.wrCmds = sink.wrs();

    if constexpr (std::is_same_v<CtrlT, DRAMCtrl>) {
        mr.servicedByWrQ = static_cast<std::uint64_t>(
            ctrl.ctrlStats().servicedByWrQ.value());
        mr.readBursts = static_cast<std::uint64_t>(
            ctrl.ctrlStats().readBursts.value());
    }

    if (const plugin::EccPlugin *ecc = ctrl.pluginChain().ecc()) {
        mr.eccArmed = true;
        mr.eccWordsPerBurst = ecc->wordsPerBurst();
        mr.eccWordsProcessed = ecc->wordsProcessed();
        mr.eccWordsWithErrors = ecc->wordsWithErrors();
        mr.eccCorrected = ecc->correctedWords();
        mr.eccDetected = ecc->detectedWords();
        mr.eccEscaped = ecc->escapedWords();
    }
    return mr;
}

/**
 * ECC conservation laws, per model: every word that drew at least one
 * injected error is accounted exactly once (corrected, detected or
 * escaped), and the plugin decoded exactly the words the model's RD
 * commands transferred.
 */
void
checkEccConservation(const char *model, const ModelResult &mr,
                     DiffResult &dr)
{
    if (!mr.eccArmed)
        return;

    auto fail = [&](std::string msg) {
        dr.pass = false;
        dr.failures.push_back(std::move(msg));
    };

    if (mr.eccWordsWithErrors !=
        mr.eccCorrected + mr.eccDetected + mr.eccEscaped) {
        fail(formatString(
            "%s: ecc conservation broken: %llu words with errors vs "
            "%llu corrected + %llu detected + %llu escaped",
            model,
            static_cast<unsigned long long>(mr.eccWordsWithErrors),
            static_cast<unsigned long long>(mr.eccCorrected),
            static_cast<unsigned long long>(mr.eccDetected),
            static_cast<unsigned long long>(mr.eccEscaped)));
    }
    if (mr.eccWordsProcessed != mr.rdCmds * mr.eccWordsPerBurst) {
        fail(formatString(
            "%s: ecc decoded %llu words but %llu RD commands x %u "
            "words/burst = %llu",
            model,
            static_cast<unsigned long long>(mr.eccWordsProcessed),
            static_cast<unsigned long long>(mr.rdCmds),
            mr.eccWordsPerBurst,
            static_cast<unsigned long long>(mr.rdCmds *
                                            mr.eccWordsPerBurst)));
    }
}

void
checkFunctional(const char *model, const ModelResult &mr,
                const RequestStream &stream, DiffResult &dr)
{
    auto fail = [&](std::string msg) {
        dr.pass = false;
        dr.failures.push_back(std::move(msg));
    };

    if (!mr.completed)
        fail(formatString("%s: timed out with %llu requests "
                          "unanswered",
                          model,
                          static_cast<unsigned long long>(
                              mr.unanswered)));
    if (mr.responses != stream.size())
        fail(formatString("%s: %llu responses for %llu requests",
                          model,
                          static_cast<unsigned long long>(
                              mr.responses),
                          static_cast<unsigned long long>(
                              stream.size())));
    if (mr.spurious)
        fail(formatString("%s: %llu spurious responses", model,
                          static_cast<unsigned long long>(
                              mr.spurious)));
    if (mr.duplicates)
        fail(formatString("%s: %llu duplicate responses", model,
                          static_cast<unsigned long long>(
                              mr.duplicates)));
    if (mr.mismatched)
        fail(formatString("%s: %llu mismatched responses", model,
                          static_cast<unsigned long long>(
                              mr.mismatched)));
    if (mr.protocolViolations) {
        std::string msg = formatString(
            "%s: %llu protocol violations", model,
            static_cast<unsigned long long>(mr.protocolViolations));
        for (const std::string &s : mr.violationSamples)
            msg += "\n    " + s;
        fail(std::move(msg));
    }
}

} // namespace

std::string
DiffResult::describe() const
{
    if (pass)
        return "pass";
    std::string s;
    for (const std::string &f : failures) {
        if (!s.empty())
            s += "\n";
        s += "  " + f;
    }
    return s;
}

DiffResult
runDiffStream(const FuzzCase &fc, const RequestStream &stream,
              const DiffOptions &opts)
{
    DiffResult dr;
    if (stream.empty())
        return dr;

    dr.event = runModel<DRAMCtrl>(fc, stream, opts, true);
    checkFunctional("event", dr.event, stream, dr);
    checkEccConservation("event", dr.event, dr);

    // Write-queue conservation: every read burst either became a RD
    // command or was forwarded from the write queue; forwarded reads
    // must never reach the DRAM.
    if (dr.event.rdCmds !=
        dr.event.readBursts - dr.event.servicedByWrQ) {
        dr.pass = false;
        dr.failures.push_back(formatString(
            "event: conservation broken: %llu RD commands vs %llu "
            "read bursts - %llu forwarded",
            static_cast<unsigned long long>(dr.event.rdCmds),
            static_cast<unsigned long long>(dr.event.readBursts),
            static_cast<unsigned long long>(
                dr.event.servicedByWrQ)));
    }

    if (!opts.runCycle)
        return dr;

    dr.cycle = runModel<cyclesim::CycleDRAMCtrl>(fc, stream, opts,
                                                 false);
    checkFunctional("cycle", dr.cycle, stream, dr);
    checkEccConservation("cycle", dr.cycle, dr);

    // Timing agreement: tolerance bands, symmetric relative error.
    auto relDiff = [](double a, double b) {
        double m = std::max(std::abs(a), std::abs(b));
        return m > 0.0 ? std::abs(a - b) / m : 0.0;
    };

    if (dr.event.completed && dr.cycle.completed) {
        double ev = toNs(dr.event.completionTick);
        double cy = toNs(dr.cycle.completionTick);
        double bwBand = opts.bandwidthRelTol * std::max(ev, cy) +
                        opts.bandwidthAbsSlackNs;
        if (std::abs(ev - cy) > bwBand) {
            dr.pass = false;
            dr.failures.push_back(formatString(
                "bandwidth divergence: completion %0.f ns (event) vs "
                "%.0f ns (cycle), rel diff %.2f > %.2f",
                ev, cy, relDiff(ev, cy), opts.bandwidthRelTol));
        }

        // Injection span: when completion stretches well past it, the
        // run was bandwidth-bound and queueing delay dominates read
        // latency — skip the latency band (see DiffOptions).
        Tick span = 0;
        for (const StreamRequest &r : stream.reqs)
            span += r.gap;
        bool saturated =
            span == 0 ||
            toNs(dr.event.completionTick) >
                opts.saturationRatio * toNs(span) ||
            toNs(dr.cycle.completionTick) >
                opts.saturationRatio * toNs(span);

        const DRAMTiming &t = fc.cfg.timing;
        double zeroLoadNs =
            toNs(fc.cfg.frontendLatency + fc.cfg.backendLatency +
                 t.tRP + t.tRCD + t.tCL + t.tBURST);
        bool congested =
            dr.event.avgReadLatencyNs >
                opts.congestionFactor * zeroLoadNs ||
            dr.cycle.avgReadLatencyNs >
                opts.congestionFactor * zeroLoadNs;

        if (!saturated && !congested && dr.event.readResponses > 0 &&
            dr.cycle.readResponses > 0) {
            double le = dr.event.avgReadLatencyNs;
            double lc = dr.cycle.avgReadLatencyNs;
            double band = opts.latencyRelTol *
                              std::max(std::abs(le), std::abs(lc)) +
                          opts.latencyAbsSlackNs;
            if (std::abs(le - lc) > band) {
                dr.pass = false;
                dr.failures.push_back(formatString(
                    "latency divergence: avg read %.1f ns (event) vs "
                    "%.1f ns (cycle), |diff| %.1f > band %.1f",
                    le, lc, std::abs(le - lc), band));
            }
        }
    }
    return dr;
}

DiffResult
runDiff(const FuzzCase &fc, std::uint64_t streamSeed,
        const DiffOptions &opts)
{
    return runDiffStream(fc, generateStream(fc.stream, streamSeed),
                         opts);
}

} // namespace validate
} // namespace dramctrl
