/**
 * @file
 * Sharded-vs-sequential differential check.
 *
 * The sharded engine promises byte-identical results at every
 * --sim-threads value (see sim/shard.hh). This module turns that
 * promise into a fuzzable oracle: build one multi-channel system from
 * a sampled controller configuration, run it once sequentially
 * (simThreads = 1) and once on a worker team, and compare the full
 * stats JSON, the merged per-channel command logs and the final tick
 * byte for byte. Any divergence — a race, a non-deterministic merge, a
 * lookahead violation — fails the case.
 *
 * fuzz_cli draws one ShardCase per fuzz run (channels, thread count,
 * pattern, stimulus), so every fuzzing campaign continuously
 * cross-checks the parallel engine against the sequential reference
 * over the same randomised configuration space as the event-vs-cycle
 * diff.
 */

#ifndef DRAMCTRL_VALIDATE_SHARD_DIFF_H
#define DRAMCTRL_VALIDATE_SHARD_DIFF_H

#include <cstdint>
#include <string>
#include <vector>

#include "dram/dram_config.hh"
#include "sim/random.hh"

namespace dramctrl {
namespace validate {

/** One sampled sharded-determinism scenario. */
struct ShardCase
{
    /** Channels (= shards) in the system. */
    unsigned channels = 2;
    /** Worker threads of the parallel run (the reference uses 1). */
    unsigned simThreads = 2;
    /** Traffic shape: "linear" or "random". */
    std::string pattern = "random";
    unsigned readPct = 100;
    double ittNs = 4.0;
    /** Requests injected by each per-channel generator. */
    std::uint64_t requestsPerGen = 60;
    /** Generator seed base (generator i derives from (seed, i)). */
    std::uint64_t seed = 1;
};

/** Draw one scenario from @p rng. */
ShardCase sampleShardCase(Random &rng);

/** One-line summary of a sampled scenario, for logs. */
std::string summarize(const ShardCase &sc);

/** Verdict of one sharded-vs-sequential run. */
struct ShardDiffResult
{
    bool pass = true;
    /** Human-readable reasons, empty on pass. */
    std::vector<std::string> failures;

    std::string describe() const;
};

/**
 * Run @p sc twice over @p cfg — sequentially and with sc.simThreads
 * workers — and compare stats, command logs and final ticks exactly.
 * Deterministic for fixed inputs (a failure reproduces from the same
 * case). The controller's write drain threshold is forced to zero so
 * every run terminates.
 */
ShardDiffResult runShardDiff(const DRAMCtrlConfig &cfg,
                             const ShardCase &sc);

} // namespace validate
} // namespace dramctrl

#endif // DRAMCTRL_VALIDATE_SHARD_DIFF_H
