#include "cpu/workload.hh"

#include "sim/logging.hh"

namespace dramctrl {
namespace workloads {

WorkloadProfile
canneal()
{
    // Pointer-chasing over a large netlist: random-dominated accesses
    // across a footprint far beyond any cache.
    return WorkloadProfile{"canneal", 0.35, 0.75,
                           256ULL * 1024 * 1024, 0.10, 8};
}

WorkloadProfile
blackscholes()
{
    // Compute-bound option pricing over a small option array.
    return WorkloadProfile{"blackscholes", 0.20, 0.70,
                           2ULL * 1024 * 1024, 0.80, 8};
}

WorkloadProfile
fluidanimate()
{
    // Particle grid with moderate locality and a mid-size footprint.
    return WorkloadProfile{"fluidanimate", 0.30, 0.65,
                           64ULL * 1024 * 1024, 0.60, 8};
}

WorkloadProfile
streamcluster()
{
    // Streaming distance computations: sequential, read-dominated.
    return WorkloadProfile{"streamcluster", 0.40, 0.90,
                           128ULL * 1024 * 1024, 0.90, 8};
}

WorkloadProfile
swaptions()
{
    // Monte-Carlo simulation with a compact working set.
    return WorkloadProfile{"swaptions", 0.25, 0.70,
                           4ULL * 1024 * 1024, 0.70, 8};
}

WorkloadProfile
x264()
{
    // Video encoding: block-structured accesses, balanced read/write.
    return WorkloadProfile{"x264", 0.30, 0.55, 32ULL * 1024 * 1024,
                           0.50, 8};
}

WorkloadProfile
byName(const std::string &name)
{
    for (const auto &fn : {canneal, blackscholes, fluidanimate,
                           streamcluster, swaptions, x264}) {
        WorkloadProfile p = fn();
        if (p.name == name)
            return p;
    }
    fatal("unknown workload profile '%s'", name.c_str());
}

std::vector<std::string>
names()
{
    return {"canneal", "blackscholes", "fluidanimate", "streamcluster",
            "swaptions", "x264"};
}

} // namespace workloads
} // namespace dramctrl
