/**
 * @file
 * Stride prefetcher for the cache model.
 *
 * gem5's classic caches, which the paper's controller plugs into
 * (Section II-F), "offer a range of prefetchers"; this provides the
 * canonical one for this substrate. Streams are tracked per requestor:
 * two consecutive accesses with the same block stride train the
 * entry, after which the next `degree` strided blocks are returned as
 * prefetch candidates. The cache issues them with spare MSHRs so
 * demand misses always keep priority.
 */

#ifndef DRAMCTRL_CPU_PREFETCHER_H
#define DRAMCTRL_CPU_PREFETCHER_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace dramctrl {

struct PrefetcherConfig
{
    bool enable = false;
    /** Blocks prefetched ahead once a stream is trained. */
    unsigned degree = 2;
    /** Consecutive same-stride observations required to train. */
    unsigned trainThreshold = 2;
    /** Tracked streams (per-requestor entries, LRU evicted). */
    unsigned tableSize = 16;
};

class StridePrefetcher
{
  public:
    StridePrefetcher(const PrefetcherConfig &cfg, unsigned block_size);

    /**
     * Observe a demand access and return the blocks to prefetch
     * (block-aligned, possibly empty).
     */
    std::vector<Addr> notify(Addr block_addr, RequestorId requestor);

    /** Streams currently trained past the threshold. */
    unsigned trainedStreams() const;

  private:
    struct Entry
    {
        Addr lastBlock = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        std::uint64_t lastUsed = 0;
        bool valid = false;
    };

    PrefetcherConfig cfg_;
    unsigned blockSize_;
    std::unordered_map<RequestorId, Entry> table_;
    std::uint64_t useCounter_ = 0;
};

} // namespace dramctrl

#endif // DRAMCTRL_CPU_PREFETCHER_H
