/**
 * @file
 * A ROB-limited timing core driving the cache hierarchy.
 *
 * Stands in for the paper's out-of-order cores (Table II): ops dispatch
 * up to dispatchWidth per cycle into a bounded reorder buffer and
 * retire in order up to commitWidth per cycle. Non-memory ops complete
 * in one cycle; memory ops (drawn from a WorkloadProfile) occupy their
 * ROB slot until the cache hierarchy responds. The essential property
 * for the paper's experiments is the closed feedback loop: memory
 * latency fills the ROB and throttles the request stream, which traces
 * cannot capture (Section I).
 */

#ifndef DRAMCTRL_CPU_TIMING_CORE_H
#define DRAMCTRL_CPU_TIMING_CORE_H

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "cpu/workload.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "stats/stats.hh"

namespace dramctrl {

struct CoreConfig
{
    /** Core clock period (Table II: 2 GHz). */
    Tick clockPeriod = fromNs(0.5);
    /** Ops dispatched per cycle (Table II: 6-wide dispatch). */
    unsigned dispatchWidth = 6;
    /** Ops committed per cycle (Table II: 8-wide commit). */
    unsigned commitWidth = 8;
    /** Reorder buffer entries (Table II: 40). */
    unsigned robSize = 40;
    /** Ops to run before reporting done (0 = run forever). */
    std::uint64_t numOps = 1'000'000;
    /** Base address of this core's slice of memory. */
    Addr memBase = 0;
    std::uint64_t seed = 1;
};

class TimingCore : public SimObject
{
  public:
    TimingCore(Simulator &sim, std::string name, const CoreConfig &cfg,
               const WorkloadProfile &workload, RequestorId id);
    ~TimingCore() override;

    /** Connect to the L1 data cache. */
    RequestPort &dcachePort() { return port_; }

    void startup() override;

    /** All configured ops committed. */
    bool done() const;

    struct CoreStats
    {
        explicit CoreStats(TimingCore &core);

        stats::Scalar committedOps;
        stats::Scalar memOps;
        stats::Scalar cycles;
        stats::Scalar memStallCycles;
        stats::Formula ipc;
    };

    const CoreStats &coreStats() const { return *stats_; }

    /** Instructions per cycle so far. */
    double ipc() const;

    std::uint64_t committed() const { return committed_; }

  private:
    struct Op
    {
        bool isMem = false;
        bool completed = false;
        std::uint64_t id = 0;
    };

    class DcachePort : public RequestPort
    {
      public:
        DcachePort(std::string name, TimingCore &core)
            : RequestPort(std::move(name)), core_(core)
        {}

        bool recvTimingResp(Packet *pkt) override
        {
            return core_.recvTimingResp(pkt);
        }

        void recvReqRetry() override { core_.recvReqRetry(); }

      private:
        TimingCore &core_;
    };

    void tick();
    void dispatch();
    void commit();
    bool recvTimingResp(Packet *pkt);
    void recvReqRetry();

    Addr nextMemAddr();

    CoreConfig cfg_;
    WorkloadProfile workload_;
    RequestorId id_;
    DcachePort port_;
    Random rng_;

    std::list<Op> rob_;
    std::unordered_map<std::uint64_t, std::list<Op>::iterator>
        inFlight_; // packet id -> ROB slot
    std::uint64_t nextOpId_ = 0;
    std::uint64_t committed_ = 0;

    Packet *blockedPkt_ = nullptr;
    std::list<Op>::iterator blockedOp_;

    Addr cursor_ = 0;
    bool running_ = false;

    EventFunctionWrapper tickEvent_;

    std::unique_ptr<CoreStats> stats_;
};

} // namespace dramctrl

#endif // DRAMCTRL_CPU_TIMING_CORE_H
