/**
 * @file
 * Non-blocking write-back cache with MSHRs.
 *
 * The substrate for the paper's full-system case studies (Section IV):
 * gem5's classic cache reduced to the properties that shape DRAM
 * traffic — set-associative LRU lookup, write-allocate with write-back
 * (so the DRAM sees fills and evictions, not every store), a bounded
 * number of MSHRs with target coalescing (so memory-level parallelism
 * and the stall feedback loop are faithful), and full flow control on
 * both ports.
 */

#ifndef DRAMCTRL_CPU_CACHE_H
#define DRAMCTRL_CPU_CACHE_H

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/prefetcher.hh"
#include "mem/packet.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/simulator.hh"
#include "stats/stats.hh"

namespace dramctrl {

struct CacheConfig
{
    std::uint64_t size = 32 * 1024;
    unsigned assoc = 2;
    unsigned blockSize = 64;
    Tick hitLatency = fromNs(1.0);
    /** Miss status holding registers (outstanding distinct blocks). */
    unsigned mshrs = 4;
    /** Requests coalesced onto one in-flight block. */
    unsigned targetsPerMshr = 8;
    /** Optional stride prefetcher (disabled by default). */
    PrefetcherConfig prefetcher;
};

class Cache : public SimObject
{
  public:
    Cache(Simulator &sim, std::string name, const CacheConfig &cfg);
    ~Cache() override;

    ResponsePort &cpuSidePort() { return cpuSide_; }
    RequestPort &memSidePort() { return memSide_; }

    const CacheConfig &config() const { return cfg_; }

    /** True when no misses are in flight and nothing is queued. */
    bool idle() const;

    struct CacheStats
    {
        explicit CacheStats(Cache &cache);

        stats::Scalar hits;
        stats::Scalar misses;
        stats::Scalar mshrHits;
        stats::Scalar writebacks;
        stats::Scalar blockedNoMshr;
        stats::Scalar blockedNoTarget;
        stats::Scalar totMissLatency;
        stats::Scalar prefetchesIssued;
        /** Demand hits on lines a prefetch brought in. */
        stats::Scalar prefetchHits;
        /** Demand misses that found their block already in flight
         *  thanks to a prefetch (late but useful). */
        stats::Scalar prefetchLate;
        stats::Formula missRate;
        stats::Formula avgMissLatencyNs;
    };

    const CacheStats &cacheStats() const { return *stats_; }

    /** Mean miss latency (fill request to fill response) in ns. */
    double avgMissLatencyNs() const;

    /** Test hook: true if the block containing @p addr is cached. */
    bool isCached(Addr addr) const;
    /** Test hook: true if that block is cached dirty. */
    bool isDirty(Addr addr) const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        /** Brought in by a prefetch and not yet demanded. */
        bool prefetched = false;
        std::uint64_t lastUsed = 0;
    };

    struct Mshr
    {
        Addr blockAddr = 0;
        Tick issued = 0;
        /** Allocated by the prefetcher (no demand target yet). */
        bool isPrefetch = false;
        std::vector<Packet *> targets;
    };

    class CpuSide : public ResponsePort
    {
      public:
        CpuSide(std::string name, Cache &cache)
            : ResponsePort(std::move(name)), cache_(cache)
        {}

        bool recvTimingReq(Packet *pkt) override
        {
            return cache_.handleCpuReq(pkt);
        }

        void recvRespRetry() override { cache_.respQueue_.retry(); }

      private:
        Cache &cache_;
    };

    class MemSide : public RequestPort
    {
      public:
        MemSide(std::string name, Cache &cache)
            : RequestPort(std::move(name)), cache_(cache)
        {}

        bool recvTimingResp(Packet *pkt) override
        {
            return cache_.handleMemResp(pkt);
        }

        void recvReqRetry() override { cache_.memRetry(); }

      private:
        Cache &cache_;
    };

    bool handleCpuReq(Packet *pkt);
    bool handleMemResp(Packet *pkt);
    void memRetry();

    /** Queue an outbound miss/writeback request, preserving order. */
    void sendMemReq(Packet *pkt);
    void trySendMemReqs();

    Addr blockAlign(Addr addr) const
    {
        return addr & ~static_cast<Addr>(cfg_.blockSize - 1);
    }

    std::size_t setIndex(Addr block_addr) const;
    Line *lookup(Addr block_addr);
    const Line *lookup(Addr block_addr) const;

    /** Install @p block_addr, evicting (and writing back) as needed. */
    void install(Addr block_addr, bool dirty, bool prefetched = false);

    /** Feed the prefetcher and issue candidate fills on spare MSHRs. */
    void runPrefetcher(Addr block_addr, RequestorId requestor);

    Mshr *findMshr(Addr block_addr);

    void unblockCpu();

    CacheConfig cfg_;
    CpuSide cpuSide_;
    MemSide memSide_;
    RespPacketQueue respQueue_;

    std::vector<std::vector<Line>> sets_;
    std::uint64_t useCounter_ = 0;

    std::vector<std::unique_ptr<Mshr>> mshrs_;
    StridePrefetcher prefetcher_;

    /** Outbound request FIFO (fills and writebacks). */
    std::deque<Packet *> memReqQueue_;
    bool memWaitingRetry_ = false;

    bool cpuBlocked_ = false;

    std::unique_ptr<CacheStats> stats_;
};

} // namespace dramctrl

#endif // DRAMCTRL_CPU_CACHE_H
