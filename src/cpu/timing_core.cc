#include "cpu/timing_core.hh"

#include "sim/logging.hh"

namespace dramctrl {

TimingCore::CoreStats::CoreStats(TimingCore &core)
    : committedOps(&core.statGroup(), "committedOps", "ops committed"),
      memOps(&core.statGroup(), "memOps", "memory ops issued"),
      cycles(&core.statGroup(), "cycles", "core cycles simulated"),
      memStallCycles(&core.statGroup(), "memStallCycles",
                     "cycles dispatch was blocked on memory"),
      ipc(&core.statGroup(), "ipc", "committed ops per cycle",
          [this] {
              return cycles.value() > 0
                         ? committedOps.value() / cycles.value()
                         : 0.0;
          })
{
}

TimingCore::TimingCore(Simulator &sim, std::string name,
                       const CoreConfig &cfg,
                       const WorkloadProfile &workload, RequestorId id)
    : SimObject(sim, std::move(name)), cfg_(cfg), workload_(workload),
      id_(id), port_(this->name() + ".dcachePort", *this),
      rng_(cfg.seed),
      tickEvent_([this] { tick(); }, this->name() + ".tickEvent")
{
    if (cfg_.dispatchWidth == 0 || cfg_.commitWidth == 0 ||
        cfg_.robSize == 0)
        fatal("core '%s': zero-width pipeline parameter",
              this->name().c_str());
    if (workload_.footprintBytes < workload_.opSize)
        fatal("core '%s': footprint smaller than one op",
              this->name().c_str());
    stats_ = std::make_unique<CoreStats>(*this);
}

TimingCore::~TimingCore()
{
    if (tickEvent_.scheduled())
        deschedule(tickEvent_);
    delete blockedPkt_;
}

void
TimingCore::startup()
{
    running_ = true;
    schedule(tickEvent_, curTick() + cfg_.clockPeriod);
}

bool
TimingCore::done() const
{
    return cfg_.numOps != 0 && committed_ >= cfg_.numOps;
}

double
TimingCore::ipc() const
{
    return stats_->ipc.value();
}

Addr
TimingCore::nextMemAddr()
{
    if (rng_.chance(workload_.seqProb)) {
        cursor_ += workload_.opSize;
    } else {
        std::uint64_t slots =
            workload_.footprintBytes / workload_.opSize;
        cursor_ = rng_.uniform(0, slots - 1) * workload_.opSize;
    }
    if (cursor_ + workload_.opSize > workload_.footprintBytes)
        cursor_ = 0;
    return cfg_.memBase + cursor_;
}

void
TimingCore::tick()
{
    ++stats_->cycles;
    commit();
    dispatch();

    if (running_ && !done()) {
        schedule(tickEvent_, curTick() + cfg_.clockPeriod);
    } else {
        running_ = false;
    }
}

void
TimingCore::commit()
{
    unsigned retired = 0;
    while (retired < cfg_.commitWidth && !rob_.empty() &&
           rob_.front().completed) {
        rob_.pop_front();
        ++retired;
        ++committed_;
        ++stats_->committedOps;
    }
}

void
TimingCore::dispatch()
{
    if (blockedPkt_ != nullptr) {
        // Still waiting for the cache to accept the previous op.
        ++stats_->memStallCycles;
        return;
    }

    unsigned dispatched = 0;
    while (dispatched < cfg_.dispatchWidth &&
           rob_.size() < cfg_.robSize) {
        bool is_mem = rng_.chance(workload_.memFraction);
        rob_.push_back(Op{is_mem, !is_mem, nextOpId_++});
        ++dispatched;

        if (!is_mem)
            continue;

        auto slot = std::prev(rob_.end());
        bool is_read = rng_.chance(workload_.readFraction);
        auto *pkt = new Packet(is_read ? MemCmd::ReadReq
                                       : MemCmd::WriteReq,
                               nextMemAddr(), workload_.opSize, id_);
        pkt->setInjectedTick(curTick());
        ++stats_->memOps;

        if (!port_.sendTimingReq(pkt)) {
            blockedPkt_ = pkt;
            blockedOp_ = slot;
            ++stats_->memStallCycles;
            return;
        }
        inFlight_.emplace(pkt->id(), slot);
    }
}

void
TimingCore::recvReqRetry()
{
    DC_ASSERT(blockedPkt_ != nullptr, "retry with no blocked packet");
    Packet *pkt = blockedPkt_;
    blockedPkt_ = nullptr;
    if (!port_.sendTimingReq(pkt)) {
        blockedPkt_ = pkt;
        return;
    }
    inFlight_.emplace(pkt->id(), blockedOp_);
}

bool
TimingCore::recvTimingResp(Packet *pkt)
{
    auto it = inFlight_.find(pkt->id());
    DC_ASSERT(it != inFlight_.end(), "unexpected response %s",
              pkt->toString().c_str());
    it->second->completed = true;
    inFlight_.erase(it);
    delete pkt;
    return true;
}

} // namespace dramctrl
