#include "cpu/prefetcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dramctrl {

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &cfg,
                                   unsigned block_size)
    : cfg_(cfg), blockSize_(block_size)
{
    if (cfg_.degree == 0 || cfg_.tableSize == 0 ||
        cfg_.trainThreshold == 0)
        fatal("prefetcher parameters must be non-zero");
}

unsigned
StridePrefetcher::trainedStreams() const
{
    unsigned n = 0;
    for (const auto &[id, e] : table_) {
        if (e.valid && e.confidence >= cfg_.trainThreshold)
            ++n;
    }
    return n;
}

std::vector<Addr>
StridePrefetcher::notify(Addr block_addr, RequestorId requestor)
{
    std::vector<Addr> out;
    if (!cfg_.enable)
        return out;

    auto it = table_.find(requestor);
    if (it == table_.end()) {
        if (table_.size() >= cfg_.tableSize) {
            // Evict the least recently used stream.
            auto victim = std::min_element(
                table_.begin(), table_.end(),
                [](const auto &a, const auto &b) {
                    return a.second.lastUsed < b.second.lastUsed;
                });
            table_.erase(victim);
        }
        it = table_.emplace(requestor, Entry{}).first;
    }

    Entry &e = it->second;
    e.lastUsed = ++useCounter_;

    if (e.valid) {
        std::int64_t stride = static_cast<std::int64_t>(block_addr) -
                              static_cast<std::int64_t>(e.lastBlock);
        if (stride == 0) {
            // Same block again: no new information.
            return out;
        }
        if (stride == e.stride) {
            if (e.confidence < cfg_.trainThreshold)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = 1;
        }
        e.lastBlock = block_addr;

        if (e.confidence >= cfg_.trainThreshold) {
            for (unsigned d = 1; d <= cfg_.degree; ++d) {
                std::int64_t next =
                    static_cast<std::int64_t>(block_addr) +
                    e.stride * static_cast<std::int64_t>(d);
                if (next >= 0)
                    out.push_back(static_cast<Addr>(next));
            }
        }
    } else {
        e.valid = true;
        e.lastBlock = block_addr;
        e.stride = 0;
        e.confidence = 0;
    }
    return out;
}

} // namespace dramctrl
