#include "cpu/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dramctrl {

Cache::CacheStats::CacheStats(Cache &cache)
    : hits(&cache.statGroup(), "hits", "requests hitting in the cache"),
      misses(&cache.statGroup(), "misses",
             "requests allocating a new MSHR"),
      mshrHits(&cache.statGroup(), "mshrHits",
               "requests coalesced onto an in-flight miss"),
      writebacks(&cache.statGroup(), "writebacks",
                 "dirty blocks written back"),
      blockedNoMshr(&cache.statGroup(), "blockedNoMshr",
                    "requests refused with all MSHRs busy"),
      blockedNoTarget(&cache.statGroup(), "blockedNoTarget",
                      "requests refused with MSHR targets full"),
      totMissLatency(&cache.statGroup(), "totMissLatency",
                     "total fill latency (ticks)"),
      prefetchesIssued(&cache.statGroup(), "prefetchesIssued",
                       "prefetch fills issued"),
      prefetchHits(&cache.statGroup(), "prefetchHits",
                   "demand hits on prefetched lines"),
      prefetchLate(&cache.statGroup(), "prefetchLate",
                   "demand misses caught by an in-flight prefetch"),
      missRate(&cache.statGroup(), "missRate",
               "fraction of lookups that miss",
               [this] {
                   double n = hits.value() + misses.value() +
                              mshrHits.value();
                   return n > 0 ? (misses.value() + mshrHits.value()) / n
                                : 0.0;
               }),
      avgMissLatencyNs(&cache.statGroup(), "avgMissLatencyNs",
                       "average fill latency (ns)",
                       [this] {
                           double n = misses.value();
                           return n > 0
                                      ? toNs(static_cast<Tick>(
                                            totMissLatency.value())) /
                                            n
                                      : 0.0;
                       })
{
}

Cache::Cache(Simulator &sim, std::string name, const CacheConfig &cfg)
    : SimObject(sim, std::move(name)), cfg_(cfg),
      cpuSide_(this->name() + ".cpuSide", *this),
      memSide_(this->name() + ".memSide", *this),
      respQueue_(this->eventq(), cpuSide_, this->name() + ".respQueue"),
      prefetcher_(cfg.prefetcher, cfg.blockSize)
{
    if (!isPowerOf2(cfg_.blockSize))
        fatal("cache '%s': block size %u is not a power of two",
              this->name().c_str(), cfg_.blockSize);
    if (cfg_.size % (static_cast<std::uint64_t>(cfg_.assoc) *
                     cfg_.blockSize) != 0)
        fatal("cache '%s': size is not a whole number of sets",
              this->name().c_str());
    std::uint64_t num_sets =
        cfg_.size / (static_cast<std::uint64_t>(cfg_.assoc) *
                     cfg_.blockSize);
    if (!isPowerOf2(num_sets))
        fatal("cache '%s': set count %llu is not a power of two",
              this->name().c_str(),
              static_cast<unsigned long long>(num_sets));
    if (cfg_.mshrs == 0 || cfg_.targetsPerMshr == 0)
        fatal("cache '%s': MSHR parameters must be non-zero",
              this->name().c_str());

    sets_.assign(num_sets, std::vector<Line>(cfg_.assoc));
    stats_ = std::make_unique<CacheStats>(*this);
}

Cache::~Cache()
{
    for (auto &mshr : mshrs_) {
        for (Packet *pkt : mshr->targets) {
            // In-flight targets may carry crossbar route state from
            // the request path; release it before the packet.
            while (pkt->senderState() != nullptr)
                delete pkt->popSenderState();
            delete pkt;
        }
    }
    for (Packet *pkt : memReqQueue_)
        delete pkt;
}

bool
Cache::idle() const
{
    return mshrs_.empty() && memReqQueue_.empty() &&
           respQueue_.empty() && !memWaitingRetry_;
}

double
Cache::avgMissLatencyNs() const
{
    return stats_->avgMissLatencyNs.value();
}

std::size_t
Cache::setIndex(Addr block_addr) const
{
    return (block_addr / cfg_.blockSize) % sets_.size();
}

Cache::Line *
Cache::lookup(Addr block_addr)
{
    for (Line &line : sets_[setIndex(block_addr)]) {
        if (line.valid && line.tag == block_addr)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::lookup(Addr block_addr) const
{
    return const_cast<Cache *>(this)->lookup(block_addr);
}

bool
Cache::isCached(Addr addr) const
{
    return lookup(blockAlign(addr)) != nullptr;
}

bool
Cache::isDirty(Addr addr) const
{
    const Line *line = lookup(blockAlign(addr));
    return line != nullptr && line->dirty;
}

Cache::Mshr *
Cache::findMshr(Addr block_addr)
{
    for (auto &mshr : mshrs_) {
        if (mshr->blockAddr == block_addr)
            return mshr.get();
    }
    return nullptr;
}

bool
Cache::handleCpuReq(Packet *pkt)
{
    DC_ASSERT(pkt->isRequest(), "cache received %s",
              pkt->toString().c_str());
    Addr block = blockAlign(pkt->addr());
    DC_ASSERT(blockAlign(pkt->endAddr() - 1) == block,
              "request %s crosses a cache block boundary",
              pkt->toString().c_str());

    if (Line *line = lookup(block)) {
        // Hit: respond after the lookup latency.
        ++stats_->hits;
        if (line->prefetched) {
            ++stats_->prefetchHits;
            line->prefetched = false;
        }
        line->lastUsed = ++useCounter_;
        if (pkt->isWrite())
            line->dirty = true;
        pkt->makeResponse();
        respQueue_.schedSendResp(pkt, curTick() + cfg_.hitLatency);
        runPrefetcher(block, pkt->requestorId());
        return true;
    }

    if (Mshr *mshr = findMshr(block)) {
        // Miss to an already in-flight block: coalesce.
        if (mshr->targets.size() >= cfg_.targetsPerMshr) {
            ++stats_->blockedNoTarget;
            cpuBlocked_ = true;
            return false;
        }
        if (mshr->isPrefetch) {
            // A late-but-useful prefetch: the demand request rides it.
            ++stats_->prefetchLate;
            mshr->isPrefetch = false;
        }
        ++stats_->mshrHits;
        mshr->targets.push_back(pkt);
        return true;
    }

    if (mshrs_.size() >= cfg_.mshrs) {
        ++stats_->blockedNoMshr;
        cpuBlocked_ = true;
        return false;
    }

    // New miss: allocate an MSHR and issue the fill (write-allocate, so
    // writes also fetch the block first).
    ++stats_->misses;
    auto mshr = std::make_unique<Mshr>();
    mshr->blockAddr = block;
    mshr->issued = curTick();
    mshr->targets.push_back(pkt);
    mshrs_.push_back(std::move(mshr));

    auto *fill = new Packet(MemCmd::ReadReq, block, cfg_.blockSize,
                            pkt->requestorId());
    fill->setInjectedTick(curTick());
    sendMemReq(fill);
    runPrefetcher(block, pkt->requestorId());
    return true;
}

void
Cache::runPrefetcher(Addr block_addr, RequestorId requestor)
{
    if (!cfg_.prefetcher.enable)
        return;

    std::vector<Addr> candidates =
        prefetcher_.notify(block_addr, requestor);
    for (Addr cand : candidates) {
        // Keep at least one MSHR free for demand misses, and skip
        // blocks already present or in flight.
        if (mshrs_.size() + 1 >= cfg_.mshrs)
            return;
        if (lookup(cand) != nullptr || findMshr(cand) != nullptr)
            continue;

        auto mshr = std::make_unique<Mshr>();
        mshr->blockAddr = cand;
        mshr->issued = curTick();
        mshr->isPrefetch = true;
        mshrs_.push_back(std::move(mshr));

        auto *fill = new Packet(MemCmd::ReadReq, cand, cfg_.blockSize,
                                requestor);
        fill->setInjectedTick(curTick());
        ++stats_->prefetchesIssued;
        sendMemReq(fill);
    }
}

void
Cache::sendMemReq(Packet *pkt)
{
    memReqQueue_.push_back(pkt);
    trySendMemReqs();
}

void
Cache::trySendMemReqs()
{
    while (!memReqQueue_.empty() && !memWaitingRetry_) {
        if (!memSide_.sendTimingReq(memReqQueue_.front())) {
            memWaitingRetry_ = true;
            return;
        }
        memReqQueue_.pop_front();
    }
}

void
Cache::memRetry()
{
    DC_ASSERT(memWaitingRetry_, "unexpected mem-side retry");
    memWaitingRetry_ = false;
    trySendMemReqs();
}

void
Cache::install(Addr block_addr, bool dirty, bool prefetched)
{
    auto &set = sets_[setIndex(block_addr)];
    Line *victim = &set[0];
    for (Line &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUsed < victim->lastUsed)
            victim = &line;
    }

    if (victim->valid && victim->dirty) {
        // Write back the dirty victim before reusing the frame.
        ++stats_->writebacks;
        auto *wb = new Packet(MemCmd::WriteReq, victim->tag,
                              cfg_.blockSize, 0);
        wb->setInjectedTick(curTick());
        sendMemReq(wb);
    }

    victim->tag = block_addr;
    victim->valid = true;
    victim->dirty = dirty;
    victim->prefetched = prefetched;
    victim->lastUsed = ++useCounter_;
}

bool
Cache::handleMemResp(Packet *pkt)
{
    DC_ASSERT(pkt->isResponse(), "cache received %s",
              pkt->toString().c_str());

    if (pkt->cmd() == MemCmd::WriteResp) {
        // Acknowledgement of one of our writebacks.
        delete pkt;
        return true;
    }

    // A fill for the MSHR tracking this block.
    Addr block = blockAlign(pkt->addr());
    auto it = std::find_if(mshrs_.begin(), mshrs_.end(),
                           [block](const std::unique_ptr<Mshr> &m) {
                               return m->blockAddr == block;
                           });
    DC_ASSERT(it != mshrs_.end(), "fill %s with no matching MSHR",
              pkt->toString().c_str());

    Mshr *mshr = it->get();
    if (!mshr->isPrefetch)
        stats_->totMissLatency +=
            static_cast<double>(curTick() - mshr->issued);

    bool dirty = std::any_of(mshr->targets.begin(), mshr->targets.end(),
                             [](const Packet *t) {
                                 return t->isWrite();
                             });
    install(block, dirty, mshr->isPrefetch);

    // Answer every coalesced target.
    for (Packet *target : mshr->targets) {
        target->makeResponse();
        respQueue_.schedSendResp(target, curTick() + cfg_.hitLatency);
    }
    mshrs_.erase(it);
    delete pkt;

    unblockCpu();
    return true;
}

void
Cache::unblockCpu()
{
    if (cpuBlocked_) {
        cpuBlocked_ = false;
        cpuSide_.sendReqRetry();
    }
}

} // namespace dramctrl
