/**
 * @file
 * Synthetic workload profiles standing in for the PARSEC benchmarks.
 *
 * The paper's case studies (Section IV) run PARSEC on 16 out-of-order
 * cores under full-system Linux. This reproduction cannot boot Linux,
 * so each benchmark is characterised by the properties that determine
 * its DRAM behaviour: how often instructions touch memory, the
 * read/write balance, the working-set footprint (which sets the cache
 * miss rate), and the spatial locality of the address stream. The
 * numbers are chosen to mimic the published PARSEC memory
 * characterisations; "canneal" in particular is the cache-hostile,
 * random-access workload the paper uses for its Section IV-B memory
 * technology exploration.
 */

#ifndef DRAMCTRL_CPU_WORKLOAD_H
#define DRAMCTRL_CPU_WORKLOAD_H

#include <string>
#include <vector>

#include "sim/types.hh"

namespace dramctrl {

struct WorkloadProfile
{
    std::string name;
    /** Fraction of dispatched ops that access memory. */
    double memFraction = 0.3;
    /** Fraction of memory ops that are loads. */
    double readFraction = 0.7;
    /** Bytes of the working set the address stream covers. */
    std::uint64_t footprintBytes = 64 * 1024 * 1024;
    /** Probability the next access continues sequentially. */
    double seqProb = 0.5;
    /** Bytes per memory operation. */
    unsigned opSize = 8;
};

namespace workloads {

WorkloadProfile canneal();
WorkloadProfile blackscholes();
WorkloadProfile fluidanimate();
WorkloadProfile streamcluster();
WorkloadProfile swaptions();
WorkloadProfile x264();

/** Look a profile up by name; fatal() on unknown names. */
WorkloadProfile byName(const std::string &name);

/** All profile names, in a stable order. */
std::vector<std::string> names();

} // namespace workloads
} // namespace dramctrl

#endif // DRAMCTRL_CPU_WORKLOAD_H
