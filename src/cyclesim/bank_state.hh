/**
 * @file
 * Per-bank timing state for the cycle-based controller, expressed in
 * DRAM clock cycles (the comparator mirrors DRAMSim2, which keeps all
 * of its bookkeeping in cycles rather than absolute time).
 */

#ifndef DRAMCTRL_CYCLESIM_BANK_STATE_H
#define DRAMCTRL_CYCLESIM_BANK_STATE_H

#include <cstdint>

#include "dram/dram_config.hh"
#include "sim/ring_buffer.hh"
#include "sim/types.hh"

namespace dramctrl {
namespace cyclesim {

/** A DRAM clock cycle count. */
using Cycle = std::uint64_t;

/** The DRAM timing set quantised to whole clock cycles. */
struct CycleTiming
{
    explicit CycleTiming(const DRAMTiming &t);

    Cycle tRCD;
    Cycle tCL;
    Cycle tRP;
    Cycle tRAS;
    Cycle tRC;
    Cycle tWR;
    Cycle tWTR;
    Cycle tRTW;
    Cycle tRRD;
    Cycle tXAW;
    Cycle tREFI;
    Cycle tRFC;
    Cycle burstCycles;
    /**
     * Bank-group timings, quantised from the resolved accessors: for
     * ungrouped devices tCCD_L == tCCD_S == burstCycles and tRRD_L ==
     * tRRD, so grouped code paths degenerate to the legacy behaviour.
     */
    Cycle tCCD_L;
    Cycle tCCD_S;
    Cycle tRRD_L;
    Cycle tRFCsb;
    unsigned activationLimit;
};

/** Cycle-granular state of one bank. */
struct CycleBankState
{
    static constexpr std::uint64_t kNoRow = ~std::uint64_t(0);

    std::uint64_t openRow = kNoRow;
    Cycle nextActivate = 0;
    Cycle nextPrecharge = 0;
    Cycle nextRead = 0;
    Cycle nextWrite = 0;

    bool rowOpen() const { return openRow != kNoRow; }

    /** Apply an ACT issued at cycle @p c. */
    void activate(Cycle c, std::uint64_t row, const CycleTiming &t);

    /** Apply a PRE issued at cycle @p c. */
    void precharge(Cycle c, const CycleTiming &t);
};

/** Rank-level activate constraints (tRRD, tFAW window). */
struct CycleRankState
{
    Cycle nextActAnyBank = 0;
    /** Last activationLimit ACT cycles; ring sized by the owner. */
    RingBuffer<Cycle> actWindow;

    /** True iff an ACT may be issued at cycle @p c. */
    bool canActivate(Cycle c, const CycleTiming &t) const;

    /** Record an ACT issued at cycle @p c. */
    void recordActivate(Cycle c, const CycleTiming &t);
};

} // namespace cyclesim
} // namespace dramctrl

#endif // DRAMCTRL_CYCLESIM_BANK_STATE_H
