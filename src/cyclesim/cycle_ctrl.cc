#include "cyclesim/cycle_ctrl.hh"

#include <algorithm>

#include "ckpt/ckpt.hh"
#include "obs/chrome_trace.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace cyclesim {

CycleDRAMCtrl::CtrlStats::CtrlStats(CycleDRAMCtrl &ctrl)
    : readReqs(&ctrl.statGroup(), "readReqs", "read requests accepted"),
      writeReqs(&ctrl.statGroup(), "writeReqs",
                "write requests accepted"),
      readBursts(&ctrl.statGroup(), "readBursts", "read bursts"),
      writeBursts(&ctrl.statGroup(), "writeBursts", "write bursts"),
      readRowHits(&ctrl.statGroup(), "readRowHits",
                  "read bursts that hit an open row"),
      writeRowHits(&ctrl.statGroup(), "writeRowHits",
                   "write bursts that hit an open row"),
      numActs(&ctrl.statGroup(), "numActs", "activate commands"),
      numPrecharges(&ctrl.statGroup(), "numPrecharges",
                    "precharge commands"),
      numRefreshes(&ctrl.statGroup(), "numRefreshes",
                   "refresh commands"),
      bytesRead(&ctrl.statGroup(), "bytesRead",
                "bytes moved by read bursts"),
      bytesWritten(&ctrl.statGroup(), "bytesWritten",
                   "bytes moved by write bursts"),
      numRetries(&ctrl.statGroup(), "numRetries",
                 "requests refused on a full transaction queue"),
      totMemAccLat(&ctrl.statGroup(), "totMemAccLat",
                   "total read access time (ticks)"),
      prechargeAllTime(&ctrl.statGroup(), "prechargeAllTime",
                       "time with every bank precharged (ticks)"),
      numCycles(&ctrl.statGroup(), "numCycles",
                "DRAM clock cycles simulated"),
      rowHitRate(&ctrl.statGroup(), "rowHitRate",
                 "fraction of bursts hitting an open row",
                 [this] {
                     double n = readBursts.value() + writeBursts.value();
                     return n > 0 ? (readRowHits.value() +
                                     writeRowHits.value()) /
                                        n
                                  : 0.0;
                 }),
      busUtil(&ctrl.statGroup(), "busUtil",
              "data bus utilisation, both directions",
              [&ctrl] { return ctrl.busUtilisation(); }),
      lat(&ctrl.statGroup(), "lat", "read")
{
}

CycleDRAMCtrl::CycleDRAMCtrl(Simulator &sim, std::string name,
                             DRAMCtrlConfig config, AddrRange range,
                             unsigned cmd_queue_depth)
    : MemCtrlBase(sim, std::move(name)), cfg_(config), range_(range),
      decoder_(cfg_.org, cfg_.addrMapping), ct_(cfg_.timing),
      port_(this->name() + ".port", *this),
      respQueue_(this->eventq(), port_, this->name() + ".respQueue"),
      transQueueLimit_(cfg_.readBufferSize + cfg_.writeBufferSize),
      cmdQueue_(cfg_.org.ranksPerChannel, cfg_.org.banksPerRank,
                cmd_queue_depth),
      tailRows_(cfg_.org.totalBanks(), CycleBankState::kNoRow),
      banks_(cfg_.org.totalBanks()),
      rankState_(cfg_.org.ranksPerChannel),
      refreshCountdown_(ct_.tREFI),
      tickEvent_([this] { tick(); }, this->name() + ".tickEvent")
{
    cfg_.check();
    // Apply the temperature derating to the refresh interval.
    if (cfg_.timing.tREFI > 0) {
        ct_.tREFI = divCeil<Tick>(cfg_.effectiveREFI(),
                                  cfg_.timing.tCK);
        refreshCountdown_ = ct_.tREFI;
    }
    if (cfg_.pagePolicy != PagePolicy::Open &&
        cfg_.pagePolicy != PagePolicy::Closed)
        fatal("cycle-based controller '%s' supports only the open and "
              "closed page policies",
              this->name().c_str());
    if (range_.localSize() != cfg_.org.channelCapacity)
        fatal("controller '%s': address range provides %llu bytes but "
              "the DRAM organisation has %llu",
              this->name().c_str(),
              static_cast<unsigned long long>(range_.localSize()),
              static_cast<unsigned long long>(cfg_.org.channelCapacity));
    transQueue_.reserve(transQueueLimit_);
    for (CycleRankState &rs : rankState_)
        rs.actWindow.init(ct_.activationLimit);
    hasBankGroups_ = cfg_.org.hasBankGroups();
    if (hasBankGroups_) {
        const unsigned total_groups =
            cfg_.org.ranksPerChannel * cfg_.org.bankGroupsPerRank;
        grpNextCol_.assign(total_groups, 0);
        grpNextAct_.assign(total_groups, 0);
    }
    plugins_ = plugin::buildChain(cfg_, statGroup(), true,
                                  this->name());
    pracPlugin_ = plugins_.prac();

    stats_ = std::make_unique<CtrlStats>(*this);
    statGroup().onDump([this] { plugins_.onStatsDump(); });
    statGroup().onReset([this] { windowStart_ = curTick(); });
}

CycleDRAMCtrl::~CycleDRAMCtrl()
{
    if (tickEvent_.scheduled())
        deschedule(tickEvent_);

    auto release = [](CycleTransaction *t) {
        if (t->pkt) {
            while (t->pkt->senderState() != nullptr)
                delete t->pkt->popSenderState();
            delete t->pkt;
        }
        delete t;
    };

    std::vector<CycleTransaction *> seen;
    for (CycleTransaction *t : transQueue_) {
        if (std::find(seen.begin(), seen.end(), t) == seen.end())
            seen.push_back(t);
    }
    // Transactions referenced only from command queues.
    for (unsigned r = 0; r < cmdQueue_.numRanks(); ++r) {
        for (unsigned b = 0; b < cmdQueue_.numBanks(); ++b) {
            const auto &q = cmdQueue_.at(r, b);
            for (std::size_t i = 0; i < q.size(); ++i) {
                const Command &cmd = q[i];
                if (cmd.trans &&
                    std::find(seen.begin(), seen.end(), cmd.trans) ==
                        seen.end())
                    seen.push_back(cmd.trans);
            }
        }
    }
    for (CycleTransaction *t : seen)
        release(t);
}

void
CycleDRAMCtrl::startup()
{
    anchor_ = curTick();
    windowStart_ = curTick();
    idleSinceCycle_ = 0;
}

void
CycleDRAMCtrl::serialize(ckpt::CkptOut &out) const
{
    ckpt::putCheck(out, "cfgHash", ckpt::fnv1a(cfg_.describe()));

    // Transactions are referenced from both the transaction queue and
    // the command rings; build a dedup table (transaction-queue order
    // first, then command-ring scan) so each is written exactly once
    // and references become table indices.
    std::vector<const CycleTransaction *> table;
    auto indexOf = [&table](const CycleTransaction *t) -> std::uint64_t {
        for (std::size_t i = 0; i < table.size(); ++i) {
            if (table[i] == t)
                return i;
        }
        table.push_back(t);
        return table.size() - 1;
    };
    for (const CycleTransaction *t : transQueue_)
        indexOf(t);
    for (unsigned r = 0; r < cmdQueue_.numRanks(); ++r) {
        for (unsigned b = 0; b < cmdQueue_.numBanks(); ++b) {
            const auto &q = cmdQueue_.at(r, b);
            for (std::size_t i = 0; i < q.size(); ++i) {
                if (q[i].trans)
                    indexOf(q[i].trans);
            }
        }
    }

    out.putU64("transCount", table.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
        const CycleTransaction *t = table[i];
        out.putPacket(formatString("trans%zu.pkt", i), t->pkt);
        out.putU64Vec(formatString("trans%zu.f", i),
                      {t->isRead ? std::uint64_t(1) : 0, t->entryTime,
                       t->localAddr, t->size, t->burstsTotal,
                       t->burstsQueued, t->burstsDone, t->pickTime,
                       t->issueTime});
    }

    std::vector<std::uint64_t> tq;
    tq.reserve(transQueue_.size());
    for (const CycleTransaction *t : transQueue_)
        tq.push_back(indexOf(t));
    out.putU64Vec("transQueue", tq);

    for (unsigned r = 0; r < cmdQueue_.numRanks(); ++r) {
        for (unsigned b = 0; b < cmdQueue_.numBanks(); ++b) {
            const auto &q = cmdQueue_.at(r, b);
            std::vector<std::uint64_t> flat;
            flat.reserve(q.size() * 7);
            for (std::size_t i = 0; i < q.size(); ++i) {
                const Command &cmd = q[i];
                flat.push_back(static_cast<std::uint64_t>(cmd.type));
                flat.push_back(cmd.rank);
                flat.push_back(cmd.bank);
                flat.push_back(cmd.row);
                flat.push_back(cmd.col);
                flat.push_back(cmd.autoPrecharge ? 1 : 0);
                flat.push_back(cmd.trans ? indexOf(cmd.trans) + 1 : 0);
            }
            out.putU64Vec(formatString("cmdq.%u.%u", r, b), flat);
        }
    }

    out.putU64Vec("tailRows", tailRows_);

    std::vector<std::uint64_t> bank_state;
    bank_state.reserve(banks_.size() * 5);
    for (const CycleBankState &bs : banks_) {
        bank_state.push_back(bs.openRow);
        bank_state.push_back(bs.nextActivate);
        bank_state.push_back(bs.nextPrecharge);
        bank_state.push_back(bs.nextRead);
        bank_state.push_back(bs.nextWrite);
    }
    out.putU64Vec("banks", bank_state);

    std::vector<std::uint64_t> rank_next_act;
    rank_next_act.reserve(rankState_.size());
    for (std::size_t r = 0; r < rankState_.size(); ++r) {
        const CycleRankState &rs = rankState_[r];
        rank_next_act.push_back(rs.nextActAnyBank);
        std::vector<std::uint64_t> window;
        window.reserve(rs.actWindow.size());
        for (std::size_t i = 0; i < rs.actWindow.size(); ++i)
            window.push_back(rs.actWindow[i]);
        out.putU64Vec(formatString("actWindow.%zu", r), window);
    }
    out.putU64Vec("rankNextAct", rank_next_act);

    if (hasBankGroups_) {
        // Keys only exist for grouped organisations; legacy checkpoint
        // files stay restorable (and byte-identical) without them.
        out.putU64Vec("grpNextCol", grpNextCol_);
        out.putU64Vec("grpNextAct", grpNextAct_);
        out.putU64("nextColAnyBank", nextColAnyBank_);
    }

    out.putU64("cycle", cycle_);
    out.putTick("anchor", anchor_);
    out.putU64("cyclesTicked", cyclesTicked_);
    out.putU64("busBusyUntil", busBusyUntil_);
    out.putBool("lastDataWasRead", lastDataWasRead_);
    out.putU64("readAllowedAt", readAllowedAt_);
    out.putU64("refreshCountdown", refreshCountdown_);
    out.putBool("refreshPending", refreshPending_);
    out.putU64("refNotBefore", refNotBefore_);
    out.putU64("nextBankRR", nextBankRR_);
    out.putBool("retryReq", retryReq_);
    out.putBool("ticking", ticking_);
    out.putU64("idleSinceCycle", idleSinceCycle_);
    out.putTick("windowStart", windowStart_);

    respQueue_.serialize(out);
    out.putEvent("tickEvent", eventq(), tickEvent_);

    plugins_.serialize(out);
}

void
CycleDRAMCtrl::unserialize(ckpt::CkptIn &in)
{
    DC_ASSERT(transQueue_.empty() && cmdQueue_.empty(),
              "checkpoint restore into a non-fresh cycle controller");
    ckpt::verifyCheck(in, "cfgHash", ckpt::fnv1a(cfg_.describe()),
                      "cycle controller configuration");

    const std::uint64_t trans_count = in.getU64("transCount");
    std::vector<CycleTransaction *> table;
    table.reserve(trans_count);
    for (std::uint64_t i = 0; i < trans_count; ++i) {
        auto fields = in.getU64Vec(formatString("trans%llu.f",
                                                static_cast<unsigned long long>(i)));
        if (fields.size() != 9)
            fatal("checkpoint transaction %llu of '%s' has %zu fields, "
                  "expected 9",
                  static_cast<unsigned long long>(i), name().c_str(),
                  fields.size());
        auto *t = new CycleTransaction;
        t->pkt = in.getPacket(formatString("trans%llu.pkt",
                                           static_cast<unsigned long long>(i)));
        t->isRead = fields[0] != 0;
        t->entryTime = fields[1];
        t->localAddr = fields[2];
        t->size = static_cast<unsigned>(fields[3]);
        t->burstsTotal = static_cast<unsigned>(fields[4]);
        t->burstsQueued = static_cast<unsigned>(fields[5]);
        t->burstsDone = static_cast<unsigned>(fields[6]);
        t->pickTime = fields[7];
        t->issueTime = fields[8];
        table.push_back(t);
    }

    for (std::uint64_t idx : in.getU64Vec("transQueue")) {
        if (idx >= table.size())
            fatal("checkpoint transaction queue of '%s' references "
                  "transaction %llu of %zu",
                  name().c_str(), static_cast<unsigned long long>(idx),
                  table.size());
        transQueue_.push_back(table[idx]);
    }

    for (unsigned r = 0; r < cmdQueue_.numRanks(); ++r) {
        for (unsigned b = 0; b < cmdQueue_.numBanks(); ++b) {
            auto flat = in.getU64Vec(formatString("cmdq.%u.%u", r, b));
            if (flat.size() % 7 != 0)
                fatal("checkpoint command ring (%u,%u) of '%s' has %zu "
                      "words, not a multiple of 7",
                      r, b, name().c_str(), flat.size());
            for (std::size_t i = 0; i < flat.size(); i += 7) {
                Command cmd;
                cmd.type = static_cast<CmdType>(flat[i]);
                cmd.rank = static_cast<unsigned>(flat[i + 1]);
                cmd.bank = static_cast<unsigned>(flat[i + 2]);
                cmd.row = flat[i + 3];
                cmd.col = flat[i + 4];
                cmd.autoPrecharge = flat[i + 5] != 0;
                const std::uint64_t ref = flat[i + 6];
                if (ref > table.size())
                    fatal("checkpoint command ring (%u,%u) of '%s' "
                          "references transaction %llu of %zu",
                          r, b, name().c_str(),
                          static_cast<unsigned long long>(ref),
                          table.size());
                cmd.trans = ref ? table[ref - 1] : nullptr;
                cmdQueue_.push(cmd);
            }
        }
    }

    auto tail_rows = in.getU64Vec("tailRows");
    if (tail_rows.size() != tailRows_.size())
        fatal("checkpoint tail-row table of '%s' has %zu entries, this "
              "organisation has %zu banks",
              name().c_str(), tail_rows.size(), tailRows_.size());
    tailRows_ = std::move(tail_rows);

    auto bank_state = in.getU64Vec("banks");
    if (bank_state.size() != banks_.size() * 5)
        fatal("checkpoint bank state of '%s' has %zu words, expected %zu",
              name().c_str(), bank_state.size(), banks_.size() * 5);
    for (std::size_t i = 0; i < banks_.size(); ++i) {
        banks_[i].openRow = bank_state[i * 5];
        banks_[i].nextActivate = bank_state[i * 5 + 1];
        banks_[i].nextPrecharge = bank_state[i * 5 + 2];
        banks_[i].nextRead = bank_state[i * 5 + 3];
        banks_[i].nextWrite = bank_state[i * 5 + 4];
    }

    auto rank_next_act = in.getU64Vec("rankNextAct");
    if (rank_next_act.size() != rankState_.size())
        fatal("checkpoint rank state of '%s' has %zu entries, this "
              "organisation has %zu ranks",
              name().c_str(), rank_next_act.size(), rankState_.size());
    for (std::size_t r = 0; r < rankState_.size(); ++r) {
        CycleRankState &rs = rankState_[r];
        rs.nextActAnyBank = rank_next_act[r];
        auto window = in.getU64Vec(formatString("actWindow.%zu", r));
        if (window.size() > rs.actWindow.capacity())
            fatal("checkpoint activation window of '%s' rank %zu has "
                  "%zu entries, capacity is %zu",
                  name().c_str(), r, window.size(),
                  rs.actWindow.capacity());
        for (std::uint64_t c : window)
            rs.actWindow.push_back(c);
    }

    if (hasBankGroups_) {
        const auto &grp_col = in.getU64Vec("grpNextCol");
        const auto &grp_act = in.getU64Vec("grpNextAct");
        if (grp_col.size() != grpNextCol_.size() ||
            grp_act.size() != grpNextAct_.size())
            fatal("checkpoint bank-group lanes of '%s' do not match "
                  "this organisation", name().c_str());
        grpNextCol_ = grp_col;
        grpNextAct_ = grp_act;
        nextColAnyBank_ = in.getU64("nextColAnyBank");
    }

    cycle_ = in.getU64("cycle");
    anchor_ = in.getTick("anchor");
    cyclesTicked_ = in.getU64("cyclesTicked");
    busBusyUntil_ = in.getU64("busBusyUntil");
    lastDataWasRead_ = in.getBool("lastDataWasRead");
    readAllowedAt_ = in.getU64("readAllowedAt");
    refreshCountdown_ = in.getU64("refreshCountdown");
    refreshPending_ = in.getBool("refreshPending");
    refNotBefore_ = in.getU64("refNotBefore");
    nextBankRR_ = static_cast<unsigned>(in.getU64("nextBankRR"));
    retryReq_ = in.getBool("retryReq");
    ticking_ = in.getBool("ticking");
    idleSinceCycle_ = in.getU64("idleSinceCycle");
    windowStart_ = in.getTick("windowStart");

    respQueue_.unserialize(in);
    in.getEvent("tickEvent", eventq(), tickEvent_);

    plugins_.unserialize(in);
}

bool
CycleDRAMCtrl::idle() const
{
    return transQueue_.empty() && cmdQueue_.empty() &&
           respQueue_.empty();
}

double
CycleDRAMCtrl::peakBandwidthGBs() const
{
    return static_cast<double>(cfg_.org.burstSize()) /
           toSeconds(cfg_.timing.tBURST) / 1e9;
}

double
CycleDRAMCtrl::busUtilisation() const
{
    double w = toSeconds(curTick() - windowStart_);
    if (w <= 0)
        return 0.0;
    return (stats_->bytesRead.value() + stats_->bytesWritten.value()) /
           1e9 / peakBandwidthGBs() / w;
}

double
CycleDRAMCtrl::achievedBandwidthGBs() const
{
    double w = toSeconds(curTick() - windowStart_);
    if (w <= 0)
        return 0.0;
    return (stats_->bytesRead.value() + stats_->bytesWritten.value()) /
           1e9 / w;
}

PowerInputs
CycleDRAMCtrl::powerInputs() const
{
    PowerInputs in;
    in.window = curTick() - windowStart_;
    in.numActs = stats_->numActs.value();
    in.numPrecharges = stats_->numPrecharges.value();
    in.numRefreshes = stats_->numRefreshes.value();
    in.readBursts =
        stats_->bytesRead.value() /
        static_cast<double>(cfg_.org.burstSize());
    in.writeBursts =
        stats_->bytesWritten.value() /
        static_cast<double>(cfg_.org.burstSize());
    in.prechargeAllTime =
        static_cast<Tick>(stats_->prechargeAllTime.value());
    double w = toSeconds(in.window);
    if (w > 0) {
        double peak_bytes = peakBandwidthGBs() * 1e9;
        in.readBusFraction = stats_->bytesRead.value() / peak_bytes / w;
        in.writeBusFraction =
            stats_->bytesWritten.value() / peak_bytes / w;
    }
    return in;
}

std::uint64_t &
CycleDRAMCtrl::tailRow(unsigned rank, unsigned bank)
{
    return tailRows_.at(static_cast<std::size_t>(rank) *
                            cfg_.org.banksPerRank +
                        bank);
}

bool
CycleDRAMCtrl::recvTimingReq(Packet *pkt)
{
    DC_ASSERT(pkt->isRequest(), "controller received %s",
              pkt->toString().c_str());
    if (!range_.contains(pkt->addr()))
        panic("controller '%s' received misrouted packet %s",
              name().c_str(), pkt->toString().c_str());

    if (transQueue_.size() >= transQueueLimit_) {
        TRACE(CycleCtrl, "%s: refuse %s, transaction queue full (%zu)",
              name().c_str(), pkt->toString().c_str(),
              transQueue_.size());
        ++stats_->numRetries;
        retryReq_ = true;
        return false;
    }

    TRACE(CycleCtrl, "%s: accept %s", name().c_str(),
          pkt->toString().c_str());
    if (auto *ct = obs::chromeTracer()) {
        ct->beginSpan(name(), pkt->id(),
                      std::string(pkt->isRead() ? "read " : "write ") +
                          std::to_string(pkt->addr()),
                      curTick());
        ct->counter(name(), "transQ", curTick(),
                    static_cast<double>(transQueue_.size() + 1));
    }

    Addr local = range_.removeIntlvBits(pkt->addr());
    std::uint64_t burst_size = cfg_.org.burstSize();
    Addr first = local / burst_size;
    Addr last = (local + pkt->size() - 1) / burst_size;

    auto *trans = new CycleTransaction;
    trans->pkt = pkt;
    trans->isRead = pkt->isRead();
    trans->entryTime = curTick();
    trans->localAddr = local;
    trans->size = pkt->size();
    trans->burstsTotal = static_cast<unsigned>(last - first + 1);

    if (!plugins_.empty())
        plugins_.onEnqueue(
            {pkt->isRead(), pkt->addr(), pkt->size(), curTick()});

    if (trans->isRead) {
        ++stats_->readReqs;
        stats_->readBursts += trans->burstsTotal;
    } else {
        ++stats_->writeReqs;
        stats_->writeBursts += trans->burstsTotal;
        // Writes are acknowledged on acceptance, as in the event model.
        pkt->setSpan(
            stats::LatencySpan::immediate(curTick(),
                                          cfg_.frontendLatency));
        pkt->makeResponse();
        respQueue_.schedSendResp(pkt, curTick() + cfg_.frontendLatency);
        trans->pkt = nullptr;
    }

    transQueue_.push_back(trans);

    if (!ticking_) {
        Cycle now = (curTick() - anchor_) / cfg_.timing.tCK;
        catchUpIdleCycles(now);
        ticking_ = true;
        schedule(tickEvent_, tickOf(cycle_ + 1));
    }
    return true;
}

void
CycleDRAMCtrl::catchUpIdleCycles(Cycle now)
{
    if (now <= cycle_) {
        cycle_ = std::max(cycle_, now);
        return;
    }
    Cycle elapsed = now - cycle_;

    // Refreshes that would have happened during the idle gap: the banks
    // were quiescent, so each one simply closes any open rows and costs
    // tRFC of non-precharge-standby time.
    std::uint64_t missed = 0;
    if (ct_.tREFI > 0) {
        if (elapsed < refreshCountdown_) {
            refreshCountdown_ -= elapsed;
        } else {
            missed = 1 + (elapsed - refreshCountdown_) / ct_.tREFI;
            refreshCountdown_ =
                ct_.tREFI - (elapsed - refreshCountdown_) % ct_.tREFI;
        }
    }
    if (missed > 0) {
        stats_->numRefreshes += static_cast<double>(missed);

        // Reconstruct the idle-time refreshes: close any open rows as
        // soon as their precharge timing allowed, wait tRP, then the
        // refreshes at tREFI intervals. The final refresh may straddle
        // the resume point; its completion is carried forward as the
        // banks' activate constraint, so resumed commands wait it out.
        Cycle latest_pre = cycle_;
        for (std::size_t i = 0; i < banks_.size(); ++i) {
            CycleBankState &bank = banks_[i];
            if (bank.rowOpen()) {
                Cycle pre_c = std::max(cycle_, bank.nextPrecharge);
                latest_pre = std::max(latest_pre, pre_c);
                logCmd(tickOf(pre_c), DRAMCmd::Pre,
                       static_cast<unsigned>(i / cfg_.org.banksPerRank),
                       static_cast<unsigned>(i %
                                             cfg_.org.banksPerRank));
                bank.openRow = CycleBankState::kNoRow;
                ++stats_->numPrecharges;
            }
        }

        Cycle ref_first = std::max({latest_pre + ct_.tRP,
                                    refNotBefore_, busBusyUntil_});
        Cycle ref_last =
            ref_first + (missed - 1) * ct_.tREFI;
        for (unsigned r = 0; r < cfg_.org.ranksPerChannel; ++r) {
            logCmd(tickOf(ref_first), DRAMCmd::Ref, r, 0);
            if (missed > 1)
                logCmd(tickOf(ref_last), DRAMCmd::Ref, r, 0);
        }

        Cycle ref_done = ref_last + ct_.tRFC;
        for (CycleBankState &bank : banks_) {
            bank.nextActivate = std::max(bank.nextActivate, ref_done);
            bank.nextPrecharge = 0;
            bank.nextRead = 0;
            bank.nextWrite = 0;
        }
        for (std::uint64_t &tr : tailRows_)
            tr = CycleBankState::kNoRow;
    }

    bool all_closed = std::none_of(
        banks_.begin(), banks_.end(),
        [](const CycleBankState &b) { return b.rowOpen(); });
    if (all_closed) {
        Cycle standby = elapsed > missed * ct_.tRFC
                            ? elapsed - missed * ct_.tRFC
                            : 0;
        stats_->prechargeAllTime +=
            static_cast<double>(standby * cfg_.timing.tCK);
    }

    cycle_ = now;
}

void
CycleDRAMCtrl::tick()
{
    ++cycle_;
    ++cyclesTicked_;
    ++stats_->numCycles;

    bool all_closed = std::none_of(
        banks_.begin(), banks_.end(),
        [](const CycleBankState &b) { return b.rowOpen(); });
    if (all_closed && !refreshPending_)
        stats_->prechargeAllTime +=
            static_cast<double>(cfg_.timing.tCK);

    serviceRefresh();
    if (!refreshPending_) {
        repairQueueHeads();
        decomposeTransactions();
        issueCommand();
    }

    nextBankRR_ = (nextBankRR_ + 1) % cfg_.org.totalBanks();

    if (hasWork()) {
        schedule(tickEvent_, tickOf(cycle_ + 1));
    } else {
        ticking_ = false;
        idleSinceCycle_ = cycle_;
    }
}

bool
CycleDRAMCtrl::hasWork() const
{
    return !transQueue_.empty() || !cmdQueue_.empty() ||
           refreshPending_;
}

void
CycleDRAMCtrl::serviceRefresh()
{
    if (ct_.tREFI == 0)
        return;

    if (!refreshPending_) {
        if (refreshCountdown_ > 0)
            --refreshCountdown_;
        if (refreshCountdown_ == 0)
            refreshPending_ = true;
    }
    if (!refreshPending_)
        return;

    // Drain: close one open bank per cycle (command bus) as soon as its
    // precharge timing allows, then issue the refresh.
    bool any_open = false;
    for (std::size_t i = 0; i < banks_.size(); ++i) {
        CycleBankState &bank = banks_[i];
        if (!bank.rowOpen())
            continue;
        any_open = true;
        if (cycle_ >= bank.nextPrecharge) {
            bank.precharge(cycle_, ct_);
            refNotBefore_ = std::max(refNotBefore_, cycle_ + ct_.tRP);
            ++stats_->numPrecharges;
            logCmd(tickOf(cycle_), DRAMCmd::Pre,
                   static_cast<unsigned>(i / cfg_.org.banksPerRank),
                   static_cast<unsigned>(i % cfg_.org.banksPerRank));
            break;
        }
    }
    if (any_open)
        return;
    if (cycle_ < refNotBefore_)
        return; // tRP of the last precharge still elapsing

    // All banks precharged: refresh now.
    TRACE(Refresh, "%s: REF all ranks at cycle %llu", name().c_str(),
          static_cast<unsigned long long>(cycle_));
    ++stats_->numRefreshes;
    for (unsigned r = 0; r < cfg_.org.ranksPerChannel; ++r)
        logCmd(tickOf(cycle_), DRAMCmd::Ref, r, 0);
    for (CycleBankState &bank : banks_)
        bank.nextActivate = std::max(bank.nextActivate,
                                     cycle_ + ct_.tRFC);
    for (std::size_t i = 0; i < tailRows_.size(); ++i) {
        unsigned rank = static_cast<unsigned>(i / cfg_.org.banksPerRank);
        unsigned bank = static_cast<unsigned>(i % cfg_.org.banksPerRank);
        if (cmdQueue_.at(rank, bank).empty())
            tailRows_[i] = CycleBankState::kNoRow;
    }
    refreshCountdown_ = ct_.tREFI;
    refreshPending_ = false;
}

void
CycleDRAMCtrl::repairQueueHeads()
{
    // A refresh (or a forced drain precharge) may have closed a bank
    // under a queued column command; reinstate the activate it needs.
    for (unsigned r = 0; r < cmdQueue_.numRanks(); ++r) {
        for (unsigned b = 0; b < cmdQueue_.numBanks(); ++b) {
            auto &q = cmdQueue_.at(r, b);
            if (q.empty())
                continue;
            CycleBankState &bank =
                banks_[static_cast<std::size_t>(r) *
                           cfg_.org.banksPerRank +
                       b];
            // A queued precharge whose bank the refresh drain already
            // closed would never become issuable: drop it.
            while (!q.empty() && q.front().type == CmdType::Pre &&
                   !bank.rowOpen())
                q.pop_front();
            if (q.empty())
                continue;
            Command &head = q.front();
            if (head.type != CmdType::Read &&
                head.type != CmdType::Write)
                continue;
            if (bank.openRow == head.row)
                continue;
            if (bank.rowOpen()) {
                Command pre{CmdType::Pre, r, b, bank.openRow, 0, false,
                            nullptr};
                q.push_front(pre);
            } else {
                Command act{CmdType::Act, r, b, head.row, 0, false,
                            nullptr};
                q.push_front(act);
            }
        }
    }
}

void
CycleDRAMCtrl::decomposeTransactions()
{
    for (auto it = transQueue_.begin(); it != transQueue_.end(); ++it) {
        CycleTransaction *trans = *it;
        std::uint64_t burst_size = cfg_.org.burstSize();
        Addr window = decoder_.burstAlign(trans->localAddr) +
                      static_cast<Addr>(trans->burstsQueued) * burst_size;
        DRAMAddr da = decoder_.decode(window);

        std::uint64_t &tail = tailRow(da.rank, da.bank);
        unsigned needed;
        bool need_pre = false;
        bool need_act = false;
        bool row_hit = false;
        if (cfg_.pagePolicy == PagePolicy::Closed) {
            need_act = true;
            needed = 2;
        } else if (tail == da.row) {
            row_hit = true;
            needed = 1;
        } else if (tail == CycleBankState::kNoRow) {
            need_act = true;
            needed = 2;
        } else {
            need_pre = true;
            need_act = true;
            needed = 3;
        }

        if (!cmdQueue_.hasSpace(da.rank, da.bank, needed))
            continue; // first-fit: skip blocked transactions

        if (need_pre)
            cmdQueue_.push(Command{CmdType::Pre, da.rank, da.bank, tail,
                                   0, false, nullptr});
        if (need_act)
            cmdQueue_.push(Command{CmdType::Act, da.rank, da.bank,
                                   da.row, 0, false, nullptr});

        bool auto_pre = cfg_.pagePolicy == PagePolicy::Closed;
        cmdQueue_.push(Command{trans->isRead ? CmdType::Read
                                             : CmdType::Write,
                               da.rank, da.bank, da.row, da.col,
                               auto_pre, trans});
        tail = auto_pre ? CycleBankState::kNoRow : da.row;

        if (row_hit) {
            if (trans->isRead)
                ++stats_->readRowHits;
            else
                ++stats_->writeRowHits;
        }

        ++trans->burstsQueued;
        trans->pickTime = tickOf(cycle_);
        if (trans->burstsQueued == trans->burstsTotal) {
            transQueue_.erase(it);
            if (retryReq_) {
                retryReq_ = false;
                port_.sendReqRetry();
            }
        }
        return; // at most one decomposition per cycle
    }
}

bool
CycleDRAMCtrl::isIssuable(const Command &cmd) const
{
    const CycleBankState &bank =
        banks_[static_cast<std::size_t>(cmd.rank) *
                   cfg_.org.banksPerRank +
               cmd.bank];
    const CycleRankState &rank = rankState_[cmd.rank];
    Cycle c = cycle_;

    // Same-group long timings and the channel-wide short column
    // spacing; both degenerate to always-satisfied without groups.
    Cycle grp_act = 0;
    Cycle grp_col = 0;
    if (hasBankGroups_) {
        unsigned g = grpIdx(cmd.rank, cmd.bank);
        grp_act = grpNextAct_[g];
        grp_col = std::max(grpNextCol_[g], nextColAnyBank_);
    }

    switch (cmd.type) {
      case CmdType::Act:
        return !bank.rowOpen() && c >= bank.nextActivate &&
               c >= grp_act && rank.canActivate(c, ct_);
      case CmdType::Pre:
        return bank.rowOpen() && c >= bank.nextPrecharge;
      case CmdType::Read:
        return bank.openRow == cmd.row && c >= bank.nextRead &&
               c >= grp_col && c >= readAllowedAt_ &&
               c + ct_.tCL >= busBusyUntil_;
      case CmdType::Write:
        return bank.openRow == cmd.row && c >= bank.nextWrite &&
               c >= grp_col &&
               c + ct_.tCL >=
                   busBusyUntil_ + (lastDataWasRead_ ? ct_.tRTW : 0);
    }
    return false;
}

void
CycleDRAMCtrl::execute(const Command &cmd)
{
    CycleBankState &bank =
        banks_[static_cast<std::size_t>(cmd.rank) *
                   cfg_.org.banksPerRank +
               cmd.bank];
    CycleRankState &rank = rankState_[cmd.rank];
    Cycle c = cycle_;
    std::uint64_t burst_size = cfg_.org.burstSize();

    switch (cmd.type) {
      case CmdType::Act:
        bank.activate(c, cmd.row, ct_);
        rank.recordActivate(c, ct_);
        if (hasBankGroups_) {
            Cycle &g = grpNextAct_[grpIdx(cmd.rank, cmd.bank)];
            g = std::max(g, c + ct_.tRRD_L);
        }
        ++stats_->numActs;
        logCmd(tickOf(c), DRAMCmd::Act, cmd.rank, cmd.bank, cmd.row);
        break;
      case CmdType::Pre:
        bank.precharge(c, ct_);
        refNotBefore_ = std::max(refNotBefore_, c + ct_.tRP);
        ++stats_->numPrecharges;
        logCmd(tickOf(c), DRAMCmd::Pre, cmd.rank, cmd.bank);
        break;
      case CmdType::Read: {
        Cycle data_done = c + ct_.tCL + ct_.burstCycles;
        busBusyUntil_ = data_done;
        lastDataWasRead_ = true;
        // Same-bank spacing is tCCD_L (== burstCycles when ungrouped).
        bank.nextRead = std::max(bank.nextRead, c + ct_.tCCD_L);
        bank.nextWrite = std::max(bank.nextWrite, c + ct_.tCCD_L);
        if (hasBankGroups_) {
            Cycle &g = grpNextCol_[grpIdx(cmd.rank, cmd.bank)];
            g = std::max(g, c + ct_.tCCD_L);
            nextColAnyBank_ = std::max(nextColAnyBank_,
                                       c + ct_.tCCD_S);
        }
        bank.nextPrecharge = std::max(bank.nextPrecharge, data_done);
        logCmd(tickOf(c), DRAMCmd::Rd, cmd.rank, cmd.bank, cmd.row);
        if (!plugins_.empty())
            plugins_.onBurstComplete({true, cmd.rank, cmd.bank, cmd.row,
                                      cmd.col, tickOf(data_done)});
        if (cmd.autoPrecharge) {
            // The device engages auto-precharge only once tRAS (and
            // every other precharge constraint) is satisfied, not
            // blindly at data-done — on slow-tRAS parts data-done
            // can land inside the activate's tRAS window.
            Cycle pre_c = bank.nextPrecharge;
            bank.openRow = CycleBankState::kNoRow;
            bank.nextActivate = std::max(bank.nextActivate,
                                         pre_c + ct_.tRP);
            refNotBefore_ = std::max(refNotBefore_, pre_c + ct_.tRP);
            ++stats_->numPrecharges;
            logCmd(tickOf(pre_c), DRAMCmd::Pre, cmd.rank, cmd.bank);
        }
        stats_->bytesRead += static_cast<double>(burst_size);
        cmd.trans->issueTime = tickOf(c);
        burstCompleted(cmd.trans, tickOf(data_done));
        break;
      }
      case CmdType::Write: {
        Cycle data_done = c + ct_.tCL + ct_.burstCycles;
        busBusyUntil_ = data_done;
        lastDataWasRead_ = false;
        readAllowedAt_ = std::max(readAllowedAt_, data_done + ct_.tWTR);
        bank.nextRead = std::max(bank.nextRead, c + ct_.tCCD_L);
        bank.nextWrite = std::max(bank.nextWrite, c + ct_.tCCD_L);
        if (hasBankGroups_) {
            Cycle &g = grpNextCol_[grpIdx(cmd.rank, cmd.bank)];
            g = std::max(g, c + ct_.tCCD_L);
            nextColAnyBank_ = std::max(nextColAnyBank_,
                                       c + ct_.tCCD_S);
        }
        bank.nextPrecharge = std::max(bank.nextPrecharge,
                                      data_done + ct_.tWR);
        logCmd(tickOf(c), DRAMCmd::Wr, cmd.rank, cmd.bank, cmd.row);
        if (!plugins_.empty())
            plugins_.onBurstComplete({false, cmd.rank, cmd.bank,
                                      cmd.row, cmd.col,
                                      tickOf(data_done)});
        if (cmd.autoPrecharge) {
            // As for reads: honour tRAS, not just write recovery.
            Cycle pre_c = bank.nextPrecharge;
            bank.openRow = CycleBankState::kNoRow;
            bank.nextActivate = std::max(bank.nextActivate,
                                         pre_c + ct_.tRP);
            refNotBefore_ = std::max(refNotBefore_, pre_c + ct_.tRP);
            ++stats_->numPrecharges;
            logCmd(tickOf(pre_c), DRAMCmd::Pre, cmd.rank, cmd.bank);
        }
        stats_->bytesWritten += static_cast<double>(burst_size);
        cmd.trans->issueTime = tickOf(c);
        burstCompleted(cmd.trans, tickOf(data_done));
        break;
      }
    }

    if (auto *ct = obs::chromeTracer()) {
        if (cmd.type == CmdType::Act || cmd.type == CmdType::Pre ||
            cmd.autoPrecharge) {
            auto open = std::count_if(
                banks_.begin(), banks_.end(),
                [](const CycleBankState &b) { return b.rowOpen(); });
            ct->counter(name(), "openBanks", tickOf(c),
                        static_cast<double>(open));
        }
    }
}

void
CycleDRAMCtrl::issueCommand()
{
    unsigned total = cfg_.org.totalBanks();

    // Pass 1 (open page): prioritise column commands hitting open rows.
    if (cfg_.pagePolicy == PagePolicy::Open) {
        for (unsigned i = 0; i < total; ++i) {
            unsigned idx = (nextBankRR_ + i) % total;
            unsigned r = idx / cfg_.org.banksPerRank;
            unsigned b = idx % cfg_.org.banksPerRank;
            auto &q = cmdQueue_.at(r, b);
            if (q.empty())
                continue;
            const Command &head = q.front();
            if ((head.type == CmdType::Read ||
                 head.type == CmdType::Write) &&
                isIssuable(head)) {
                Command cmd = head;
                q.pop_front();
                execute(cmd);
                return;
            }
        }
    }

    // Pass 2: first issuable head, round robin across banks.
    for (unsigned i = 0; i < total; ++i) {
        unsigned idx = (nextBankRR_ + i) % total;
        unsigned r = idx / cfg_.org.banksPerRank;
        unsigned b = idx % cfg_.org.banksPerRank;
        auto &q = cmdQueue_.at(r, b);
        if (q.empty())
            continue;
        const Command &head = q.front();
        if (isIssuable(head)) {
            if (head.type == CmdType::Act && pracPlugin_ != nullptr &&
                pracPlugin_->mitigationPending(idx) && !testSkipPrac_) {
                // RowHammer mitigation takes the command slot: the
                // activate's issuability guarantees the bank is closed
                // and precharge-settled, which is exactly REFm
                // legality. The blocked ACT retries once tRFM passes.
                CycleBankState &bank = banks_[idx];
                logCmd(tickOf(cycle_), DRAMCmd::RefM, r, b);
                bank.nextActivate = std::max(
                    bank.nextActivate,
                    cycle_ + divCeil<Cycle>(pracPlugin_->tRFM(),
                                            cfg_.timing.tCK));
                return;
            }
            Command cmd = head;
            q.pop_front();
            execute(cmd);
            return;
        }
    }
}

void
CycleDRAMCtrl::burstCompleted(CycleTransaction *trans,
                              Tick data_done_tick)
{
    DC_ASSERT(trans != nullptr, "column command without a transaction");
    ++trans->burstsDone;
    if (trans->burstsDone < trans->burstsTotal)
        return;

    if (trans->isRead) {
        stats_->totMemAccLat +=
            static_cast<double>(data_done_tick - trans->entryTime);

        // Attribution span. The cycle model has no scheduler-stall
        // notion distinct from the command queue: bankTiming covers the
        // whole command-queue residency (decompose to column issue) and
        // schedStall is structurally zero. The bus stage is the CAS
        // latency (tCL); the burst stage the data transfer itself.
        stats::LatencySpan span;
        span.enqueue = trans->entryTime;
        span.pick = trans->pickTime;
        span.bankReady = trans->issueTime;
        span.issue = trans->issueTime;
        span.burstStart =
            data_done_tick - ct_.burstCycles * cfg_.timing.tCK;
        span.done = data_done_tick;
        span.staticLat = cfg_.frontendLatency + cfg_.backendLatency;
        span.valid = true;
        stats_->lat.record(span);
        trans->pkt->setSpan(span);

        trans->pkt->makeResponse();
        respQueue_.schedSendResp(trans->pkt,
                                 data_done_tick + cfg_.frontendLatency +
                                     cfg_.backendLatency);
    }
    delete trans;
}

} // namespace cyclesim
} // namespace dramctrl
