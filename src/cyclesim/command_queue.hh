/**
 * @file
 * Per-bank DRAM command queues for the cycle-based controller.
 *
 * DRAMSim2's structure: a transaction is decomposed into explicit DRAM
 * commands (ACT, PRE, RD, WR) which wait in a per-rank-per-bank queue;
 * commands within a bank issue strictly in order, and the controller
 * arbitrates across banks each cycle. The paper's event-based model
 * deliberately omits this split (Section II-A) — keeping it here is
 * what makes the comparator representative.
 */

#ifndef DRAMCTRL_CYCLESIM_COMMAND_QUEUE_H
#define DRAMCTRL_CYCLESIM_COMMAND_QUEUE_H

#include <cstdint>
#include <vector>

#include "cyclesim/bank_state.hh"
#include "sim/ring_buffer.hh"
#include "sim/types.hh"

namespace dramctrl {
namespace cyclesim {

enum class CmdType : std::uint8_t { Act, Pre, Read, Write };

/** A forward-declared controller-internal transaction. */
struct CycleTransaction;

/** One explicit DRAM command. */
struct Command
{
    CmdType type;
    unsigned rank;
    unsigned bank;
    std::uint64_t row;
    std::uint64_t col;
    /** Column command carries an auto-precharge (closed page). */
    bool autoPrecharge = false;
    /** The transaction a column command completes a burst of. */
    CycleTransaction *trans = nullptr;
};

/**
 * The set of per-bank FIFO command queues with a bounded depth.
 *
 * Each queue is a fixed ring sized once at construction, so the
 * cycle-by-cycle push/pop churn never allocates. The rings hold one
 * slot beyond the nominal depth: repairQueueHeads() may push a healing
 * precharge/activate in front of an already-full queue.
 */
class CommandQueue
{
  public:
    CommandQueue(unsigned ranks, unsigned banks, unsigned depth);

    /** Whether bank (@p rank, @p bank) can take @p count commands. */
    bool hasSpace(unsigned rank, unsigned bank, unsigned count) const;

    void push(const Command &cmd);

    RingBuffer<Command> &at(unsigned rank, unsigned bank);
    const RingBuffer<Command> &at(unsigned rank, unsigned bank) const;

    bool empty() const;
    std::size_t totalSize() const;

    unsigned numRanks() const { return ranks_; }
    unsigned numBanks() const { return banks_; }

  private:
    unsigned ranks_;
    unsigned banks_;
    unsigned depth_;
    std::vector<RingBuffer<Command>> queues_;
};

} // namespace cyclesim
} // namespace dramctrl

#endif // DRAMCTRL_CYCLESIM_COMMAND_QUEUE_H
