/**
 * @file
 * Cycle-based DRAM controller — the DRAMSim2-style comparator.
 *
 * This is the "state of the art" the paper validates against
 * (Section III): a controller that steps the DRAM clock cycle by cycle
 * and models explicit commands. Its deliberate architectural contrasts
 * with the event-based DRAMCtrl are the ones the paper calls out:
 *
 *  - a unified transaction queue instead of split read/write queues,
 *  - per-bank command queues holding explicit ACT/PRE/RD/WR commands,
 *  - reads and writes serviced interleaved in arrival order — no write
 *    drain mode, so no bimodal read latency (Fig. 7) and less room to
 *    reschedule writes (Fig. 5),
 *  - one tick of work every DRAM clock cycle while busy — the source
 *    of the simulation-speed gap (Section III-D).
 *
 * Writes are acknowledged on acceptance, like the event model, since
 * the paper notes both models respond to writes immediately.
 */

#ifndef DRAMCTRL_CYCLESIM_CYCLE_CTRL_H
#define DRAMCTRL_CYCLESIM_CYCLE_CTRL_H

#include <memory>
#include <string>
#include <vector>

#include "cyclesim/bank_state.hh"
#include "cyclesim/command_queue.hh"
#include "dram/addr_decoder.hh"
#include "dram/cmd_log.hh"
#include "dram/dram_config.hh"
#include "dram/plugin/plugin.hh"
#include "mem/addr_range.hh"
#include "mem/mem_ctrl_iface.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "sim/pool.hh"
#include "sim/simulator.hh"
#include "stats/latency_attr.hh"
#include "stats/stats.hh"

namespace dramctrl {
namespace cyclesim {

/** A request being processed by the cycle-based controller. */
struct CycleTransaction : public Pooled<CycleTransaction>
{
    Packet *pkt = nullptr;
    bool isRead = true;
    Tick entryTime = 0;
    Addr localAddr = 0;
    unsigned size = 0;
    unsigned burstsTotal = 0;
    unsigned burstsQueued = 0;
    unsigned burstsDone = 0;
    /**
     * Attribution stamps: tick of the last decomposition into the
     * command queues (pickTime) and of the last column command issue
     * (issueTime). For multi-burst transactions the last burst wins —
     * it is the one that completes the response.
     */
    Tick pickTime = 0;
    Tick issueTime = 0;
};

class CycleDRAMCtrl : public MemCtrlBase
{
  public:
    /**
     * @param sim the owning simulator
     * @param name instance name
     * @param config same structure the event model takes; only the
     *               Open and Closed page policies are supported (the
     *               adaptive variants are the event model's own)
     * @param range the address range this controller responds to
     * @param cmd_queue_depth per-bank command queue entries
     */
    CycleDRAMCtrl(Simulator &sim, std::string name,
                  DRAMCtrlConfig config, AddrRange range,
                  unsigned cmd_queue_depth = 8);
    ~CycleDRAMCtrl() override;

    ResponsePort &port() override { return port_; }
    const DRAMCtrlConfig &config() const override { return cfg_; }

    bool idle() const override;

    std::size_t queuedRequests() const override
    {
        return transQueue_.size();
    }

    double busUtilisation() const override;
    double achievedBandwidthGBs() const override;
    double peakBandwidthGBs() const override;
    PowerInputs powerInputs() const override;

    void startup() override;

    void serialize(ckpt::CkptOut &out) const override;
    void unserialize(ckpt::CkptIn &in) override;

    /** DRAM clock cycles actually simulated (the model's work unit). */
    std::uint64_t cyclesTicked() const { return cyclesTicked_; }

    /** Statistics mirror of the subset shared with the event model. */
    struct CtrlStats
    {
        explicit CtrlStats(CycleDRAMCtrl &ctrl);

        stats::Scalar readReqs;
        stats::Scalar writeReqs;
        stats::Scalar readBursts;
        stats::Scalar writeBursts;
        stats::Scalar readRowHits;
        stats::Scalar writeRowHits;
        stats::Scalar numActs;
        stats::Scalar numPrecharges;
        stats::Scalar numRefreshes;
        stats::Scalar bytesRead;
        stats::Scalar bytesWritten;
        stats::Scalar numRetries;
        stats::Scalar totMemAccLat;
        stats::Scalar prechargeAllTime;
        stats::Scalar numCycles;
        stats::Formula rowHitRate;
        stats::Formula busUtil;
        /** Per-stage read latency attribution (see latency_attr.hh). */
        stats::StageLatencyStats lat;
    };

    const CtrlStats &ctrlStats() const { return *stats_; }

    /** Attach a command logger (see DRAMCtrl::setCmdLogger). */
    void setCmdLogger(CmdLogger *logger) { cmdLogger_ = logger; }

    /**
     * Test-only fault injection: skip the PRAC mitigation refresh
     * (see DRAMCtrl::testSkipPracMitigation). Never call outside tests.
     */
    void testSkipPracMitigation() { testSkipPrac_ = true; }

    /** The controller's plugin chain (empty without --plugins). */
    plugin::PluginChain &pluginChain() { return plugins_; }
    const plugin::PluginChain &pluginChain() const { return plugins_; }

  private:
    class MemoryPort : public ResponsePort
    {
      public:
        MemoryPort(std::string name, CycleDRAMCtrl &ctrl)
            : ResponsePort(std::move(name)), ctrl_(ctrl)
        {}

        bool recvTimingReq(Packet *pkt) override
        {
            return ctrl_.recvTimingReq(pkt);
        }

        void recvRespRetry() override { ctrl_.respQueue_.retry(); }

      private:
        CycleDRAMCtrl &ctrl_;
    };

    bool recvTimingReq(Packet *pkt);

    /** One DRAM clock cycle of controller work. */
    void tick();

    /** Update refresh state; true while a refresh blocks the banks. */
    void serviceRefresh();

    /** Move (at most one) transaction into the command queues. */
    void decomposeTransactions();

    /** Heal command-queue heads invalidated by a refresh. */
    void repairQueueHeads();

    /** Issue at most one DRAM command this cycle. */
    void issueCommand();

    bool isIssuable(const Command &cmd) const;
    void execute(const Command &cmd);

    /** Row that bank will hold after its queued commands execute. */
    std::uint64_t &tailRow(unsigned rank, unsigned bank);

    /** Current tick of cycle @p c. */
    Tick tickOf(Cycle c) const { return anchor_ + c * cfg_.timing.tCK; }

    void scheduleTickIfNeeded();
    bool hasWork() const;

    /** Fast-forward refresh bookkeeping over an idle gap. */
    void catchUpIdleCycles(Cycle now);

    void burstCompleted(CycleTransaction *trans, Tick data_done_tick);

    /**
     * Record an implied DRAM command into the logger (if attached) and
     * through the plugin chain (see DRAMCtrl::logCmd).
     */
    void
    logCmd(Tick tick, DRAMCmd cmd, unsigned rank, unsigned bank,
           std::uint64_t row = 0)
    {
        if (cmdLogger_)
            cmdLogger_->record(tick, cmd, rank, bank, row);
        if (!plugins_.empty())
            plugins_.onCommand({tick, cmd, rank, bank, row});
    }

    DRAMCtrlConfig cfg_;
    AddrRange range_;
    AddrDecoder decoder_;
    CycleTiming ct_;

    MemoryPort port_;
    RespPacketQueue respQueue_;

    std::vector<CycleTransaction *> transQueue_;
    std::size_t transQueueLimit_;
    CommandQueue cmdQueue_;
    std::vector<std::uint64_t> tailRows_;

    std::vector<CycleBankState> banks_;
    std::vector<CycleRankState> rankState_;

    /**
     * Bank-group lanes, armed only for grouped organisations (see
     * DRAMCtrl's identically-named state): same-group column (tCCD_L)
     * and activate (tRRD_L) constraints, (rank * groups + group)
     * indexed, plus the channel-wide short column spacing (tCCD_S).
     */
    bool hasBankGroups_ = false;
    std::vector<Cycle> grpNextCol_;
    std::vector<Cycle> grpNextAct_;
    Cycle nextColAnyBank_ = 0;

    /** Flat bank-group index of bank @p b in rank @p r. */
    unsigned
    grpIdx(unsigned r, unsigned b) const
    {
        return r * cfg_.org.bankGroupsPerRank + cfg_.org.bankGroup(b);
    }

    Cycle cycle_ = 0;
    Tick anchor_ = 0;
    std::uint64_t cyclesTicked_ = 0;

    /** Data bus reservation, in cycles. */
    Cycle busBusyUntil_ = 0;
    bool lastDataWasRead_ = true;
    /** Earliest cycle a read command may issue (tWTR). */
    Cycle readAllowedAt_ = 0;

    Cycle refreshCountdown_;
    bool refreshPending_ = false;
    /** Earliest cycle a refresh may issue (tRP after any precharge). */
    Cycle refNotBefore_ = 0;

    unsigned nextBankRR_ = 0;
    bool retryReq_ = false;
    bool ticking_ = false;
    Cycle idleSinceCycle_ = 0;

    Tick windowStart_ = 0;

    EventFunctionWrapper tickEvent_;

    CmdLogger *cmdLogger_ = nullptr;

    /** Ordered plugin chain built from cfg_.plugins (may be empty). */
    plugin::PluginChain plugins_;
    plugin::PracPlugin *pracPlugin_ = nullptr;
    bool testSkipPrac_ = false;

    std::unique_ptr<CtrlStats> stats_;
};

} // namespace cyclesim
} // namespace dramctrl

#endif // DRAMCTRL_CYCLESIM_CYCLE_CTRL_H
