#include "cyclesim/bank_state.hh"

#include <algorithm>

namespace dramctrl {
namespace cyclesim {

namespace {

Cycle
toCycles(Tick ticks, Tick tck)
{
    return divCeil<Tick>(ticks, tck);
}

} // namespace

CycleTiming::CycleTiming(const DRAMTiming &t)
    : tRCD(toCycles(t.tRCD, t.tCK)), tCL(toCycles(t.tCL, t.tCK)),
      tRP(toCycles(t.tRP, t.tCK)), tRAS(toCycles(t.tRAS, t.tCK)),
      tRC(tRAS + tRP), tWR(toCycles(t.tWR, t.tCK)),
      tWTR(toCycles(t.tWTR, t.tCK)), tRTW(toCycles(t.tRTW, t.tCK)),
      tRRD(toCycles(t.tRRD, t.tCK)), tXAW(toCycles(t.tXAW, t.tCK)),
      tREFI(toCycles(t.tREFI, t.tCK)), tRFC(toCycles(t.tRFC, t.tCK)),
      burstCycles(toCycles(t.tBURST, t.tCK)),
      tCCD_L(toCycles(t.tCCDLong(), t.tCK)),
      tCCD_S(toCycles(t.tCCDShort(), t.tCK)),
      tRRD_L(toCycles(t.tRRDLong(), t.tCK)),
      tRFCsb(t.tRFCsb ? toCycles(t.tRFCsb, t.tCK) : 0),
      activationLimit(t.activationLimit)
{
}

void
CycleBankState::activate(Cycle c, std::uint64_t row,
                         const CycleTiming &t)
{
    openRow = row;
    nextRead = std::max(nextRead, c + t.tRCD);
    nextWrite = std::max(nextWrite, c + t.tRCD);
    nextPrecharge = std::max(nextPrecharge, c + t.tRAS);
    nextActivate = std::max(nextActivate, c + t.tRC);
}

void
CycleBankState::precharge(Cycle c, const CycleTiming &t)
{
    openRow = kNoRow;
    nextActivate = std::max(nextActivate, c + t.tRP);
}

bool
CycleRankState::canActivate(Cycle c, const CycleTiming &t) const
{
    if (c < nextActAnyBank)
        return false;
    if (t.activationLimit == 0 || actWindow.size() < t.activationLimit)
        return true;
    return c >= actWindow.front() + t.tXAW;
}

void
CycleRankState::recordActivate(Cycle c, const CycleTiming &t)
{
    nextActAnyBank = std::max(nextActAnyBank, c + t.tRRD);
    if (t.activationLimit > 0) {
        // Owners usually pre-size the ring; standalone state sizes it
        // on first use.
        if (actWindow.capacity() < t.activationLimit)
            actWindow.init(t.activationLimit);
        actWindow.push_back_overwrite(c);
    }
}

} // namespace cyclesim
} // namespace dramctrl
