#include "cyclesim/command_queue.hh"

#include "sim/logging.hh"

namespace dramctrl {
namespace cyclesim {

CommandQueue::CommandQueue(unsigned ranks, unsigned banks,
                           unsigned depth)
    : ranks_(ranks), banks_(banks), depth_(depth),
      queues_(static_cast<std::size_t>(ranks) * banks)
{
    if (depth_ == 0)
        fatal("command queue depth must be non-zero");
    // One spare slot for the head-repair push_front (see class docs).
    for (auto &q : queues_)
        q.init(depth_ + 1);
}

bool
CommandQueue::hasSpace(unsigned rank, unsigned bank,
                       unsigned count) const
{
    return at(rank, bank).size() + count <= depth_;
}

void
CommandQueue::push(const Command &cmd)
{
    auto &q = at(cmd.rank, cmd.bank);
    DC_ASSERT(q.size() < depth_, "command queue overflow");
    q.push_back(cmd);
}

RingBuffer<Command> &
CommandQueue::at(unsigned rank, unsigned bank)
{
    return queues_.at(static_cast<std::size_t>(rank) * banks_ + bank);
}

const RingBuffer<Command> &
CommandQueue::at(unsigned rank, unsigned bank) const
{
    return queues_.at(static_cast<std::size_t>(rank) * banks_ + bank);
}

bool
CommandQueue::empty() const
{
    for (const auto &q : queues_) {
        if (!q.empty())
            return false;
    }
    return true;
}

std::size_t
CommandQueue::totalSize() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

} // namespace cyclesim
} // namespace dramctrl
