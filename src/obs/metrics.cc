#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "stats/histogram.hh"
#include "stats/stats.hh"
#include "stats/tick_histogram.hh"

namespace dramctrl {
namespace obs {

Counter &
MetricsRegistry::counter(const std::string &path,
                         const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (gauges_.count(path))
        fatal("metric '%s' already registered as a gauge", path.c_str());
    auto it = counters_.find(path);
    if (it == counters_.end()) {
        it = counters_.emplace(path, std::make_unique<Counter>()).first;
        if (!help.empty())
            help_[path] = help;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &path, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (counters_.count(path))
        fatal("metric '%s' already registered as a counter",
              path.c_str());
    auto it = gauges_.find(path);
    if (it == gauges_.end()) {
        it = gauges_.emplace(path, std::make_unique<Gauge>()).first;
        if (!help.empty())
            help_[path] = help;
    }
    return *it->second;
}

void
MetricsRegistry::attachStats(const stats::Group *root,
                             const std::string &prefix)
{
    DC_ASSERT(root != nullptr, "attaching a null stats tree");
    std::lock_guard<std::mutex> lock(mutex_);
    trees_.push_back({root, prefix});
}

void
MetricsRegistry::detachStats(const stats::Group *root)
{
    std::lock_guard<std::mutex> lock(mutex_);
    trees_.erase(std::remove_if(trees_.begin(), trees_.end(),
                                [root](const AttachedTree &t) {
                                    return t.root == root;
                                }),
                 trees_.end());
}

const stats::Stat *
MetricsRegistry::resolveStat(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const AttachedTree &tree : trees_) {
        if (tree.prefix.empty()) {
            if (const stats::Stat *s = tree.root->resolve(path))
                return s;
        } else if (path.size() > tree.prefix.size() + 1 &&
                   path.compare(0, tree.prefix.size(), tree.prefix) ==
                       0 &&
                   path[tree.prefix.size()] == '.') {
            if (const stats::Stat *s = tree.root->resolve(
                    path.substr(tree.prefix.size() + 1)))
                return s;
        }
    }
    return nullptr;
}

namespace {

void
flattenStat(std::vector<MetricSample> &out, const std::string &path,
            const stats::Stat *stat)
{
    if (auto *h = dynamic_cast<const stats::Histogram *>(stat)) {
        out.push_back({path + ".count", stat->desc(),
                       static_cast<double>(h->count()), true});
        out.push_back({path + ".mean", stat->desc(), h->mean(), false});
        out.push_back({path + ".p50", stat->desc(), h->percentile(50),
                       false});
        out.push_back({path + ".p95", stat->desc(), h->percentile(95),
                       false});
        out.push_back({path + ".p99", stat->desc(), h->percentile(99),
                       false});
        return;
    }
    if (auto *th = dynamic_cast<const stats::TickHistogram *>(stat)) {
        out.push_back({path + ".count", stat->desc(),
                       static_cast<double>(th->count()), true});
        out.push_back({path + ".mean", stat->desc(), th->mean(), false});
        out.push_back({path + ".p50", stat->desc(), th->percentile(50),
                       false});
        out.push_back({path + ".p95", stat->desc(), th->percentile(95),
                       false});
        out.push_back({path + ".p99", stat->desc(), th->percentile(99),
                       false});
        return;
    }
    if (auto *v = dynamic_cast<const stats::Vector *>(stat)) {
        for (std::size_t i = 0; i < v->size(); ++i)
            out.push_back({path + "." + std::to_string(i),
                           stat->desc(), (*v)[i], false});
        return;
    }
    bool counter = dynamic_cast<const stats::Scalar *>(stat) != nullptr;
    out.push_back({path, stat->desc(), stat->sampleValue(), counter});
}

void
flattenGroup(std::vector<MetricSample> &out, const std::string &prefix,
             const stats::Group *group)
{
    for (const stats::Stat *stat : group->statList()) {
        flattenStat(out,
                    prefix.empty() ? stat->name()
                                   : prefix + "." + stat->name(),
                    stat);
    }
    for (const stats::Group *child : group->children()) {
        flattenGroup(out,
                     prefix.empty() ? child->name()
                                    : prefix + "." + child->name(),
                     child);
    }
}

std::string
promName(const std::string &path)
{
    std::string name = "dramctrl_";
    for (char c : path) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        name += ok ? c : '_';
    }
    return name;
}

void
writeValue(std::ostream &os, double v)
{
    if (std::isnan(v)) {
        os << "NaN";
    } else if (std::isinf(v)) {
        os << (v > 0 ? "+Inf" : "-Inf");
    } else if (v == static_cast<double>(static_cast<long long>(v)) &&
               std::abs(v) < 1e15) {
        os << static_cast<long long>(v);
    } else {
        auto old = os.precision(15);
        os << v;
        os.precision(old);
    }
}

} // namespace

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSample> out;
    for (const auto &kv : counters_) {
        auto help = help_.find(kv.first);
        out.push_back({kv.first,
                       help != help_.end() ? help->second : "",
                       static_cast<double>(kv.second->value()), true});
    }
    for (const auto &kv : gauges_) {
        auto help = help_.find(kv.first);
        out.push_back({kv.first,
                       help != help_.end() ? help->second : "",
                       kv.second->value(), false});
    }
    for (const AttachedTree &tree : trees_)
        flattenGroup(out, tree.prefix, tree.root);
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.path < b.path;
              });
    return out;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::vector<MetricSample> samples = snapshot();
    os << "{";
    bool first = true;
    for (const MetricSample &s : samples) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
        writeJsonEscaped(os, s.path);
        os << ": ";
        if (std::isnan(s.value) || std::isinf(s.value))
            os << "null";
        else
            writeValue(os, s.value);
    }
    os << "\n}\n";
}

void
MetricsRegistry::writeProm(std::ostream &os) const
{
    std::vector<MetricSample> samples = snapshot();
    for (const MetricSample &s : samples) {
        std::string name = promName(s.path);
        if (s.isCounter)
            name += "_total";
        if (!s.help.empty()) {
            // HELP text: escape backslash and newline per the format.
            os << "# HELP " << name << " ";
            for (char c : s.help) {
                if (c == '\\')
                    os << "\\\\";
                else if (c == '\n')
                    os << "\\n";
                else
                    os << c;
            }
            os << "\n";
        }
        os << "# TYPE " << name
           << (s.isCounter ? " counter\n" : " gauge\n");
        os << name << " ";
        writeValue(os, s.value);
        os << "\n";
    }
}

} // namespace obs
} // namespace dramctrl
