#include "obs/event_profiler.hh"

#include <algorithm>
#include <cstdio>

namespace dramctrl {
namespace obs {

void
EventProfiler::record(const Event &ev, double host_seconds)
{
    Entry &e = byName_[ev.name()];
    ++e.count;
    e.hostSeconds += host_seconds;
    ++totalEvents_;
    totalHostSeconds_ += host_seconds;
}

std::map<std::string, EventProfiler::Entry>
EventProfiler::byType() const
{
    std::map<std::string, Entry> types;
    for (const auto &kv : byName_) {
        std::size_t dot = kv.first.rfind('.');
        std::string type = dot == std::string::npos
                               ? kv.first
                               : kv.first.substr(dot + 1);
        Entry &e = types[type];
        e.count += kv.second.count;
        e.hostSeconds += kv.second.hostSeconds;
    }
    return types;
}

void
EventProfiler::report(std::ostream &os) const
{
    std::map<std::string, Entry> types = byType();
    std::vector<std::pair<std::string, Entry>> rows(types.begin(),
                                                    types.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.hostSeconds > b.second.hostSeconds;
              });

    os << "Event profile:\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-28s %12s %12s %10s\n",
                  "event type", "count", "host (ms)", "ns/event");
    os << buf;
    for (const auto &row : rows) {
        const Entry &e = row.second;
        double nsPer = e.count > 0 ? e.hostSeconds * 1e9 / e.count : 0;
        std::snprintf(buf, sizeof(buf), "  %-28s %12llu %12.3f %10.1f\n",
                      row.first.c_str(),
                      static_cast<unsigned long long>(e.count),
                      e.hostSeconds * 1e3, nsPer);
        os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  events executed: %llu in %.3f ms host time "
                  "(%.0f events/sec)\n",
                  static_cast<unsigned long long>(totalEvents_),
                  totalHostSeconds_ * 1e3, eventsPerSecond());
    os << buf;
}

void
EventProfiler::reset()
{
    byName_.clear();
    totalEvents_ = 0;
    totalHostSeconds_ = 0;
}

} // namespace obs
} // namespace dramctrl
