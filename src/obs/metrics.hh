/**
 * @file
 * Hierarchical metrics registry.
 *
 * A MetricsRegistry is the introspection façade over everything the
 * simulator can report mid-run: free-standing counters and gauges that
 * tools register under dotted paths ("batch.jobs_completed"), plus any
 * number of attached stats::Group trees, which are flattened into the
 * same dotted namespace at snapshot time ("ctrl0.lat.queueing.p99").
 * Snapshots can be rendered as JSON or as Prometheus text exposition,
 * which is what the live endpoint (see metrics_server.hh) serves.
 *
 * Counters and gauges are atomics, so worker threads (BatchRunner
 * jobs, the fuzzer) may bump them without holding any lock; the
 * registration maps themselves are mutex-guarded. Attached stats trees
 * are NOT thread-safe — they are read at snapshot time, so snapshots
 * must be taken from the thread that owns the tree (the simulation
 * thread), which then hands the rendered text to the server.
 */

#ifndef DRAMCTRL_OBS_METRICS_H
#define DRAMCTRL_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace dramctrl {

namespace stats {
class Group;
class Stat;
} // namespace stats

namespace obs {

/** Monotonically increasing integer metric. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Instantaneous floating-point metric. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** One flattened time-point value in a snapshot. */
struct MetricSample
{
    std::string path; ///< dotted path, e.g. "ctrl0.lat.queueing.p99"
    std::string help; ///< one-line description (may be empty)
    double value = 0;
    bool isCounter = false;
};

class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * The counter/gauge registered under @p path, created on first
     * use. Repeated calls with the same path return the same object;
     * registering a path as both a counter and a gauge is fatal().
     * The returned reference stays valid for the registry's lifetime.
     */
    Counter &counter(const std::string &path,
                     const std::string &help = "");
    Gauge &gauge(const std::string &path, const std::string &help = "");

    /**
     * Attach a statistics tree. Every stat below @p root appears in
     * snapshots under @p prefix plus its dotted group path (the root
     * group's own name is omitted, matching stats::Group::resolve()).
     * @p root must outlive the registry or be detached first.
     */
    void attachStats(const stats::Group *root,
                     const std::string &prefix = "");
    void detachStats(const stats::Group *root);

    /**
     * Locate a statistic by dotted path across all attached trees
     * (prefixes considered). @return nullptr when absent.
     */
    const stats::Stat *resolveStat(const std::string &path) const;

    /**
     * Flatten everything into one sample vector: registered counters
     * and gauges, then attached stats trees (scalars by value,
     * vectors as path.N, histograms as path.count/mean/p50/p95/p99).
     * Ordering is deterministic: registration order is irrelevant,
     * samples are sorted by path.
     */
    std::vector<MetricSample> snapshot() const;

    /** Render a snapshot as one JSON object keyed by dotted path. */
    void writeJson(std::ostream &os) const;

    /**
     * Render a snapshot in Prometheus text exposition format. Paths
     * are sanitised ([^a-zA-Z0-9_] becomes '_') and prefixed with
     * "dramctrl_"; counters get a "_total" suffix per convention.
     */
    void writeProm(std::ostream &os) const;

  private:
    struct AttachedTree
    {
        const stats::Group *root;
        std::string prefix;
    };

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::string> help_;
    std::vector<AttachedTree> trees_;
};

} // namespace obs
} // namespace dramctrl

#endif // DRAMCTRL_OBS_METRICS_H
