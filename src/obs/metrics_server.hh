/**
 * @file
 * Live introspection endpoint.
 *
 * A MetricsServer listens on a Unix-domain or loopback-TCP socket and
 * serves the most recently published metrics snapshot — Prometheus
 * text by default, JSON when the request asks for /json. It never
 * touches simulator state itself: the simulation thread periodically
 * renders the MetricsRegistry (see MetricsPublisher below) and hands
 * the finished text to the server, so a slow or hostile client can
 * never stall or race the simulation.
 *
 * The listen spec selects the transport: anything containing '/' is a
 * Unix socket path; otherwise it is a TCP port (optionally
 * "host:port") bound on the loopback interface. Port 0 binds an
 * ephemeral port, readable back through port().
 *
 * Both `curl` and `nc` work as clients: requests that look like HTTP
 * get minimal HTTP/1.0 response framing, a bare connection (netcat
 * with no input) is served the raw Prometheus body after a short
 * grace period.
 */

#ifndef DRAMCTRL_OBS_METRICS_SERVER_H
#define DRAMCTRL_OBS_METRICS_SERVER_H

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "sim/sim_object.hh"

namespace dramctrl {
namespace obs {

class MetricsRegistry;

class MetricsServer
{
  public:
    /** @param spec listen spec; see file comment. */
    explicit MetricsServer(std::string spec);
    ~MetricsServer();

    MetricsServer(const MetricsServer &) = delete;
    MetricsServer &operator=(const MetricsServer &) = delete;

    /** Bind, listen and start the accept thread; fatal() on error. */
    void start();

    /** Stop the accept thread and close the socket. Idempotent. */
    void stop();

    bool running() const { return running_; }

    /** Human-readable endpoint, e.g. "unix:/tmp/m.sock". */
    const std::string &endpoint() const { return endpoint_; }

    /** Actual TCP port bound (0 for Unix sockets). */
    int port() const { return port_; }

    /** Swap in a freshly rendered snapshot (any thread). */
    void publish(std::string prom, std::string json);

  private:
    void acceptLoop();
    void serveClient(int fd);

    std::string spec_;
    bool isUnix_ = false;
    std::string sockPath_;
    int port_ = 0;
    std::string endpoint_;

    int listenFd_ = -1;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    bool running_ = false;

    std::mutex snapMutex_;
    std::string prom_;
    std::string json_;
};

/**
 * Periodic bridge from a simulation to a MetricsServer: a repeating
 * event that refreshes the built-in liveness gauges (current tick,
 * event-queue depth), runs an optional caller hook for tool-specific
 * gauges (per-channel queue occupancy, generator progress), renders
 * the registry and publishes the result.
 */
class MetricsPublisher : public SimObject
{
  public:
    /**
     * @param extra optional hook run before each publication, on the
     *              simulation thread, to refresh caller-owned gauges.
     */
    MetricsPublisher(Simulator &sim, std::string name,
                     MetricsRegistry &registry, MetricsServer &server,
                     Tick interval,
                     std::function<void(MetricsRegistry &)> extra = {});
    ~MetricsPublisher() override;

    void startup() override;

    /** Refresh gauges and publish a snapshot immediately. */
    void publishNow();

    void serialize(ckpt::CkptOut &out) const override;
    void unserialize(ckpt::CkptIn &in) override;

  private:
    void sampleAndReschedule();

    MetricsRegistry &registry_;
    MetricsServer &server_;
    Tick interval_;
    std::function<void(MetricsRegistry &)> extra_;
    EventFunctionWrapper sampleEvent_;
};

} // namespace obs
} // namespace dramctrl

#endif // DRAMCTRL_OBS_METRICS_SERVER_H
