#include "obs/trace.hh"

#include <cstdarg>
#include <vector>

#include "sim/logging.hh"

namespace dramctrl {
namespace obs {

namespace detail {
thread_local ChannelMask traceMask = 0;
} // namespace detail

namespace {

std::vector<TraceSink *> &
sinks()
{
    static thread_local std::vector<TraceSink *> s;
    return s;
}

const char *const kChannelNames[] = {
    "DRAMCtrl", "CycleCtrl", "XBar",  "Port",    "PacketQueue",
    "EventQ",   "Refresh",   "Power", "Sampler",
};

static_assert(sizeof(kChannelNames) / sizeof(kChannelNames[0]) ==
                  static_cast<unsigned>(TraceChannel::NumChannels),
              "channel name table out of sync");

/** Append "tick: " or "-: " (no active simulator) to @p out. */
void
appendTickStamp(std::string &out, Tick tick)
{
    if (tick == kMaxTick)
        out += "-: ";
    else
        out += std::to_string(tick) + ": ";
}

} // namespace

const char *
toString(TraceChannel ch)
{
    auto idx = static_cast<unsigned>(ch);
    if (idx >= static_cast<unsigned>(TraceChannel::NumChannels))
        return "invalid";
    return kChannelNames[idx];
}

bool
channelFromString(const std::string &name, TraceChannel &out)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(TraceChannel::NumChannels); ++i) {
        if (name == kChannelNames[i]) {
            out = static_cast<TraceChannel>(i);
            return true;
        }
    }
    return false;
}

void
enableChannel(TraceChannel ch)
{
    detail::traceMask |= maskOf(ch);
}

void
disableChannel(TraceChannel ch)
{
    detail::traceMask &= ~maskOf(ch);
}

void
setChannelMask(ChannelMask mask)
{
    detail::traceMask = mask;
}

ChannelMask
channelMask()
{
    return detail::traceMask;
}

bool
enableChannelsByName(const std::string &csv)
{
    if (csv == "all") {
        detail::traceMask |= allChannels();
        return true;
    }
    ChannelMask add = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string name = csv.substr(pos, comma - pos);
        if (!name.empty()) {
            TraceChannel ch;
            if (!channelFromString(name, ch))
                return false;
            add |= maskOf(ch);
        }
        pos = comma + 1;
    }
    detail::traceMask |= add;
    return true;
}

void
TextSink::write(Tick tick, TraceChannel ch, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 32);
    appendTickStamp(line, tick);
    line += toString(ch);
    line += ": ";
    line += msg;
    line += '\n';
    os_ << line;
}

void
TextSink::flush()
{
    os_.flush();
}

FileTextSink::FileTextSink(const std::string &path)
    : TextSink(file_), file_(path)
{
}

void
JsonlSink::write(Tick tick, TraceChannel ch, const std::string &msg)
{
    os_ << "{\"tick\": ";
    if (tick == kMaxTick)
        os_ << "null";
    else
        os_ << tick;
    os_ << ", \"channel\": \"" << toString(ch) << "\", \"msg\": \"";
    for (char c : msg) {
        switch (c) {
          case '"': os_ << "\\\""; break;
          case '\\': os_ << "\\\\"; break;
          case '\n': os_ << "\\n"; break;
          case '\t': os_ << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
    os_ << "\"}\n";
}

void
JsonlSink::flush()
{
    os_.flush();
}

FileJsonlSink::FileJsonlSink(const std::string &path)
    : JsonlSink(file_), file_(path)
{
}

void
addSink(TraceSink *sink)
{
    sinks().push_back(sink);
}

void
removeSink(TraceSink *sink)
{
    auto &s = sinks();
    for (auto it = s.begin(); it != s.end(); ++it) {
        if (*it == sink) {
            s.erase(it);
            return;
        }
    }
}

void
clearSinks()
{
    sinks().clear();
}

std::size_t
numSinks()
{
    return sinks().size();
}

void
emit(TraceChannel ch, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);

    Tick tick = kMaxTick;
    activeSimTick(tick);

    if (sinks().empty()) {
        // Fallback so an enabled channel is never silently mute.
        std::string line;
        appendTickStamp(line, tick);
        std::fprintf(stderr, "%s%s: %s\n", line.c_str(), toString(ch),
                     msg.c_str());
        return;
    }
    for (TraceSink *sink : sinks())
        sink->write(tick, ch, msg);
}

} // namespace obs
} // namespace dramctrl
