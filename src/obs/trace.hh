/**
 * @file
 * Trace points: cheap, per-component, runtime-toggleable debug
 * channels, the counterpart of gem5's DPRINTF infrastructure the
 * paper's model relies on for debugging.
 *
 * A trace point is written as
 *
 *     TRACE(DRAMCtrl, "servicing burst rank %u bank %u", r, b);
 *
 * and compiles to a single load-and-branch on a global flag word when
 * the channel is disabled — cheap enough to leave in the hottest
 * paths of both controller models. Enabled channels format the
 * message and hand it, tick-stamped, to every registered sink.
 *
 * Sinks are pluggable: tick-stamped text (stderr or file) and JSONL
 * ship here; tests inject their own to assert routing.
 */

#ifndef DRAMCTRL_OBS_TRACE_H
#define DRAMCTRL_OBS_TRACE_H

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "sim/types.hh"

namespace dramctrl {
namespace obs {

/**
 * One channel per instrumented component class. Channels are bits in
 * a flag word, so "is this channel on" is one AND.
 */
enum class TraceChannel : unsigned {
    DRAMCtrl,    ///< event-based controller decisions
    CycleCtrl,   ///< cycle-based comparator decisions
    XBar,        ///< crossbar routing and layer back pressure
    Port,        ///< port-level refused sends and retries
    PacketQueue, ///< response-queue delivery and stalls
    EventQ,      ///< every serviced kernel event (very verbose)
    Refresh,     ///< refresh scheduling in either model
    Power,       ///< power-down / self-refresh episodes
    Sampler,     ///< periodic stats sampler activity
    NumChannels,
};

/** Printable name of @p ch. */
const char *toString(TraceChannel ch);

/** Parse a single channel name; false if unknown. */
bool channelFromString(const std::string &name, TraceChannel &out);

using ChannelMask = std::uint64_t;

constexpr ChannelMask
maskOf(TraceChannel ch)
{
    return ChannelMask(1) << static_cast<unsigned>(ch);
}

/** Mask with every channel enabled. */
constexpr ChannelMask
allChannels()
{
    return (ChannelMask(1)
            << static_cast<unsigned>(TraceChannel::NumChannels)) -
           1;
}

namespace detail {
/**
 * The flag word the TRACE macro tests. Thread-local, like the sink
 * registry: each thread of the batch engine owns an independent trace
 * configuration, so a worker capturing a failure trace (or the main
 * thread shrinking one) never interleaves with — or races against —
 * simulations running on other threads. Worker threads start with
 * every channel off.
 */
extern thread_local ChannelMask traceMask;
} // namespace detail

/** True when @p ch is enabled (the TRACE macro's guard). */
inline bool
traceEnabled(TraceChannel ch)
{
    return (detail::traceMask & maskOf(ch)) != 0;
}

void enableChannel(TraceChannel ch);
void disableChannel(TraceChannel ch);
void setChannelMask(ChannelMask mask);
ChannelMask channelMask();

/**
 * Enable channels from a comma-separated list of names ("all" enables
 * everything). @return false (leaving the mask untouched) if any name
 * is unknown.
 */
bool enableChannelsByName(const std::string &csv);

/** Receives every message emitted on an enabled channel. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * @param tick simulated time of the message, or kMaxTick when no
     *             simulator is active (e.g. construction-time traces)
     */
    virtual void write(Tick tick, TraceChannel ch,
                       const std::string &msg) = 0;

    virtual void flush() {}
};

/** Tick-stamped "tick: channel: message" lines on a std::ostream. */
class TextSink : public TraceSink
{
  public:
    explicit TextSink(std::ostream &os) : os_(os) {}

    void write(Tick tick, TraceChannel ch,
               const std::string &msg) override;
    void flush() override;

  private:
    std::ostream &os_;
};

/** TextSink that owns the file it writes to. */
class FileTextSink : public TextSink
{
  public:
    explicit FileTextSink(const std::string &path);

    bool ok() const { return file_.is_open(); }

  private:
    std::ofstream file_;
};

/** One JSON object per line: {"tick":..,"channel":"..","msg":".."}. */
class JsonlSink : public TraceSink
{
  public:
    explicit JsonlSink(std::ostream &os) : os_(os) {}

    void write(Tick tick, TraceChannel ch,
               const std::string &msg) override;
    void flush() override;

  private:
    std::ostream &os_;
};

/** JsonlSink that owns the file it writes to. */
class FileJsonlSink : public JsonlSink
{
  public:
    explicit FileJsonlSink(const std::string &path);

    bool ok() const { return file_.is_open(); }

  private:
    std::ofstream file_;
};

/**
 * Register @p sink (not owned) to receive enabled-channel messages.
 * With no sink registered, messages fall back to stderr so enabling a
 * channel always produces output. The registry is per thread (see
 * detail::traceMask): a sink only sees messages emitted by the thread
 * that registered it.
 */
void addSink(TraceSink *sink);
void removeSink(TraceSink *sink);
void clearSinks();
std::size_t numSinks();

/**
 * Format and dispatch one message. Called by the TRACE macro after
 * the enabled check; models do not call this directly.
 */
void emit(TraceChannel ch, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace obs
} // namespace dramctrl

/**
 * The trace point. The first argument is a bare TraceChannel
 * enumerator (TRACE(DRAMCtrl, ...)); the rest is a printf format.
 * Compiles to one branch when the channel is off.
 */
#define TRACE(channel, ...)                                               \
    do {                                                                  \
        if (::dramctrl::obs::traceEnabled(                                \
                ::dramctrl::obs::TraceChannel::channel))                  \
            ::dramctrl::obs::emit(                                        \
                ::dramctrl::obs::TraceChannel::channel, __VA_ARGS__);     \
    } while (0)

#endif // DRAMCTRL_OBS_TRACE_H
