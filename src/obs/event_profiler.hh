/**
 * @file
 * Event-queue profiler: counts events executed and host wall-clock
 * time per event type.
 *
 * The paper's speed claim (Section III-D) is really a claim about the
 * event queue — the event-based controller schedules an order of
 * magnitude fewer events than the cycle model ticks. The profiler
 * makes that directly observable: attach one to an EventQueue and
 * every serviced event is counted and timed under its name, so a run
 * reports events executed, events/second, and which event types the
 * host time actually went to.
 *
 * Event names carry the instance ("mem_ctrl0.nextReqEvent"); the
 * report also aggregates by the suffix after the last '.', collapsing
 * per-instance noise into per-type totals.
 */

#ifndef DRAMCTRL_OBS_EVENT_PROFILER_H
#define DRAMCTRL_OBS_EVENT_PROFILER_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/eventq.hh"

namespace dramctrl {
namespace obs {

class EventProfiler : public EventQueueProfiler
{
  public:
    struct Entry
    {
        std::uint64_t count = 0;
        double hostSeconds = 0;
    };

    /** EventQueueProfiler hook, called once per serviced event. */
    void record(const Event &ev, double host_seconds) override;

    const std::map<std::string, Entry> &byName() const
    {
        return byName_;
    }

    std::uint64_t totalEvents() const { return totalEvents_; }
    double totalHostSeconds() const { return totalHostSeconds_; }

    /** Events per host second; 0 before any event was profiled. */
    double eventsPerSecond() const
    {
        return totalHostSeconds_ > 0 ? totalEvents_ / totalHostSeconds_
                                     : 0.0;
    }

    /** Per-type totals: entries aggregated past the instance prefix. */
    std::map<std::string, Entry> byType() const;

    /**
     * Print the profile: per-type counts, total host time, average
     * per-event cost, sorted by time descending, plus the
     * events-executed / events-per-second summary line.
     */
    void report(std::ostream &os) const;

    void reset();

  private:
    std::map<std::string, Entry> byName_;
    std::uint64_t totalEvents_ = 0;
    double totalHostSeconds_ = 0;
};

} // namespace obs
} // namespace dramctrl

#endif // DRAMCTRL_OBS_EVENT_PROFILER_H
