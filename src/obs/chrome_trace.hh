/**
 * @file
 * Chrome trace-event (Perfetto-compatible) exporter.
 *
 * Records packet lifecycle spans (controller accept -> response send,
 * with crossbar and port hops as instants), DRAM command instants
 * reconstructed from a CmdLogger, and queue-depth counter series, and
 * writes them in the Chrome trace-event JSON object format — load the
 * file in chrome://tracing or https://ui.perfetto.dev.
 *
 * Spans use nestable async events ("ph":"b"/"e") keyed by packet id,
 * so overlapping in-flight packets render as parallel slices.
 * Timestamps are microseconds (the format's unit); one tick is one
 * picosecond, so sub-nanosecond precision survives the conversion.
 *
 * Components reach the exporter through the process-global pointer
 * (setChromeTracer/chromeTracer), mirroring how the trace-point flag
 * word works: a disabled exporter costs one null check.
 */

#ifndef DRAMCTRL_OBS_CHROME_TRACE_H
#define DRAMCTRL_OBS_CHROME_TRACE_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "dram/cmd_log.hh"
#include "sim/types.hh"

namespace dramctrl {
namespace obs {

class ChromeTraceWriter
{
  public:
    ChromeTraceWriter() = default;

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /**
     * Cap the number of recorded events; once reached further events
     * are dropped (and counted), bounding memory on long runs. 0
     * means unlimited.
     */
    void setMaxEvents(std::size_t max) { maxEvents_ = max; }
    std::uint64_t droppedEvents() const { return dropped_; }

    /**
     * Open an async span on @p track (one named Perfetto track per
     * component), keyed by @p id. Nested/overlapping spans with
     * distinct ids are fine.
     */
    void beginSpan(const std::string &track, std::uint64_t id,
                   const std::string &name, Tick tick);

    /**
     * Close the span @p id opened on any track. A close without a
     * matching open is ignored (a response passing a component that
     * never opened a span for it).
     */
    void endSpan(std::uint64_t id, Tick tick);

    /** A zero-duration marker on @p track. */
    void instant(const std::string &track, const std::string &name,
                 Tick tick);

    /** One sample of the counter series @p series on track @p track. */
    void counter(const std::string &track, const std::string &series,
                 Tick tick, double value);

    /**
     * Convert a DRAM command log into instant events, one track per
     * rank under @p track_prefix (e.g. "mem_ctrl.rank0"). Records may
     * be out of tick order; they are emitted as-is (the JSON format
     * does not require ordering).
     */
    void importCmdLog(const std::vector<CmdRecord> &log,
                      const std::string &track_prefix);

    /** True while a span with @p id is open. */
    bool spanOpen(std::uint64_t id) const
    {
        return openSpans_.count(id) != 0;
    }

    std::size_t numEvents() const { return events_.size(); }

    /** Serialise everything as one JSON object. */
    void write(std::ostream &os) const;

    /** Convenience: write to @p path. @return false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct TraceEvent
    {
        char ph;          ///< b, e, i, C
        unsigned tid;     ///< track
        Tick ts;
        std::uint64_t id; ///< async span id (b/e only)
        std::string name;
        std::string argKey;   ///< counter series / instant detail key
        double argValue = 0;  ///< counter value
        bool hasArg = false;
    };

    unsigned trackId(const std::string &track);
    bool admit();

    std::vector<TraceEvent> events_;
    /** Track name -> tid, in registration order. */
    std::vector<std::string> trackNames_;
    std::map<std::string, unsigned> trackIds_;
    /** Open async spans: id -> tid the span began on. */
    std::map<std::uint64_t, unsigned> openSpans_;
    std::size_t maxEvents_ = 0;
    std::uint64_t dropped_ = 0;
};

/**
 * Install @p writer (not owned; nullptr detaches) as the calling
 * thread's packet-lifecycle recorder that instrumented components
 * feed. The pointer is thread-local, so batch workers never write
 * into an exporter installed by the main thread.
 */
void setChromeTracer(ChromeTraceWriter *writer);

/** The installed recorder, or nullptr when tracing is off. */
ChromeTraceWriter *chromeTracer();

} // namespace obs
} // namespace dramctrl

#endif // DRAMCTRL_OBS_CHROME_TRACE_H
