/**
 * @file
 * Periodic statistics sampler: a repeating event that snapshots
 * selected stats::Group values every N ticks into a CSV or JSONL time
 * series.
 *
 * The end-of-run stats dump answers "what happened on average"; the
 * sampler answers "when" — bandwidth ramps, queue-depth oscillation
 * under the write-drain watermarks, the page-hit rate collapsing as a
 * working set outgrows the open rows. Rows are stamped with the
 * simulated tick and aligned to multiples of the sampling interval,
 * so series from different runs line up.
 *
 * Samples read each stat's sampleValue() (cumulative counters stay
 * cumulative; formulas evaluate at sample time). A stats reset simply
 * shows up as the counters restarting — the sampler keeps its
 * schedule and its stat bindings across resets.
 */

#ifndef DRAMCTRL_OBS_STATS_SAMPLER_H
#define DRAMCTRL_OBS_STATS_SAMPLER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/sim_object.hh"
#include "stats/stats.hh"

namespace dramctrl {
namespace obs {

class StatsSampler : public SimObject
{
  public:
    enum class Format { Csv, Jsonl };

    /**
     * @param sim owning simulator (also the root of stat paths)
     * @param name instance name
     * @param interval ticks between samples (> 0)
     * @param os where rows go; must outlive the sampler
     * @param format Csv (header + rows) or Jsonl (object per sample)
     */
    StatsSampler(Simulator &sim, std::string name, Tick interval,
                 std::ostream &os, Format format = Format::Csv);

    ~StatsSampler() override;

    /**
     * Bind a statistic by dot-separated path below the simulator's
     * root stats group, e.g. "mem_ctrl.bytesRead". All stats must be
     * added before the first sample (the CSV header is emitted then).
     *
     * @return false when the path does not resolve.
     */
    bool addStat(const std::string &path);

    /** Bind every stat of the group at @p group_path. */
    bool addGroupStats(const std::string &group_path);

    Tick interval() const { return interval_; }
    std::uint64_t samplesTaken() const { return samplesTaken_; }
    std::size_t numStats() const { return stats_.size(); }

    /** Take one sample immediately (also what the event does). */
    void sampleNow();

    void startup() override;

    /**
     * Checkpoint the sampling timeline: the pending sample event, the
     * sample index and whether the header went out. A restored run
     * produces byte-identical rows from the resume point on; the
     * header is not re-emitted when the restored sink continues an
     * existing file.
     */
    void serialize(ckpt::CkptOut &out) const override;
    void unserialize(ckpt::CkptIn &in) override;

  private:
    void processSample();
    void writeHeader();

    /** Next interval multiple strictly after @p now. */
    Tick nextAligned(Tick now) const
    {
        return (now / interval_ + 1) * interval_;
    }

    Tick interval_;
    std::ostream &os_;
    Format format_;
    std::vector<std::string> paths_;
    std::vector<const stats::Stat *> stats_;
    bool headerWritten_ = false;
    std::uint64_t samplesTaken_ = 0;
    EventFunctionWrapper sampleEvent_;
};

} // namespace obs
} // namespace dramctrl

#endif // DRAMCTRL_OBS_STATS_SAMPLER_H
