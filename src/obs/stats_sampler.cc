#include "obs/stats_sampler.hh"

#include <cmath>

#include "ckpt/ckpt.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace dramctrl {
namespace obs {

StatsSampler::StatsSampler(Simulator &sim, std::string name,
                           Tick interval, std::ostream &os,
                           Format format)
    : SimObject(sim, std::move(name)), interval_(interval), os_(os),
      format_(format),
      sampleEvent_([this] { processSample(); },
                   this->name() + ".sampleEvent",
                   Event::kStatsPriority)
{
    if (interval_ == 0)
        fatal("stats sampler '%s' needs a non-zero interval",
              this->name().c_str());
}

StatsSampler::~StatsSampler()
{
    // The sampling event reschedules itself forever; take it off the
    // agenda so the queue never sees a dangling event.
    if (sampleEvent_.scheduled())
        deschedule(sampleEvent_);
}

bool
StatsSampler::addStat(const std::string &path)
{
    // Resolution goes through the metrics registry, which searches
    // every attached tree (the simulator's root is pre-attached), so
    // a sampler can also bind stats a tool attached separately.
    const stats::Stat *stat = simulator().metrics().resolveStat(path);
    if (stat == nullptr)
        return false;
    paths_.push_back(path);
    stats_.push_back(stat);
    return true;
}

bool
StatsSampler::addGroupStats(const std::string &group_path)
{
    const stats::Group *g = &simulator().rootStats();
    std::size_t pos = 0;
    while (pos < group_path.size()) {
        std::size_t dot = group_path.find('.', pos);
        if (dot == std::string::npos)
            dot = group_path.size();
        g = g->findChild(group_path.substr(pos, dot - pos));
        if (g == nullptr)
            return false;
        pos = dot + 1;
    }
    for (const stats::Stat *stat : g->statList()) {
        paths_.push_back(group_path + "." + stat->name());
        stats_.push_back(stat);
    }
    return true;
}

void
StatsSampler::startup()
{
    schedule(sampleEvent_, nextAligned(curTick()));
}

void
StatsSampler::writeHeader()
{
    if (headerWritten_)
        return;
    headerWritten_ = true;
    if (format_ != Format::Csv)
        return;
    os_ << "tick";
    for (const std::string &p : paths_)
        os_ << ',' << p;
    os_ << '\n';
}

void
StatsSampler::sampleNow()
{
    writeHeader();
    ++samplesTaken_;
    TRACE(Sampler, "sample %llu, %zu stats",
          static_cast<unsigned long long>(samplesTaken_),
          stats_.size());

    if (format_ == Format::Csv) {
        os_ << curTick();
        for (const stats::Stat *stat : stats_) {
            double v = stat->sampleValue();
            os_ << ',';
            if (std::isfinite(v))
                os_ << v;
        }
        os_ << '\n';
    } else {
        os_ << "{\"tick\": " << curTick() << ", \"values\": {";
        for (std::size_t i = 0; i < stats_.size(); ++i) {
            if (i > 0)
                os_ << ", ";
            writeJsonEscaped(os_, paths_[i]);
            os_ << ": ";
            double v = stats_[i]->sampleValue();
            if (std::isfinite(v))
                os_ << v;
            else
                os_ << "null";
        }
        os_ << "}}\n";
    }
}

void
StatsSampler::serialize(ckpt::CkptOut &out) const
{
    out.putU64("samplesTaken", samplesTaken_);
    out.putBool("headerWritten", headerWritten_);
    out.putEvent("sampleEvent", eventq(), sampleEvent_);
}

void
StatsSampler::unserialize(ckpt::CkptIn &in)
{
    samplesTaken_ = in.getU64("samplesTaken");
    headerWritten_ = in.getBool("headerWritten");
    in.getEvent("sampleEvent", eventq(), sampleEvent_);
}

void
StatsSampler::processSample()
{
    sampleNow();
    schedule(sampleEvent_, nextAligned(curTick()));
}

} // namespace obs
} // namespace dramctrl
