#include "obs/chrome_trace.hh"

#include <cstdio>
#include <fstream>

#include "sim/logging.hh"

namespace dramctrl {
namespace obs {

namespace {

// Per thread, like the trace-point sinks: a batch worker's packets
// never feed an exporter installed by another thread.
thread_local ChromeTraceWriter *g_chromeTracer = nullptr;

/** Ticks (ps) to trace-format microseconds, exact to 1e-6 us. */
void
writeTs(std::ostream &os, Tick tick)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(tick / 1000000),
                  static_cast<unsigned long long>(tick % 1000000));
    os << buf;
}

// Track and event names are config-derived (preset names, object
// names) and may contain anything; the shared escaper also covers
// control characters, which the old local version did not.
void
writeJsonString(std::ostream &os, const std::string &s)
{
    writeJsonEscaped(os, s);
}

} // namespace

void
setChromeTracer(ChromeTraceWriter *writer)
{
    g_chromeTracer = writer;
}

ChromeTraceWriter *
chromeTracer()
{
    return g_chromeTracer;
}

unsigned
ChromeTraceWriter::trackId(const std::string &track)
{
    auto it = trackIds_.find(track);
    if (it != trackIds_.end())
        return it->second;
    auto tid = static_cast<unsigned>(trackNames_.size());
    trackNames_.push_back(track);
    trackIds_.emplace(track, tid);
    return tid;
}

bool
ChromeTraceWriter::admit()
{
    if (maxEvents_ != 0 && events_.size() >= maxEvents_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
ChromeTraceWriter::beginSpan(const std::string &track, std::uint64_t id,
                             const std::string &name, Tick tick)
{
    if (!admit())
        return;
    unsigned tid = trackId(track);
    // A duplicate begin for a live id would leave an unbalanced pair;
    // keep the first.
    if (!openSpans_.emplace(id, tid).second)
        return;
    events_.push_back(TraceEvent{'b', tid, tick, id, name, "", 0,
                                 false});
}

void
ChromeTraceWriter::endSpan(std::uint64_t id, Tick tick)
{
    auto it = openSpans_.find(id);
    if (it == openSpans_.end())
        return;
    unsigned tid = it->second;
    openSpans_.erase(it);
    // The end must be recorded even at the cap, or the span never
    // closes; ends are not dropped.
    events_.push_back(TraceEvent{'e', tid, tick, id, "", "", 0, false});
}

void
ChromeTraceWriter::instant(const std::string &track,
                           const std::string &name, Tick tick)
{
    if (!admit())
        return;
    events_.push_back(TraceEvent{'i', trackId(track), tick, 0, name,
                                 "", 0, false});
}

void
ChromeTraceWriter::counter(const std::string &track,
                           const std::string &series, Tick tick,
                           double value)
{
    if (!admit())
        return;
    events_.push_back(TraceEvent{'C', trackId(track), tick, 0, track,
                                 series, value, true});
}

void
ChromeTraceWriter::importCmdLog(const std::vector<CmdRecord> &log,
                                const std::string &track_prefix)
{
    for (const CmdRecord &rec : log) {
        if (!admit())
            return;
        std::string track =
            track_prefix + ".rank" + std::to_string(rec.rank);
        std::string name = dramctrl::toString(rec.cmd);
        if (rec.cmd != DRAMCmd::Ref)
            name += " b" + std::to_string(rec.bank);
        if (rec.cmd == DRAMCmd::Act)
            name += " r" + std::to_string(rec.row);
        events_.push_back(TraceEvent{'i', trackId(track), rec.tick, 0,
                                     name, "", 0, false});
    }
}

void
ChromeTraceWriter::write(std::ostream &os) const
{
    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"args\": {\"name\": \"dramctrl\"}}";

    for (std::size_t tid = 0; tid < trackNames_.size(); ++tid) {
        os << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": 1, \"tid\": "
           << tid << ", \"args\": {\"name\": ";
        writeJsonString(os, trackNames_[tid]);
        os << "}}";
    }

    for (const TraceEvent &ev : events_) {
        os << ",\n{\"ph\": \"" << ev.ph << "\", \"pid\": 1, \"tid\": "
           << ev.tid << ", \"ts\": ";
        writeTs(os, ev.ts);
        switch (ev.ph) {
          case 'b':
            os << ", \"cat\": \"pkt\", \"id\": " << ev.id
               << ", \"name\": ";
            writeJsonString(os, ev.name);
            break;
          case 'e':
            os << ", \"cat\": \"pkt\", \"id\": " << ev.id
               << ", \"name\": \"\"";
            break;
          case 'i':
            os << ", \"s\": \"t\", \"name\": ";
            writeJsonString(os, ev.name);
            break;
          case 'C':
            os << ", \"name\": ";
            writeJsonString(os, ev.name);
            os << ", \"args\": {";
            writeJsonString(os, ev.argKey);
            os << ": " << ev.argValue << "}";
            break;
          default:
            break;
        }
        os << "}";
    }
    os << "\n]}\n";
}

bool
ChromeTraceWriter::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os.is_open())
        return false;
    write(os);
    return os.good();
}

} // namespace obs
} // namespace dramctrl
