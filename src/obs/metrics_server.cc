#include "obs/metrics_server.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ckpt/ckpt.hh"
#include "obs/metrics.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace dramctrl {
namespace obs {

MetricsServer::MetricsServer(std::string spec) : spec_(std::move(spec))
{
    if (spec_.empty())
        fatal("empty metrics listen spec");
    if (spec_.find('/') != std::string::npos) {
        isUnix_ = true;
        sockPath_ = spec_;
        endpoint_ = "unix:" + sockPath_;
    } else {
        std::string port_str = spec_;
        auto colon = spec_.rfind(':');
        if (colon != std::string::npos)
            port_str = spec_.substr(colon + 1);
        char *end = nullptr;
        long p = std::strtol(port_str.c_str(), &end, 10);
        if (end == port_str.c_str() || *end != '\0' || p < 0 ||
            p > 65535)
            fatal("bad metrics listen spec '%s': expected a TCP port "
                  "or a Unix socket path",
                  spec_.c_str());
        port_ = static_cast<int>(p);
        endpoint_ = "tcp:127.0.0.1:" + port_str;
    }
}

MetricsServer::~MetricsServer() { stop(); }

void
MetricsServer::start()
{
    DC_ASSERT(!running_, "metrics server started twice");
    if (isUnix_) {
        ::unlink(sockPath_.c_str());
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            fatal("metrics server: socket(): %s", std::strerror(errno));
        sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        if (sockPath_.size() >= sizeof(addr.sun_path))
            fatal("metrics socket path '%s' too long",
                  sockPath_.c_str());
        std::strncpy(addr.sun_path, sockPath_.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0)
            fatal("metrics server: bind(%s): %s", sockPath_.c_str(),
                  std::strerror(errno));
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            fatal("metrics server: socket(): %s", std::strerror(errno));
        int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(port_));
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0)
            fatal("metrics server: bind(port %d): %s", port_,
                  std::strerror(errno));
        socklen_t len = sizeof(addr);
        if (::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&addr),
                          &len) == 0) {
            port_ = ntohs(addr.sin_port);
            endpoint_ = "tcp:127.0.0.1:" + std::to_string(port_);
        }
    }
    if (::listen(listenFd_, 8) < 0)
        fatal("metrics server: listen(%s): %s", endpoint_.c_str(),
              std::strerror(errno));
    stop_ = false;
    thread_ = std::thread([this] { acceptLoop(); });
    running_ = true;
}

void
MetricsServer::stop()
{
    if (!running_)
        return;
    stop_ = true;
    ::shutdown(listenFd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
    if (isUnix_)
        ::unlink(sockPath_.c_str());
    running_ = false;
}

void
MetricsServer::publish(std::string prom, std::string json)
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    prom_ = std::move(prom);
    json_ = std::move(json);
}

void
MetricsServer::acceptLoop()
{
    while (!stop_) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int n = ::poll(&pfd, 1, 100);
        if (stop_)
            break;
        if (n <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        serveClient(fd);
        ::close(fd);
    }
}

namespace {

void
writeAll(int fd, const std::string &s)
{
    std::size_t off = 0;
    while (off < s.size()) {
        ssize_t n = ::write(fd, s.data() + off, s.size() - off);
        if (n <= 0)
            return;
        off += static_cast<std::size_t>(n);
    }
}

} // namespace

void
MetricsServer::serveClient(int fd)
{
    // Give the client a short window to send a request line; a silent
    // client (nc with no input) just gets the Prometheus body raw.
    char buf[1024];
    std::string req;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 200) > 0) {
        ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
        if (n > 0)
            req.assign(buf, static_cast<std::size_t>(n));
    }

    bool want_json = req.find("/json") != std::string::npos;
    bool http = req.compare(0, 4, "GET ") == 0 ||
                req.compare(0, 5, "HEAD ") == 0;

    std::string body;
    {
        std::lock_guard<std::mutex> lock(snapMutex_);
        body = want_json ? json_ : prom_;
    }

    if (http) {
        std::string head =
            "HTTP/1.0 200 OK\r\nContent-Type: ";
        head += want_json ? "application/json"
                          : "text/plain; version=0.0.4";
        head += "\r\nContent-Length: " + std::to_string(body.size()) +
                "\r\nConnection: close\r\n\r\n";
        writeAll(fd, head);
        if (req.compare(0, 5, "HEAD ") == 0)
            return;
    }
    writeAll(fd, body);
}

MetricsPublisher::MetricsPublisher(
    Simulator &sim, std::string name, MetricsRegistry &registry,
    MetricsServer &server, Tick interval,
    std::function<void(MetricsRegistry &)> extra)
    : SimObject(sim, std::move(name)), registry_(registry),
      server_(server), interval_(interval), extra_(std::move(extra)),
      sampleEvent_([this] { sampleAndReschedule(); },
                   this->name() + ".sampleEvent", Event::kStatsPriority)
{
    if (interval_ == 0)
        fatal("metrics publisher '%s': zero interval",
              this->name().c_str());
}

MetricsPublisher::~MetricsPublisher()
{
    // The publish event reschedules itself forever; take it off the
    // agenda so the queue never sees a dangling event.
    if (sampleEvent_.scheduled())
        deschedule(sampleEvent_);
}

void
MetricsPublisher::startup()
{
    publishNow();
    schedule(sampleEvent_, curTick() + interval_);
}

void
MetricsPublisher::publishNow()
{
    registry_.gauge("sim.tick", "current simulated tick")
        .set(static_cast<double>(curTick()));
    registry_
        .gauge("sim.eventq_depth", "events currently scheduled")
        .set(static_cast<double>(eventq().size()));
    if (extra_)
        extra_(registry_);

    std::ostringstream prom;
    registry_.writeProm(prom);
    std::ostringstream json;
    registry_.writeJson(json);
    server_.publish(prom.str(), json.str());
}

void
MetricsPublisher::sampleAndReschedule()
{
    publishNow();
    schedule(sampleEvent_, curTick() + interval_);
}

void
MetricsPublisher::serialize(ckpt::CkptOut &out) const
{
    out.putTick("interval", interval_);
    out.putEvent("sampleEvent", eventq(), sampleEvent_);
}

void
MetricsPublisher::unserialize(ckpt::CkptIn &in)
{
    interval_ = in.getTick("interval");
    in.getEvent("sampleEvent", eventq(), sampleEvent_);
}

} // namespace obs
} // namespace dramctrl
