#include "mem/addr_range.hh"

#include "sim/logging.hh"

namespace dramctrl {

AddrRange::AddrRange(Addr start, std::uint64_t size)
    : start_(start), size_(size)
{
    if (size == 0)
        fatal("address range at %#llx has zero size",
              static_cast<unsigned long long>(start));
}

AddrRange::AddrRange(Addr start, std::uint64_t size,
                     std::uint64_t granularity, unsigned num_channels,
                     unsigned intlv_match)
    : start_(start), size_(size),
      intlvLowBit_(floorLog2(granularity)),
      intlvBits_(floorLog2(num_channels)), intlvMatch_(intlv_match)
{
    if (!isPowerOf2(granularity))
        fatal("interleaving granularity %llu is not a power of two",
              static_cast<unsigned long long>(granularity));
    if (!isPowerOf2(num_channels))
        fatal("channel count %u is not a power of two", num_channels);
    if (intlv_match >= num_channels)
        fatal("interleave match %u out of range for %u channels",
              intlv_match, num_channels);
    if (start % granularity != 0)
        fatal("range start %#llx not aligned to granularity %llu",
              static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(granularity));
    if (size % (granularity * num_channels) != 0)
        fatal("range size %llu not a multiple of granularity x channels",
              static_cast<unsigned long long>(size));
}

bool
AddrRange::contains(Addr addr) const
{
    if (addr < start_ || addr >= end())
        return false;
    if (!interleaved())
        return true;
    Addr sel = ((addr - start_) >> intlvLowBit_) & (numChannels() - 1);
    return sel == intlvMatch_;
}

Addr
AddrRange::removeIntlvBits(Addr addr) const
{
    DC_ASSERT(contains(addr), "addr %#llx not in range %s",
              static_cast<unsigned long long>(addr), toString().c_str());
    Addr off = addr - start_;
    if (!interleaved())
        return off;
    Addr low = off & ((Addr(1) << intlvLowBit_) - 1);
    Addr high = off >> (intlvLowBit_ + intlvBits_);
    return (high << intlvLowBit_) | low;
}

Addr
AddrRange::addIntlvBits(Addr dense) const
{
    if (!interleaved())
        return start_ + dense;
    Addr low = dense & ((Addr(1) << intlvLowBit_) - 1);
    Addr high = dense >> intlvLowBit_;
    Addr off = (high << (intlvLowBit_ + intlvBits_)) |
               (Addr(intlvMatch_) << intlvLowBit_) | low;
    return start_ + off;
}

bool
AddrRange::disjoint(const AddrRange &other) const
{
    if (end() <= other.start() || other.end() <= start())
        return true;
    // Overlapping windows are still disjoint if they interleave the same
    // way but select different channels.
    if (start_ == other.start_ && size_ == other.size_ &&
        intlvLowBit_ == other.intlvLowBit_ &&
        intlvBits_ == other.intlvBits_ &&
        intlvMatch_ != other.intlvMatch_) {
        return true;
    }
    return false;
}

std::string
AddrRange::toString() const
{
    if (!interleaved()) {
        return formatString("[%#llx : %#llx)",
                            static_cast<unsigned long long>(start_),
                            static_cast<unsigned long long>(end()));
    }
    return formatString("[%#llx : %#llx) ch %u/%u @%llu",
                        static_cast<unsigned long long>(start_),
                        static_cast<unsigned long long>(end()),
                        intlvMatch_, numChannels(),
                        static_cast<unsigned long long>(granularity()));
}

} // namespace dramctrl
