/**
 * @file
 * A time-ordered outbound response queue attached to a ResponsePort.
 *
 * Components that know *when* a response should appear at their port
 * (the DRAM controller's early write responses and read completions,
 * cache hit responses, ...) push packets with a delivery tick. The queue
 * sends them in time order and absorbs peer back pressure: if the peer
 * refuses a response the queue simply waits for recvRespRetry() and
 * resumes. This mirrors gem5's queued-port idiom.
 */

#ifndef DRAMCTRL_MEM_PACKET_QUEUE_H
#define DRAMCTRL_MEM_PACKET_QUEUE_H

#include <string>
#include <vector>

#include "ckpt/serializable.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/event.hh"
#include "sim/eventq.hh"

namespace dramctrl {

class RespPacketQueue
{
  public:
    RespPacketQueue(EventQueue &eventq, ResponsePort &port,
                    std::string name);
    ~RespPacketQueue();

    /**
     * Queue @p pkt (which must already be a response) for delivery at
     * tick @p when. Packets may be pushed out of time order; delivery is
     * always in tick order, ties in push order.
     */
    void schedSendResp(Packet *pkt, Tick when);

    /** Hook this up to the owning port's recvRespRetry(). */
    void retry();

    bool empty() const { return head_ == queue_.size(); }
    std::size_t size() const { return queue_.size() - head_; }

    /**
     * Checkpoint hooks, called from the owning controller's section
     * with all keys prefixed "respq." (the queue is a sub-object, not
     * a SimObject with a section of its own).
     */
    void serialize(ckpt::CkptOut &out) const;
    void unserialize(ckpt::CkptIn &in);

  private:
    void trySend();
    void popFront();

    struct Entry
    {
        Tick when;
        Packet *pkt;
    };

    const Entry &front() const { return queue_[head_]; }

    EventQueue &eventq_;
    ResponsePort &port_;
    // Time-ordered pending responses. A flat vector plus a head index
    // (consumed entries are dropped lazily, the storage is reused once
    // the queue drains) keeps the steady state allocation-free, unlike
    // the deque this replaced.
    std::vector<Entry> queue_;
    std::size_t head_ = 0;
    bool waitingForRetry_ = false;
    EventFunctionWrapper sendEvent_;
};

} // namespace dramctrl

#endif // DRAMCTRL_MEM_PACKET_QUEUE_H
