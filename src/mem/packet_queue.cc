#include "mem/packet_queue.hh"

#include <algorithm>

#include "ckpt/ckpt.hh"
#include "obs/chrome_trace.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace dramctrl {

RespPacketQueue::RespPacketQueue(EventQueue &eventq, ResponsePort &port,
                                 std::string name)
    : eventq_(eventq), port_(port),
      sendEvent_([this] { trySend(); }, std::move(name) + ".sendEvent",
                 Event::kResponsePriority)
{
}

RespPacketQueue::~RespPacketQueue()
{
    if (sendEvent_.scheduled())
        eventq_.deschedule(sendEvent_);
    for (std::size_t i = head_; i < queue_.size(); ++i) {
        Entry &e = queue_[i];
        // Undelivered responses may still carry per-hop sender state
        // from the request path; release it before the packet.
        while (e.pkt->senderState() != nullptr)
            delete e.pkt->popSenderState();
        delete e.pkt;
    }
}

void
RespPacketQueue::schedSendResp(Packet *pkt, Tick when)
{
    DC_ASSERT(pkt->isResponse(), "queueing non-response %s",
              pkt->toString().c_str());
    DC_ASSERT(when >= eventq_.curTick(), "response in the past");

    // Insert keeping time order; equal ticks keep push order.
    auto it = std::find_if(queue_.begin() + head_, queue_.end(),
                           [when](const Entry &e) { return e.when > when; });
    queue_.insert(it, Entry{when, pkt});

    if (!waitingForRetry_) {
        Tick front_when = front().when;
        if (!sendEvent_.scheduled())
            eventq_.schedule(sendEvent_, front_when);
        else if (sendEvent_.when() > front_when)
            eventq_.reschedule(sendEvent_, front_when);
    }
}

void
RespPacketQueue::retry()
{
    DC_ASSERT(waitingForRetry_, "unexpected response retry");
    waitingForRetry_ = false;
    trySend();
}

void
RespPacketQueue::trySend()
{
    while (!empty() && front().when <= eventq_.curTick()) {
        Packet *pkt = front().pkt;
        // The receiver may delete the packet as soon as it accepts it;
        // take what the span needs up front.
        std::uint64_t pkt_id = pkt->id();
        if (!port_.sendTimingResp(pkt)) {
            TRACE(PacketQueue, "%s: response held, peer busy",
                  sendEvent_.name().c_str());
            waitingForRetry_ = true;
            return;
        }
        TRACE(PacketQueue, "%s: response delivered",
              sendEvent_.name().c_str());
        if (auto *ct = obs::chromeTracer())
            ct->endSpan(pkt_id, eventq_.curTick());
        popFront();
    }
    if (!empty() && !sendEvent_.scheduled())
        eventq_.schedule(sendEvent_, front().when);
}

void
RespPacketQueue::serialize(ckpt::CkptOut &out) const
{
    out.putU64("respq.count", size());
    std::vector<std::uint64_t> whens;
    whens.reserve(size());
    for (std::size_t i = head_; i < queue_.size(); ++i)
        whens.push_back(queue_[i].when);
    out.putU64Vec("respq.whens", whens);
    for (std::size_t i = head_; i < queue_.size(); ++i)
        out.putPacket("respq.pkt" + std::to_string(i - head_),
                      queue_[i].pkt);
    out.putBool("respq.waitingForRetry", waitingForRetry_);
    out.putEvent("respq.sendEvent", eventq_, sendEvent_);
}

void
RespPacketQueue::unserialize(ckpt::CkptIn &in)
{
    DC_ASSERT(queue_.empty(), "restore into a non-empty packet queue");
    std::size_t count = in.getU64("respq.count");
    const auto &whens = in.getU64Vec("respq.whens");
    if (whens.size() != count)
        fatal("checkpoint response queue promises %zu entries but "
              "lists %zu delivery ticks", count, whens.size());
    for (std::size_t i = 0; i < count; ++i) {
        Packet *pkt =
            in.getPacket("respq.pkt" + std::to_string(i));
        if (pkt == nullptr)
            fatal("checkpoint response queue entry %zu has no packet",
                  i);
        queue_.push_back(Entry{whens[i], pkt});
    }
    head_ = 0;
    waitingForRetry_ = in.getBool("respq.waitingForRetry");
    in.getEvent("respq.sendEvent", eventq_, sendEvent_);
}

void
RespPacketQueue::popFront()
{
    ++head_;
    if (head_ == queue_.size()) {
        // Drained: rewind into the retained storage.
        queue_.clear();
        head_ = 0;
    }
}

} // namespace dramctrl
