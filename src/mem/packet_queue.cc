#include "mem/packet_queue.hh"

#include <algorithm>

#include "obs/chrome_trace.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace dramctrl {

RespPacketQueue::RespPacketQueue(EventQueue &eventq, ResponsePort &port,
                                 std::string name)
    : eventq_(eventq), port_(port),
      sendEvent_([this] { trySend(); }, std::move(name) + ".sendEvent",
                 Event::kResponsePriority)
{
}

RespPacketQueue::~RespPacketQueue()
{
    if (sendEvent_.scheduled())
        eventq_.deschedule(sendEvent_);
    for (std::size_t i = head_; i < queue_.size(); ++i) {
        Entry &e = queue_[i];
        // Undelivered responses may still carry per-hop sender state
        // from the request path; release it before the packet.
        while (e.pkt->senderState() != nullptr)
            delete e.pkt->popSenderState();
        delete e.pkt;
    }
}

void
RespPacketQueue::schedSendResp(Packet *pkt, Tick when)
{
    DC_ASSERT(pkt->isResponse(), "queueing non-response %s",
              pkt->toString().c_str());
    DC_ASSERT(when >= eventq_.curTick(), "response in the past");

    // Insert keeping time order; equal ticks keep push order.
    auto it = std::find_if(queue_.begin() + head_, queue_.end(),
                           [when](const Entry &e) { return e.when > when; });
    queue_.insert(it, Entry{when, pkt});

    if (!waitingForRetry_) {
        Tick front_when = front().when;
        if (!sendEvent_.scheduled())
            eventq_.schedule(sendEvent_, front_when);
        else if (sendEvent_.when() > front_when)
            eventq_.reschedule(sendEvent_, front_when);
    }
}

void
RespPacketQueue::retry()
{
    DC_ASSERT(waitingForRetry_, "unexpected response retry");
    waitingForRetry_ = false;
    trySend();
}

void
RespPacketQueue::trySend()
{
    while (!empty() && front().when <= eventq_.curTick()) {
        Packet *pkt = front().pkt;
        // The receiver may delete the packet as soon as it accepts it;
        // take what the span needs up front.
        std::uint64_t pkt_id = pkt->id();
        if (!port_.sendTimingResp(pkt)) {
            TRACE(PacketQueue, "%s: response held, peer busy",
                  sendEvent_.name().c_str());
            waitingForRetry_ = true;
            return;
        }
        TRACE(PacketQueue, "%s: response delivered",
              sendEvent_.name().c_str());
        if (auto *ct = obs::chromeTracer())
            ct->endSpan(pkt_id, eventq_.curTick());
        popFront();
    }
    if (!empty() && !sendEvent_.scheduled())
        eventq_.schedule(sendEvent_, front().when);
}

void
RespPacketQueue::popFront()
{
    ++head_;
    if (head_ == queue_.size()) {
        // Drained: rewind into the retained storage.
        queue_.clear();
        head_ = 0;
    }
}

} // namespace dramctrl
