/**
 * @file
 * Transaction-level ports with flow control and back pressure.
 *
 * This is the gem5 timing-port protocol the paper's controller plugs
 * into (Section II-F):
 *
 *  - A RequestPort sends requests with sendTimingReq(). The peer may
 *    refuse (returns false); the requestor must then hold the packet and
 *    wait for recvReqRetry() before re-sending. While waiting it must
 *    not send anything else on that port.
 *  - A ResponsePort sends responses with sendTimingResp() under the same
 *    rules, with recvRespRetry() as the retry signal.
 *
 * This models blocking and back pressure end to end: a full controller
 * write queue stalls the crossbar, which stalls the cache, which stalls
 * the core — the feedback loop the paper argues trace-driven memory
 * studies miss.
 */

#ifndef DRAMCTRL_MEM_PORT_H
#define DRAMCTRL_MEM_PORT_H

#include <string>

#include "mem/packet.hh"

namespace dramctrl {

class ResponsePort;

/** The initiating side of a port pair (CPU, generator, cache miss side). */
class RequestPort
{
  public:
    explicit RequestPort(std::string name);
    virtual ~RequestPort() = default;

    RequestPort(const RequestPort &) = delete;
    RequestPort &operator=(const RequestPort &) = delete;

    const std::string &name() const { return name_; }

    /** Connect this port to its peer. Both directions are set up. */
    void bind(ResponsePort &peer);

    bool isBound() const { return peer_ != nullptr; }

    /**
     * Try to send a request to the peer.
     * @return false if the peer cannot accept it now; a recvReqRetry()
     *         will follow once it can.
     */
    bool sendTimingReq(Packet *pkt);

    /** Tell the peer it may retry a previously refused response. */
    void sendRespRetry();

    /** Response delivery from the peer. @return false to refuse. */
    virtual bool recvTimingResp(Packet *pkt) = 0;

    /** The peer can now accept the request it previously refused. */
    virtual void recvReqRetry() = 0;

  private:
    std::string name_;
    ResponsePort *peer_ = nullptr;
};

/** The reacting side of a port pair (memory controller, cache cpu side). */
class ResponsePort
{
  public:
    explicit ResponsePort(std::string name);
    virtual ~ResponsePort() = default;

    ResponsePort(const ResponsePort &) = delete;
    ResponsePort &operator=(const ResponsePort &) = delete;

    const std::string &name() const { return name_; }

    bool isBound() const { return peer_ != nullptr; }

    /**
     * Try to send a response to the peer.
     * @return false if the peer cannot accept it now; a recvRespRetry()
     *         will follow once it can.
     */
    bool sendTimingResp(Packet *pkt);

    /** Tell the peer it may retry a previously refused request. */
    void sendReqRetry();

    /** Request delivery from the peer. @return false to refuse. */
    virtual bool recvTimingReq(Packet *pkt) = 0;

    /** The peer can now accept the response it previously refused. */
    virtual void recvRespRetry() = 0;

  private:
    friend class RequestPort;

    std::string name_;
    RequestPort *peer_ = nullptr;
};

} // namespace dramctrl

#endif // DRAMCTRL_MEM_PORT_H
