/**
 * @file
 * Memory transaction packets.
 *
 * A Packet is one request or response travelling through the memory
 * system at transaction level. Ownership follows the gem5 convention:
 * the requestor allocates the request packet, the responder turns the
 * same object into a response (makeResponse()), and the requestor
 * deletes it when the response arrives. Writes that receive an early
 * response (Section II-A of the paper) are deleted by the controller
 * after the data has nominally been committed.
 */

#ifndef DRAMCTRL_MEM_PACKET_H
#define DRAMCTRL_MEM_PACKET_H

#include <cstdint>
#include <memory>
#include <string>

#include "sim/pool.hh"
#include "sim/types.hh"
#include "stats/latency_span.hh"

namespace dramctrl {

/** Transaction-level command encoding. */
enum class MemCmd : std::uint8_t {
    ReadReq,
    WriteReq,
    ReadResp,
    WriteResp,
};

/** @return printable name of @p cmd. */
const char *memCmdName(MemCmd cmd);

/**
 * Heap-allocated packets come from a freelist pool (see sim/pool.hh):
 * the requestor's `new Packet` and the final `delete` recycle a slot
 * instead of touching malloc, so the steady-state request path is
 * allocation-free. Packet::poolStats() exposes the counters.
 */
class Packet : public Pooled<Packet>
{
  public:
    /**
     * Opaque per-hop state, pushed by an intermediate component on the
     * request path and popped by the same component on the response
     * path (gem5's SenderState idiom). Used by caches and crossbars to
     * route responses without global tables.
     */
    struct SenderState
    {
        virtual ~SenderState() = default;
        SenderState *predecessor = nullptr;
    };

    Packet(MemCmd cmd, Addr addr, unsigned size, RequestorId requestor);
    ~Packet();

    Packet(const Packet &) = delete;
    Packet &operator=(const Packet &) = delete;

    MemCmd cmd() const { return cmd_; }
    Addr addr() const { return addr_; }
    unsigned size() const { return size_; }
    RequestorId requestorId() const { return requestorId_; }
    std::uint64_t id() const { return id_; }

    bool isRead() const
    {
        return cmd_ == MemCmd::ReadReq || cmd_ == MemCmd::ReadResp;
    }
    bool isWrite() const
    {
        return cmd_ == MemCmd::WriteReq || cmd_ == MemCmd::WriteResp;
    }
    bool isRequest() const
    {
        return cmd_ == MemCmd::ReadReq || cmd_ == MemCmd::WriteReq;
    }
    bool isResponse() const { return !isRequest(); }

    /** Turn this request into the corresponding response in place. */
    void makeResponse();

    /** Tick the requestor injected the packet (set by constructor user). */
    Tick injectedTick() const { return injectedTick_; }
    void setInjectedTick(Tick t) { injectedTick_ = t; }

    /**
     * The latency-attribution span (see stats/latency_span.hh),
     * stamped by the controller that serviced this packet. Invalid
     * until a controller responds; for multi-burst packets it
     * describes the burst that completed the response.
     */
    const stats::LatencySpan &span() const { return span_; }
    void setSpan(const stats::LatencySpan &s) { span_ = s; }

    /** Push per-hop state (request path). */
    void pushSenderState(SenderState *state);

    /** Pop per-hop state (response path). Panics when empty. */
    SenderState *popSenderState();

    SenderState *senderState() const { return senderState_; }

    /** One past the highest byte this packet touches. */
    Addr endAddr() const { return addr_ + size_; }

    /** True if this packet's byte span lies inside [addr, addr+size). */
    bool isContainedIn(Addr addr, unsigned size) const
    {
        return addr_ >= addr && endAddr() <= addr + size;
    }

    /** True if the byte spans intersect at all. */
    bool overlaps(Addr addr, unsigned size) const
    {
        return addr_ < addr + size && addr < endAddr();
    }

    std::string toString() const;

    /** Live packets created by the calling thread, for leak checks. */
    static std::uint64_t liveCount();

    /**
     * The calling thread's next packet id. Checkpoints save and
     * restore the id stream so packet identity (visible in traces)
     * survives a save/load cycle.
     */
    static std::uint64_t nextId();
    static void setNextId(std::uint64_t id);

  private:
    MemCmd cmd_;
    Addr addr_;
    unsigned size_;
    RequestorId requestorId_;
    std::uint64_t id_;
    Tick injectedTick_ = 0;
    stats::LatencySpan span_;
    SenderState *senderState_ = nullptr;
};

} // namespace dramctrl

#endif // DRAMCTRL_MEM_PACKET_H
