#include "mem/packet.hh"

#include <atomic>

#include "sim/logging.hh"

namespace dramctrl {

namespace {

std::atomic<std::uint64_t> nextPacketId{1};
std::atomic<std::uint64_t> livePackets{0};

} // namespace

const char *
memCmdName(MemCmd cmd)
{
    switch (cmd) {
      case MemCmd::ReadReq: return "ReadReq";
      case MemCmd::WriteReq: return "WriteReq";
      case MemCmd::ReadResp: return "ReadResp";
      case MemCmd::WriteResp: return "WriteResp";
    }
    return "InvalidCmd";
}

Packet::Packet(MemCmd cmd, Addr addr, unsigned size,
               RequestorId requestor)
    : cmd_(cmd), addr_(addr), size_(size), requestorId_(requestor),
      id_(nextPacketId.fetch_add(1))
{
    if (size == 0)
        panic("zero-size packet at %#llx",
              static_cast<unsigned long long>(addr));
    livePackets.fetch_add(1);
}

Packet::~Packet()
{
    // Any remaining sender state would be leaked by the hop that pushed
    // it; that is a protocol bug.
    if (senderState_ != nullptr)
        panic("packet %s destroyed with sender state attached",
              toString().c_str());
    livePackets.fetch_sub(1);
}

void
Packet::makeResponse()
{
    switch (cmd_) {
      case MemCmd::ReadReq:
        cmd_ = MemCmd::ReadResp;
        break;
      case MemCmd::WriteReq:
        cmd_ = MemCmd::WriteResp;
        break;
      default:
        panic("makeResponse() on non-request %s", toString().c_str());
    }
}

void
Packet::pushSenderState(SenderState *state)
{
    DC_ASSERT(state != nullptr, "null sender state");
    state->predecessor = senderState_;
    senderState_ = state;
}

Packet::SenderState *
Packet::popSenderState()
{
    if (senderState_ == nullptr)
        panic("popSenderState() on packet %s with empty stack",
              toString().c_str());
    SenderState *s = senderState_;
    senderState_ = s->predecessor;
    s->predecessor = nullptr;
    return s;
}

std::string
Packet::toString() const
{
    return formatString("%s [%#llx:%u] id=%llu req=%u",
                        memCmdName(cmd_),
                        static_cast<unsigned long long>(addr_), size_,
                        static_cast<unsigned long long>(id_),
                        requestorId_);
}

std::uint64_t
Packet::liveCount()
{
    return livePackets.load();
}

} // namespace dramctrl
