#include "mem/packet.hh"

#include "sim/logging.hh"

namespace dramctrl {

namespace {

// Per thread, not process-wide atomics: packets are shared-nothing
// (a packet lives and dies on the thread that created it), so ids
// are a pure function of the thread's own simulation history. That
// keeps captured traces byte-identical regardless of how many batch
// workers run concurrently, and liveCount() is a per-thread leak
// check a batch job can assert inside its own closure.
thread_local std::uint64_t nextPacketId = 1;
thread_local std::uint64_t livePackets = 0;

} // namespace

const char *
memCmdName(MemCmd cmd)
{
    switch (cmd) {
      case MemCmd::ReadReq: return "ReadReq";
      case MemCmd::WriteReq: return "WriteReq";
      case MemCmd::ReadResp: return "ReadResp";
      case MemCmd::WriteResp: return "WriteResp";
    }
    return "InvalidCmd";
}

Packet::Packet(MemCmd cmd, Addr addr, unsigned size,
               RequestorId requestor)
    : cmd_(cmd), addr_(addr), size_(size), requestorId_(requestor),
      id_(nextPacketId++)
{
    if (size == 0)
        panic("zero-size packet at %#llx",
              static_cast<unsigned long long>(addr));
    ++livePackets;
}

Packet::~Packet()
{
    // Any remaining sender state would be leaked by the hop that pushed
    // it; that is a protocol bug.
    if (senderState_ != nullptr)
        panic("packet %s destroyed with sender state attached",
              toString().c_str());
    --livePackets;
}

void
Packet::makeResponse()
{
    switch (cmd_) {
      case MemCmd::ReadReq:
        cmd_ = MemCmd::ReadResp;
        break;
      case MemCmd::WriteReq:
        cmd_ = MemCmd::WriteResp;
        break;
      default:
        panic("makeResponse() on non-request %s", toString().c_str());
    }
}

void
Packet::pushSenderState(SenderState *state)
{
    DC_ASSERT(state != nullptr, "null sender state");
    state->predecessor = senderState_;
    senderState_ = state;
}

Packet::SenderState *
Packet::popSenderState()
{
    if (senderState_ == nullptr)
        panic("popSenderState() on packet %s with empty stack",
              toString().c_str());
    SenderState *s = senderState_;
    senderState_ = s->predecessor;
    s->predecessor = nullptr;
    return s;
}

std::string
Packet::toString() const
{
    return formatString("%s [%#llx:%u] id=%llu req=%u",
                        memCmdName(cmd_),
                        static_cast<unsigned long long>(addr_), size_,
                        static_cast<unsigned long long>(id_),
                        requestorId_);
}

std::uint64_t
Packet::liveCount()
{
    return livePackets;
}

std::uint64_t
Packet::nextId()
{
    return nextPacketId;
}

void
Packet::setNextId(std::uint64_t id)
{
    nextPacketId = id;
}

} // namespace dramctrl
