/**
 * @file
 * Address range with optional channel interleaving.
 *
 * The paper (Section II-F) places channel interleaving outside the
 * controller, in the crossbar: each controller is handed an AddrRange
 * that matches only the addresses belonging to its channel. The
 * controller then strips the interleaving bits to obtain a dense local
 * address before decoding rank/bank/row/column.
 */

#ifndef DRAMCTRL_MEM_ADDR_RANGE_H
#define DRAMCTRL_MEM_ADDR_RANGE_H

#include <string>

#include "sim/types.hh"

namespace dramctrl {

class AddrRange
{
  public:
    /** An empty, invalid range. */
    AddrRange() = default;

    /** A contiguous (non-interleaved) range [start, start + size). */
    AddrRange(Addr start, std::uint64_t size);

    /**
     * An interleaved range: of the global window [start, start + size),
     * this range matches addresses whose selector field equals
     * @p intlv_match. The selector is the log2(@p num_channels)-bit
     * field starting at bit log2(@p granularity).
     *
     * @param start global window base (must be granularity aligned)
     * @param size size of the global window in bytes
     * @param granularity interleaving granularity in bytes (power of 2)
     * @param num_channels number of interleaved ranges (power of 2)
     * @param intlv_match which channel this range selects
     */
    AddrRange(Addr start, std::uint64_t size, std::uint64_t granularity,
              unsigned num_channels, unsigned intlv_match);

    bool valid() const { return size_ > 0; }

    Addr start() const { return start_; }
    /** One past the last address of the global window. */
    Addr end() const { return start_ + size_; }
    /** Size of the global window (all channels together). */
    std::uint64_t size() const { return size_; }

    /** Bytes that actually map to this range (window / channels). */
    std::uint64_t localSize() const { return size_ >> intlvBits_; }

    bool interleaved() const { return intlvBits_ > 0; }
    unsigned numChannels() const { return 1u << intlvBits_; }
    std::uint64_t granularity() const
    {
        return std::uint64_t(1) << intlvLowBit_;
    }
    unsigned intlvMatch() const { return intlvMatch_; }

    /** True iff @p addr falls in the window and selects this channel. */
    bool contains(Addr addr) const;

    /**
     * Squeeze the interleaving bits out of @p addr, producing a dense
     * offset in [0, localSize()) for in-controller decoding.
     */
    Addr removeIntlvBits(Addr addr) const;

    /** Inverse of removeIntlvBits for this range's channel. */
    Addr addIntlvBits(Addr dense) const;

    /** True if the two ranges cover disjoint address sets. */
    bool disjoint(const AddrRange &other) const;

    std::string toString() const;

    bool operator==(const AddrRange &other) const = default;

  private:
    Addr start_ = 0;
    std::uint64_t size_ = 0;
    unsigned intlvLowBit_ = 0;
    unsigned intlvBits_ = 0;
    unsigned intlvMatch_ = 0;
};

} // namespace dramctrl

#endif // DRAMCTRL_MEM_ADDR_RANGE_H
