/**
 * @file
 * Common interface for memory controller models.
 *
 * The validation experiments (Section III) run the event-based model
 * and the cycle-based comparator through identical harnesses; this
 * interface is what those harnesses program against. It also carries
 * the statistics the Micron power model consumes (Section II-G).
 */

#ifndef DRAMCTRL_MEM_MEM_CTRL_IFACE_H
#define DRAMCTRL_MEM_MEM_CTRL_IFACE_H

#include "dram/dram_config.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace dramctrl {

class CmdLogger;

/**
 * The controller-behaviour summary the offline Micron power model needs
 * (Section II-G): activate count, bus utilisation per direction, the
 * time all banks spent precharged, and refresh count, over a window of
 * simulated time.
 */
struct PowerInputs
{
    /** Length of the measurement window in ticks. */
    Tick window = 0;
    double numActs = 0;
    double numPrecharges = 0;
    double numRefreshes = 0;
    /** DRAM bursts actually transferred, per direction. */
    double readBursts = 0;
    double writeBursts = 0;
    /** Ticks during which every bank was precharged. */
    Tick prechargeAllTime = 0;
    /** Ticks spent in precharge power-down (subset of the above). */
    Tick powerDownTime = 0;
    /** Ticks spent in self-refresh (disjoint from powerDownTime). */
    Tick selfRefreshTime = 0;
    /** Fraction of the window the data bus carried read data. */
    double readBusFraction = 0;
    /** Fraction of the window the data bus carried write data. */
    double writeBusFraction = 0;
};

/**
 * Abstract memory controller: one channel, one system-facing port.
 */
class MemCtrlBase : public SimObject
{
  public:
    using SimObject::SimObject;

    /** The system-facing port; bind a crossbar or requestor to it. */
    virtual ResponsePort &port() = 0;

    /** Full parameter set of this controller instance. */
    virtual const DRAMCtrlConfig &config() const = 0;

    /** True when no requests are queued or awaiting response. */
    virtual bool idle() const = 0;

    /** Data-bus utilisation (both directions) over the stats window. */
    virtual double busUtilisation() const = 0;

    /** Achieved bandwidth over the stats window, GByte/s. */
    virtual double achievedBandwidthGBs() const = 0;

    /** Theoretical peak bandwidth of the channel, GByte/s. */
    virtual double peakBandwidthGBs() const = 0;

    /** Inputs for the offline power calculation. */
    virtual PowerInputs powerInputs() const = 0;

    /**
     * Requests currently buffered in the controller's queues — the
     * live occupancy the introspection endpoint reports.
     */
    virtual std::size_t queuedRequests() const = 0;

    /** Attach a command logger (nullptr detaches). Both models emit
     * the explicit DRAM command stream they imply. */
    virtual void setCmdLogger(CmdLogger *logger) = 0;
};

} // namespace dramctrl

#endif // DRAMCTRL_MEM_MEM_CTRL_IFACE_H
