#include "mem/port.hh"

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace dramctrl {

RequestPort::RequestPort(std::string name) : name_(std::move(name)) {}

ResponsePort::ResponsePort(std::string name) : name_(std::move(name)) {}

void
RequestPort::bind(ResponsePort &peer)
{
    if (peer_ != nullptr)
        fatal("request port '%s' bound twice", name_.c_str());
    if (peer.peer_ != nullptr)
        fatal("response port '%s' bound twice", peer.name().c_str());
    peer_ = &peer;
    peer.peer_ = this;
}

bool
RequestPort::sendTimingReq(Packet *pkt)
{
    DC_ASSERT(peer_ != nullptr, "unbound request port '%s'",
              name_.c_str());
    DC_ASSERT(pkt->isRequest(), "sendTimingReq of %s",
              pkt->toString().c_str());
    bool accepted = peer_->recvTimingReq(pkt);
    if (!accepted)
        TRACE(Port, "%s: %s refused, waiting for retry", name_.c_str(),
              pkt->toString().c_str());
    return accepted;
}

void
RequestPort::sendRespRetry()
{
    DC_ASSERT(peer_ != nullptr, "unbound request port '%s'",
              name_.c_str());
    peer_->recvRespRetry();
}

bool
ResponsePort::sendTimingResp(Packet *pkt)
{
    DC_ASSERT(peer_ != nullptr, "unbound response port '%s'",
              name_.c_str());
    DC_ASSERT(pkt->isResponse(), "sendTimingResp of %s",
              pkt->toString().c_str());
    bool accepted = peer_->recvTimingResp(pkt);
    if (!accepted)
        TRACE(Port, "%s: %s refused, waiting for retry", name_.c_str(),
              pkt->toString().c_str());
    return accepted;
}

void
ResponsePort::sendReqRetry()
{
    DC_ASSERT(peer_ != nullptr, "unbound response port '%s'",
              name_.c_str());
    peer_->recvReqRetry();
}

} // namespace dramctrl
