#include "mem/port.hh"

#include "sim/logging.hh"

namespace dramctrl {

RequestPort::RequestPort(std::string name) : name_(std::move(name)) {}

ResponsePort::ResponsePort(std::string name) : name_(std::move(name)) {}

void
RequestPort::bind(ResponsePort &peer)
{
    if (peer_ != nullptr)
        fatal("request port '%s' bound twice", name_.c_str());
    if (peer.peer_ != nullptr)
        fatal("response port '%s' bound twice", peer.name().c_str());
    peer_ = &peer;
    peer.peer_ = this;
}

bool
RequestPort::sendTimingReq(Packet *pkt)
{
    DC_ASSERT(peer_ != nullptr, "unbound request port '%s'",
              name_.c_str());
    DC_ASSERT(pkt->isRequest(), "sendTimingReq of %s",
              pkt->toString().c_str());
    return peer_->recvTimingReq(pkt);
}

void
RequestPort::sendRespRetry()
{
    DC_ASSERT(peer_ != nullptr, "unbound request port '%s'",
              name_.c_str());
    peer_->recvRespRetry();
}

bool
ResponsePort::sendTimingResp(Packet *pkt)
{
    DC_ASSERT(peer_ != nullptr, "unbound response port '%s'",
              name_.c_str());
    DC_ASSERT(pkt->isResponse(), "sendTimingResp of %s",
              pkt->toString().c_str());
    return peer_->recvTimingResp(pkt);
}

void
ResponsePort::sendReqRetry()
{
    DC_ASSERT(peer_ != nullptr, "unbound response port '%s'",
              name_.c_str());
    peer_->recvReqRetry();
}

} // namespace dramctrl
