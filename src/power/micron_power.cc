#include "power/micron_power.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dramctrl {
namespace power {

MicronPowerParams
ddr3Params()
{
    // Representative 2 Gbit DDR3 x8 currents.
    MicronPowerParams p;
    p.vdd = 1.5;
    p.idd0 = 0.055;
    p.idd6 = 0.006;
    p.idd2n = 0.032;
    p.idd3n = 0.038;
    p.idd4r = 0.157;
    p.idd4w = 0.125;
    p.idd5 = 0.235;
    return p;
}

MicronPowerParams
lpddr3Params()
{
    // Representative LPDDR3 x32 die; single-rail equivalent of the
    // dual-rail datasheet numbers.
    MicronPowerParams p;
    p.vdd = 1.8;
    p.idd0 = 0.030;
    p.idd2p = 0.002;
    p.idd6 = 0.0015;
    p.idd2n = 0.012;
    p.idd3n = 0.018;
    p.idd4r = 0.110;
    p.idd4w = 0.100;
    p.idd5 = 0.130;
    return p;
}

MicronPowerParams
wideioParams()
{
    // Representative WideIO SDR x128 stacked die: slow clock, very low
    // standby, wide but low-swing IO.
    MicronPowerParams p;
    p.vdd = 1.2;
    p.idd0 = 0.010;
    p.idd2p = 0.001;
    p.idd6 = 0.0008;
    p.idd2n = 0.003;
    p.idd3n = 0.006;
    p.idd4r = 0.090;
    p.idd4w = 0.085;
    p.idd5 = 0.050;
    return p;
}

MicronPowerParams
hmcVaultParams()
{
    MicronPowerParams p;
    p.vdd = 1.2;
    p.idd0 = 0.015;
    p.idd2p = 0.001;
    p.idd6 = 0.001;
    p.idd2n = 0.004;
    p.idd3n = 0.008;
    p.idd4r = 0.060;
    p.idd4w = 0.055;
    p.idd5 = 0.060;
    return p;
}

MicronPowerParams
ddr4Params()
{
    // Representative 8 Gbit DDR4-2400 x8 currents: lower rail than
    // DDR3, higher burst currents at the faster interface.
    MicronPowerParams p;
    p.vdd = 1.2;
    p.idd0 = 0.048;
    p.idd2p = 0.025;
    p.idd6 = 0.020;
    p.idd2n = 0.034;
    p.idd3n = 0.044;
    p.idd4r = 0.140;
    p.idd4w = 0.130;
    p.idd5 = 0.190;
    return p;
}

MicronPowerParams
lpddr4Params()
{
    // Representative LPDDR4-3200 x16 die; single-rail equivalent of
    // the VDD1/VDD2/VDDQ datasheet split.
    MicronPowerParams p;
    p.vdd = 1.1;
    p.idd0 = 0.028;
    p.idd2p = 0.0012;
    p.idd6 = 0.0005;
    p.idd2n = 0.009;
    p.idd3n = 0.014;
    p.idd4r = 0.155;
    p.idd4w = 0.145;
    p.idd5 = 0.100;
    return p;
}

MicronPowerParams
hbm2Params()
{
    // Representative HBM2 pseudochannel slice: very wide low-swing IO
    // over TSVs, modest per-slice core currents.
    MicronPowerParams p;
    p.vdd = 1.2;
    p.idd0 = 0.018;
    p.idd2p = 0.001;
    p.idd6 = 0.001;
    p.idd2n = 0.005;
    p.idd3n = 0.009;
    p.idd4r = 0.080;
    p.idd4w = 0.075;
    p.idd5 = 0.070;
    return p;
}

bool
hasParamsFor(const std::string &preset_name)
{
    for (const char *known :
         {"ddr3_1333", "ddr3_1600", "lpddr3_1600", "wideio_200",
          "hmc_vault", "ddr4_2400", "lpddr4_3200", "hbm2"}) {
        if (preset_name == known)
            return true;
    }
    return false;
}

MicronPowerParams
paramsFor(const std::string &preset_name)
{
    if (preset_name == "ddr3_1333" || preset_name == "ddr3_1600")
        return ddr3Params();
    if (preset_name == "lpddr3_1600")
        return lpddr3Params();
    if (preset_name == "wideio_200")
        return wideioParams();
    if (preset_name == "hmc_vault")
        return hmcVaultParams();
    if (preset_name == "ddr4_2400")
        return ddr4Params();
    if (preset_name == "lpddr4_3200")
        return lpddr4Params();
    if (preset_name == "hbm2")
        return hbm2Params();
    fatal("no power parameters for preset '%s'", preset_name.c_str());
}

PowerBreakdown
computePower(const PowerInputs &in, const DRAMCtrlConfig &cfg,
             const MicronPowerParams &params)
{
    PowerBreakdown out;
    if (in.window == 0)
        return out;

    const DRAMTiming &t = cfg.timing;
    double window_s = toSeconds(in.window);
    double tras_s = toSeconds(t.tRAS);
    double trc_s = toSeconds(t.tRAS + t.tRP);
    double trfc_s = toSeconds(t.tRFC);

    // Activate/precharge: the energy of one ACT-PRE pair above the
    // standby floor, times the measured activate rate.
    double e_act = (params.idd0 * trc_s - params.idd3n * tras_s -
                    params.idd2n * (trc_s - tras_s)) *
                   params.vdd;
    e_act = std::max(e_act, 0.0);
    out.actPre = e_act * in.numActs / window_s;

    // Read/write burst power scales with the measured bus utilisation.
    out.read = (params.idd4r - params.idd3n) * params.vdd *
               in.readBusFraction;
    out.write = (params.idd4w - params.idd3n) * params.vdd *
                in.writeBusFraction;

    // Refresh: the increment over active standby for tRFC out of every
    // refresh interval, at the measured refresh rate.
    out.refresh = (params.idd5 - params.idd3n) * params.vdd *
                  (in.numRefreshes * trfc_s / window_s);

    // Background: self-refresh (IDD6) and power-down (IDD2P) while the
    // optional low-power extensions had the device asleep, precharge
    // standby while all banks are closed, active standby otherwise.
    double sr_frac =
        std::min(1.0, toSeconds(in.selfRefreshTime) / window_s);
    double pd_frac =
        std::min(1.0 - sr_frac,
                 toSeconds(in.powerDownTime) / window_s);
    double pre_frac =
        std::min(1.0, toSeconds(in.prechargeAllTime) / window_s);
    pre_frac = std::max(0.0, pre_frac - pd_frac - sr_frac);
    if (sr_frac + pd_frac + pre_frac > 1.0)
        pre_frac = 1.0 - sr_frac - pd_frac;
    double awake = 1.0 - sr_frac - pd_frac - pre_frac;
    out.background =
        params.vdd * (params.idd6 * sr_frac + params.idd2p * pd_frac +
                      params.idd2n * pre_frac + params.idd3n * awake);

    // Scale from one device to the whole channel.
    double devices = static_cast<double>(cfg.org.devicesPerRank) *
                     cfg.org.ranksPerChannel;
    out.actPre *= devices;
    out.read *= devices;
    out.write *= devices;
    out.refresh *= devices;
    out.background *= devices;
    return out;
}

} // namespace power
} // namespace dramctrl
