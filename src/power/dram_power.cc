#include "power/dram_power.hh"

#include <algorithm>

#include "dram/dram_presets.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace power {

CommandEnergyParams
deriveFromMicron(const MicronPowerParams &p, const DRAMTiming &t)
{
    CommandEnergyParams e;
    double tras_s = toSeconds(t.tRAS);
    double trc_s = toSeconds(t.tRAS + t.tRP);
    e.eActPre = std::max(0.0, (p.idd0 * trc_s - p.idd3n * tras_s -
                               p.idd2n * (trc_s - tras_s)) *
                                  p.vdd);
    e.eRdBurst = (p.idd4r - p.idd3n) * p.vdd * toSeconds(t.tBURST);
    e.eWrBurst = (p.idd4w - p.idd3n) * p.vdd * toSeconds(t.tBURST);
    e.eRef = (p.idd5 - p.idd3n) * p.vdd * toSeconds(t.tRFC);
    e.pSelfRefresh = p.idd6 * p.vdd;
    e.pPowerDown = p.idd2p * p.vdd;
    e.pPreStandby = p.idd2n * p.vdd;
    e.pActStandby = p.idd3n * p.vdd;
    return e;
}

CommandEnergyParams
commandEnergyFor(const std::string &preset_name)
{
    return deriveFromMicron(paramsFor(preset_name),
                            presets::byName(preset_name).timing);
}

PowerBreakdown
computeCommandEnergy(const PowerInputs &in, const DRAMCtrlConfig &cfg,
                     const CommandEnergyParams &params)
{
    PowerBreakdown out;
    if (in.window == 0)
        return out;
    double window_s = toSeconds(in.window);

    out.actPre = params.eActPre * in.numActs / window_s;
    out.read = params.eRdBurst * in.readBursts / window_s;
    out.write = params.eWrBurst * in.writeBursts / window_s;
    out.refresh = params.eRef * in.numRefreshes / window_s;

    double sr_frac =
        std::min(1.0, toSeconds(in.selfRefreshTime) / window_s);
    double pd_frac = std::min(1.0 - sr_frac,
                              toSeconds(in.powerDownTime) / window_s);
    double pre_frac =
        std::min(1.0, toSeconds(in.prechargeAllTime) / window_s);
    pre_frac = std::max(0.0, pre_frac - pd_frac - sr_frac);
    if (sr_frac + pd_frac + pre_frac > 1.0)
        pre_frac = 1.0 - sr_frac - pd_frac;
    out.background =
        params.pSelfRefresh * sr_frac + params.pPowerDown * pd_frac +
        params.pPreStandby * pre_frac +
        params.pActStandby * (1.0 - sr_frac - pd_frac - pre_frac);

    double devices = static_cast<double>(cfg.org.devicesPerRank) *
                     cfg.org.ranksPerChannel;
    out.actPre *= devices;
    out.read *= devices;
    out.write *= devices;
    out.refresh *= devices;
    out.background *= devices;
    return out;
}

double
totalEnergyJoules(const PowerInputs &in, const DRAMCtrlConfig &cfg,
                  const CommandEnergyParams &params)
{
    return computeCommandEnergy(in, cfg, params).total() *
           toSeconds(in.window);
}

} // namespace power
} // namespace dramctrl
