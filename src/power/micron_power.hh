/**
 * @file
 * Offline DRAM power model following Micron's published methodology
 * (the paper's Section II-G / technical note TN-41-01).
 *
 * The controller does not compute power while simulating; it only
 * collects the behavioural statistics the methodology needs — activate
 * count, per-direction bus utilisation, the time all banks spent
 * precharged, and refresh activity — and this model turns them into a
 * power breakdown after the fact. Low-power states and DLL/PLL wake-up
 * are not modelled, matching both the paper and DRAMSim2.
 */

#ifndef DRAMCTRL_POWER_MICRON_POWER_H
#define DRAMCTRL_POWER_MICRON_POWER_H

#include <string>

#include "dram/dram_config.hh"
#include "mem/mem_ctrl_iface.hh"

namespace dramctrl {
namespace power {

/**
 * Per-device electrical parameters (datasheet IDD values, in amperes,
 * and the core supply voltage in volts).
 */
struct MicronPowerParams
{
    double vdd = 1.5;
    /** One activate-precharge cycle current. */
    double idd0 = 0.055;
    /** Precharge power-down current. */
    double idd2p = 0.010;
    /** Self-refresh current. */
    double idd6 = 0.006;
    /** Precharge standby current. */
    double idd2n = 0.032;
    /** Active standby current. */
    double idd3n = 0.038;
    /** Read burst current. */
    double idd4r = 0.157;
    /** Write burst current. */
    double idd4w = 0.125;
    /** Burst refresh current. */
    double idd5 = 0.235;
};

/** Representative current tables for the modelled memories. */
MicronPowerParams ddr3Params();
MicronPowerParams lpddr3Params();
MicronPowerParams wideioParams();
MicronPowerParams hmcVaultParams();
MicronPowerParams ddr4Params();
MicronPowerParams lpddr4Params();
MicronPowerParams hbm2Params();

/** Parameters for a preset name from dram/dram_presets.hh. */
MicronPowerParams paramsFor(const std::string &preset_name);

/** True when paramsFor(@p preset_name) resolves (no fatal). */
bool hasParamsFor(const std::string &preset_name);

/** Average-power breakdown over a measurement window, in watts. */
struct PowerBreakdown
{
    double actPre = 0;     ///< activate/precharge power
    double read = 0;       ///< read burst power
    double write = 0;      ///< write burst power
    double refresh = 0;    ///< refresh power
    double background = 0; ///< standby power (active + precharge)

    double
    total() const
    {
        return actPre + read + write + refresh + background;
    }
};

/**
 * Evaluate the Micron equations for one channel.
 *
 * @param in behavioural statistics from MemCtrlBase::powerInputs()
 * @param cfg the controller configuration (organisation + timing)
 * @param params the device current table
 */
PowerBreakdown computePower(const PowerInputs &in,
                            const DRAMCtrlConfig &cfg,
                            const MicronPowerParams &params);

} // namespace power
} // namespace dramctrl

#endif // DRAMCTRL_POWER_MICRON_POWER_H
