/**
 * @file
 * Command-energy DRAM power model (DRAMPower style).
 *
 * The paper (Section III-E) notes its statistics interface "can be
 * further extended to plug in other models like DRAMPower". This is
 * that plug-in: instead of Micron's current-based spreadsheet
 * methodology, power is computed from per-command energies —
 * E(ACT), E(PRE), E(RD burst), E(WR burst), E(REF) — plus background
 * power per device state. Both models consume the same
 * MemCtrlBase::powerInputs() snapshot, so they are interchangeable
 * backends.
 *
 * deriveFromMicron() converts a Micron current table into an
 * equivalent energy table; with derived parameters the two models
 * agree to rounding, which the test suite checks.
 */

#ifndef DRAMCTRL_POWER_DRAM_POWER_H
#define DRAMCTRL_POWER_DRAM_POWER_H

#include <string>

#include "dram/dram_config.hh"
#include "mem/mem_ctrl_iface.hh"
#include "power/micron_power.hh"

namespace dramctrl {
namespace power {

/** Per-device command energies (joules) and state powers (watts). */
struct CommandEnergyParams
{
    /** Energy of one ACT+PRE pair above the standby floor. */
    double eActPre = 1.7e-9;
    /** Energy of one read burst above active standby. */
    double eRdBurst = 1.1e-9;
    /** Energy of one write burst above active standby. */
    double eWrBurst = 0.8e-9;
    /** Energy of one refresh above active standby. */
    double eRef = 47e-9;
    /** Background power while in self-refresh. */
    double pSelfRefresh = 0.008;
    /** Background power while powered down. */
    double pPowerDown = 0.015;
    /** Background power with all banks precharged. */
    double pPreStandby = 0.048;
    /** Background power with any bank active. */
    double pActStandby = 0.057;
};

/**
 * Convert a Micron current table (plus the timing that anchors its
 * equations) into equivalent per-command energies.
 */
CommandEnergyParams deriveFromMicron(const MicronPowerParams &params,
                                     const DRAMTiming &timing);

/** Energy table for a preset name from dram/dram_presets.hh. */
CommandEnergyParams commandEnergyFor(const std::string &preset_name);

/**
 * Evaluate the command-energy model for one channel.
 *
 * @param in behavioural statistics from MemCtrlBase::powerInputs()
 * @param cfg the controller configuration (organisation)
 * @param params the per-device energy table
 */
PowerBreakdown computeCommandEnergy(const PowerInputs &in,
                                    const DRAMCtrlConfig &cfg,
                                    const CommandEnergyParams &params);

/** Total energy in joules over the window (power x window). */
double totalEnergyJoules(const PowerInputs &in,
                         const DRAMCtrlConfig &cfg,
                         const CommandEnergyParams &params);

} // namespace power
} // namespace dramctrl

#endif // DRAMCTRL_POWER_DRAM_POWER_H
