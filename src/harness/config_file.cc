#include "harness/config_file.hh"

#include <fstream>
#include <initializer_list>
#include <sstream>

#include "ckpt/ckpt.hh"
#include "dram/dram_presets.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace harness {

namespace {

using validate::Json;

constexpr const char *kFormat = "dramctrl-config-v1";

bool
failAt(std::string *err, const std::string &where,
       const std::string &msg)
{
    if (err)
        *err = where + ": " + msg;
    return false;
}

/** Reject any member of @p j not in @p allowed — typos are errors. */
bool
checkKeys(const Json &j, const std::string &where,
          std::initializer_list<const char *> allowed, std::string *err)
{
    for (const auto &kv : j.members()) {
        bool known = false;
        for (const char *k : allowed) {
            if (kv.first == k) {
                known = true;
                break;
            }
        }
        if (!known)
            return failAt(err, where,
                          "unknown key '" + kv.first + "'");
    }
    return true;
}

template <typename T>
bool
getUInt(const Json &j, const std::string &where, const char *key,
        T &out, std::string *err)
{
    if (!j.has(key))
        return true;
    const Json &v = j[key];
    if (!v.isNumber())
        return failAt(err, where,
                      std::string("'") + key + "' must be a number");
    out = static_cast<T>(v.asUInt());
    return true;
}

bool
getDouble(const Json &j, const std::string &where, const char *key,
          double &out, std::string *err)
{
    if (!j.has(key))
        return true;
    const Json &v = j[key];
    if (!v.isNumber())
        return failAt(err, where,
                      std::string("'") + key + "' must be a number");
    out = v.asDouble();
    return true;
}

/** Read a duration given in nanoseconds into a tick field. */
bool
getNs(const Json &j, const std::string &where, const char *key,
      Tick &out, std::string *err)
{
    if (!j.has(key))
        return true;
    const Json &v = j[key];
    if (!v.isNumber())
        return failAt(err, where,
                      std::string("'") + key +
                          "' must be a number (nanoseconds)");
    out = fromNs(v.asDouble());
    return true;
}

bool
getBool(const Json &j, const std::string &where, const char *key,
        bool &out, std::string *err)
{
    if (!j.has(key))
        return true;
    const Json &v = j[key];
    if (v.type() != Json::Type::Bool)
        return failAt(err, where,
                      std::string("'") + key + "' must be a boolean");
    out = v.asBool();
    return true;
}

bool
getString(const Json &j, const std::string &where, const char *key,
          std::string &out, std::string *err)
{
    if (!j.has(key))
        return true;
    const Json &v = j[key];
    if (v.type() != Json::Type::String)
        return failAt(err, where,
                      std::string("'") + key + "' must be a string");
    out = v.asString();
    return true;
}

bool
orgFromJson(const Json &j, DRAMOrg &org, std::string *err)
{
    const std::string where = "organisation";
    if (!j.isObject())
        return failAt(err, where, "must be an object");
    if (!checkKeys(j, where,
                   {"burstLength", "deviceBusWidth", "devicesPerRank",
                    "ranksPerChannel", "banksPerRank",
                    "bankGroupsPerRank", "pseudoChannels",
                    "rowBufferSize", "channelCapacity"},
                   err))
        return false;
    return getUInt(j, where, "burstLength", org.burstLength, err) &&
           getUInt(j, where, "deviceBusWidth", org.deviceBusWidth,
                   err) &&
           getUInt(j, where, "devicesPerRank", org.devicesPerRank,
                   err) &&
           getUInt(j, where, "ranksPerChannel", org.ranksPerChannel,
                   err) &&
           getUInt(j, where, "banksPerRank", org.banksPerRank, err) &&
           getUInt(j, where, "bankGroupsPerRank",
                   org.bankGroupsPerRank, err) &&
           getUInt(j, where, "pseudoChannels", org.pseudoChannels,
                   err) &&
           getUInt(j, where, "rowBufferSize", org.rowBufferSize,
                   err) &&
           getUInt(j, where, "channelCapacity", org.channelCapacity,
                   err);
}

bool
timingFromJson(const Json &j, DRAMTiming &t, std::string *err)
{
    const std::string where = "timing";
    if (!j.isObject())
        return failAt(err, where, "must be an object");
    if (!checkKeys(j, where,
                   {"tCK", "tBURST", "tRCD", "tCL", "tRP", "tRAS",
                    "tWR", "tWTR", "tRTW", "tRRD", "tXAW", "tREFI",
                    "tRFC", "tCCD_L", "tCCD_S", "tRRD_L", "tRFCsb",
                    "activationLimit"},
                   err))
        return false;
    return getNs(j, where, "tCK", t.tCK, err) &&
           getNs(j, where, "tBURST", t.tBURST, err) &&
           getNs(j, where, "tRCD", t.tRCD, err) &&
           getNs(j, where, "tCL", t.tCL, err) &&
           getNs(j, where, "tRP", t.tRP, err) &&
           getNs(j, where, "tRAS", t.tRAS, err) &&
           getNs(j, where, "tWR", t.tWR, err) &&
           getNs(j, where, "tWTR", t.tWTR, err) &&
           getNs(j, where, "tRTW", t.tRTW, err) &&
           getNs(j, where, "tRRD", t.tRRD, err) &&
           getNs(j, where, "tXAW", t.tXAW, err) &&
           getNs(j, where, "tREFI", t.tREFI, err) &&
           getNs(j, where, "tRFC", t.tRFC, err) &&
           getNs(j, where, "tCCD_L", t.tCCD_L, err) &&
           getNs(j, where, "tCCD_S", t.tCCD_S, err) &&
           getNs(j, where, "tRRD_L", t.tRRD_L, err) &&
           getNs(j, where, "tRFCsb", t.tRFCsb, err) &&
           getUInt(j, where, "activationLimit", t.activationLimit,
                   err);
}

bool
controllerFromJson(const Json &j, DRAMCtrlConfig &cfg, std::string *err)
{
    const std::string where = "controller";
    if (!j.isObject())
        return failAt(err, where, "must be an object");
    if (!checkKeys(j, where,
                   {"readBufferSize", "writeBufferSize",
                    "writeHighThreshold", "writeLowThreshold",
                    "minWritesPerSwitch", "schedPolicy", "addrMapping",
                    "pagePolicy", "frontendLatency", "backendLatency",
                    "maxAccessesPerRow", "enablePowerDown",
                    "powerDownDelay", "tXP", "enableSelfRefresh",
                    "selfRefreshDelay", "tXS", "requestorPriorities",
                    "temperatureC", "perRankRefresh"},
                   err))
        return false;
    if (!(getUInt(j, where, "readBufferSize", cfg.readBufferSize,
                  err) &&
          getUInt(j, where, "writeBufferSize", cfg.writeBufferSize,
                  err) &&
          getDouble(j, where, "writeHighThreshold",
                    cfg.writeHighThreshold, err) &&
          getDouble(j, where, "writeLowThreshold",
                    cfg.writeLowThreshold, err) &&
          getUInt(j, where, "minWritesPerSwitch",
                  cfg.minWritesPerSwitch, err) &&
          getNs(j, where, "frontendLatency", cfg.frontendLatency,
                err) &&
          getNs(j, where, "backendLatency", cfg.backendLatency, err) &&
          getUInt(j, where, "maxAccessesPerRow", cfg.maxAccessesPerRow,
                  err) &&
          getBool(j, where, "enablePowerDown", cfg.enablePowerDown,
                  err) &&
          getNs(j, where, "powerDownDelay", cfg.powerDownDelay, err) &&
          getNs(j, where, "tXP", cfg.tXP, err) &&
          getBool(j, where, "enableSelfRefresh", cfg.enableSelfRefresh,
                  err) &&
          getNs(j, where, "selfRefreshDelay", cfg.selfRefreshDelay,
                err) &&
          getNs(j, where, "tXS", cfg.tXS, err) &&
          getDouble(j, where, "temperatureC", cfg.temperatureC, err) &&
          getBool(j, where, "perRankRefresh", cfg.perRankRefresh,
                  err)))
        return false;
    std::string name;
    if (!getString(j, where, "schedPolicy", name, err))
        return false;
    if (j.has("schedPolicy") &&
        !schedPolicyFromString(name, cfg.schedPolicy))
        return failAt(err, where, "unknown schedPolicy '" + name + "'");
    name.clear();
    if (!getString(j, where, "addrMapping", name, err))
        return false;
    if (j.has("addrMapping") &&
        !addrMappingFromString(name, cfg.addrMapping))
        return failAt(err, where, "unknown addrMapping '" + name + "'");
    name.clear();
    if (!getString(j, where, "pagePolicy", name, err))
        return false;
    if (j.has("pagePolicy") &&
        !pagePolicyFromString(name, cfg.pagePolicy))
        return failAt(err, where, "unknown pagePolicy '" + name + "'");
    if (j.has("requestorPriorities")) {
        const Json &arr = j["requestorPriorities"];
        if (!arr.isArray())
            return failAt(err, where,
                          "'requestorPriorities' must be an array");
        cfg.requestorPriorities.clear();
        for (const Json &v : arr.items()) {
            if (!v.isNumber())
                return failAt(
                    err, where,
                    "'requestorPriorities' entries must be numbers");
            cfg.requestorPriorities.push_back(
                static_cast<unsigned>(v.asUInt()));
        }
    }
    return true;
}

bool
pluginsFromJson(const Json &j, DRAMCtrlConfig &cfg, std::string *err)
{
    const std::string where = "plugins";
    if (!j.isArray())
        return failAt(err, where, "must be an array");
    cfg.plugins.clear();
    for (const Json &row : j.items()) {
        if (!row.isObject())
            return failAt(err, where, "entries must be objects");
        if (!checkKeys(row, where,
                       {"kind", "eccDataBits", "eccCheckBits",
                        "eccCorrectBits", "eccDetectBits", "eccBer",
                        "eccSeed", "pracThreshold", "tRFM", "tRFCpb"},
                       err))
            return false;
        PluginSpec ps;
        if (!(getString(row, where, "kind", ps.kind, err) &&
              getUInt(row, where, "eccDataBits", ps.eccDataBits,
                      err) &&
              getUInt(row, where, "eccCheckBits", ps.eccCheckBits,
                      err) &&
              getUInt(row, where, "eccCorrectBits", ps.eccCorrectBits,
                      err) &&
              getUInt(row, where, "eccDetectBits", ps.eccDetectBits,
                      err) &&
              getDouble(row, where, "eccBer", ps.eccBer, err) &&
              getUInt(row, where, "eccSeed", ps.eccSeed, err) &&
              getUInt(row, where, "pracThreshold", ps.pracThreshold,
                      err) &&
              getNs(row, where, "tRFM", ps.tRFM, err) &&
              getNs(row, where, "tRFCpb", ps.tRFCpb, err)))
            return false;
        if (ps.kind.empty())
            return failAt(err, where, "entry without a kind");
        cfg.plugins.push_back(ps);
    }
    return true;
}

bool
configFromJson(const Json &j, DRAMCtrlConfig &cfg,
               std::string *base_preset, std::string *err)
{
    const std::string where = "config";
    if (!j.isObject())
        return failAt(err, where, "root must be an object");
    if (!checkKeys(j, where,
                   {"format", "preset", "organisation", "timing",
                    "controller", "plugins"},
                   err))
        return false;
    std::string format;
    if (!getString(j, where, "format", format, err))
        return false;
    if (j.has("format") && format != kFormat)
        return failAt(err, where,
                      "unknown format '" + format + "' (expected '" +
                          kFormat + "')");
    std::string preset;
    if (!getString(j, where, "preset", preset, err))
        return false;
    if (!preset.empty()) {
        if (!presets::hasPreset(preset))
            return failAt(err, where,
                          "unknown preset '" + preset + "'");
        cfg = presets::byName(preset);
    }
    if (base_preset)
        *base_preset = preset;
    if (j.has("organisation") &&
        !orgFromJson(j["organisation"], cfg.org, err))
        return false;
    if (j.has("timing") && !timingFromJson(j["timing"], cfg.timing, err))
        return false;
    if (j.has("controller") && !controllerFromJson(j["controller"], cfg, err))
        return false;
    if (j.has("plugins") && !pluginsFromJson(j["plugins"], cfg, err))
        return false;
    return true;
}

Json
orgToJson(const DRAMOrg &org)
{
    Json j = Json::object();
    j.set("burstLength", org.burstLength);
    j.set("deviceBusWidth", org.deviceBusWidth);
    j.set("devicesPerRank", org.devicesPerRank);
    j.set("ranksPerChannel", org.ranksPerChannel);
    j.set("banksPerRank", org.banksPerRank);
    j.set("bankGroupsPerRank", org.bankGroupsPerRank);
    j.set("pseudoChannels", org.pseudoChannels);
    j.set("rowBufferSize", org.rowBufferSize);
    j.set("channelCapacity", org.channelCapacity);
    return j;
}

Json
timingToJson(const DRAMTiming &t)
{
    // Emitted in ns (%.17g survives the tick round-trip exactly).
    Json j = Json::object();
    j.set("tCK", toNs(t.tCK));
    j.set("tBURST", toNs(t.tBURST));
    j.set("tRCD", toNs(t.tRCD));
    j.set("tCL", toNs(t.tCL));
    j.set("tRP", toNs(t.tRP));
    j.set("tRAS", toNs(t.tRAS));
    j.set("tWR", toNs(t.tWR));
    j.set("tWTR", toNs(t.tWTR));
    j.set("tRTW", toNs(t.tRTW));
    j.set("tRRD", toNs(t.tRRD));
    j.set("tXAW", toNs(t.tXAW));
    j.set("tREFI", toNs(t.tREFI));
    j.set("tRFC", toNs(t.tRFC));
    j.set("tCCD_L", toNs(t.tCCD_L));
    j.set("tCCD_S", toNs(t.tCCD_S));
    j.set("tRRD_L", toNs(t.tRRD_L));
    j.set("tRFCsb", toNs(t.tRFCsb));
    j.set("activationLimit", t.activationLimit);
    return j;
}

Json
controllerToJson(const DRAMCtrlConfig &cfg)
{
    Json j = Json::object();
    j.set("readBufferSize", cfg.readBufferSize);
    j.set("writeBufferSize", cfg.writeBufferSize);
    j.set("writeHighThreshold", cfg.writeHighThreshold);
    j.set("writeLowThreshold", cfg.writeLowThreshold);
    j.set("minWritesPerSwitch", cfg.minWritesPerSwitch);
    j.set("schedPolicy", toString(cfg.schedPolicy));
    j.set("addrMapping", toString(cfg.addrMapping));
    j.set("pagePolicy", toString(cfg.pagePolicy));
    j.set("frontendLatency", toNs(cfg.frontendLatency));
    j.set("backendLatency", toNs(cfg.backendLatency));
    j.set("maxAccessesPerRow", cfg.maxAccessesPerRow);
    j.set("enablePowerDown", cfg.enablePowerDown);
    j.set("powerDownDelay", toNs(cfg.powerDownDelay));
    j.set("tXP", toNs(cfg.tXP));
    j.set("enableSelfRefresh", cfg.enableSelfRefresh);
    j.set("selfRefreshDelay", toNs(cfg.selfRefreshDelay));
    j.set("tXS", toNs(cfg.tXS));
    Json prio = Json::array();
    for (unsigned p : cfg.requestorPriorities)
        prio.push(p);
    j.set("requestorPriorities", prio);
    j.set("temperatureC", cfg.temperatureC);
    j.set("perRankRefresh", cfg.perRankRefresh);
    return j;
}

Json
pluginToJson(const PluginSpec &ps)
{
    Json j = Json::object();
    j.set("kind", ps.kind);
    j.set("eccDataBits", ps.eccDataBits);
    j.set("eccCheckBits", ps.eccCheckBits);
    j.set("eccCorrectBits", ps.eccCorrectBits);
    j.set("eccDetectBits", ps.eccDetectBits);
    j.set("eccBer", ps.eccBer);
    j.set("eccSeed", ps.eccSeed);
    j.set("pracThreshold", ps.pracThreshold);
    j.set("tRFM", toNs(ps.tRFM));
    j.set("tRFCpb", toNs(ps.tRFCpb));
    return j;
}

} // namespace

bool
parseConfigText(const std::string &text, DRAMCtrlConfig &cfg,
                std::string *base_preset, std::string *err)
{
    Json j;
    if (!validate::parseJson(text, j, err))
        return false;
    return configFromJson(j, cfg, base_preset, err);
}

DRAMCtrlConfig
loadConfigFile(const std::string &path, std::string *base_preset)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    DRAMCtrlConfig cfg;
    std::string err;
    if (!parseConfigText(ss.str(), cfg, base_preset, &err))
        fatal("config file '%s': %s", path.c_str(), err.c_str());
    cfg.check();
    return cfg;
}

validate::Json
configToJson(const DRAMCtrlConfig &cfg, const std::string &preset_name)
{
    Json j = Json::object();
    j.set("format", kFormat);
    if (!preset_name.empty())
        j.set("preset", preset_name);
    j.set("organisation", orgToJson(cfg.org));
    j.set("timing", timingToJson(cfg.timing));
    j.set("controller", controllerToJson(cfg));
    Json plugins = Json::array();
    for (const PluginSpec &ps : cfg.plugins)
        plugins.push(pluginToJson(ps));
    j.set("plugins", plugins);
    return j;
}

std::string
dumpConfig(const DRAMCtrlConfig &cfg, const std::string &preset_name)
{
    return configToJson(cfg, preset_name).dump(2) + "\n";
}

bool
writeConfigFile(const std::string &path, const DRAMCtrlConfig &cfg,
                const std::string &preset_name)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << dumpConfig(cfg, preset_name);
    return static_cast<bool>(out);
}

std::uint64_t
configFingerprint(const DRAMCtrlConfig &cfg)
{
    return ckpt::fnv1a(cfg.describe());
}

} // namespace harness
} // namespace dramctrl
