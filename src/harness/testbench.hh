/**
 * @file
 * System-assembly helpers shared by the tests, benchmarks and examples.
 *
 * Two canned systems cover the paper's experiments:
 *
 *  - SingleChannelSystem: one traffic generator driving one controller
 *    (either model) directly — the Section III validation setup.
 *  - MultiCoreSystem: N timing cores with private L1s behind a shared
 *    L2, a memory crossbar interleaving over M channels — the
 *    Section IV case-study setup (Figure 1's structure).
 */

#ifndef DRAMCTRL_HARNESS_TESTBENCH_H
#define DRAMCTRL_HARNESS_TESTBENCH_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cache.hh"
#include "cpu/timing_core.hh"
#include "cpu/workload.hh"
#include "dram/dram_ctrl.hh"
#include "mem/mem_ctrl_iface.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "trafficgen/trace.hh"
#include "xbar/xbar.hh"

namespace dramctrl {
class TraceWriter;
}

namespace dramctrl {
namespace harness {

/** Which controller model to instantiate. */
enum class CtrlModel {
    Event, ///< the paper's event-based model (DRAMCtrl)
    Cycle, ///< the DRAMSim2-style comparator (CycleDRAMCtrl)
};

const char *toString(CtrlModel m);

/** Instantiate a controller of either model behind MemCtrlBase. */
std::unique_ptr<MemCtrlBase> makeController(Simulator &sim,
                                            const std::string &name,
                                            const DRAMCtrlConfig &cfg,
                                            AddrRange range,
                                            CtrlModel model);

/**
 * Run @p sim in steps of @p step ticks until @p done returns true or
 * @p max_ticks elapse.
 *
 * @return the tick the loop stopped at.
 */
Tick runUntil(Simulator &sim, const std::function<bool()> &done,
              Tick step = fromUs(1.0), Tick max_ticks = fromUs(100000));

/** One generator, one controller: the validation testbench. */
class SingleChannelSystem
{
  public:
    SingleChannelSystem(const DRAMCtrlConfig &cfg, CtrlModel model,
                        Addr base = 0);

    Simulator &sim() { return sim_; }
    MemCtrlBase &ctrl() { return *ctrl_; }

    /** The event-model controller; panics if model is Cycle. */
    DRAMCtrl &eventCtrl();

    /**
     * Record every request the generator gets accepted into the
     * controller to a .dtrc file, streamed with O(1) memory. Must be
     * called before addGen(); the file is sealed by finishCapture()
     * (idempotent, also run at destruction).
     */
    void enableCapture(const std::string &path);
    void finishCapture();

    /**
     * Construct the generator (bound to the controller, through the
     * capture recorder when one is enabled) in place. Exactly one
     * generator may be added.
     */
    template <typename GenT, typename GenCfgT>
    GenT &
    addGen(const GenCfgT &gen_cfg, RequestorId id = 0)
    {
        if (genAdded_)
            fatal("SingleChannelSystem already has a generator");
        genAdded_ = true;
        auto gen = std::make_unique<GenT>(sim_, "gen", gen_cfg, id);
        gen->port().bind(recorder_ != nullptr ? recorder_->cpuSidePort()
                                              : ctrl_->port());
        GenT &ref = *gen;
        genHolder_ = std::move(gen);
        return ref;
    }

    /** Run until the generator reports done and the controller drains. */
    Tick runToCompletion(const std::function<bool()> &gen_done,
                         Tick max_ticks = fromUs(100000));

    /**
     * Warm up for @p warmup ticks, reset all statistics, then run
     * another @p measure ticks (the standard measurement discipline of
     * the bandwidth sweeps).
     */
    void runMeasured(Tick warmup, Tick measure);

  private:
    Simulator sim_;
    std::unique_ptr<MemCtrlBase> ctrl_;
    std::unique_ptr<SimObject> genHolder_;
    std::unique_ptr<TraceRecorder> recorder_;
    std::shared_ptr<TraceWriter> captureWriter_;
    std::string textCapturePath_;
    bool genAdded_ = false;
};

/** Parameters of the Section IV multi-core system. */
struct MultiCoreConfig
{
    unsigned numCores = 4;
    CoreConfig core;
    CacheConfig l1;
    CacheConfig l2;
    /** Channels (each gets one controller of @p ctrl's configuration). */
    unsigned channels = 1;
    DRAMCtrlConfig ctrl;
    CtrlModel model = CtrlModel::Event;
    /** Channel interleaving granularity (0 = one cache line). */
    std::uint64_t interleaveGranularity = 0;
    /** Ops per core. */
    std::uint64_t opsPerCore = 200'000;
    std::uint64_t seed = 1;

    MultiCoreConfig();
};

/**
 * N cores -> private L1 data caches -> L1-L2 crossbar -> shared L2 ->
 * memory crossbar -> one controller per channel.
 */
class MultiCoreSystem
{
  public:
    MultiCoreSystem(const MultiCoreConfig &cfg,
                    const WorkloadProfile &workload);

    Simulator &sim() { return sim_; }

    TimingCore &core(unsigned i) { return *cores_.at(i); }
    Cache &l1(unsigned i) { return *l1s_.at(i); }
    Cache &l2() { return *l2_; }
    MemCtrlBase &ctrl(unsigned ch) { return *ctrls_.at(ch); }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(ctrls_.size());
    }

    /** Run until every core committed its ops (or the tick budget). */
    Tick runToCompletion(Tick max_ticks = fromUs(1000000));

    /** Aggregate instructions per cycle over all cores. */
    double aggregateIPC() const;

    /** Average L2 miss (fill) latency in ns. */
    double l2MissLatencyNs() const;

    /** Bus utilisation averaged over the channels. */
    double avgBusUtil() const;

    /** Achieved DRAM bandwidth summed over the channels, GByte/s. */
    double totalBandwidthGBs() const;

  private:
    MultiCoreConfig cfg_;
    Simulator sim_;
    std::vector<std::unique_ptr<TimingCore>> cores_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::unique_ptr<Crossbar> l1ToL2_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Crossbar> memXbar_;
    std::vector<std::unique_ptr<MemCtrlBase>> ctrls_;
};

} // namespace harness
} // namespace dramctrl

#endif // DRAMCTRL_HARNESS_TESTBENCH_H
