#include "harness/multichannel.hh"

#include <algorithm>

#include "dram/dram_presets.hh"
#include "sim/logging.hh"
#include "xbar/xbar.hh"

namespace dramctrl {
namespace harness {

MultiChannelSystem::MultiChannelSystem(const MultiChannelConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.channels == 0)
        fatal("multi-channel system needs at least one channel");

    // One shard per channel; the crossbar's cheapest cross-shard hop
    // bounds how far shards may drift apart.
    sim_.configureShards(cfg_.channels,
                         ShardedCrossbar::lookahead(cfg_.xbar));
    sim_.setSimThreads(cfg_.simThreads);

    std::uint64_t total_mem =
        cfg_.ctrl.org.channelCapacity * cfg_.channels;
    std::uint64_t granularity = cfg_.interleaveGranularity != 0
                                    ? cfg_.interleaveGranularity
                                    : 64;

    xbar_ = std::make_unique<ShardedCrossbar>(sim_, "mem_xbar",
                                              cfg_.xbar);
    ranges_ = interleavedRanges(0, total_mem, granularity,
                                cfg_.channels);
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        Simulator::ShardScope scope(sim_, ch);
        auto ctrl = makeController(sim_,
                                   "mem_ctrl" + std::to_string(ch),
                                   cfg_.ctrl, ranges_[ch], cfg_.model);
        xbar_->addChannel(ctrl->port(), ranges_[ch]);
        ctrls_.push_back(std::move(ctrl));
    }
}

std::uint64_t
MultiChannelSystem::totalCapacity() const
{
    return cfg_.ctrl.org.channelCapacity * cfg_.channels;
}

bool
MultiChannelSystem::drained() const
{
    bool gens_done = std::all_of(
        gens_.begin(), gens_.end(),
        [](const std::unique_ptr<BaseGen> &g) { return g->done(); });
    if (!gens_done)
        return false;
    bool ctrls_idle = std::all_of(
        ctrls_.begin(), ctrls_.end(),
        [](const std::unique_ptr<MemCtrlBase> &c) {
            return c->idle();
        });
    return ctrls_idle && xbar_->idle();
}

Tick
MultiChannelSystem::runToCompletion(Tick max_ticks)
{
    if (gens_.empty())
        fatal("multi-channel system has no generators");
    return runUntil(
        sim_, [this] { return drained(); }, fromUs(1.0), max_ticks);
}

std::vector<CmdLogger> &
MultiChannelSystem::attachCmdLoggers()
{
    if (cmdLoggers_ == nullptr) {
        cmdLoggers_ =
            std::make_unique<std::vector<CmdLogger>>(numChannels());
        for (unsigned ch = 0; ch < numChannels(); ++ch)
            ctrls_[ch]->setCmdLogger(&(*cmdLoggers_)[ch]);
    }
    return *cmdLoggers_;
}

double
MultiChannelSystem::totalBandwidthGBs() const
{
    double total = 0;
    for (const auto &ctrl : ctrls_)
        total += ctrl->achievedBandwidthGBs();
    return total;
}

double
MultiChannelSystem::avgBusUtil() const
{
    double total = 0;
    for (const auto &ctrl : ctrls_)
        total += ctrl->busUtilisation();
    return total / static_cast<double>(ctrls_.size());
}

double
MultiChannelSystem::avgReadLatencyNs() const
{
    // Weight each generator by its responded-read count so the mean
    // matches a pooled sample.
    double weighted = 0, reads = 0;
    for (const auto &gen : gens_) {
        double n = gen->genStats().readLatencyHist.count();
        weighted += gen->avgReadLatencyNs() * n;
        reads += n;
    }
    return reads > 0 ? weighted / reads : 0;
}

namespace {

/** name -> channel count of the hmc_vault-based stack presets. */
const std::pair<const char *, unsigned> kSystemPresets[] = {
    {"hmc_stack_16", 16},
    {"hmc_stack_64", 64},
    {"hmc_stack_256", 256},
};

} // namespace

bool
isSystemPreset(const std::string &name)
{
    for (const auto &p : kSystemPresets)
        if (name == p.first)
            return true;
    return false;
}

MultiChannelConfig
systemPresetByName(const std::string &name)
{
    for (const auto &p : kSystemPresets) {
        if (name != p.first)
            continue;
        MultiChannelConfig cfg;
        cfg.channels = p.second;
        cfg.ctrl = presets::hmcVault();
        return cfg;
    }
    fatal("unknown system preset '%s'", name.c_str());
}

std::vector<std::string>
systemPresetNames()
{
    std::vector<std::string> out;
    for (const auto &p : kSystemPresets)
        out.emplace_back(p.first);
    return out;
}

GenConfig
sliceGenWindow(GenConfig base, unsigned i, unsigned n,
               std::uint64_t total_mem)
{
    std::uint64_t slice = total_mem / n;
    base.startAddr = slice * i;
    base.windowSize = std::min(base.windowSize, slice);
    return base;
}

} // namespace harness
} // namespace dramctrl
