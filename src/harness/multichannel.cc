#include "harness/multichannel.hh"

#include <algorithm>

#include "dram/dram_presets.hh"
#include "sim/logging.hh"
#include "trafficgen/trace_file.hh"
#include "xbar/xbar.hh"

namespace dramctrl {
namespace harness {

MultiChannelSystem::MultiChannelSystem(const MultiChannelConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.channels == 0)
        fatal("multi-channel system needs at least one channel");

    // One shard per channel; the crossbar's cheapest cross-shard hop
    // bounds how far shards may drift apart.
    sim_.configureShards(cfg_.channels,
                         ShardedCrossbar::lookahead(cfg_.xbar));
    sim_.setSimThreads(cfg_.simThreads);

    std::uint64_t total_mem =
        cfg_.ctrl.org.channelCapacity * cfg_.channels;
    std::uint64_t granularity = cfg_.interleaveGranularity != 0
                                    ? cfg_.interleaveGranularity
                                    : 64;

    xbar_ = std::make_unique<ShardedCrossbar>(sim_, "mem_xbar",
                                              cfg_.xbar);
    ranges_ = interleavedRanges(0, total_mem, granularity,
                                cfg_.channels);
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        Simulator::ShardScope scope(sim_, ch);
        auto ctrl = makeController(sim_,
                                   "mem_ctrl" + std::to_string(ch),
                                   cfg_.ctrl, ranges_[ch], cfg_.model);
        xbar_->addChannel(ctrl->port(), ranges_[ch]);
        ctrls_.push_back(std::move(ctrl));
    }
}

std::uint64_t
MultiChannelSystem::totalCapacity() const
{
    return cfg_.ctrl.org.channelCapacity * cfg_.channels;
}

void
MultiChannelSystem::enableCapture(const std::string &path)
{
    if (!gens_.empty())
        fatal("enableCapture() must be called before addGen()");
    if (!capturePath_.empty())
        fatal("capture already enabled");
    if (path.empty())
        fatal("capture needs a non-empty path");
    if (traceFormatForOutput(path) == TraceFormat::Text)
        fatal("multi-channel capture records per-source streams, "
              "which the text format cannot carry; use a non-.txt "
              "path (and trace_cli to convert later)");
    capturePath_ = path;
}

void
MultiChannelSystem::finishCapture()
{
    if (capturePath_.empty() || captureDone_)
        return;
    captureDone_ = true;

    // Merge the per-generator streams (each tick-sorted by
    // construction) into one tick-ordered file; ties break towards the
    // lowest source index, deterministically.
    TraceWriter writer(capturePath_, kTicksPerSecond,
                       kTraceFlagLiveCapture);
    std::vector<std::size_t> idx(recorders_.size(), 0);
    for (;;) {
        int best = -1;
        for (std::size_t i = 0; i < recorders_.size(); ++i) {
            const auto &t = recorders_[i]->trace();
            if (idx[i] >= t.size())
                continue;
            if (best < 0 ||
                t[idx[i]].tick <
                    recorders_[best]->trace()[idx[best]].tick)
                best = static_cast<int>(i);
        }
        if (best < 0)
            break;
        writer.append(recorders_[best]->trace()[idx[best]++],
                      static_cast<unsigned>(best));
    }
    writer.finish();
}

TracePlayer &
MultiChannelSystem::addPlayer(const TracePlayerConfig &pcfg)
{
    unsigned index = numGens() + numPlayers();
    RequestorId id = static_cast<RequestorId>(index);
    Simulator::ShardScope scope(sim_, index % sim_.numShards());
    auto player = std::make_unique<TracePlayer>(
        sim_, "player" + std::to_string(index), pcfg, id);
    player->port().bind(xbar_->addFrontPort(id));
    TracePlayer &ref = *player;
    players_.push_back(std::move(player));
    return ref;
}

bool
MultiChannelSystem::drained() const
{
    bool gens_done = std::all_of(
        gens_.begin(), gens_.end(),
        [](const std::unique_ptr<BaseGen> &g) { return g->done(); });
    bool players_done = std::all_of(
        players_.begin(), players_.end(),
        [](const std::unique_ptr<TracePlayer> &p) {
            return p->done();
        });
    if (!gens_done || !players_done)
        return false;
    bool ctrls_idle = std::all_of(
        ctrls_.begin(), ctrls_.end(),
        [](const std::unique_ptr<MemCtrlBase> &c) {
            return c->idle();
        });
    return ctrls_idle && xbar_->idle();
}

Tick
MultiChannelSystem::runToCompletion(Tick max_ticks)
{
    if (gens_.empty() && players_.empty())
        fatal("multi-channel system has no generators");
    return runUntil(
        sim_, [this] { return drained(); }, fromUs(1.0), max_ticks);
}

std::vector<CmdLogger> &
MultiChannelSystem::attachCmdLoggers()
{
    if (cmdLoggers_ == nullptr) {
        cmdLoggers_ =
            std::make_unique<std::vector<CmdLogger>>(numChannels());
        for (unsigned ch = 0; ch < numChannels(); ++ch)
            ctrls_[ch]->setCmdLogger(&(*cmdLoggers_)[ch]);
    }
    return *cmdLoggers_;
}

double
MultiChannelSystem::totalBandwidthGBs() const
{
    double total = 0;
    for (const auto &ctrl : ctrls_)
        total += ctrl->achievedBandwidthGBs();
    return total;
}

double
MultiChannelSystem::avgBusUtil() const
{
    double total = 0;
    for (const auto &ctrl : ctrls_)
        total += ctrl->busUtilisation();
    return total / static_cast<double>(ctrls_.size());
}

double
MultiChannelSystem::avgReadLatencyNs() const
{
    // Weight each generator by its responded-read count so the mean
    // matches a pooled sample.
    double weighted = 0, reads = 0;
    for (const auto &gen : gens_) {
        double n = gen->genStats().readLatencyHist.count();
        weighted += gen->avgReadLatencyNs() * n;
        reads += n;
    }
    for (const auto &player : players_) {
        double n = static_cast<double>(player->readResponses());
        weighted += player->avgReadLatencyNs() * n;
        reads += n;
    }
    return reads > 0 ? weighted / reads : 0;
}

namespace {

/**
 * name -> {base controller preset, instance count}. For the HBM2
 * stacks the count is physical channels; each physical channel is
 * split into org.pseudoChannels independently-timed controllers, so
 * the instantiated channel count is count x pseudoChannels.
 */
struct SystemPresetDef
{
    const char *name;
    const char *ctrlPreset;
    unsigned count;
};

const SystemPresetDef kSystemPresets[] = {
    {"hmc_stack_16", "hmc_vault", 16},
    {"hmc_stack_64", "hmc_vault", 64},
    {"hmc_stack_256", "hmc_vault", 256},
    {"hbm2_stack_4", "hbm2", 4},
    {"hbm2_stack_8", "hbm2", 8},
};

} // namespace

bool
isSystemPreset(const std::string &name)
{
    for (const auto &p : kSystemPresets)
        if (name == p.name)
            return true;
    return false;
}

MultiChannelConfig
systemPresetByName(const std::string &name)
{
    for (const auto &p : kSystemPresets) {
        if (name != p.name)
            continue;
        MultiChannelConfig cfg;
        cfg.ctrl = presets::byName(p.ctrlPreset);
        cfg.channels = p.count * cfg.ctrl.org.pseudoChannels;
        return cfg;
    }
    fatal("unknown system preset '%s'", name.c_str());
}

std::vector<std::string>
systemPresetNames()
{
    std::vector<std::string> out;
    for (const auto &p : kSystemPresets)
        out.emplace_back(p.name);
    return out;
}

unsigned
addTracePlayers(MultiChannelSystem &mc, const std::string &path,
                double time_scale)
{
    unsigned sources = 1;
    if (traceFormatOf(path) == TraceFormat::Dtrc) {
        TraceReader probe(path, /*verify_crc=*/false);
        sources = probe.info().numSources;
    }
    for (unsigned s = 0; s < sources; ++s)
        mc.addPlayer(makeTracePlayerConfig(
            path, time_scale,
            sources > 1 ? static_cast<int>(s) : -1));
    return sources;
}

GenConfig
sliceGenWindow(GenConfig base, unsigned i, unsigned n,
               std::uint64_t total_mem)
{
    std::uint64_t slice = total_mem / n;
    base.startAddr = slice * i;
    base.windowSize = std::min(base.windowSize, slice);
    return base;
}

} // namespace harness
} // namespace dramctrl
