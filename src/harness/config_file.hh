/**
 * @file
 * Declarative controller configuration files.
 *
 * A config file is a JSON document describing one DRAMCtrlConfig — the
 * declarative counterpart of picking a preset and layering CLI
 * overrides. The schema mirrors the config structure:
 *
 *   {
 *     "format": "dramctrl-config-v1",      // optional, checked if set
 *     "preset": "ddr4_2400",               // optional base preset
 *     "organisation": { "banksPerRank": 16, ... },
 *     "timing":       { "tCK": 0.833, ... },   // values in ns
 *     "controller":   { "schedPolicy": "frfcfs", ... },
 *     "plugins":      [ { "kind": "ecc", ... }, ... ]
 *   }
 *
 * When "preset" is given the named preset supplies every default and
 * the sections override it field by field; without it the defaults are
 * the DRAMCtrlConfig member initialisers. Timing and latency values
 * are nanoseconds (doubles), exactly the units the preset factories
 * use, so a file transcribing a preset parses to a byte-identical
 * configuration.
 *
 * Parsing is strict: unknown keys, type mismatches, and malformed
 * JSON are hard errors with messages naming the offending key —
 * misspelling "tRCD" must not silently leave the default in place.
 *
 * dumpConfig() emits every knob; its output re-parses (with no preset
 * installed) to a configuration with an identical fingerprint, which
 * is how tools/tests prove round-trip fidelity.
 */

#ifndef DRAMCTRL_HARNESS_CONFIG_FILE_H
#define DRAMCTRL_HARNESS_CONFIG_FILE_H

#include <cstdint>
#include <string>

#include "dram/dram_config.hh"
#include "validate/json_io.hh"

namespace dramctrl {
namespace harness {

/**
 * Parse a config document from JSON text into @p cfg.
 *
 * @param base_preset when non-null, receives the "preset" key's value
 *                    ("" if the file names none).
 * @return false (with *err set when given) on malformed input; @p cfg
 *         is unspecified on failure.
 */
bool parseConfigText(const std::string &text, DRAMCtrlConfig &cfg,
                     std::string *base_preset = nullptr,
                     std::string *err = nullptr);

/**
 * Load a config file, fatal() on any error (missing file, malformed
 * JSON, unknown keys, inconsistent values — cfg.check() runs too).
 */
DRAMCtrlConfig loadConfigFile(const std::string &path,
                              std::string *base_preset = nullptr);

/**
 * Emit every knob of @p cfg as a config document. @p preset_name, when
 * non-empty, is recorded as the "preset" key (informational: every
 * field is still emitted explicitly, so re-parsing does not depend on
 * the preset being registered... but it must name a real preset if it
 * is to be re-parsed, since unknown presets are errors).
 */
validate::Json configToJson(const DRAMCtrlConfig &cfg,
                            const std::string &preset_name = "");

/** configToJson() pretty-printed with a trailing newline. */
std::string dumpConfig(const DRAMCtrlConfig &cfg,
                       const std::string &preset_name = "");

/** Write dumpConfig() to @p path; false on I/O failure. */
bool writeConfigFile(const std::string &path, const DRAMCtrlConfig &cfg,
                     const std::string &preset_name = "");

/**
 * Configuration identity hash: FNV-1a over cfg.describe(). Two configs
 * with equal fingerprints drive the controllers identically (the same
 * hash guards checkpoint restore as "cfgHash").
 */
std::uint64_t configFingerprint(const DRAMCtrlConfig &cfg);

} // namespace harness
} // namespace dramctrl

#endif // DRAMCTRL_HARNESS_CONFIG_FILE_H
