/**
 * @file
 * Sharded multi-channel system assembly.
 *
 * MultiChannelSystem is the scaling counterpart of the testbench's
 * SingleChannelSystem: N synthetic generators drive M channel
 * controllers through a ShardedCrossbar, with each channel (its
 * controller plus its half of the crossbar) bound to its own
 * simulation shard. Generators are distributed round-robin over the
 * channel shards. With --sim-threads > 1 the shards execute on a
 * worker team under the conservative windowed engine; the results are
 * byte-identical at every thread count (see sim/shard.hh).
 */

#ifndef DRAMCTRL_HARNESS_MULTICHANNEL_H
#define DRAMCTRL_HARNESS_MULTICHANNEL_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dram/cmd_log.hh"
#include "harness/testbench.hh"
#include "mem/mem_ctrl_iface.hh"
#include "sim/simulator.hh"
#include "trafficgen/base_gen.hh"
#include "trafficgen/trace.hh"
#include "xbar/sharded_xbar.hh"

namespace dramctrl {
namespace harness {

/** Parameters of the sharded multi-channel system. */
struct MultiChannelConfig
{
    /** Channels; each gets one controller and one shard. */
    unsigned channels = 2;
    DRAMCtrlConfig ctrl;
    CtrlModel model = CtrlModel::Event;
    ShardedXBarConfig xbar;
    /** Channel interleaving granularity (0 = one 64 B block). */
    std::uint64_t interleaveGranularity = 0;
    /** Worker threads for the sharded engine (1 = sequential). */
    unsigned simThreads = 1;
};

/**
 * N generators -> sharded crossbar -> one controller per channel,
 * one shard per channel.
 */
class MultiChannelSystem
{
  public:
    explicit MultiChannelSystem(const MultiChannelConfig &cfg);

    Simulator &sim() { return sim_; }
    ShardedCrossbar &xbar() { return *xbar_; }
    MemCtrlBase &ctrl(unsigned ch) { return *ctrls_.at(ch); }
    BaseGen &gen(unsigned i) { return *gens_.at(i); }

    unsigned numChannels() const
    {
        return static_cast<unsigned>(ctrls_.size());
    }
    unsigned numGens() const
    {
        return static_cast<unsigned>(gens_.size());
    }

    /** The address range controller @p ch serves. */
    const AddrRange &channelRange(unsigned ch) const
    {
        return ranges_.at(ch);
    }

    /** Total bytes across all channels. */
    std::uint64_t totalCapacity() const;

    /**
     * Record the accepted request stream of every generator added
     * after this call into one .dtrc file (source id = generator
     * index). Shards run concurrently, so each generator gets its own
     * recorder and the per-source streams are merged by tick when
     * finishCapture() seals the file.
     */
    void enableCapture(const std::string &path);
    void finishCapture();

    /**
     * Construct generator @p i of flavour @p GenT in place, on the
     * shard of channel (i mod channels), bound to its own crossbar
     * front port. The generator's requestor id is its index.
     */
    template <typename GenT, typename GenCfgT>
    GenT &
    addGen(const GenCfgT &gen_cfg)
    {
        unsigned index = numGens();
        RequestorId id = static_cast<RequestorId>(index);
        Simulator::ShardScope scope(sim_, index % sim_.numShards());
        auto gen = std::make_unique<GenT>(
            sim_, "gen" + std::to_string(index), gen_cfg, id);
        if (!capturePath_.empty()) {
            auto rec = std::make_unique<TraceRecorder>(
                sim_, "trace_rec" + std::to_string(index));
            gen->port().bind(rec->cpuSidePort());
            rec->memSidePort().bind(xbar_->addFrontPort(id));
            recorders_.push_back(std::move(rec));
        } else {
            gen->port().bind(xbar_->addFrontPort(id));
        }
        GenT &ref = *gen;
        gens_.push_back(std::move(gen));
        return ref;
    }

    /**
     * Add a trace player on the next front port, sharded like a
     * generator. Used by .dtrc replay: one player per recorded source
     * id, every player streaming the same file.
     */
    TracePlayer &addPlayer(const TracePlayerConfig &pcfg);

    unsigned numPlayers() const
    {
        return static_cast<unsigned>(players_.size());
    }
    TracePlayer &player(unsigned i) { return *players_.at(i); }

    /** All generators done, controllers drained, crossbar idle. */
    bool drained() const;

    /** Run until drained() (or the tick budget is spent). */
    Tick runToCompletion(Tick max_ticks = fromUs(100000));

    /**
     * Attach one command logger per channel (idempotent) and return
     * them in channel order.
     */
    std::vector<CmdLogger> &attachCmdLoggers();

    /** Achieved DRAM bandwidth summed over the channels, GByte/s. */
    double totalBandwidthGBs() const;

    /** Bus utilisation averaged over the channels. */
    double avgBusUtil() const;

    /** Mean end-to-end read latency over all generators, ns. */
    double avgReadLatencyNs() const;

  private:
    MultiChannelConfig cfg_;
    Simulator sim_;
    std::unique_ptr<ShardedCrossbar> xbar_;
    std::vector<AddrRange> ranges_;
    std::vector<std::unique_ptr<MemCtrlBase>> ctrls_;
    std::vector<std::unique_ptr<BaseGen>> gens_;
    std::vector<std::unique_ptr<TracePlayer>> players_;
    std::vector<std::unique_ptr<TraceRecorder>> recorders_;
    std::string capturePath_;
    bool captureDone_ = false;
    /** Stable storage: controllers hold pointers into this. */
    std::unique_ptr<std::vector<CmdLogger>> cmdLoggers_;
};

/**
 * Replay @p path (text or .dtrc) into @p mc: one player per recorded
 * source id — each streaming the same file, filtered to its own
 * records — sharded round-robin like generators would be, so the
 * original per-requestor streams reappear whatever the thread count.
 *
 * @return the number of players added.
 */
unsigned addTracePlayers(MultiChannelSystem &mc, const std::string &path,
                         double time_scale = 1.0);

/**
 * Carve the generator address windows: generator @p i of @p n plays
 * in an equal slice of the whole @p total_mem so the streams do not
 * collide (they still interleave over every channel).
 */
GenConfig sliceGenWindow(GenConfig base, unsigned i, unsigned n,
                         std::uint64_t total_mem);

/**
 * System presets: named multi-channel assemblies. hmc_stack_16 /
 * hmc_stack_64 / hmc_stack_256 stack N hmc_vault channels behind the
 * sharded crossbar — the paper's HMC recipe ("combining the crossbar
 * model with 16 instances of our controller model"), and its scaled-up
 * descendants for parallel-simulation studies. hbm2_stack_4 /
 * hbm2_stack_8 stack N physical HBM2 channels, each split into its
 * org.pseudoChannels independently-timed pseudochannel controllers
 * (so N x 2 controller instances), the same future-architecture
 * exploration recipe applied to an HBM stack.
 */
bool isSystemPreset(const std::string &name);

/** Look a system preset up by name; fatal() on unknown names. */
MultiChannelConfig systemPresetByName(const std::string &name);

/** All system preset names, for tests and command-line tools. */
std::vector<std::string> systemPresetNames();

} // namespace harness
} // namespace dramctrl

#endif // DRAMCTRL_HARNESS_MULTICHANNEL_H
