#include "harness/testbench.hh"

#include <algorithm>

#include "cyclesim/cycle_ctrl.hh"
#include "sim/logging.hh"
#include "trafficgen/trace_file.hh"

namespace dramctrl {
namespace harness {

const char *
toString(CtrlModel m)
{
    switch (m) {
      case CtrlModel::Event: return "event";
      case CtrlModel::Cycle: return "cycle";
    }
    return "invalid";
}

std::unique_ptr<MemCtrlBase>
makeController(Simulator &sim, const std::string &name,
               const DRAMCtrlConfig &cfg, AddrRange range,
               CtrlModel model)
{
    if (model == CtrlModel::Event)
        return std::make_unique<DRAMCtrl>(sim, name, cfg, range);
    return std::make_unique<cyclesim::CycleDRAMCtrl>(sim, name, cfg,
                                                     range);
}

Tick
runUntil(Simulator &sim, const std::function<bool()> &done, Tick step,
         Tick max_ticks)
{
    Tick limit = sim.curTick() + max_ticks;
    // Poll at absolute multiples of the step so the stopping tick
    // doesn't depend on where the run started: a simulation resumed
    // from a mid-step checkpoint observes done() at the same absolute
    // times an uninterrupted run does.
    while (!done() && sim.curTick() < limit) {
        Tick next = (sim.curTick() / step + 1) * step;
        sim.run(std::min(next, limit));
    }
    return sim.curTick();
}

SingleChannelSystem::SingleChannelSystem(const DRAMCtrlConfig &cfg,
                                         CtrlModel model, Addr base)
{
    ctrl_ = makeController(sim_, "mem_ctrl", cfg,
                           AddrRange(base, cfg.org.channelCapacity),
                           model);
}

DRAMCtrl &
SingleChannelSystem::eventCtrl()
{
    auto *c = dynamic_cast<DRAMCtrl *>(ctrl_.get());
    if (c == nullptr)
        panic("eventCtrl() on a cycle-model testbench");
    return *c;
}

void
SingleChannelSystem::enableCapture(const std::string &path)
{
    if (genAdded_)
        fatal("enableCapture() must be called before addGen()");
    if (recorder_ != nullptr)
        fatal("capture already enabled");
    recorder_ = std::make_unique<TraceRecorder>(sim_, "trace_rec");
    recorder_->memSidePort().bind(ctrl_->port());
    if (traceFormatForOutput(path) == TraceFormat::Dtrc) {
        captureWriter_ = std::make_shared<TraceWriter>(
            path, kTicksPerSecond, kTraceFlagLiveCapture);
        // Single event queue: accepted requests arrive in tick order,
        // so they stream straight to the writer with O(1) memory.
        auto writer = captureWriter_;
        recorder_->setSink(
            [writer](const TraceEntry &e) { writer->append(e); });
    } else {
        // A .txt target buffers in the recorder and is written whole
        // by finishCapture() (the text format is the debug flavour;
        // the streaming path is the binary one).
        textCapturePath_ = path;
    }
}

void
SingleChannelSystem::finishCapture()
{
    if (captureWriter_ != nullptr)
        captureWriter_->finish();
    if (!textCapturePath_.empty() && recorder_ != nullptr) {
        saveTrace(textCapturePath_, recorder_->trace());
        textCapturePath_.clear();
    }
}

Tick
SingleChannelSystem::runToCompletion(
    const std::function<bool()> &gen_done, Tick max_ticks)
{
    return runUntil(
        sim_, [&] { return gen_done() && ctrl_->idle(); }, fromUs(1.0),
        max_ticks);
}

void
SingleChannelSystem::runMeasured(Tick warmup, Tick measure)
{
    sim_.run(sim_.curTick() + warmup);
    sim_.resetStats();
    sim_.run(sim_.curTick() + measure);
}

MultiCoreConfig::MultiCoreConfig()
{
    // Table II defaults.
    l1.size = 64 * 1024;
    l1.assoc = 2;
    l1.blockSize = 64;
    l1.hitLatency = fromNs(2.0);
    l1.mshrs = 6;
    l1.targetsPerMshr = 8;

    l2.size = 512 * 1024;
    l2.assoc = 8;
    l2.blockSize = 64;
    l2.hitLatency = fromNs(12.0);
    l2.mshrs = 16;
    l2.targetsPerMshr = 8;
}

MultiCoreSystem::MultiCoreSystem(const MultiCoreConfig &cfg,
                                 const WorkloadProfile &workload)
    : cfg_(cfg)
{
    if (cfg_.numCores == 0 || cfg_.channels == 0)
        fatal("multi-core system needs at least one core and channel");

    std::uint64_t total_mem =
        cfg_.ctrl.org.channelCapacity * cfg_.channels;
    std::uint64_t slice = total_mem / cfg_.numCores;

    // Clamp each core's working set into its slice of physical memory.
    WorkloadProfile wl = workload;
    wl.footprintBytes = std::min(wl.footprintBytes, slice);

    std::uint64_t granularity = cfg_.interleaveGranularity != 0
                                    ? cfg_.interleaveGranularity
                                    : cfg_.l2.blockSize;

    // Memory side: crossbar + one controller per channel.
    memXbar_ = std::make_unique<Crossbar>(sim_, "mem_xbar",
                                          XBarConfig{});
    auto ranges =
        interleavedRanges(0, total_mem, granularity, cfg_.channels);
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        auto ctrl = makeController(
            sim_, "mem_ctrl" + std::to_string(ch), cfg_.ctrl,
            ranges[ch], cfg_.model);
        unsigned mem_idx = memXbar_->addMemSidePort(ranges[ch]);
        memXbar_->memSidePort(mem_idx).bind(ctrl->port());
        ctrls_.push_back(std::move(ctrl));
    }

    // Shared L2 between the L1-L2 crossbar and the memory crossbar.
    l2_ = std::make_unique<Cache>(sim_, "l2", cfg_.l2);
    unsigned l2_src = memXbar_->addCpuSidePort();
    l2_->memSidePort().bind(memXbar_->cpuSidePort(l2_src));

    l1ToL2_ = std::make_unique<Crossbar>(sim_, "l1_xbar", XBarConfig{});
    unsigned l2_mem_idx =
        l1ToL2_->addMemSidePort(AddrRange(0, total_mem));
    l1ToL2_->memSidePort(l2_mem_idx).bind(l2_->cpuSidePort());

    // Cores and their private L1 data caches.
    for (unsigned i = 0; i < cfg_.numCores; ++i) {
        auto l1 = std::make_unique<Cache>(
            sim_, "l1d" + std::to_string(i), cfg_.l1);
        unsigned src = l1ToL2_->addCpuSidePort();
        l1->memSidePort().bind(l1ToL2_->cpuSidePort(src));

        CoreConfig core_cfg = cfg_.core;
        core_cfg.numOps = cfg_.opsPerCore;
        core_cfg.memBase = slice * i;
        core_cfg.seed = cfg_.seed + i * 7919;

        auto core = std::make_unique<TimingCore>(
            sim_, "core" + std::to_string(i), core_cfg, wl,
            static_cast<RequestorId>(i));
        core->dcachePort().bind(l1->cpuSidePort());

        l1s_.push_back(std::move(l1));
        cores_.push_back(std::move(core));
    }
}

Tick
MultiCoreSystem::runToCompletion(Tick max_ticks)
{
    auto done = [this] {
        return std::all_of(cores_.begin(), cores_.end(),
                           [](const std::unique_ptr<TimingCore> &c) {
                               return c->done();
                           });
    };
    runUntil(sim_, done, fromUs(5.0), max_ticks);

    // The cores stop at their op budget with memory accesses still in
    // flight; drain the hierarchy so every packet is delivered before
    // any teardown or measurement.
    auto drained = [this] {
        bool caches_idle =
            l2_->idle() &&
            std::all_of(l1s_.begin(), l1s_.end(),
                        [](const std::unique_ptr<Cache> &c) {
                            return c->idle();
                        });
        bool ctrls_idle = std::all_of(
            ctrls_.begin(), ctrls_.end(),
            [](const std::unique_ptr<MemCtrlBase> &c) {
                return c->idle();
            });
        return caches_idle && ctrls_idle && l1ToL2_->idle() &&
               memXbar_->idle();
    };
    return runUntil(sim_, drained, fromUs(1.0), fromUs(1000.0));
}

double
MultiCoreSystem::aggregateIPC() const
{
    double total = 0;
    for (const auto &core : cores_)
        total += core->ipc();
    return total;
}

double
MultiCoreSystem::l2MissLatencyNs() const
{
    return l2_->avgMissLatencyNs();
}

double
MultiCoreSystem::avgBusUtil() const
{
    double total = 0;
    for (const auto &ctrl : ctrls_)
        total += ctrl->busUtilisation();
    return total / static_cast<double>(ctrls_.size());
}

double
MultiCoreSystem::totalBandwidthGBs() const
{
    double total = 0;
    for (const auto &ctrl : ctrls_)
        total += ctrl->achievedBandwidthGBs();
    return total;
}

} // namespace harness
} // namespace dramctrl
