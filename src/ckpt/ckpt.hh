/**
 * @file
 * Versioned, schema-checked checkpoint serialization.
 *
 * A checkpoint is a flat binary stream: a file header (magic + format
 * version) followed by named sections, one per simulated object plus
 * two bookkeeping sections ("sim" and "stats"). Every section carries
 * its own version tag, payload length and CRC32, so a truncated or
 * corrupted snapshot fails with a fatal() naming the bad section
 * instead of misbehaving downstream. Section payloads are sequences of
 * self-describing tagged records (type, key, value), which is what
 * makes the JSON debug dump and forward-compatible readers possible:
 * a newer writer can add keys and an older reader skips them; a newer
 * reader uses getOr*() defaults for keys an older writer lacked.
 *
 * Restoring is a two-phase protocol. Components read their plain state
 * immediately but *defer* event reconstruction: getEvent() records the
 * event's saved tick and its global service rank, and finalizeEvents()
 * re-schedules all of them in rank order once every section is read.
 * Scheduling in rank order hands out fresh queue sequence numbers in
 * exactly the original relative order, so same-tick/same-priority ties
 * break identically and the resumed run is byte-identical to the
 * uninterrupted one.
 */

#ifndef DRAMCTRL_CKPT_CKPT_H
#define DRAMCTRL_CKPT_CKPT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/serializable.hh"
#include "sim/eventq.hh"
#include "sim/types.hh"

namespace dramctrl {

class Packet;
class Simulator;

namespace ckpt {

/** Checkpoint stream format version written by this build. */
// Version 2: packet records carry the latency-attribution span and
// stats sections include the per-stage latency histograms.
constexpr std::uint32_t kFormatVersion = 2;

/** CRC32 (IEEE 802.3 polynomial) of @p len bytes at @p data. */
std::uint32_t crc32(const void *data, std::size_t len);

/**
 * Incremental CRC32: fold @p len bytes into a running @p crc. Start
 * from 0xFFFFFFFF and XOR the final value with 0xFFFFFFFF to match
 * crc32() (which is exactly this, in one call).
 */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t len);

/** FNV-1a 64-bit hash, used for configuration fingerprints. */
std::uint64_t fnv1a(const void *data, std::size_t len);
std::uint64_t fnv1a(const std::string &s);

/** Tag of one record inside a section payload. */
enum class RecordType : std::uint8_t {
    U64 = 1,
    I64 = 2,
    F64 = 3,
    Bool = 4,
    Str = 5,
    Bytes = 6,
    U64Vec = 7,
    F64Vec = 8,
};

/**
 * Checkpoint writer. Usage: beginSection(), a series of put*() calls,
 * endSection(); repeat per component. The section payload is buffered
 * so the header can carry its length and CRC.
 */
class CkptOut
{
  public:
    /** Writes the file header immediately. */
    explicit CkptOut(std::ostream &os);

    CkptOut(const CkptOut &) = delete;
    CkptOut &operator=(const CkptOut &) = delete;

    void beginSection(const std::string &name,
                      std::uint32_t version = 1);
    void endSection();

    void putU64(const std::string &key, std::uint64_t v);
    void putI64(const std::string &key, std::int64_t v);
    void putF64(const std::string &key, double v);
    void putBool(const std::string &key, bool v);
    void putStr(const std::string &key, const std::string &v);
    void putBytes(const std::string &key, const void *data,
                  std::size_t len);
    void putU64Vec(const std::string &key,
                   const std::vector<std::uint64_t> &v);
    void putF64Vec(const std::string &key,
                   const std::vector<double> &v);

    /** Ticks are plain u64s; a named alias for readability. */
    void putTick(const std::string &key, Tick t) { putU64(key, t); }

    /**
     * Record @p ev's scheduling state: whether it is on @p eq, its
     * tick, and its global service rank among all scheduled events
     * (the key to reconstructing same-tick ordering on restore).
     */
    void putEvent(const std::string &key, const EventQueue &eq,
                  const Event &ev);

    /**
     * Serialize @p pkt (null allowed) preserving its id, so packet
     * identity — visible in traces — survives a save/load cycle.
     */
    void putPacket(const std::string &key, const Packet *pkt);

  private:
    void record(RecordType type, const std::string &key);

    std::ostream &os_;
    std::string payload_;
    std::string sectionName_;
    std::uint32_t sectionVersion_ = 0;
    bool inSection_ = false;
};

/**
 * Checkpoint reader. The constructor parses and CRC-checks the whole
 * stream up front (any structural damage is reported immediately with
 * the offending section's name); components then open their section by
 * name and read keys in any order.
 */
class CkptIn
{
  public:
    explicit CkptIn(std::istream &is);

    CkptIn(const CkptIn &) = delete;
    CkptIn &operator=(const CkptIn &) = delete;

    bool hasSection(const std::string &name) const;

    /** Make @p name the current section; fatal() when absent. */
    void openSection(const std::string &name);

    /** Version tag of the current section. */
    std::uint32_t sectionVersion() const;

    /** True when the current section holds @p key. */
    bool has(const std::string &key) const;

    /** Strict getters: fatal() on a missing key or type mismatch. */
    std::uint64_t getU64(const std::string &key) const;
    std::int64_t getI64(const std::string &key) const;
    double getF64(const std::string &key) const;
    bool getBool(const std::string &key) const;
    const std::string &getStr(const std::string &key) const;
    const std::string &getBytes(const std::string &key) const;
    const std::vector<std::uint64_t> &
    getU64Vec(const std::string &key) const;
    const std::vector<double> &getF64Vec(const std::string &key) const;

    Tick getTick(const std::string &key) const { return getU64(key); }

    /** Forward-compat getters: default when the key is absent. */
    std::uint64_t getOrU64(const std::string &key,
                           std::uint64_t def) const;
    double getOrF64(const std::string &key, double def) const;
    bool getOrBool(const std::string &key, bool def) const;

    /**
     * Read an event record written by putEvent(). If the event was
     * scheduled, its reconstruction is deferred: @p ev is remembered
     * together with its saved tick and rank, and actually scheduled by
     * finalizeEvents(). @p ev must outlive this reader.
     */
    void getEvent(const std::string &key, EventQueue &eq, Event &ev);

    /** Recreate a packet written by putPacket() (null allowed). */
    Packet *getPacket(const std::string &key) const;

    /**
     * Schedule every deferred event on @p eq in saved service-rank
     * order. Call exactly once, after every section has been read and
     * after the queue's current tick has been restored.
     */
    void finalizeEvents();

  private:
    struct Value
    {
        RecordType type = RecordType::U64;
        std::uint64_t u64 = 0;
        std::int64_t i64 = 0;
        double f64 = 0;
        bool b = false;
        std::string str;
        std::vector<std::uint64_t> u64vec;
        std::vector<double> f64vec;
    };

    struct Section
    {
        std::string name;
        std::uint32_t version = 0;
        std::vector<std::pair<std::string, Value>> records;
        std::unordered_map<std::string, std::size_t> index;
    };

    struct DeferredEvent
    {
        std::uint64_t rank;
        Tick when;
        EventQueue *eq;
        Event *ev;
    };

    const Value &lookup(const std::string &key, RecordType type) const;
    const Value *find(const std::string &key) const;

    std::vector<Section> sections_;
    std::unordered_map<std::string, std::size_t> sectionIndex_;
    const Section *cur_ = nullptr;
    std::vector<DeferredEvent> deferred_;
    bool finalized_ = false;

    // The JSON debug dump walks the parsed sections directly.
    friend void dumpJson(std::istream &is, std::ostream &os);
};

/** Write a configuration fingerprint for later verification. */
void putCheck(CkptOut &out, const std::string &key,
              std::uint64_t value);

/**
 * Compare a fingerprint recorded by putCheck() against the value the
 * restoring object computed; fatal() naming @p what on mismatch.
 */
void verifyCheck(CkptIn &in, const std::string &key,
                 std::uint64_t value, const char *what);

/**
 * Snapshot the full simulator (event queue time, packet-id stream,
 * statistics tree, and every registered object's section) to @p os.
 */
void save(Simulator &sim, std::ostream &os);
void saveFile(Simulator &sim, const std::string &path);
std::string saveToString(Simulator &sim);

/**
 * Restore a snapshot written by save() into @p sim, which must be a
 * freshly constructed simulator assembled with the same configuration
 * (same objects, names and parameters). After restore, startup() is
 * suppressed and run() continues from the saved tick, reproducing the
 * uninterrupted run byte-for-byte.
 */
void restore(Simulator &sim, std::istream &is);
void restoreFile(Simulator &sim, const std::string &path);
void restoreFromString(Simulator &sim, const std::string &buf);

/** Human-readable JSON dump of a checkpoint stream (debug form). */
void dumpJson(std::istream &is, std::ostream &os);
void dumpJsonFile(const std::string &path, std::ostream &os);

} // namespace ckpt
} // namespace dramctrl

#endif // DRAMCTRL_CKPT_CKPT_H
