/**
 * @file
 * The interface every stateful component implements to take part in
 * checkpointing.
 *
 * Kept deliberately tiny (two forward-declared visitor types, no other
 * includes) so that base headers like sim_object.hh can inherit from
 * Serializable without pulling the checkpoint machinery into every
 * translation unit.
 */

#ifndef DRAMCTRL_CKPT_SERIALIZABLE_H
#define DRAMCTRL_CKPT_SERIALIZABLE_H

namespace dramctrl {
namespace ckpt {

class CkptOut;
class CkptIn;

/**
 * A component that can write its dynamic state into a checkpoint and
 * later reconstruct it. The contract is strict determinism: after
 * unserialize() the component must behave byte-for-byte like the
 * instance serialize() was called on, provided it was constructed with
 * an identical configuration (serializers record a configuration
 * fingerprint and fatal() on mismatch rather than continue silently).
 *
 * Both methods default to no-ops so purely structural objects (ports,
 * crossbars, recorders whose state is diagnostic only) need no code.
 */
class Serializable
{
  public:
    virtual ~Serializable() = default;

    /** Write all dynamic state into the currently open section. */
    virtual void serialize(CkptOut &out) const { (void)out; }

    /**
     * Read the state written by serialize(). Called on a freshly
     * constructed object (same configuration, nothing scheduled).
     * Event reconstruction is deferred: see CkptIn::getEvent().
     */
    virtual void unserialize(CkptIn &in) { (void)in; }
};

} // namespace ckpt
} // namespace dramctrl

#endif // DRAMCTRL_CKPT_SERIALIZABLE_H
