#include "ckpt/ckpt.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "mem/packet.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/simulator.hh"
#include "stats/stats.hh"

namespace dramctrl {
namespace ckpt {

namespace {

constexpr std::uint32_t kFileMagic = 0x504B4344; // "DCKP"
constexpr std::uint32_t kSectionMagic = 0x54434553; // "SECT"

// All on-disk integers are little-endian, written byte by byte so the
// format does not depend on host endianness or struct layout.

void
appendU8(std::string &b, std::uint8_t v)
{
    b.push_back(static_cast<char>(v));
}

void
appendU16(std::string &b, std::uint16_t v)
{
    appendU8(b, v & 0xff);
    appendU8(b, v >> 8);
}

void
appendU32(std::string &b, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        appendU8(b, (v >> (8 * i)) & 0xff);
}

void
appendU64(std::string &b, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        appendU8(b, (v >> (8 * i)) & 0xff);
}

void
appendF64(std::string &b, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    appendU64(b, bits);
}

/** Bounds-checked reader over a byte buffer; reports via @p onError. */
struct Cursor
{
    const unsigned char *data;
    std::size_t size;
    std::size_t pos = 0;

    bool ok(std::size_t n) const { return pos + n <= size; }

    std::uint8_t
    u8()
    {
        return data[pos++];
    }

    std::uint16_t
    u16()
    {
        std::uint16_t v = static_cast<std::uint16_t>(data[pos]) |
                          static_cast<std::uint16_t>(data[pos + 1]) << 8;
        pos += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
};

const char *
typeName(RecordType t)
{
    switch (t) {
      case RecordType::U64: return "u64";
      case RecordType::I64: return "i64";
      case RecordType::F64: return "f64";
      case RecordType::Bool: return "bool";
      case RecordType::Str: return "str";
      case RecordType::Bytes: return "bytes";
      case RecordType::U64Vec: return "u64vec";
      case RecordType::F64Vec: return "f64vec";
    }
    return "unknown";
}

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t len)
{
    // Slicing-by-16: sixteen derived tables let the loop fold 16
    // bytes per iteration instead of one, which matters now that the
    // CRC covers multi-gigabyte trace files, not just checkpoint
    // records. Same polynomial (IEEE 802.3, reflected) and results as
    // the classic byte-at-a-time form, which remains as the tail loop.
    static const auto tables = [] {
        std::vector<std::array<std::uint32_t, 256>> t(16);
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[0][i] = c;
        }
        for (std::uint32_t i = 0; i < 256; ++i)
            for (int j = 1; j < 16; ++j)
                t[j][i] =
                    (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xff];
        return t;
    }();

    const auto *p = static_cast<const unsigned char *>(data);
#if defined(__BYTE_ORDER__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // The 16-byte fold loads words directly, so it is little-endian
    // only; other hosts take the (identical-result) tail loop.
    while (len >= 16) {
        std::uint32_t w0;
        std::uint32_t w1;
        std::uint32_t w2;
        std::uint32_t w3;
        std::memcpy(&w0, p, 4);
        std::memcpy(&w1, p + 4, 4);
        std::memcpy(&w2, p + 8, 4);
        std::memcpy(&w3, p + 12, 4);
        w0 ^= crc;
        crc = tables[15][w0 & 0xff] ^ tables[14][(w0 >> 8) & 0xff] ^
              tables[13][(w0 >> 16) & 0xff] ^ tables[12][w0 >> 24] ^
              tables[11][w1 & 0xff] ^ tables[10][(w1 >> 8) & 0xff] ^
              tables[9][(w1 >> 16) & 0xff] ^ tables[8][w1 >> 24] ^
              tables[7][w2 & 0xff] ^ tables[6][(w2 >> 8) & 0xff] ^
              tables[5][(w2 >> 16) & 0xff] ^ tables[4][w2 >> 24] ^
              tables[3][w3 & 0xff] ^ tables[2][(w3 >> 8) & 0xff] ^
              tables[1][(w3 >> 16) & 0xff] ^ tables[0][w3 >> 24];
        p += 16;
        len -= 16;
    }
#endif
    while (len-- > 0)
        crc = tables[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    return crc;
}

std::uint32_t
crc32(const void *data, std::size_t len)
{
    return crc32Update(0xFFFFFFFFu, data, len) ^ 0xFFFFFFFFu;
}

std::uint64_t
fnv1a(const void *data, std::size_t len)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
fnv1a(const std::string &s)
{
    return fnv1a(s.data(), s.size());
}

//
// CkptOut
//

CkptOut::CkptOut(std::ostream &os) : os_(os)
{
    std::string header;
    appendU32(header, kFileMagic);
    appendU32(header, kFormatVersion);
    os_.write(header.data(),
              static_cast<std::streamsize>(header.size()));
}

void
CkptOut::beginSection(const std::string &name, std::uint32_t version)
{
    if (inSection_)
        panic("checkpoint section '%s' opened inside '%s'",
              name.c_str(), sectionName_.c_str());
    if (name.empty() || name.size() > 0xFFFF)
        panic("bad checkpoint section name '%s'", name.c_str());
    sectionName_ = name;
    sectionVersion_ = version;
    payload_.clear();
    inSection_ = true;
}

void
CkptOut::endSection()
{
    if (!inSection_)
        panic("endSection() with no open checkpoint section");

    std::string header;
    appendU32(header, kSectionMagic);
    appendU16(header, static_cast<std::uint16_t>(sectionName_.size()));
    header += sectionName_;
    appendU32(header, sectionVersion_);
    appendU64(header, payload_.size());
    appendU32(header, crc32(payload_.data(), payload_.size()));

    os_.write(header.data(),
              static_cast<std::streamsize>(header.size()));
    os_.write(payload_.data(),
              static_cast<std::streamsize>(payload_.size()));
    inSection_ = false;
}

void
CkptOut::record(RecordType type, const std::string &key)
{
    if (!inSection_)
        panic("checkpoint put('%s') outside any section", key.c_str());
    if (key.empty() || key.size() > 0xFFFF)
        panic("bad checkpoint key '%s'", key.c_str());
    appendU8(payload_, static_cast<std::uint8_t>(type));
    appendU16(payload_, static_cast<std::uint16_t>(key.size()));
    payload_ += key;
}

void
CkptOut::putU64(const std::string &key, std::uint64_t v)
{
    record(RecordType::U64, key);
    appendU64(payload_, v);
}

void
CkptOut::putI64(const std::string &key, std::int64_t v)
{
    record(RecordType::I64, key);
    appendU64(payload_, static_cast<std::uint64_t>(v));
}

void
CkptOut::putF64(const std::string &key, double v)
{
    record(RecordType::F64, key);
    appendF64(payload_, v);
}

void
CkptOut::putBool(const std::string &key, bool v)
{
    record(RecordType::Bool, key);
    appendU8(payload_, v ? 1 : 0);
}

void
CkptOut::putStr(const std::string &key, const std::string &v)
{
    record(RecordType::Str, key);
    appendU32(payload_, static_cast<std::uint32_t>(v.size()));
    payload_ += v;
}

void
CkptOut::putBytes(const std::string &key, const void *data,
                  std::size_t len)
{
    record(RecordType::Bytes, key);
    appendU32(payload_, static_cast<std::uint32_t>(len));
    payload_.append(static_cast<const char *>(data), len);
}

void
CkptOut::putU64Vec(const std::string &key,
                   const std::vector<std::uint64_t> &v)
{
    record(RecordType::U64Vec, key);
    appendU32(payload_, static_cast<std::uint32_t>(v.size()));
    for (std::uint64_t x : v)
        appendU64(payload_, x);
}

void
CkptOut::putF64Vec(const std::string &key,
                   const std::vector<double> &v)
{
    record(RecordType::F64Vec, key);
    appendU32(payload_, static_cast<std::uint32_t>(v.size()));
    for (double x : v)
        appendF64(payload_, x);
}

void
CkptOut::putEvent(const std::string &key, const EventQueue &eq,
                  const Event &ev)
{
    if (ev.scheduled())
        putU64Vec(key, {1, ev.when(), eq.orderOf(ev)});
    else
        putU64Vec(key, {0, 0, 0});
}

void
CkptOut::putPacket(const std::string &key, const Packet *pkt)
{
    if (pkt == nullptr) {
        putU64Vec(key, {0});
        return;
    }
    const stats::LatencySpan &sp = pkt->span();
    putU64Vec(key,
              {1, pkt->id(), static_cast<std::uint64_t>(pkt->cmd()),
               pkt->addr(), pkt->size(), pkt->requestorId(),
               pkt->injectedTick(), sp.valid ? std::uint64_t(1) : 0,
               sp.enqueue, sp.pick, sp.bankReady, sp.issue,
               sp.burstStart, sp.done, sp.staticLat});
}

//
// CkptIn
//

CkptIn::CkptIn(std::istream &is)
{
    std::string buf((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    const auto *data =
        reinterpret_cast<const unsigned char *>(buf.data());
    Cursor cur{data, buf.size()};

    if (!cur.ok(8))
        fatal("checkpoint truncated in file header "
              "(%zu bytes, need 8)", buf.size());
    if (cur.u32() != kFileMagic)
        fatal("checkpoint has bad magic: not a checkpoint file");
    std::uint32_t version = cur.u32();
    if (version > kFormatVersion)
        fatal("checkpoint format version %u is newer than this "
              "build reads (%u)", version, kFormatVersion);

    std::string last = "<file header>";
    while (cur.pos < cur.size) {
        if (!cur.ok(6))
            fatal("checkpoint truncated in section header after "
                  "section '%s'", last.c_str());
        if (cur.u32() != kSectionMagic)
            fatal("checkpoint corrupted after section '%s': bad "
                  "section magic", last.c_str());
        std::uint16_t name_len = cur.u16();
        if (!cur.ok(name_len))
            fatal("checkpoint truncated in section name after "
                  "section '%s'", last.c_str());
        Section sec;
        sec.name.assign(reinterpret_cast<const char *>(cur.data +
                                                       cur.pos),
                        name_len);
        cur.pos += name_len;
        if (!cur.ok(16))
            fatal("checkpoint truncated in header of section '%s'",
                  sec.name.c_str());
        sec.version = cur.u32();
        std::uint64_t payload_len = cur.u64();
        std::uint32_t stored_crc = cur.u32();
        if (!cur.ok(payload_len))
            fatal("checkpoint section '%s' truncated: %llu payload "
                  "bytes promised, %zu available",
                  sec.name.c_str(),
                  static_cast<unsigned long long>(payload_len),
                  cur.size - cur.pos);
        std::uint32_t computed =
            crc32(cur.data + cur.pos, payload_len);
        if (computed != stored_crc)
            fatal("checkpoint section '%s' is corrupted: CRC "
                  "mismatch (stored %08x, computed %08x)",
                  sec.name.c_str(), stored_crc, computed);

        // Payload verified; parse its tagged records.
        Cursor pc{cur.data + cur.pos, payload_len};
        cur.pos += payload_len;
        while (pc.pos < pc.size) {
            if (!pc.ok(3))
                fatal("checkpoint section '%s': malformed record at "
                      "offset %zu", sec.name.c_str(), pc.pos);
            auto type = static_cast<RecordType>(pc.u8());
            std::uint16_t key_len = pc.u16();
            if (!pc.ok(key_len))
                fatal("checkpoint section '%s': malformed record key "
                      "at offset %zu", sec.name.c_str(), pc.pos);
            std::string key(
                reinterpret_cast<const char *>(pc.data + pc.pos),
                key_len);
            pc.pos += key_len;

            Value val;
            val.type = type;
            switch (type) {
              case RecordType::U64:
              case RecordType::I64:
              case RecordType::F64:
                if (!pc.ok(8))
                    fatal("checkpoint section '%s': key '%s' "
                          "truncated", sec.name.c_str(), key.c_str());
                if (type == RecordType::F64)
                    val.f64 = pc.f64();
                else if (type == RecordType::I64)
                    val.i64 = static_cast<std::int64_t>(pc.u64());
                else
                    val.u64 = pc.u64();
                break;
              case RecordType::Bool:
                if (!pc.ok(1))
                    fatal("checkpoint section '%s': key '%s' "
                          "truncated", sec.name.c_str(), key.c_str());
                val.b = pc.u8() != 0;
                break;
              case RecordType::Str:
              case RecordType::Bytes: {
                if (!pc.ok(4))
                    fatal("checkpoint section '%s': key '%s' "
                          "truncated", sec.name.c_str(), key.c_str());
                std::uint32_t n = pc.u32();
                if (!pc.ok(n))
                    fatal("checkpoint section '%s': key '%s' "
                          "truncated", sec.name.c_str(), key.c_str());
                val.str.assign(
                    reinterpret_cast<const char *>(pc.data + pc.pos),
                    n);
                pc.pos += n;
                break;
              }
              case RecordType::U64Vec:
              case RecordType::F64Vec: {
                if (!pc.ok(4))
                    fatal("checkpoint section '%s': key '%s' "
                          "truncated", sec.name.c_str(), key.c_str());
                std::uint32_t n = pc.u32();
                if (!pc.ok(std::size_t(n) * 8))
                    fatal("checkpoint section '%s': key '%s' "
                          "truncated", sec.name.c_str(), key.c_str());
                if (type == RecordType::U64Vec) {
                    val.u64vec.reserve(n);
                    for (std::uint32_t i = 0; i < n; ++i)
                        val.u64vec.push_back(pc.u64());
                } else {
                    val.f64vec.reserve(n);
                    for (std::uint32_t i = 0; i < n; ++i)
                        val.f64vec.push_back(pc.f64());
                }
                break;
              }
              default:
                fatal("checkpoint section '%s': key '%s' has unknown "
                      "record type %u (newer format?)",
                      sec.name.c_str(), key.c_str(),
                      static_cast<unsigned>(type));
            }

            if (sec.index.count(key) != 0)
                fatal("checkpoint section '%s': duplicate key '%s'",
                      sec.name.c_str(), key.c_str());
            sec.index.emplace(key, sec.records.size());
            sec.records.emplace_back(std::move(key), std::move(val));
        }

        if (sectionIndex_.count(sec.name) != 0)
            fatal("checkpoint has two sections named '%s'",
                  sec.name.c_str());
        last = sec.name;
        sectionIndex_.emplace(sec.name, sections_.size());
        sections_.push_back(std::move(sec));
    }
}

bool
CkptIn::hasSection(const std::string &name) const
{
    return sectionIndex_.count(name) != 0;
}

void
CkptIn::openSection(const std::string &name)
{
    auto it = sectionIndex_.find(name);
    if (it == sectionIndex_.end())
        fatal("checkpoint has no section '%s' (does the restoring "
              "system match the saved one?)", name.c_str());
    cur_ = &sections_[it->second];
}

std::uint32_t
CkptIn::sectionVersion() const
{
    if (cur_ == nullptr)
        panic("sectionVersion() with no open checkpoint section");
    return cur_->version;
}

const CkptIn::Value *
CkptIn::find(const std::string &key) const
{
    if (cur_ == nullptr)
        panic("checkpoint get('%s') with no open section",
              key.c_str());
    auto it = cur_->index.find(key);
    if (it == cur_->index.end())
        return nullptr;
    return &cur_->records[it->second].second;
}

const CkptIn::Value &
CkptIn::lookup(const std::string &key, RecordType type) const
{
    const Value *v = find(key);
    if (v == nullptr)
        fatal("checkpoint section '%s': missing key '%s'",
              cur_->name.c_str(), key.c_str());
    if (v->type != type)
        fatal("checkpoint section '%s': key '%s' is %s, expected %s",
              cur_->name.c_str(), key.c_str(), typeName(v->type),
              typeName(type));
    return *v;
}

bool
CkptIn::has(const std::string &key) const
{
    return find(key) != nullptr;
}

std::uint64_t
CkptIn::getU64(const std::string &key) const
{
    return lookup(key, RecordType::U64).u64;
}

std::int64_t
CkptIn::getI64(const std::string &key) const
{
    return lookup(key, RecordType::I64).i64;
}

double
CkptIn::getF64(const std::string &key) const
{
    return lookup(key, RecordType::F64).f64;
}

bool
CkptIn::getBool(const std::string &key) const
{
    return lookup(key, RecordType::Bool).b;
}

const std::string &
CkptIn::getStr(const std::string &key) const
{
    return lookup(key, RecordType::Str).str;
}

const std::string &
CkptIn::getBytes(const std::string &key) const
{
    return lookup(key, RecordType::Bytes).str;
}

const std::vector<std::uint64_t> &
CkptIn::getU64Vec(const std::string &key) const
{
    return lookup(key, RecordType::U64Vec).u64vec;
}

const std::vector<double> &
CkptIn::getF64Vec(const std::string &key) const
{
    return lookup(key, RecordType::F64Vec).f64vec;
}

std::uint64_t
CkptIn::getOrU64(const std::string &key, std::uint64_t def) const
{
    const Value *v = find(key);
    return v != nullptr && v->type == RecordType::U64 ? v->u64 : def;
}

double
CkptIn::getOrF64(const std::string &key, double def) const
{
    const Value *v = find(key);
    return v != nullptr && v->type == RecordType::F64 ? v->f64 : def;
}

bool
CkptIn::getOrBool(const std::string &key, bool def) const
{
    const Value *v = find(key);
    return v != nullptr && v->type == RecordType::Bool ? v->b : def;
}

void
CkptIn::getEvent(const std::string &key, EventQueue &eq, Event &ev)
{
    const auto &vec = getU64Vec(key);
    if (vec.size() != 3)
        fatal("checkpoint section '%s': key '%s' is not an event "
              "record", cur_->name.c_str(), key.c_str());
    if (ev.scheduled())
        panic("checkpoint restore of already-scheduled event '%s'",
              ev.name().c_str());
    if (vec[0] != 0)
        deferred_.push_back({vec[2], vec[1], &eq, &ev});
}

Packet *
CkptIn::getPacket(const std::string &key) const
{
    const auto &vec = getU64Vec(key);
    if (vec.empty())
        fatal("checkpoint section '%s': key '%s' is not a packet "
              "record", cur_->name.c_str(), key.c_str());
    if (vec[0] == 0)
        return nullptr;
    if (vec.size() != 15)
        fatal("checkpoint section '%s': key '%s' is not a packet "
              "record", cur_->name.c_str(), key.c_str());

    // Mint the packet under its original id, then put the thread's id
    // counter back (the "sim" section owns the counter's final value).
    std::uint64_t counter = Packet::nextId();
    Packet::setNextId(vec[1]);
    auto *pkt = new Packet(static_cast<MemCmd>(vec[2]), vec[3],
                           static_cast<unsigned>(vec[4]),
                           static_cast<RequestorId>(vec[5]));
    Packet::setNextId(counter);
    pkt->setInjectedTick(vec[6]);
    stats::LatencySpan sp;
    sp.valid = vec[7] != 0;
    sp.enqueue = vec[8];
    sp.pick = vec[9];
    sp.bankReady = vec[10];
    sp.issue = vec[11];
    sp.burstStart = vec[12];
    sp.done = vec[13];
    sp.staticLat = vec[14];
    pkt->setSpan(sp);
    return pkt;
}

void
CkptIn::finalizeEvents()
{
    if (finalized_)
        panic("finalizeEvents() called twice on one checkpoint");
    finalized_ = true;
    // Scheduling in saved service-rank order hands out fresh sequence
    // numbers in the original relative order, so ties at the same
    // (tick, priority) resolve exactly as in the uninterrupted run.
    // Ranks are per queue (each shard numbers its own services), and a
    // global sort keeps every queue's internal order intact, so one
    // pass schedules all shards correctly.
    std::stable_sort(deferred_.begin(), deferred_.end(),
                     [](const DeferredEvent &a, const DeferredEvent &b) {
                         return a.rank < b.rank;
                     });
    for (const DeferredEvent &d : deferred_)
        d.eq->schedule(*d.ev, d.when);
    deferred_.clear();
}

//
// Fingerprint helpers
//

void
putCheck(CkptOut &out, const std::string &key, std::uint64_t value)
{
    out.putU64(key, value);
}

void
verifyCheck(CkptIn &in, const std::string &key, std::uint64_t value,
            const char *what)
{
    std::uint64_t stored = in.getU64(key);
    if (stored != value)
        fatal("checkpoint %s mismatch: snapshot has %016llx, the "
              "restoring system computes %016llx — restore into an "
              "identically configured system", what,
              static_cast<unsigned long long>(stored),
              static_cast<unsigned long long>(value));
}

//
// Whole-simulator snapshot
//

namespace {

void
saveStatsGroup(CkptOut &out, const stats::Group &g,
               const std::string &prefix)
{
    for (const stats::Stat *s : g.statList())
        s->ckptSave(out, prefix + s->name());
    for (const stats::Group *c : g.children())
        saveStatsGroup(out, *c, prefix + c->name() + ".");
}

void
restoreStatsGroup(CkptIn &in, stats::Group &g,
                  const std::string &prefix)
{
    for (stats::Stat *s : g.statList())
        s->ckptRestore(in, prefix + s->name());
    for (stats::Group *c : g.children())
        restoreStatsGroup(in, *c, prefix + c->name() + ".");
}

} // namespace

void
save(Simulator &sim, std::ostream &os)
{
    CkptOut out(os);

    out.beginSection("sim");
    out.putTick("curTick", sim.curTick());
    out.putU64("numServiced", sim.eventq().numEventsServiced());
    out.putU64("nextPacketId", Packet::nextId());
    out.putU64("objectCount", sim.objects().size());
    // Per-shard clocks and service counts. Saves only happen with the
    // engine quiesced at a barrier, so every shard sits at a common
    // tick; the service counts still differ per shard.
    if (sim.numShards() > 1) {
        std::vector<std::uint64_t> ticks, serviced;
        for (unsigned s = 0; s < sim.numShards(); ++s) {
            ticks.push_back(sim.shardQueue(s).curTick());
            serviced.push_back(sim.shardQueue(s).numEventsServiced());
        }
        out.putU64Vec("shardTicks", ticks);
        out.putU64Vec("shardServiced", serviced);
    }
    out.endSection();

    out.beginSection("stats");
    saveStatsGroup(out, sim.rootStats(), "");
    out.endSection();

    for (SimObject *obj : sim.objects()) {
        out.beginSection(obj->name());
        obj->serialize(out);
        out.endSection();
    }
}

void
restore(Simulator &sim, std::istream &is)
{
    for (unsigned s = 0; s < sim.numShards(); ++s)
        if (!sim.shardQueue(s).empty() ||
            sim.shardQueue(s).curTick() != 0)
            fatal("checkpoint restore requires a freshly constructed "
                  "simulator (nothing run, nothing scheduled)");
    if (sim.startupDone())
        fatal("checkpoint restore requires a freshly constructed "
              "simulator (nothing run, nothing scheduled)");

    CkptIn in(is);

    in.openSection("sim");
    // Time first: deferred events re-schedule against the restored
    // tick, and components may sanity-check against curTick().
    if (in.has("shardTicks")) {
        const auto &ticks = in.getU64Vec("shardTicks");
        const auto &serviced = in.getU64Vec("shardServiced");
        if (ticks.size() != sim.numShards())
            fatal("checkpoint holds %zu shards but the restoring "
                  "simulator has %u — rebuild with the same channel "
                  "count", ticks.size(), sim.numShards());
        for (unsigned s = 0; s < sim.numShards(); ++s)
            sim.shardQueue(s).restoreState(ticks[s], serviced[s]);
    } else {
        if (sim.numShards() > 1)
            fatal("unsharded checkpoint cannot restore into a "
                  "sharded simulator");
        sim.eventq().restoreState(in.getTick("curTick"),
                                  in.getU64("numServiced"));
    }
    Packet::setNextId(in.getU64("nextPacketId"));
    if (in.getU64("objectCount") != sim.objects().size())
        fatal("checkpoint holds %llu objects but the restoring "
              "simulator has %zu",
              static_cast<unsigned long long>(
                  in.getU64("objectCount")),
              sim.objects().size());

    in.openSection("stats");
    restoreStatsGroup(in, sim.rootStats(), "");

    for (SimObject *obj : sim.objects()) {
        in.openSection(obj->name());
        obj->unserialize(in);
    }

    in.finalizeEvents();
    sim.markStartupDone();
}

void
saveFile(Simulator &sim, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot write checkpoint '%s'", path.c_str());
    save(sim, os);
    os.flush();
    if (!os)
        fatal("error writing checkpoint '%s'", path.c_str());
}

void
restoreFile(Simulator &sim, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot read checkpoint '%s'", path.c_str());
    restore(sim, is);
}

std::string
saveToString(Simulator &sim)
{
    std::ostringstream os(std::ios::binary);
    save(sim, os);
    return os.str();
}

void
restoreFromString(Simulator &sim, const std::string &buf)
{
    std::istringstream is(buf, std::ios::binary);
    restore(sim, is);
}

//
// JSON debug dump
//

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << formatString("\\u%04x", c);
            else
                os << c;
        }
    }
    os << '"';
}

} // namespace

void
dumpJson(std::istream &is, std::ostream &os)
{
    CkptIn in(is);

    os << "{\"format_version\": " << kFormatVersion
       << ", \"sections\": [\n";
    for (std::size_t si = 0; si < in.sections_.size(); ++si) {
        const auto &sec = in.sections_[si];
        os << " {\"name\": ";
        jsonEscape(os, sec.name);
        os << ", \"version\": " << sec.version << ", \"records\": {";
        bool first = true;
        for (const auto &[key, val] : sec.records) {
            if (!first)
                os << ",";
            first = false;
            os << "\n   ";
            jsonEscape(os, key);
            os << ": ";
            switch (val.type) {
              case RecordType::U64:
                os << val.u64;
                break;
              case RecordType::I64:
                os << val.i64;
                break;
              case RecordType::F64:
                os << formatString("%.17g", val.f64);
                break;
              case RecordType::Bool:
                os << (val.b ? "true" : "false");
                break;
              case RecordType::Str:
                jsonEscape(os, val.str);
                break;
              case RecordType::Bytes: {
                std::string hex;
                for (unsigned char c : val.str)
                    hex += formatString("%02x", c);
                jsonEscape(os, hex);
                break;
              }
              case RecordType::U64Vec: {
                os << '[';
                for (std::size_t i = 0; i < val.u64vec.size(); ++i)
                    os << (i ? "," : "") << val.u64vec[i];
                os << ']';
                break;
              }
              case RecordType::F64Vec: {
                os << '[';
                for (std::size_t i = 0; i < val.f64vec.size(); ++i)
                    os << (i ? "," : "")
                       << formatString("%.17g", val.f64vec[i]);
                os << ']';
                break;
              }
            }
        }
        os << "\n }}" << (si + 1 < in.sections_.size() ? "," : "")
           << "\n";
    }
    os << "]}\n";
}

void
dumpJsonFile(const std::string &path, std::ostream &os)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot read checkpoint '%s'", path.c_str());
    dumpJson(is, os);
}

} // namespace ckpt
} // namespace dramctrl
