/**
 * @file
 * Trace support: record a request stream at any point in the memory
 * system, and replay a recorded (or synthesised) trace later.
 *
 * gem5 offers trace-based generators next to the statistical ones
 * (Section III-A); the paper cautions that traces miss the feedback
 * between memory latency and the request stream, which is exactly what
 * the replay-vs-live experiments built on these classes can quantify.
 *
 * Trace text format, one request per line, '#' comments allowed:
 *
 *     <tick> <r|w> <hex addr> <size>
 *
 * The high-throughput binary twin (.dtrc) lives in trace_file.hh; the
 * TraceSource seam below is what lets TracePlayer replay either one —
 * a materialised vector or a streamed multi-gigabyte file — through
 * identical injection logic.
 */

#ifndef DRAMCTRL_TRAFFICGEN_TRACE_H
#define DRAMCTRL_TRAFFICGEN_TRACE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "stats/stats.hh"

namespace dramctrl {

/** One recorded request. */
struct TraceEntry
{
    Tick tick = 0;
    bool isRead = true;
    Addr addr = 0;
    unsigned size = 64;

    bool operator==(const TraceEntry &) const = default;
};

/**
 * Parse a text trace file; fatal() (naming the file and line) on
 * malformed fields, numeric overflow, trailing garbage, and ticks
 * that go backwards.
 */
std::vector<TraceEntry> loadTrace(const std::string &path);

/** Serialise entries to a text trace file. */
void saveTrace(const std::string &path,
               const std::vector<TraceEntry> &entries);

/**
 * Pull-based trace sources, the seam between TracePlayer and where a
 * trace actually lives. peek() exposes the next entry without
 * consuming it; advance() pops it; seek() repositions (used by
 * checkpoint restore).
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** @return false when the stream is exhausted. */
    virtual bool peek(TraceEntry &e) = 0;
    virtual void advance() = 0;

    /** Entries consumed so far. */
    virtual std::uint64_t position() const = 0;

    /** Reposition so the next peek() yields entry @p n. */
    virtual void seek(std::uint64_t n) = 0;

    /** Stable id of the underlying stream, for checkpoint checks. */
    virtual std::uint64_t fingerprint() const = 0;
};

/** A materialised trace (text loads, tests, recorded vectors). */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceEntry> entries)
        : entries_(std::move(entries))
    {}

    bool
    peek(TraceEntry &e) override
    {
        if (pos_ >= entries_.size())
            return false;
        e = entries_[pos_];
        return true;
    }

    void advance() override { ++pos_; }
    std::uint64_t position() const override { return pos_; }
    void seek(std::uint64_t n) override { pos_ = n; }
    std::uint64_t fingerprint() const override
    {
        return entries_.size();
    }

  private:
    std::vector<TraceEntry> entries_;
    std::uint64_t pos_ = 0;
};

/**
 * A transparent interposer that records every request passing through
 * it (time, direction, address, size) while forwarding traffic and flow
 * control unchanged in both directions. By default entries accumulate
 * in an in-memory vector; install a sink to stream them out instead
 * (e.g. straight into a TraceWriter) with O(1) memory.
 */
class TraceRecorder : public SimObject
{
  public:
    TraceRecorder(Simulator &sim, std::string name);

    /** Port facing the requestor (CPU/generator side). */
    ResponsePort &cpuSidePort() { return cpuSide_; }
    /** Port facing the memory. */
    RequestPort &memSidePort() { return memSide_; }

    const std::vector<TraceEntry> &trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

    /**
     * Stream accepted requests to @p sink instead of buffering them;
     * entries arrive in simulation-tick order.
     */
    void
    setSink(std::function<void(const TraceEntry &)> sink)
    {
        sink_ = std::move(sink);
    }

  private:
    class CpuSide : public ResponsePort
    {
      public:
        CpuSide(std::string name, TraceRecorder &rec)
            : ResponsePort(std::move(name)), rec_(rec)
        {}

        bool
        recvTimingReq(Packet *pkt) override
        {
            return rec_.handleReq(pkt);
        }

        void recvRespRetry() override { rec_.memSide_.sendRespRetry(); }

      private:
        TraceRecorder &rec_;
    };

    class MemSide : public RequestPort
    {
      public:
        MemSide(std::string name, TraceRecorder &rec)
            : RequestPort(std::move(name)), rec_(rec)
        {}

        bool
        recvTimingResp(Packet *pkt) override
        {
            return rec_.cpuSide_.sendTimingResp(pkt);
        }

        void recvReqRetry() override { rec_.cpuSide_.sendReqRetry(); }

      private:
        TraceRecorder &rec_;
    };

    bool handleReq(Packet *pkt);

    CpuSide cpuSide_;
    MemSide memSide_;
    std::vector<TraceEntry> trace_;
    std::function<void(const TraceEntry &)> sink_;
};

/** How a TracePlayer should replay its source. */
struct TracePlayerConfig
{
    /** Where the entries come from; shared so harness plumbing and
     *  the player can both hold it without ownership gymnastics. */
    std::shared_ptr<TraceSource> source;
    /** Stretch (>1) or compress (<1) recorded inter-request gaps. */
    double timeScale = 1.0;
    /**
     * When a request is refused, delay every subsequent entry by the
     * stall (true: the trace is an intent schedule, replay like a
     * blocked requestor). Captured traces already carry the original
     * backpressure in their timestamps, so faithful replay sets this
     * false and retries without shifting the schedule.
     */
    bool slipOnStall = true;
};

/**
 * Replays a trace through a RequestPort at the recorded ticks (scaled
 * by timeScale). A refused request stalls the replay; subsequent
 * entries slip accordingly, like a blocked requestor would. The
 * player pulls entries one at a time, so a streaming source replays
 * in O(1) memory.
 */
class TracePlayer : public SimObject
{
  public:
    TracePlayer(Simulator &sim, std::string name,
                const TracePlayerConfig &cfg, RequestorId id);
    TracePlayer(Simulator &sim, std::string name,
                std::vector<TraceEntry> trace, RequestorId id,
                double time_scale = 1.0);
    ~TracePlayer() override;

    RequestPort &port() { return port_; }

    void startup() override;

    /** All entries injected and responded. */
    bool done() const;

    std::uint64_t injected() const { return next_; }
    std::uint64_t responses() const { return responses_; }
    std::uint64_t readResponses() const { return readResponses_; }

    /** Mean end-to-end read latency in nanoseconds. */
    double avgReadLatencyNs() const;

    void serialize(ckpt::CkptOut &out) const override;
    void unserialize(ckpt::CkptIn &in) override;

  private:
    class PlayerPort : public RequestPort
    {
      public:
        PlayerPort(std::string name, TracePlayer &player)
            : RequestPort(std::move(name)), player_(player)
        {}

        bool
        recvTimingResp(Packet *pkt) override
        {
            return player_.recvTimingResp(pkt);
        }

        void recvReqRetry() override { player_.recvReqRetry(); }

      private:
        TracePlayer &player_;
    };

    /** Ensure cur_ holds the next undispatched entry. */
    bool fetch();
    Tick scaledTick(const TraceEntry &e) const;
    void tryInject();
    bool recvTimingResp(Packet *pkt);
    void recvReqRetry();
    void scheduleNext();

    std::shared_ptr<TraceSource> source_;
    RequestorId id_;
    double timeScale_;
    bool slipOnStall_;
    PlayerPort port_;

    TraceEntry cur_{};
    bool curValid_ = false;
    bool exhausted_ = false;

    std::uint64_t next_ = 0; ///< entries successfully dispatched
    std::uint64_t responses_ = 0;
    std::uint64_t outstandingReads_ = 0;
    Packet *blockedPkt_ = nullptr;
    /** Intended (scaled + slipped) tick of the blocked entry. */
    Tick blockedIntent_ = 0;
    /** Accumulated slip when the memory system pushed back. */
    Tick slip_ = 0;

    Tick totReadLatency_ = 0;
    std::uint64_t readResponses_ = 0;

    EventFunctionWrapper injectEvent_;
};

} // namespace dramctrl

#endif // DRAMCTRL_TRAFFICGEN_TRACE_H
