/**
 * @file
 * Trace support: record a request stream at any point in the memory
 * system, and replay a recorded (or synthesised) trace later.
 *
 * gem5 offers trace-based generators next to the statistical ones
 * (Section III-A); the paper cautions that traces miss the feedback
 * between memory latency and the request stream, which is exactly what
 * the replay-vs-live experiments built on these classes can quantify.
 *
 * Trace text format, one request per line, '#' comments allowed:
 *
 *     <tick> <r|w> <hex addr> <size>
 */

#ifndef DRAMCTRL_TRAFFICGEN_TRACE_H
#define DRAMCTRL_TRAFFICGEN_TRACE_H

#include <string>
#include <vector>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "stats/stats.hh"

namespace dramctrl {

/** One recorded request. */
struct TraceEntry
{
    Tick tick = 0;
    bool isRead = true;
    Addr addr = 0;
    unsigned size = 64;

    bool operator==(const TraceEntry &) const = default;
};

/** Parse a trace file; fatal() on malformed input. */
std::vector<TraceEntry> loadTrace(const std::string &path);

/** Serialise entries to a trace file. */
void saveTrace(const std::string &path,
               const std::vector<TraceEntry> &entries);

/**
 * A transparent interposer that records every request passing through
 * it (time, direction, address, size) while forwarding traffic and flow
 * control unchanged in both directions.
 */
class TraceRecorder : public SimObject
{
  public:
    TraceRecorder(Simulator &sim, std::string name);

    /** Port facing the requestor (CPU/generator side). */
    ResponsePort &cpuSidePort() { return cpuSide_; }
    /** Port facing the memory. */
    RequestPort &memSidePort() { return memSide_; }

    const std::vector<TraceEntry> &trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

  private:
    class CpuSide : public ResponsePort
    {
      public:
        CpuSide(std::string name, TraceRecorder &rec)
            : ResponsePort(std::move(name)), rec_(rec)
        {}

        bool
        recvTimingReq(Packet *pkt) override
        {
            return rec_.handleReq(pkt);
        }

        void recvRespRetry() override { rec_.memSide_.sendRespRetry(); }

      private:
        TraceRecorder &rec_;
    };

    class MemSide : public RequestPort
    {
      public:
        MemSide(std::string name, TraceRecorder &rec)
            : RequestPort(std::move(name)), rec_(rec)
        {}

        bool
        recvTimingResp(Packet *pkt) override
        {
            return rec_.cpuSide_.sendTimingResp(pkt);
        }

        void recvReqRetry() override { rec_.cpuSide_.sendReqRetry(); }

      private:
        TraceRecorder &rec_;
    };

    bool handleReq(Packet *pkt);

    CpuSide cpuSide_;
    MemSide memSide_;
    std::vector<TraceEntry> trace_;
};

/**
 * Replays a trace through a RequestPort at the recorded ticks (scaled
 * by timeScale). A refused request stalls the replay; subsequent
 * entries slip accordingly, like a blocked requestor would.
 */
class TracePlayer : public SimObject
{
  public:
    TracePlayer(Simulator &sim, std::string name,
                std::vector<TraceEntry> trace, RequestorId id,
                double time_scale = 1.0);
    ~TracePlayer() override;

    RequestPort &port() { return port_; }

    void startup() override;

    /** All entries injected and responded. */
    bool done() const;

    std::uint64_t injected() const { return next_; }
    std::uint64_t responses() const { return responses_; }

    /** Mean end-to-end read latency in nanoseconds. */
    double avgReadLatencyNs() const;

    void serialize(ckpt::CkptOut &out) const override;
    void unserialize(ckpt::CkptIn &in) override;

  private:
    class PlayerPort : public RequestPort
    {
      public:
        PlayerPort(std::string name, TracePlayer &player)
            : RequestPort(std::move(name)), player_(player)
        {}

        bool
        recvTimingResp(Packet *pkt) override
        {
            return player_.recvTimingResp(pkt);
        }

        void recvReqRetry() override { player_.recvReqRetry(); }

      private:
        TracePlayer &player_;
    };

    void tryInject();
    bool recvTimingResp(Packet *pkt);
    void recvReqRetry();
    void scheduleNext();
    Tick entryTick(std::uint64_t idx) const;

    std::vector<TraceEntry> trace_;
    RequestorId id_;
    double timeScale_;
    PlayerPort port_;

    std::uint64_t next_ = 0;
    std::uint64_t responses_ = 0;
    std::uint64_t outstandingReads_ = 0;
    Packet *blockedPkt_ = nullptr;
    /** Accumulated slip when the memory system pushed back. */
    Tick slip_ = 0;

    Tick totReadLatency_ = 0;
    std::uint64_t readResponses_ = 0;

    EventFunctionWrapper injectEvent_;
};

} // namespace dramctrl

#endif // DRAMCTRL_TRAFFICGEN_TRACE_H
