// LinearGen is header-only; this file anchors it in the library so the
// build exposes one translation unit per generator flavour.
#include "trafficgen/linear_gen.hh"
