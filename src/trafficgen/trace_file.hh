/**
 * @file
 * Binary trace format (.dtrc) with mmap streaming ingestion.
 *
 * The text format in trace.hh is convenient to read and edit, but
 * parsing it tops out far below what the batch engine can replay, and
 * loading it materialises the whole trace in memory. The .dtrc format
 * is the high-throughput twin: fixed-width little-endian records that
 * decode with a handful of shifts, streamed straight off an mmap so a
 * multi-gigabyte trace replays in O(1) resident memory.
 *
 * File layout (all integers little-endian, following the src/ckpt
 * stream conventions — explicit byte order, magic numbers, CRC):
 *
 *   header  (40 bytes)
 *     u32  magic            "DTRC" (0x43525444)
 *     u32  version          1
 *     u64  ticksPerSecond   clock domain of the tick values
 *     u64  recordCount      patched on finish(); ~0 while streaming
 *     u32  numSources       distinct source-port ids (max id + 1)
 *     u32  flags            bit 0: live capture (timestamps carry the
 *                           captured run's backpressure; replay must
 *                           not slip on stalls); other bits reserved
 *     u64  reserved         0
 *   records (16 bytes each)
 *     u64  word0            bits 0..55  tick delta to previous record
 *                           bits 56..63 source id (front-port index)
 *     u64  word1            bits 0..47  address
 *                           bits 48..62 request size in bytes
 *                           bit  63     1 = read, 0 = write
 *   footer  (24 bytes)
 *     u32  magic            "DEND" (0x444e4544)
 *     u32  crc32            IEEE CRC32 over all record bytes
 *     u64  recordCount      must match the header
 *     u64  lastTick         absolute tick of the final record
 *
 * Ticks are stored as deltas, which makes every well-formed file
 * monotonic by construction and keeps the common small gaps dense.
 * The limits implied by the packing (tick gaps below 2^56 ticks,
 * addresses below 2^48, sizes below 2^15, at most 256 source ports)
 * are checked at write time with a fatal() naming the offender.
 */

#ifndef DRAMCTRL_TRAFFICGEN_TRACE_FILE_H
#define DRAMCTRL_TRAFFICGEN_TRACE_FILE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "trafficgen/trace.hh"

namespace dramctrl {

constexpr std::uint32_t kTraceMagic = 0x43525444;    // "DTRC"
constexpr std::uint32_t kTraceEndMagic = 0x444e4544; // "DEND"
constexpr std::uint32_t kTraceVersion = 1;
constexpr std::size_t kTraceHeaderSize = 40;
constexpr std::size_t kTraceRecordSize = 16;
constexpr std::size_t kTraceFooterSize = 24;

/**
 * Header flag: the trace was captured from a live run, so its
 * timestamps are the packets' injection ticks and already include the
 * backpressure the original requestors experienced. Replay disables
 * slip-on-stall for such traces (see TracePlayerConfig::slipOnStall)
 * and thereby reproduces the captured run's controller statistics.
 */
constexpr std::uint32_t kTraceFlagLiveCapture = 1u << 0;

constexpr std::uint64_t kMaxTraceTickDelta = (1ULL << 56) - 1;
constexpr Addr kMaxTraceAddr = (1ULL << 48) - 1;
constexpr unsigned kMaxTraceReqSize = (1u << 15) - 1;
constexpr unsigned kMaxTraceSources = 256;

/** Parsed header + footer of a .dtrc file. */
struct TraceFileInfo
{
    std::uint32_t version = kTraceVersion;
    std::uint64_t ticksPerSecond = kTicksPerSecond;
    std::uint64_t recordCount = 0;
    std::uint32_t numSources = 1;
    std::uint32_t flags = 0;
    std::uint64_t lastTick = 0;
    std::uint32_t crc = 0;
};

/**
 * Streaming .dtrc writer: append entries in tick order, finish() (or
 * destroy) to seal the file with the footer and patch the header's
 * record count. Appends are buffered, so per-record cost is a couple
 * of stores; the CRC is maintained incrementally.
 */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path,
                         std::uint64_t ticks_per_second =
                             kTicksPerSecond,
                         std::uint32_t flags = 0);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /**
     * Append one request. @p src is the originating front-port index
     * (0 for single-requestor streams). Entries must arrive in
     * non-decreasing tick order; a backwards tick is fatal().
     */
    void append(const TraceEntry &e, unsigned src = 0);

    /** Seal the file: flush records, write the footer, patch the
     *  header. Idempotent; also run by the destructor. */
    void finish();

    std::uint64_t numRecords() const { return count_; }
    const std::string &path() const { return path_; }

  private:
    void flushBuffer();

    std::string path_;
    std::FILE *file_ = nullptr;
    std::string buffer_;
    std::uint64_t ticksPerSecond_;
    std::uint64_t count_ = 0;
    Tick lastTick_ = 0;
    unsigned maxSrc_ = 0;
    std::uint32_t crc_ = 0xFFFFFFFFu;
    bool finished_ = false;
};

/**
 * Streaming .dtrc reader. Opens the file, validates its structure
 * (magic, version, sizes, header/footer consistency) and — unless
 * told not to — verifies the record CRC up front, then decodes
 * records one next() call at a time without ever materialising the
 * trace: the mmap backend walks a SEQUENTIAL-advised mapping and
 * releases consumed windows with MADV_DONTNEED, so resident memory
 * stays O(1) however large the file is. A portable read()-chunk
 * backend covers platforms (or filesystems) without mmap; both
 * backends produce bit-identical entry streams.
 */
class TraceReader
{
  public:
    enum class Backend {
        Auto, ///< mmap when available, read() otherwise
        Mmap, ///< require the mmap backend (fatal if unavailable)
        Read, ///< force the portable read() backend
    };

    explicit TraceReader(const std::string &path, bool verify_crc = true,
                         Backend backend = Backend::Auto);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    const TraceFileInfo &info() const { return info_; }
    const std::string &path() const { return path_; }
    bool usingMmap() const { return map_ != nullptr; }

    /**
     * Decode the next record into @p e (absolute tick) and optionally
     * its source id. @return false at end of stream.
     */
    bool next(TraceEntry &e, unsigned *src = nullptr);

    /** Rewind to the first record. */
    void reset();

    /** Records consumed so far. */
    std::uint64_t position() const { return pos_; }

  private:
    void openBackend(Backend backend);
    void verifyStructure(std::uint64_t file_size);
    std::uint32_t computeCrc();
    /** Refill the read()-backend buffer; @return bytes available. */
    std::size_t refill();

    std::string path_;
    TraceFileInfo info_;
    int fd_ = -1;

    // mmap backend.
    const unsigned char *map_ = nullptr; ///< whole-file mapping
    std::size_t mapSize_ = 0;
    std::size_t released_ = 0; ///< bytes already MADV_DONTNEED'd

    // read() backend.
    std::vector<unsigned char> buf_;
    std::size_t bufPos_ = 0;
    std::size_t bufLen_ = 0;
    std::uint64_t fileOff_ = 0; ///< next file offset to read

    std::uint64_t pos_ = 0; ///< records consumed
    Tick tick_ = 0;         ///< running absolute tick
};

/** Trace file flavours, detected by content (magic), not extension. */
enum class TraceFormat { Text, Dtrc };

/** Sniff @p path's format by its first bytes; fatal() if unreadable. */
TraceFormat traceFormatOf(const std::string &path);

/** Pick a format for a file to be written: .txt => Text, else Dtrc. */
TraceFormat traceFormatForOutput(const std::string &path);

/** Fully load a .dtrc file (validating the CRC). Sources discarded. */
std::vector<TraceEntry> loadTraceDtrc(const std::string &path);

/** Load either format, dispatching on the file's magic bytes. */
std::vector<TraceEntry> loadTraceAuto(const std::string &path);

/** Write @p entries (single source) as a .dtrc file. */
void saveTraceDtrc(const std::string &path,
                   const std::vector<TraceEntry> &entries);

/**
 * Build a player configuration for @p path, either format. A .dtrc
 * source streams (optionally filtered to @p src_filter); a text trace
 * is materialised. Live-captured files (kTraceFlagLiveCapture) get
 * slipOnStall = false so replay reproduces the captured run.
 */
TracePlayerConfig makeTracePlayerConfig(const std::string &path,
                                        double time_scale = 1.0,
                                        int src_filter = -1);

/**
 * A streamed .dtrc file, optionally filtered to one source id (the
 * multi-channel fan-out: player i replays only the records source i
 * produced, all players walking the same file).
 */
class DtrcTraceSource : public TraceSource
{
  public:
    /** @param src_filter -1 = every record, else only this source. */
    explicit DtrcTraceSource(const std::string &path,
                             int src_filter = -1,
                             bool verify_crc = true,
                             TraceReader::Backend backend =
                                 TraceReader::Backend::Auto);

    bool peek(TraceEntry &e) override;
    void advance() override;
    std::uint64_t position() const override { return pos_; }
    void seek(std::uint64_t n) override;
    std::uint64_t fingerprint() const override;

    const TraceReader &reader() const { return reader_; }

  private:
    /** Advance the reader to the next matching record. */
    void fill();

    TraceReader reader_;
    int srcFilter_;
    TraceEntry cached_{};
    bool cachedValid_ = false;
    bool exhausted_ = false;
    std::uint64_t pos_ = 0; ///< matching entries consumed
};

} // namespace dramctrl

#endif // DRAMCTRL_TRAFFICGEN_TRACE_FILE_H
