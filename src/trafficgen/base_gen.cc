#include "trafficgen/base_gen.hh"

#include "ckpt/ckpt.hh"
#include "sim/logging.hh"

namespace dramctrl {

BaseGen::GenStats::GenStats(BaseGen &gen)
    : sentReads(&gen.statGroup(), "sentReads", "read requests injected"),
      sentWrites(&gen.statGroup(), "sentWrites",
                 "write requests injected"),
      bytesSent(&gen.statGroup(), "bytesSent", "bytes requested"),
      recvResponses(&gen.statGroup(), "recvResponses",
                    "responses received"),
      retries(&gen.statGroup(), "retries",
              "requests initially refused downstream"),
      totReadLatency(&gen.statGroup(), "totReadLatency",
                     "total end-to-end read latency (ticks)"),
      readLatencyHist(&gen.statGroup(), "readLatencyHist",
                      "end-to-end read latency distribution (ns)", 64),
      avgReadLatencyNs(&gen.statGroup(), "avgReadLatencyNs",
                       "average end-to-end read latency (ns)",
                       [this] {
                           double n = readLatencyHist.count();
                           return n > 0 ? toNs(static_cast<Tick>(
                                              totReadLatency.value())) / n
                                        : 0.0;
                       }),
      xbarLatencyHist(&gen.statGroup(), "xbarLatencyHist",
                      "end-to-end latency outside the controller span "
                      "(ns)",
                      32)
{
}

BaseGen::BaseGen(Simulator &sim, std::string name, const GenConfig &cfg,
                 RequestorId id)
    : SimObject(sim, std::move(name)), cfg_(cfg), id_(id),
      port_(this->name() + ".port", *this), rng_(cfg.seed),
      injectEvent_([this] { tryInject(); },
                   this->name() + ".injectEvent")
{
    if (cfg_.blockSize == 0)
        fatal("generator '%s': zero block size", this->name().c_str());
    if (cfg_.readPct > 100)
        fatal("generator '%s': read percentage %u > 100",
              this->name().c_str(), cfg_.readPct);
    if (cfg_.minITT > cfg_.maxITT)
        fatal("generator '%s': minITT exceeds maxITT",
              this->name().c_str());
    if (cfg_.windowSize < cfg_.blockSize)
        fatal("generator '%s': window smaller than one block",
              this->name().c_str());
    stats_ = std::make_unique<GenStats>(*this);
}

BaseGen::~BaseGen()
{
    if (injectEvent_.scheduled())
        deschedule(injectEvent_);
    delete blockedPkt_;
}

void
BaseGen::startup()
{
    if (cfg_.numRequests == 0 || sent_ < cfg_.numRequests)
        schedule(injectEvent_, std::max(curTick(), cfg_.startTick));
}

bool
BaseGen::done() const
{
    return cfg_.numRequests != 0 && sent_ >= cfg_.numRequests &&
           outstanding_ == 0 && blockedPkt_ == nullptr;
}

double
BaseGen::avgReadLatencyNs() const
{
    return stats_->avgReadLatencyNs.value();
}

std::uint64_t
BaseGen::configHash() const
{
    std::string shape = formatString(
        "gen:%llx:%llu:%u:%u:%llu:%llu:%u:%llu",
        static_cast<unsigned long long>(cfg_.startAddr),
        static_cast<unsigned long long>(cfg_.windowSize),
        cfg_.blockSize, cfg_.readPct,
        static_cast<unsigned long long>(cfg_.minITT),
        static_cast<unsigned long long>(cfg_.maxITT),
        cfg_.maxOutstanding,
        static_cast<unsigned long long>(cfg_.startTick));
    return ckpt::fnv1a(shape);
}

void
BaseGen::serialize(ckpt::CkptOut &out) const
{
    ckpt::putCheck(out, "cfgHash", configHash());
    out.putU64("numRequests", cfg_.numRequests);
    out.putU64Vec("rng", {rng_.rawState(), rng_.rawInc()});
    out.putU64("sent", sent_);
    out.putU64("outstanding", outstanding_);
    out.putBool("throttled", throttled_);
    out.putPacket("blockedPkt", blockedPkt_);
    out.putEvent("injectEvent", eventq(), injectEvent_);
}

void
BaseGen::unserialize(ckpt::CkptIn &in)
{
    ckpt::verifyCheck(in, "cfgHash", configHash(),
                      "traffic-generator configuration");
    cfg_.numRequests = in.getU64("numRequests");
    const auto &rng = in.getU64Vec("rng");
    if (rng.size() != 2)
        fatal("checkpoint generator '%s' has a malformed rng record",
              name().c_str());
    rng_.setRaw(rng[0], rng[1]);
    sent_ = in.getU64("sent");
    outstanding_ = static_cast<unsigned>(in.getU64("outstanding"));
    throttled_ = in.getBool("throttled");
    blockedPkt_ = in.getPacket("blockedPkt");
    in.getEvent("injectEvent", eventq(), injectEvent_);
}

void
BaseGen::extendRun(std::uint64_t extra_requests, std::uint64_t reseed)
{
    cfg_.numRequests += extra_requests;
    rng_ = Random(reseed);
    if (!injectEvent_.scheduled() && !throttled_ &&
        blockedPkt_ == nullptr &&
        (cfg_.numRequests == 0 || sent_ < cfg_.numRequests))
        schedule(injectEvent_, curTick() + drawITT());
}

bool
BaseGen::nextIsRead()
{
    return rng_.uniform(1, 100) <= cfg_.readPct;
}

Tick
BaseGen::drawITT()
{
    if (cfg_.minITT == cfg_.maxITT)
        return cfg_.minITT;
    return rng_.uniform(cfg_.minITT, cfg_.maxITT);
}

void
BaseGen::scheduleNext()
{
    if (cfg_.numRequests != 0 && sent_ >= cfg_.numRequests)
        return;
    if (blockedPkt_ != nullptr || throttled_)
        return; // woken by retry or by a response instead
    if (!injectEvent_.scheduled())
        schedule(injectEvent_, curTick() + drawITT());
}

void
BaseGen::tryInject()
{
    DC_ASSERT(blockedPkt_ == nullptr, "inject while blocked");

    if (cfg_.maxOutstanding != 0 &&
        outstanding_ >= cfg_.maxOutstanding) {
        // Wait for a response to free a slot.
        throttled_ = true;
        return;
    }

    bool is_read = nextIsRead();
    Addr addr = nextAddr();
    auto *pkt = new Packet(is_read ? MemCmd::ReadReq : MemCmd::WriteReq,
                           addr, cfg_.blockSize, id_);
    pkt->setInjectedTick(curTick());

    if (is_read)
        ++stats_->sentReads;
    else
        ++stats_->sentWrites;
    stats_->bytesSent += cfg_.blockSize;
    ++sent_;
    ++outstanding_;

    if (!port_.sendTimingReq(pkt)) {
        // Downstream is full: hold the packet, undo nothing (it still
        // counts as injected), and wait for the retry.
        ++stats_->retries;
        blockedPkt_ = pkt;
        return;
    }

    scheduleNext();
}

void
BaseGen::recvReqRetry()
{
    DC_ASSERT(blockedPkt_ != nullptr, "retry with no blocked packet");
    Packet *pkt = blockedPkt_;
    blockedPkt_ = nullptr;
    if (!port_.sendTimingReq(pkt)) {
        blockedPkt_ = pkt;
        return;
    }
    scheduleNext();
}

bool
BaseGen::recvTimingResp(Packet *pkt)
{
    DC_ASSERT(pkt->isResponse(), "generator received %s",
              pkt->toString().c_str());
    ++stats_->recvResponses;
    DC_ASSERT(outstanding_ > 0, "response with nothing outstanding");
    --outstanding_;

    if (pkt->cmd() == MemCmd::ReadResp) {
        Tick lat = curTick() - pkt->injectedTick();
        stats_->totReadLatency += static_cast<double>(lat);
        stats_->readLatencyHist.sample(toNs(lat));

        // The controller's span decomposes the time from queue entry to
        // response launch; anything beyond that is interconnect and
        // delivery. The difference can never be negative: the response
        // arrives no earlier than the controller launched it, and the
        // packet entered the controller queue no earlier than it was
        // injected.
        const stats::LatencySpan &span = pkt->span();
        if (span.valid) {
            DC_ASSERT(span.consistent(),
                      "inconsistent latency span on %s",
                      pkt->toString().c_str());
            Tick inner = span.total();
            DC_ASSERT(inner <= lat,
                      "span total %llu exceeds end-to-end latency %llu "
                      "for %s",
                      static_cast<unsigned long long>(inner),
                      static_cast<unsigned long long>(lat),
                      pkt->toString().c_str());
            stats_->xbarLatencyHist.sample(toNs(lat - inner));
        }
    }
    delete pkt;

    if (throttled_) {
        throttled_ = false;
        if (blockedPkt_ == nullptr && !injectEvent_.scheduled() &&
            (cfg_.numRequests == 0 || sent_ < cfg_.numRequests))
            schedule(injectEvent_, curTick() + drawITT());
    }
    return true;
}

} // namespace dramctrl
