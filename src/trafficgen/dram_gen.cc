#include "trafficgen/dram_gen.hh"

#include <algorithm>

#include "ckpt/ckpt.hh"
#include "sim/logging.hh"

namespace dramctrl {

DramGen::DramGen(Simulator &sim, std::string name,
                 const DramGenConfig &cfg, RequestorId id)
    : BaseGen(sim, std::move(name), cfg, id), dcfg_(cfg),
      decoder_(cfg.org, cfg.mapping),
      bankCursor_(cfg.numBanksTarget - 1),
      nextRow_(cfg.org.totalBanks(), 0)
{
    if (dcfg_.numBanksTarget == 0 ||
        dcfg_.numBanksTarget > dcfg_.org.totalBanks())
        fatal("dram-aware generator '%s': %u banks targeted but the "
              "DRAM has %u",
              this->name().c_str(), dcfg_.numBanksTarget,
              dcfg_.org.totalBanks());
    dcfg_.strideBytes =
        std::min(dcfg_.strideBytes, dcfg_.org.rowBufferSize);
    if (dcfg_.strideBytes % dcfg_.blockSize != 0 ||
        dcfg_.strideBytes < dcfg_.blockSize)
        fatal("dram-aware generator '%s': stride %llu not a multiple "
              "of the block size %u",
              this->name().c_str(),
              static_cast<unsigned long long>(dcfg_.strideBytes),
              dcfg_.blockSize);
}

double
DramGen::expectedOpenPageHitRate() const
{
    double bursts = static_cast<double>(dcfg_.strideBytes) /
                    static_cast<double>(dcfg_.org.burstSize());
    bursts = std::max(bursts, 1.0);
    return (bursts - 1.0) / bursts;
}

namespace {

std::uint64_t
dramGenShapeHash(const DramGenConfig &cfg)
{
    return ckpt::fnv1a(formatString(
        "dramgen:%u:%u:%u:%u:%u:%llu:%llu:%u:%llu:%u",
        cfg.org.burstLength, cfg.org.deviceBusWidth,
        cfg.org.devicesPerRank, cfg.org.ranksPerChannel,
        cfg.org.banksPerRank,
        static_cast<unsigned long long>(cfg.org.rowBufferSize),
        static_cast<unsigned long long>(cfg.org.channelCapacity),
        static_cast<unsigned>(cfg.mapping),
        static_cast<unsigned long long>(cfg.strideBytes),
        cfg.numBanksTarget));
}

} // namespace

void
DramGen::serialize(ckpt::CkptOut &out) const
{
    BaseGen::serialize(out);
    ckpt::putCheck(out, "dramCfgHash", dramGenShapeHash(dcfg_));
    out.putU64("bankCursor", bankCursor_);
    out.putU64("byteOffset", byteOffset_);
    out.putU64("bytesLeftInStride", bytesLeftInStride_);
    out.putU64("currentRow", currentRow_);
    out.putU64Vec("nextRow", nextRow_);
}

void
DramGen::unserialize(ckpt::CkptIn &in)
{
    BaseGen::unserialize(in);
    ckpt::verifyCheck(in, "dramCfgHash", dramGenShapeHash(dcfg_),
                      "dram-aware generator configuration");
    bankCursor_ = static_cast<unsigned>(in.getU64("bankCursor"));
    byteOffset_ = in.getU64("byteOffset");
    bytesLeftInStride_ = in.getU64("bytesLeftInStride");
    currentRow_ = in.getU64("currentRow");
    const auto &rows = in.getU64Vec("nextRow");
    if (rows.size() != nextRow_.size())
        fatal("checkpoint generator '%s' targets %zu banks, this one "
              "%zu", name().c_str(), rows.size(), nextRow_.size());
    nextRow_ = rows;
}

Addr
DramGen::nextAddr()
{
    if (bytesLeftInStride_ == 0) {
        // Move to the next targeted bank and open a fresh row there, so
        // strides never revisit rows and the hit rate is set purely by
        // the stride length.
        bankCursor_ = (bankCursor_ + 1) % dcfg_.numBanksTarget;
        currentRow_ = nextRow_[bankCursor_];
        nextRow_[bankCursor_] =
            (nextRow_[bankCursor_] + 1) % dcfg_.org.rowsPerBank();
        byteOffset_ = 0;
        bytesLeftInStride_ = dcfg_.strideBytes;
    }

    DRAMAddr da;
    da.rank = bankCursor_ / dcfg_.org.banksPerRank;
    da.bank = bankCursor_ % dcfg_.org.banksPerRank;
    da.row = currentRow_;
    da.col = byteOffset_ / dcfg_.org.burstSize();

    Addr dense = decoder_.encode(da) +
                 byteOffset_ % dcfg_.org.burstSize();
    byteOffset_ += dcfg_.blockSize;
    bytesLeftInStride_ -= dcfg_.blockSize;

    return dcfg_.startAddr + dense;
}

} // namespace dramctrl
