/**
 * @file
 * Linear (sequential) traffic generator: a wrapping sequential address
 * stream, as used for the latency studies (paper Figures 6 and 7).
 */

#ifndef DRAMCTRL_TRAFFICGEN_LINEAR_GEN_H
#define DRAMCTRL_TRAFFICGEN_LINEAR_GEN_H

#include "ckpt/ckpt.hh"
#include "trafficgen/base_gen.hh"

namespace dramctrl {

class LinearGen : public BaseGen
{
  public:
    LinearGen(Simulator &sim, std::string name, const GenConfig &cfg,
              RequestorId id)
        : BaseGen(sim, std::move(name), cfg, id),
          next_(cfg.startAddr)
    {}

    void
    serialize(ckpt::CkptOut &out) const override
    {
        BaseGen::serialize(out);
        out.putU64("next", next_);
    }

    void
    unserialize(ckpt::CkptIn &in) override
    {
        BaseGen::unserialize(in);
        next_ = in.getU64("next");
    }

  protected:
    Addr
    nextAddr() override
    {
        Addr a = next_;
        next_ += genConfig().blockSize;
        if (next_ + genConfig().blockSize >
            genConfig().startAddr + genConfig().windowSize)
            next_ = genConfig().startAddr;
        return a;
    }

  private:
    Addr next_;
};

} // namespace dramctrl

#endif // DRAMCTRL_TRAFFICGEN_LINEAR_GEN_H
