#include "trafficgen/trace_file.hh"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define DRAMCTRL_HAVE_MMAP 1
#endif

#include "ckpt/ckpt.hh"
#include "sim/logging.hh"

namespace dramctrl {

namespace {

// Buffered appends amortise the stdio call; 64 KiB keeps the working
// set inside L2 while still batching 4096 records per flush.
constexpr std::size_t kWriterBufferBytes = 64 * 1024;

// The mmap backend releases consumed pages in 8 MiB windows: large
// enough that madvise cost is noise, small enough that resident
// memory stays flat while streaming multi-gigabyte traces.
constexpr std::size_t kReleaseWindowBytes = 8 * 1024 * 1024;

// The read() backend streams through a fixed 1 MiB buffer (a whole
// number of 16-byte records, so no record straddles a refill).
constexpr std::size_t kReadChunkBytes = 1024 * 1024;

static_assert(kReadChunkBytes % kTraceRecordSize == 0);

void
putU32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = (v >> (8 * i)) & 0xff;
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = (v >> (8 * i)) & 0xff;
}

std::uint32_t
getU32(const unsigned char *p)
{
#if defined(__BYTE_ORDER__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // The file is little-endian, so on matching hosts a plain load
    // is the decode; this keeps the per-record cost at two loads.
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
#else
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
#endif
}

std::uint64_t
getU64(const unsigned char *p)
{
#if defined(__BYTE_ORDER__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
#else
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
#endif
}

/** Decode one 16-byte record at @p p onto a running absolute tick. */
inline void
decodeRecord(const unsigned char *p, Tick &tick, TraceEntry &e,
             unsigned *src)
{
    std::uint64_t w0 = getU64(p);
    std::uint64_t w1 = getU64(p + 8);
    tick += w0 & kMaxTraceTickDelta;
    e.tick = tick;
    e.addr = w1 & kMaxTraceAddr;
    e.size = static_cast<unsigned>((w1 >> 48) & kMaxTraceReqSize);
    e.isRead = (w1 >> 63) != 0;
    if (src != nullptr)
        *src = static_cast<unsigned>(w0 >> 56);
}

} // namespace

//
// TraceWriter
//

TraceWriter::TraceWriter(const std::string &path,
                         std::uint64_t ticks_per_second,
                         std::uint32_t flags)
    : path_(path), ticksPerSecond_(ticks_per_second)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        fatal("cannot write trace file '%s'", path.c_str());
    buffer_.reserve(kWriterBufferBytes + kTraceRecordSize);

    unsigned char header[kTraceHeaderSize] = {};
    putU32(header, kTraceMagic);
    putU32(header + 4, kTraceVersion);
    putU64(header + 8, ticksPerSecond_);
    putU64(header + 16, ~std::uint64_t(0)); // count unknown until finish
    putU32(header + 24, 1);                 // numSources, patched later
    putU32(header + 28, flags);
    putU64(header + 32, 0);                 // reserved
    if (std::fwrite(header, 1, kTraceHeaderSize, file_) !=
        kTraceHeaderSize)
        fatal("cannot write trace header to '%s'", path.c_str());
}

TraceWriter::~TraceWriter()
{
    // A fatal() mid-write can leave the stream unsealed; finishing in
    // the destructor keeps every normally-destroyed writer valid.
    if (!finished_ && file_ != nullptr)
        finish();
}

void
TraceWriter::append(const TraceEntry &e, unsigned src)
{
    DC_ASSERT(!finished_, "append to a finished trace writer");
    if (e.tick < lastTick_)
        fatal("trace '%s': record %llu goes back in time (tick %llu "
              "after %llu); traces must be tick-ordered",
              path_.c_str(), static_cast<unsigned long long>(count_),
              static_cast<unsigned long long>(e.tick),
              static_cast<unsigned long long>(lastTick_));
    std::uint64_t delta = e.tick - lastTick_;
    if (delta > kMaxTraceTickDelta)
        fatal("trace '%s': tick gap %llu exceeds the format's 2^56 "
              "limit", path_.c_str(),
              static_cast<unsigned long long>(delta));
    if (e.addr > kMaxTraceAddr)
        fatal("trace '%s': address 0x%llx exceeds the format's 48-bit "
              "limit", path_.c_str(),
              static_cast<unsigned long long>(e.addr));
    if (e.size > kMaxTraceReqSize)
        fatal("trace '%s': request size %u exceeds the format's "
              "limit %u", path_.c_str(), e.size, kMaxTraceReqSize);
    if (src >= kMaxTraceSources)
        fatal("trace '%s': source id %u exceeds the format's limit %u",
              path_.c_str(), src, kMaxTraceSources - 1);

    unsigned char rec[kTraceRecordSize];
    putU64(rec, delta | (static_cast<std::uint64_t>(src) << 56));
    putU64(rec + 8,
           (e.addr & kMaxTraceAddr) |
               (static_cast<std::uint64_t>(e.size) << 48) |
               (static_cast<std::uint64_t>(e.isRead ? 1 : 0) << 63));
    buffer_.append(reinterpret_cast<const char *>(rec),
                   kTraceRecordSize);
    if (buffer_.size() >= kWriterBufferBytes)
        flushBuffer();

    lastTick_ = e.tick;
    maxSrc_ = std::max(maxSrc_, src);
    ++count_;
}

void
TraceWriter::flushBuffer()
{
    if (buffer_.empty())
        return;
    crc_ = ckpt::crc32Update(crc_, buffer_.data(), buffer_.size());
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size())
        fatal("cannot write trace records to '%s'", path_.c_str());
    buffer_.clear();
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    flushBuffer();

    unsigned char footer[kTraceFooterSize];
    putU32(footer, kTraceEndMagic);
    putU32(footer + 4, crc_ ^ 0xFFFFFFFFu);
    putU64(footer + 8, count_);
    putU64(footer + 16, lastTick_);
    if (std::fwrite(footer, 1, kTraceFooterSize, file_) !=
        kTraceFooterSize)
        fatal("cannot write trace footer to '%s'", path_.c_str());

    // Patch the header's record count and source count now that both
    // are known; the footer copy is what detects truncation.
    unsigned char patch[8];
    putU64(patch, count_);
    if (std::fseek(file_, 16, SEEK_SET) != 0 ||
        std::fwrite(patch, 1, 8, file_) != 8)
        fatal("cannot patch trace header of '%s'", path_.c_str());
    putU32(patch, count_ > 0 ? maxSrc_ + 1 : 1);
    if (std::fwrite(patch, 1, 4, file_) != 4)
        fatal("cannot patch trace header of '%s'", path_.c_str());

    if (std::fclose(file_) != 0)
        fatal("cannot close trace file '%s'", path_.c_str());
    file_ = nullptr;
    finished_ = true;
}

//
// TraceReader
//

TraceReader::TraceReader(const std::string &path, bool verify_crc,
                         Backend backend)
    : path_(path)
{
#ifdef DRAMCTRL_HAVE_MMAP
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        fatal("cannot open trace file '%s'", path.c_str());
    struct ::stat st;
    if (::fstat(fd_, &st) != 0)
        fatal("cannot stat trace file '%s'", path.c_str());
    std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);
#else
    std::FILE *probe = std::fopen(path.c_str(), "rb");
    if (probe == nullptr)
        fatal("cannot open trace file '%s'", path.c_str());
    std::fseek(probe, 0, SEEK_END);
    std::uint64_t file_size =
        static_cast<std::uint64_t>(std::ftell(probe));
    std::fclose(probe);
#endif

    openBackend(backend);
    verifyStructure(file_size);
    if (verify_crc) {
        std::uint32_t computed = computeCrc();
        if (computed != info_.crc)
            fatal("trace '%s' is corrupted: record CRC mismatch "
                  "(stored %08x, computed %08x)",
                  path.c_str(), info_.crc, computed);
        reset();
    }
}

TraceReader::~TraceReader()
{
#ifdef DRAMCTRL_HAVE_MMAP
    if (map_ != nullptr)
        ::munmap(const_cast<unsigned char *>(map_), mapSize_);
    if (fd_ >= 0)
        ::close(fd_);
#endif
}

void
TraceReader::openBackend(Backend backend)
{
#ifdef DRAMCTRL_HAVE_MMAP
    if (backend != Backend::Read) {
        struct ::stat st;
        if (::fstat(fd_, &st) != 0)
            fatal("cannot stat trace file '%s'", path_.c_str());
        mapSize_ = static_cast<std::size_t>(st.st_size);
        void *m = mapSize_ > 0
                      ? ::mmap(nullptr, mapSize_, PROT_READ,
                               MAP_PRIVATE, fd_, 0)
                      : MAP_FAILED;
        if (m != MAP_FAILED) {
            map_ = static_cast<const unsigned char *>(m);
            ::madvise(const_cast<unsigned char *>(map_), mapSize_,
                      MADV_SEQUENTIAL);
            return;
        }
        map_ = nullptr;
        mapSize_ = 0;
        if (backend == Backend::Mmap)
            fatal("cannot mmap trace file '%s'", path_.c_str());
    }
#else
    if (backend == Backend::Mmap)
        fatal("mmap is not available on this platform (trace '%s')",
              path_.c_str());
#endif
    // Portable fallback: stream through a fixed-size buffer.
    buf_.resize(kReadChunkBytes);
}

std::size_t
TraceReader::refill()
{
#ifdef DRAMCTRL_HAVE_MMAP
    ::ssize_t n = ::pread(fd_, buf_.data(), buf_.size(),
                          static_cast<::off_t>(fileOff_));
    if (n < 0)
        fatal("cannot read trace file '%s'", path_.c_str());
#else
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr)
        fatal("cannot open trace file '%s'", path_.c_str());
    std::fseek(f, static_cast<long>(fileOff_), SEEK_SET);
    std::size_t n = std::fread(buf_.data(), 1, buf_.size(), f);
    std::fclose(f);
#endif
    fileOff_ += static_cast<std::uint64_t>(n);
    bufPos_ = 0;
    bufLen_ = static_cast<std::size_t>(n);
    return bufLen_;
}

void
TraceReader::verifyStructure(std::uint64_t file_size)
{
    constexpr std::uint64_t min_size =
        kTraceHeaderSize + kTraceFooterSize;
    if (file_size < min_size)
        fatal("trace '%s' is truncated: %llu bytes, need at least "
              "%llu for header and footer",
              path_.c_str(),
              static_cast<unsigned long long>(file_size),
              static_cast<unsigned long long>(min_size));

    unsigned char header[kTraceHeaderSize];
    unsigned char footer[kTraceFooterSize];
    if (map_ != nullptr) {
        std::memcpy(header, map_, kTraceHeaderSize);
        std::memcpy(footer, map_ + file_size - kTraceFooterSize,
                    kTraceFooterSize);
    } else {
        fileOff_ = 0;
        if (refill() < kTraceHeaderSize)
            fatal("cannot read trace header of '%s'", path_.c_str());
        std::memcpy(header, buf_.data(), kTraceHeaderSize);
        fileOff_ = file_size - kTraceFooterSize;
        if (refill() < kTraceFooterSize)
            fatal("cannot read trace footer of '%s'", path_.c_str());
        std::memcpy(footer, buf_.data(), kTraceFooterSize);
    }

    if (getU32(header) != kTraceMagic)
        fatal("'%s' is not a .dtrc trace (bad magic %08x)",
              path_.c_str(), getU32(header));
    info_.version = getU32(header + 4);
    if (info_.version != kTraceVersion)
        fatal("trace '%s' has format version %u; this build reads "
              "version %u",
              path_.c_str(), info_.version, kTraceVersion);
    info_.ticksPerSecond = getU64(header + 8);
    if (info_.ticksPerSecond == 0)
        fatal("trace '%s' declares a zero clock rate", path_.c_str());
    std::uint64_t header_count = getU64(header + 16);
    info_.numSources = getU32(header + 24);
    info_.flags = getU32(header + 28);

    if (getU32(footer) != kTraceEndMagic)
        fatal("trace '%s' is truncated or corrupted: footer magic "
              "missing (found %08x)",
              path_.c_str(), getU32(footer));
    info_.crc = getU32(footer + 4);
    info_.recordCount = getU64(footer + 8);
    info_.lastTick = getU64(footer + 16);

    if (header_count == ~std::uint64_t(0))
        fatal("trace '%s' was never finished (header count unset); "
              "the writer died mid-stream",
              path_.c_str());
    if (header_count != info_.recordCount)
        fatal("trace '%s' is corrupted: header says %llu records, "
              "footer says %llu",
              path_.c_str(),
              static_cast<unsigned long long>(header_count),
              static_cast<unsigned long long>(info_.recordCount));
    std::uint64_t expect = kTraceHeaderSize +
                           info_.recordCount * kTraceRecordSize +
                           kTraceFooterSize;
    if (file_size != expect)
        fatal("trace '%s' is truncated: %llu bytes on disk, %llu "
              "expected for %llu records",
              path_.c_str(),
              static_cast<unsigned long long>(file_size),
              static_cast<unsigned long long>(expect),
              static_cast<unsigned long long>(info_.recordCount));
    if (info_.numSources == 0 || info_.numSources > kMaxTraceSources)
        fatal("trace '%s' declares %u sources (limit %u)",
              path_.c_str(), info_.numSources, kMaxTraceSources);

    reset();
}

std::uint32_t
TraceReader::computeCrc()
{
    const std::uint64_t bytes = info_.recordCount * kTraceRecordSize;
    std::uint32_t crc = 0xFFFFFFFFu;
    if (map_ != nullptr) {
        crc = ckpt::crc32Update(crc, map_ + kTraceHeaderSize,
                                static_cast<std::size_t>(bytes));
    } else {
        std::uint64_t off = kTraceHeaderSize;
        std::uint64_t left = bytes;
        while (left > 0) {
            fileOff_ = off;
            std::size_t got = refill();
            std::size_t use = static_cast<std::size_t>(
                std::min<std::uint64_t>(left, got));
            if (use == 0)
                fatal("cannot read trace records of '%s'",
                      path_.c_str());
            crc = ckpt::crc32Update(crc, buf_.data(), use);
            off += use;
            left -= use;
        }
    }
    return crc ^ 0xFFFFFFFFu;
}

void
TraceReader::reset()
{
    pos_ = 0;
    tick_ = 0;
    bufPos_ = 0;
    bufLen_ = 0;
    fileOff_ = kTraceHeaderSize;
#ifdef DRAMCTRL_HAVE_MMAP
    if (map_ != nullptr && released_ > 0) {
        // Rewinding revisits released pages; undo the DONTNEED hint.
        ::madvise(const_cast<unsigned char *>(map_), mapSize_,
                  MADV_SEQUENTIAL);
        released_ = 0;
    }
#endif
}

bool
TraceReader::next(TraceEntry &e, unsigned *src)
{
    if (pos_ >= info_.recordCount)
        return false;

    if (map_ != nullptr) {
        std::size_t off = kTraceHeaderSize +
                          static_cast<std::size_t>(pos_) *
                              kTraceRecordSize;
        decodeRecord(map_ + off, tick_, e, src);
        ++pos_;
#ifdef DRAMCTRL_HAVE_MMAP
        // Release fully-consumed windows so resident memory stays
        // O(1): pages behind the cursor are never touched again.
        if (off - released_ >= 2 * kReleaseWindowBytes) {
            std::size_t upto =
                (off - kReleaseWindowBytes) & ~(kReleaseWindowBytes - 1);
            if (upto > released_) {
                ::madvise(const_cast<unsigned char *>(map_) + released_,
                          upto - released_, MADV_DONTNEED);
                released_ = upto;
            }
        }
#endif
        return true;
    }

    if (bufLen_ - bufPos_ < kTraceRecordSize) {
        if (refill() < kTraceRecordSize)
            fatal("trace '%s' ended mid-record (disk error?)",
                  path_.c_str());
    }
    decodeRecord(buf_.data() + bufPos_, tick_, e, src);
    bufPos_ += kTraceRecordSize;
    ++pos_;
    return true;
}

//
// Format helpers
//

TraceFormat
traceFormatOf(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        fatal("cannot open trace file '%s'", path.c_str());
    unsigned char magic[4] = {};
    std::size_t n = std::fread(magic, 1, 4, f);
    std::fclose(f);
    return (n == 4 && getU32(magic) == kTraceMagic) ? TraceFormat::Dtrc
                                                    : TraceFormat::Text;
}

TraceFormat
traceFormatForOutput(const std::string &path)
{
    return path.size() >= 4 &&
                   path.compare(path.size() - 4, 4, ".txt") == 0
               ? TraceFormat::Text
               : TraceFormat::Dtrc;
}

std::vector<TraceEntry>
loadTraceDtrc(const std::string &path)
{
    TraceReader reader(path);
    std::vector<TraceEntry> entries;
    entries.reserve(
        static_cast<std::size_t>(reader.info().recordCount));
    TraceEntry e;
    while (reader.next(e))
        entries.push_back(e);
    return entries;
}

std::vector<TraceEntry>
loadTraceAuto(const std::string &path)
{
    return traceFormatOf(path) == TraceFormat::Dtrc
               ? loadTraceDtrc(path)
               : loadTrace(path);
}

void
saveTraceDtrc(const std::string &path,
              const std::vector<TraceEntry> &entries)
{
    TraceWriter writer(path);
    for (const TraceEntry &e : entries)
        writer.append(e);
    writer.finish();
}

TracePlayerConfig
makeTracePlayerConfig(const std::string &path, double time_scale,
                      int src_filter)
{
    TracePlayerConfig pc;
    pc.timeScale = time_scale;
    if (traceFormatOf(path) == TraceFormat::Dtrc) {
        auto src = std::make_shared<DtrcTraceSource>(path, src_filter);
        pc.slipOnStall = (src->reader().info().flags &
                          kTraceFlagLiveCapture) == 0;
        pc.source = std::move(src);
    } else {
        pc.source =
            std::make_shared<VectorTraceSource>(loadTrace(path));
    }
    return pc;
}

//
// DtrcTraceSource
//

DtrcTraceSource::DtrcTraceSource(const std::string &path,
                                 int src_filter, bool verify_crc,
                                 TraceReader::Backend backend)
    : reader_(path, verify_crc, backend), srcFilter_(src_filter)
{
}

void
DtrcTraceSource::fill()
{
    TraceEntry e;
    unsigned src = 0;
    while (reader_.next(e, &src)) {
        if (srcFilter_ < 0 ||
            src == static_cast<unsigned>(srcFilter_)) {
            cached_ = e;
            cachedValid_ = true;
            return;
        }
    }
    exhausted_ = true;
}

bool
DtrcTraceSource::peek(TraceEntry &e)
{
    if (!cachedValid_ && !exhausted_)
        fill();
    if (!cachedValid_)
        return false;
    e = cached_;
    return true;
}

void
DtrcTraceSource::advance()
{
    DC_ASSERT(cachedValid_, "advance past the end of a trace source");
    cachedValid_ = false;
    ++pos_;
}

void
DtrcTraceSource::seek(std::uint64_t n)
{
    reader_.reset();
    cachedValid_ = false;
    exhausted_ = false;
    pos_ = 0;
    TraceEntry e;
    while (pos_ < n) {
        if (!peek(e))
            fatal("trace '%s': cannot seek to entry %llu (stream has "
                  "only %llu matching records)",
                  reader_.path().c_str(),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(pos_));
        advance();
    }
}

std::uint64_t
DtrcTraceSource::fingerprint() const
{
    // Total record count tagged with the filter, so a restore into a
    // differently-filtered (or different) file trips the check.
    return reader_.info().recordCount * 257 +
           static_cast<std::uint64_t>(srcFilter_ + 1);
}

} // namespace dramctrl
