/**
 * @file
 * Base class for synthetic traffic generators (Section III-A).
 *
 * A generator injects read/write requests through a RequestPort at a
 * configurable inter-transaction time, honouring the port's flow
 * control (a refused request is held and re-sent on retry, modelling a
 * blocked requestor). It records end-to-end latency from injection to
 * response — the paper's latency metric, which deliberately includes
 * all queueing and serialisation between the generator and the DRAM.
 */

#ifndef DRAMCTRL_TRAFFICGEN_BASE_GEN_H
#define DRAMCTRL_TRAFFICGEN_BASE_GEN_H

#include <string>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "stats/histogram.hh"
#include "stats/stats.hh"

namespace dramctrl {

/** Common generator knobs. */
struct GenConfig
{
    /** Base of the address window the generator plays in. */
    Addr startAddr = 0;
    /** Size of the address window in bytes. */
    std::uint64_t windowSize = 64 * 1024 * 1024;
    /** Bytes per request. */
    unsigned blockSize = 64;
    /** Percentage of requests that are reads, 0..100. */
    unsigned readPct = 100;
    /** Minimum/maximum inter-transaction time; drawn uniformly. */
    Tick minITT = fromNs(6.0);
    Tick maxITT = fromNs(6.0);
    /** Stop after this many requests (0 = run forever). */
    std::uint64_t numRequests = 0;
    /** Cap on in-flight requests (0 = unlimited). */
    unsigned maxOutstanding = 0;
    /** Tick of the first injection. */
    Tick startTick = 0;
    /** Seed for all of this generator's randomness. */
    std::uint64_t seed = 1;
};

class BaseGen : public SimObject
{
  public:
    BaseGen(Simulator &sim, std::string name, const GenConfig &cfg,
            RequestorId id);
    ~BaseGen() override;

    /** The memory-side port; bind to a controller or crossbar. */
    RequestPort &port() { return port_; }

    void startup() override;

    /** All requested packets injected and responded. */
    bool done() const;

    /** Requests currently in flight. */
    unsigned outstanding() const { return outstanding_; }

    RequestorId requestorId() const { return id_; }
    const GenConfig &genConfig() const { return cfg_; }

    /** Generator-side statistics. */
    struct GenStats
    {
        explicit GenStats(BaseGen &gen);

        stats::Scalar sentReads;
        stats::Scalar sentWrites;
        stats::Scalar bytesSent;
        stats::Scalar recvResponses;
        stats::Scalar retries;
        stats::Scalar totReadLatency;
        stats::Histogram readLatencyHist;
        stats::Formula avgReadLatencyNs;
        /**
         * End-to-end latency not covered by the controller's span:
         * crossbar traversal, response-queue residency and port
         * retries. Sampled (in ns) only for responses that carry a
         * valid attribution span.
         */
        stats::Histogram xbarLatencyHist;
    };

    const GenStats &genStats() const { return *stats_; }

    /** Mean end-to-end read latency in nanoseconds. */
    double avgReadLatencyNs() const;

    void serialize(ckpt::CkptOut &out) const override;
    void unserialize(ckpt::CkptIn &in) override;

    /**
     * Warm-start hook: raise the request budget by @p extra_requests,
     * re-seed the random stream with @p reseed (so the measured phase
     * draws the same stream whether it follows the warmup in-process
     * or after a checkpoint restore), and resume injecting if the
     * generator had gone idle.
     */
    void extendRun(std::uint64_t extra_requests, std::uint64_t reseed);

  protected:
    /** Next request address; implemented by each generator flavour. */
    virtual Addr nextAddr() = 0;

    /** Whether the next request is a read (default: readPct draw). */
    virtual bool nextIsRead();

    Random &rng() { return rng_; }

    /**
     * Fingerprint of the immutable configuration shape (everything
     * except seed and the request budget, which extendRun() mutates),
     * recorded in checkpoints and verified on restore.
     */
    std::uint64_t configHash() const;

  private:
    class GenPort : public RequestPort
    {
      public:
        GenPort(std::string name, BaseGen &gen)
            : RequestPort(std::move(name)), gen_(gen)
        {}

        bool recvTimingResp(Packet *pkt) override
        {
            return gen_.recvTimingResp(pkt);
        }

        void recvReqRetry() override { gen_.recvReqRetry(); }

      private:
        BaseGen &gen_;
    };

    void tryInject();
    bool recvTimingResp(Packet *pkt);
    void recvReqRetry();
    void scheduleNext();
    Tick drawITT();

    GenConfig cfg_;
    RequestorId id_;
    GenPort port_;
    Random rng_;

    Packet *blockedPkt_ = nullptr;
    std::uint64_t sent_ = 0;
    unsigned outstanding_ = 0;
    bool throttled_ = false;

    EventFunctionWrapper injectEvent_;

    std::unique_ptr<GenStats> stats_;
};

} // namespace dramctrl

#endif // DRAMCTRL_TRAFFICGEN_BASE_GEN_H
