/**
 * @file
 * Random traffic generator: uniformly distributed block-aligned
 * addresses over the window (Section III-A).
 */

#ifndef DRAMCTRL_TRAFFICGEN_RANDOM_GEN_H
#define DRAMCTRL_TRAFFICGEN_RANDOM_GEN_H

#include "trafficgen/base_gen.hh"

namespace dramctrl {

class RandomGen : public BaseGen
{
  public:
    RandomGen(Simulator &sim, std::string name, const GenConfig &cfg,
              RequestorId id)
        : BaseGen(sim, std::move(name), cfg, id),
          blocks_(cfg.windowSize / cfg.blockSize)
    {}

  protected:
    Addr
    nextAddr() override
    {
        std::uint64_t block = rng().uniform(0, blocks_ - 1);
        return genConfig().startAddr + block * genConfig().blockSize;
    }

  private:
    std::uint64_t blocks_;
};

} // namespace dramctrl

#endif // DRAMCTRL_TRAFFICGEN_RANDOM_GEN_H
