/**
 * @file
 * DRAM-aware traffic generator (the paper's own contribution in
 * Section III-A).
 *
 * The generator knows the DRAM's page size, bank count and address
 * mapping. It walks a configurable number of banks round-robin and, on
 * each visit, plays a sequential stride of bytes into a *fresh* row of
 * that bank, so the row-buffer hit rate is exactly
 * (stride/burst - 1) / (stride/burst) under an open-page policy, and
 * every access after the first of a stride conflicts with the row just
 * closed under a closed-page policy. Sweeping the stride from one burst
 * to a full page and the bank count from one to all banks exposes tRCD,
 * tCL, tRP, tRRD and tFAW exactly as the paper's bandwidth experiments
 * (Figures 3-5) require.
 */

#ifndef DRAMCTRL_TRAFFICGEN_DRAM_GEN_H
#define DRAMCTRL_TRAFFICGEN_DRAM_GEN_H

#include <vector>

#include "dram/addr_decoder.hh"
#include "dram/dram_config.hh"
#include "trafficgen/base_gen.hh"

namespace dramctrl {

/** DRAM-aware generator knobs on top of the common ones. */
struct DramGenConfig : GenConfig
{
    /** Organisation of the DRAM behind the controller under test. */
    DRAMOrg org;
    /** Address mapping the controller under test decodes with. */
    AddrMapping mapping = AddrMapping::RoRaBaCoCh;
    /** Sequential bytes per bank visit; clamped to the page size. */
    std::uint64_t strideBytes = 64;
    /** Number of banks the generator cycles over (1..total banks). */
    unsigned numBanksTarget = 1;
};

class DramGen : public BaseGen
{
  public:
    DramGen(Simulator &sim, std::string name, const DramGenConfig &cfg,
            RequestorId id);

    /** The row-hit rate this pattern produces under an open page. */
    double expectedOpenPageHitRate() const;

    void serialize(ckpt::CkptOut &out) const override;
    void unserialize(ckpt::CkptIn &in) override;

  protected:
    Addr nextAddr() override;

  private:
    DramGenConfig dcfg_;
    AddrDecoder decoder_;

    unsigned bankCursor_;
    std::uint64_t byteOffset_ = 0;
    std::uint64_t bytesLeftInStride_ = 0;
    std::uint64_t currentRow_ = 0;
    std::vector<std::uint64_t> nextRow_;
};

} // namespace dramctrl

#endif // DRAMCTRL_TRAFFICGEN_DRAM_GEN_H
