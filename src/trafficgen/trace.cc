#include "trafficgen/trace.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ckpt/ckpt.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace dramctrl {

std::vector<TraceEntry>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());

    std::vector<TraceEntry> entries;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        std::uint64_t tick;
        std::string dir;
        std::string addr_s;
        unsigned size;
        if (!(ls >> tick))
            continue; // blank line
        if (!(ls >> dir >> addr_s >> size) || (dir != "r" && dir != "w"))
            fatal("trace '%s' line %llu is malformed", path.c_str(),
                  static_cast<unsigned long long>(line_no));
        TraceEntry e;
        e.tick = tick;
        e.isRead = dir == "r";
        e.addr = std::stoull(addr_s, nullptr, 16);
        e.size = size;
        entries.push_back(e);
    }
    return entries;
}

void
saveTrace(const std::string &path,
          const std::vector<TraceEntry> &entries)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file '%s'", path.c_str());
    out << "# tick r|w addr size\n";
    for (const TraceEntry &e : entries) {
        out << e.tick << ' ' << (e.isRead ? 'r' : 'w') << ' ' << std::hex
            << "0x" << e.addr << std::dec << ' ' << e.size << '\n';
    }
}

TraceRecorder::TraceRecorder(Simulator &sim, std::string name)
    : SimObject(sim, std::move(name)),
      cpuSide_(this->name() + ".cpuSide", *this),
      memSide_(this->name() + ".memSide", *this)
{
}

bool
TraceRecorder::handleReq(Packet *pkt)
{
    if (!memSide_.sendTimingReq(pkt))
        return false;
    trace_.push_back(TraceEntry{curTick(), pkt->isRead(), pkt->addr(),
                                pkt->size()});
    return true;
}

TracePlayer::TracePlayer(Simulator &sim, std::string name,
                         std::vector<TraceEntry> trace, RequestorId id,
                         double time_scale)
    : SimObject(sim, std::move(name)), trace_(std::move(trace)),
      id_(id), timeScale_(time_scale),
      port_(this->name() + ".port", *this),
      injectEvent_([this] { tryInject(); },
                   this->name() + ".injectEvent")
{
    if (timeScale_ <= 0)
        fatal("trace player '%s': non-positive time scale",
              this->name().c_str());
}

TracePlayer::~TracePlayer()
{
    if (injectEvent_.scheduled())
        deschedule(injectEvent_);
    delete blockedPkt_;
}

Tick
TracePlayer::entryTick(std::uint64_t idx) const
{
    return static_cast<Tick>(
               static_cast<double>(trace_[idx].tick) * timeScale_) +
           slip_;
}

void
TracePlayer::startup()
{
    if (!trace_.empty())
        schedule(injectEvent_, std::max(curTick(), entryTick(0)));
}

bool
TracePlayer::done() const
{
    return next_ >= trace_.size() && blockedPkt_ == nullptr &&
           outstandingReads_ == 0;
}

double
TracePlayer::avgReadLatencyNs() const
{
    return readResponses_ > 0
               ? toNs(totReadLatency_) /
                     static_cast<double>(readResponses_)
               : 0.0;
}

void
TracePlayer::serialize(ckpt::CkptOut &out) const
{
    ckpt::putCheck(out, "traceLen", trace_.size());
    out.putU64("next", next_);
    out.putU64("responses", responses_);
    out.putU64("outstandingReads", outstandingReads_);
    out.putPacket("blockedPkt", blockedPkt_);
    out.putTick("slip", slip_);
    out.putTick("totReadLatency", totReadLatency_);
    out.putU64("readResponses", readResponses_);
    out.putEvent("injectEvent", eventq(), injectEvent_);
}

void
TracePlayer::unserialize(ckpt::CkptIn &in)
{
    ckpt::verifyCheck(in, "traceLen", trace_.size(), "trace length");
    next_ = in.getU64("next");
    responses_ = in.getU64("responses");
    outstandingReads_ = in.getU64("outstandingReads");
    blockedPkt_ = in.getPacket("blockedPkt");
    slip_ = in.getTick("slip");
    totReadLatency_ = in.getTick("totReadLatency");
    readResponses_ = in.getU64("readResponses");
    in.getEvent("injectEvent", eventq(), injectEvent_);
}

void
TracePlayer::scheduleNext()
{
    if (next_ >= trace_.size() || blockedPkt_ != nullptr)
        return;
    Tick when = std::max(curTick(), entryTick(next_));
    if (!injectEvent_.scheduled())
        schedule(injectEvent_, when);
}

void
TracePlayer::tryInject()
{
    DC_ASSERT(blockedPkt_ == nullptr, "inject while blocked");
    DC_ASSERT(next_ < trace_.size(), "inject past end of trace");

    const TraceEntry &e = trace_[next_];
    auto *pkt = new Packet(e.isRead ? MemCmd::ReadReq : MemCmd::WriteReq,
                           e.addr, e.size, id_);
    pkt->setInjectedTick(curTick());
    ++next_;
    if (e.isRead)
        ++outstandingReads_;

    if (!port_.sendTimingReq(pkt)) {
        blockedPkt_ = pkt;
        if (e.isRead)
            --outstandingReads_;
        --next_;
        return;
    }
    scheduleNext();
}

void
TracePlayer::recvReqRetry()
{
    DC_ASSERT(blockedPkt_ != nullptr, "retry with no blocked packet");
    Packet *pkt = blockedPkt_;
    blockedPkt_ = nullptr;

    // Everything after this entry slips by however long we were stalled.
    Tick intended = entryTick(next_);
    if (curTick() > intended)
        slip_ += curTick() - intended;

    if (!port_.sendTimingReq(pkt)) {
        blockedPkt_ = pkt;
        return;
    }
    if (pkt->isRead())
        ++outstandingReads_;
    ++next_;
    scheduleNext();
}

bool
TracePlayer::recvTimingResp(Packet *pkt)
{
    ++responses_;
    if (pkt->cmd() == MemCmd::ReadResp) {
        DC_ASSERT(outstandingReads_ > 0, "unexpected read response");
        --outstandingReads_;
        totReadLatency_ += curTick() - pkt->injectedTick();
        ++readResponses_;
    }
    delete pkt;
    return true;
}

} // namespace dramctrl
