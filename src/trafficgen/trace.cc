#include "trafficgen/trace.hh"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>

#include "ckpt/ckpt.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace dramctrl {

namespace {

inline const char *
skipSpace(const char *p, const char *end)
{
    while (p != end && (*p == ' ' || *p == '\t' || *p == '\r'))
        ++p;
    return p;
}

/** Parse an unsigned field in @p base; nullptr return = no digits. */
inline const char *
parseU64(const char *p, const char *end, int base, std::uint64_t &out,
         bool &overflow)
{
    auto [next, ec] = std::from_chars(p, end, out, base);
    overflow = ec == std::errc::result_out_of_range;
    if (ec != std::errc() && !overflow)
        return nullptr;
    return next;
}

} // namespace

std::vector<TraceEntry>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());

    // Parse fields in place with from_chars: no per-line stream
    // construction, no exceptions — malformed input and overflow both
    // land in fatal() with the file and line. The vector grows
    // geometrically (push_back) and is trimmed once at the end.
    std::vector<TraceEntry> entries;
    std::string line;
    std::uint64_t line_no = 0;
    Tick last_tick = 0;

    auto bad = [&](const char *what) {
        fatal("trace '%s' line %llu is malformed: %s", path.c_str(),
              static_cast<unsigned long long>(line_no), what);
    };

    while (std::getline(in, line)) {
        ++line_no;
        auto hash = line.find('#');
        const char *p = line.data();
        const char *end =
            p + (hash == std::string::npos ? line.size() : hash);

        p = skipSpace(p, end);
        if (p == end)
            continue; // blank or comment-only line

        bool overflow = false;
        std::uint64_t tick = 0;
        p = parseU64(p, end, 10, tick, overflow);
        if (p == nullptr)
            bad("expected a decimal tick");
        if (overflow)
            bad("tick overflows 64 bits");

        p = skipSpace(p, end);
        if (p == end || (*p != 'r' && *p != 'w'))
            bad("expected 'r' or 'w' after the tick");
        bool is_read = *p == 'r';
        ++p;
        if (p != end && *p != ' ' && *p != '\t')
            bad("expected 'r' or 'w' after the tick");

        p = skipSpace(p, end);
        if (end - p >= 2 && p[0] == '0' && (p[1] == 'x' || p[1] == 'X'))
            p += 2;
        std::uint64_t addr = 0;
        p = parseU64(p, end, 16, addr, overflow);
        if (p == nullptr)
            bad("expected a hex address");
        if (overflow)
            bad("address overflows 64 bits");

        p = skipSpace(p, end);
        std::uint64_t size = 0;
        p = parseU64(p, end, 10, size, overflow);
        if (p == nullptr)
            bad("expected a decimal size");
        if (overflow || size > std::numeric_limits<unsigned>::max())
            bad("size overflows");

        p = skipSpace(p, end);
        if (p != end)
            bad("trailing garbage after the size field");

        if (tick < last_tick)
            fatal("trace '%s' line %llu goes back in time (tick %llu "
                  "after %llu); traces must be tick-ordered",
                  path.c_str(),
                  static_cast<unsigned long long>(line_no),
                  static_cast<unsigned long long>(tick),
                  static_cast<unsigned long long>(last_tick));
        last_tick = tick;

        entries.push_back(TraceEntry{tick, is_read, addr,
                                     static_cast<unsigned>(size)});
    }
    entries.shrink_to_fit();
    return entries;
}

void
saveTrace(const std::string &path,
          const std::vector<TraceEntry> &entries)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file '%s'", path.c_str());
    out << "# tick r|w addr size\n";
    for (const TraceEntry &e : entries) {
        out << e.tick << ' ' << (e.isRead ? 'r' : 'w') << ' ' << std::hex
            << "0x" << e.addr << std::dec << ' ' << e.size << '\n';
    }
}

TraceRecorder::TraceRecorder(Simulator &sim, std::string name)
    : SimObject(sim, std::move(name)),
      cpuSide_(this->name() + ".cpuSide", *this),
      memSide_(this->name() + ".memSide", *this)
{
}

bool
TraceRecorder::handleReq(Packet *pkt)
{
    if (!memSide_.sendTimingReq(pkt))
        return false;
    // Record the packet's injection tick (its first send attempt), not
    // the acceptance tick: downstream latency accounting measures from
    // injectedTick, so a replayer that re-attempts at this tick meets
    // the same backpressure and reproduces the original statistics.
    TraceEntry e{pkt->injectedTick(), pkt->isRead(), pkt->addr(),
                 pkt->size()};
    if (sink_)
        sink_(e);
    else
        trace_.push_back(e);
    return true;
}

TracePlayer::TracePlayer(Simulator &sim, std::string name,
                         const TracePlayerConfig &cfg, RequestorId id)
    : SimObject(sim, std::move(name)), source_(cfg.source), id_(id),
      timeScale_(cfg.timeScale), slipOnStall_(cfg.slipOnStall),
      port_(this->name() + ".port", *this),
      injectEvent_([this] { tryInject(); },
                   this->name() + ".injectEvent")
{
    if (!source_)
        fatal("trace player '%s': no trace source",
              this->name().c_str());
    if (timeScale_ <= 0)
        fatal("trace player '%s': non-positive time scale",
              this->name().c_str());
}

TracePlayer::TracePlayer(Simulator &sim, std::string name,
                         std::vector<TraceEntry> trace, RequestorId id,
                         double time_scale)
    : TracePlayer(sim, std::move(name),
                  TracePlayerConfig{
                      std::make_shared<VectorTraceSource>(
                          std::move(trace)),
                      time_scale},
                  id)
{
}

TracePlayer::~TracePlayer()
{
    if (injectEvent_.scheduled())
        deschedule(injectEvent_);
    delete blockedPkt_;
}

Tick
TracePlayer::scaledTick(const TraceEntry &e) const
{
    return static_cast<Tick>(static_cast<double>(e.tick) * timeScale_) +
           slip_;
}

bool
TracePlayer::fetch()
{
    if (curValid_)
        return true;
    if (exhausted_)
        return false;
    if (!source_->peek(cur_)) {
        exhausted_ = true;
        return false;
    }
    source_->advance();
    curValid_ = true;
    return true;
}

void
TracePlayer::startup()
{
    if (fetch())
        schedule(injectEvent_, std::max(curTick(), scaledTick(cur_)));
}

bool
TracePlayer::done() const
{
    return exhausted_ && !curValid_ && blockedPkt_ == nullptr &&
           outstandingReads_ == 0;
}

double
TracePlayer::avgReadLatencyNs() const
{
    return readResponses_ > 0
               ? toNs(totReadLatency_) /
                     static_cast<double>(readResponses_)
               : 0.0;
}

void
TracePlayer::serialize(ckpt::CkptOut &out) const
{
    ckpt::putCheck(out, "traceLen", source_->fingerprint());
    out.putU64("next", next_);
    out.putBool("fetched", curValid_);
    out.putBool("exhausted", exhausted_);
    out.putU64("responses", responses_);
    out.putU64("outstandingReads", outstandingReads_);
    out.putPacket("blockedPkt", blockedPkt_);
    out.putTick("blockedIntent", blockedIntent_);
    out.putTick("slip", slip_);
    out.putTick("totReadLatency", totReadLatency_);
    out.putU64("readResponses", readResponses_);
    out.putEvent("injectEvent", eventq(), injectEvent_);
}

void
TracePlayer::unserialize(ckpt::CkptIn &in)
{
    ckpt::verifyCheck(in, "traceLen", source_->fingerprint(),
                      "trace source fingerprint");
    next_ = in.getU64("next");
    bool fetched = in.getOrBool("fetched", false);
    exhausted_ = in.getOrBool("exhausted", false);
    responses_ = in.getU64("responses");
    outstandingReads_ = in.getU64("outstandingReads");
    blockedPkt_ = in.getPacket("blockedPkt");
    blockedIntent_ = in.getOrU64("blockedIntent", 0);
    slip_ = in.getTick("slip");
    totReadLatency_ = in.getTick("totReadLatency");
    readResponses_ = in.getU64("readResponses");

    // Re-establish the source position: next_ entries dispatched,
    // plus one consumed-but-undelivered entry when blocked or when an
    // entry was fetched ahead of a pending inject event.
    source_->seek(next_);
    curValid_ = false;
    if (blockedPkt_ != nullptr) {
        TraceEntry skip;
        if (!source_->peek(skip))
            fatal("trace player '%s': checkpoint says a request is "
                  "blocked but the trace has no entry for it",
                  name().c_str());
        source_->advance();
    } else if (fetched) {
        exhausted_ = false;
        if (!fetch())
            fatal("trace player '%s': checkpoint says an entry was "
                  "fetched but the trace is exhausted",
                  name().c_str());
    }
    in.getEvent("injectEvent", eventq(), injectEvent_);
}

void
TracePlayer::scheduleNext()
{
    if (blockedPkt_ != nullptr || !fetch())
        return;
    Tick when = std::max(curTick(), scaledTick(cur_));
    if (!injectEvent_.scheduled())
        schedule(injectEvent_, when);
}

void
TracePlayer::tryInject()
{
    DC_ASSERT(blockedPkt_ == nullptr, "inject while blocked");
    DC_ASSERT(curValid_, "inject with no fetched entry");

    const TraceEntry e = cur_;
    auto *pkt = new Packet(e.isRead ? MemCmd::ReadReq : MemCmd::WriteReq,
                           e.addr, e.size, id_);
    pkt->setInjectedTick(curTick());
    curValid_ = false;
    ++next_;
    if (e.isRead)
        ++outstandingReads_;

    if (!port_.sendTimingReq(pkt)) {
        blockedPkt_ = pkt;
        blockedIntent_ = scaledTick(e);
        if (e.isRead)
            --outstandingReads_;
        --next_;
        return;
    }
    scheduleNext();
}

void
TracePlayer::recvReqRetry()
{
    DC_ASSERT(blockedPkt_ != nullptr, "retry with no blocked packet");
    Packet *pkt = blockedPkt_;
    blockedPkt_ = nullptr;

    // Everything after this entry slips by however long we were
    // stalled — unless the trace was captured from a live run, whose
    // timestamps already include the original backpressure.
    if (slipOnStall_ && curTick() > blockedIntent_)
        slip_ += curTick() - blockedIntent_;

    if (!port_.sendTimingReq(pkt)) {
        blockedPkt_ = pkt;
        return;
    }
    if (pkt->isRead())
        ++outstandingReads_;
    ++next_;
    scheduleNext();
}

bool
TracePlayer::recvTimingResp(Packet *pkt)
{
    ++responses_;
    if (pkt->cmd() == MemCmd::ReadResp) {
        DC_ASSERT(outstandingReads_ > 0, "unexpected read response");
        --outstandingReads_;
        totReadLatency_ += curTick() - pkt->injectedTick();
        ++readResponses_;
    }
    delete pkt;
    return true;
}

} // namespace dramctrl
