#include "sim/sim_object.hh"

#include "sim/simulator.hh"

namespace dramctrl {

SimObject::SimObject(Simulator &sim, std::string name)
    : sim_(sim), name_(std::move(name)),
      statGroup_(name_, &sim.rootStats())
{
    sim_.registerObject(this);
}

EventQueue &
SimObject::eventq()
{
    return sim_.eventq();
}

const EventQueue &
SimObject::eventq() const
{
    return sim_.eventq();
}

Tick
SimObject::curTick() const
{
    return sim_.eventq().curTick();
}

} // namespace dramctrl
