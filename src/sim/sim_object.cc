#include "sim/sim_object.hh"

#include "sim/simulator.hh"

namespace dramctrl {

SimObject::SimObject(Simulator &sim, std::string name)
    : sim_(sim), name_(std::move(name)),
      statGroup_(name_, &sim.rootStats()),
      eq_(&sim.shardQueue(sim.currentShard())),
      shard_(sim.currentShard())
{
    sim_.registerObject(this);
}

} // namespace dramctrl
