/**
 * @file
 * Conservative parallel execution of a sharded simulation.
 *
 * A sharded Simulator partitions its model objects over several event
 * queues ("shards"); each shard runs its own slice of the agenda. The
 * engine advances all shards in lock-stepped windows:
 *
 *   window_end = min(until, min_over_shards(nextTick) + lookahead)
 *
 * where the lookahead is the minimum latency of any cross-shard
 * interaction. Every cross-shard effect travels as a message posted
 * during window execution and applied only at the barrier between
 * windows, in a single deterministic order sorted by
 * (delivery tick, target shard, sender shard, per-sender send order).
 * Because every message carries latency >= lookahead, a message sent
 * inside a window can never be due before that window's end, so
 * applying it at the barrier is always causally safe (the classic
 * conservative-synchronisation argument, CMB-style).
 *
 * The upshot: the sequence of windows, the events run inside each
 * shard, and the merge order at every barrier are all pure functions
 * of the model state — never of the worker-thread count or of host
 * timing. Running with 1, 2 or 8 threads produces byte-identical
 * results; a single-threaded run of the sharded engine IS the
 * reference ordering, not an approximation of it.
 */

#ifndef DRAMCTRL_SIM_SHARD_H
#define DRAMCTRL_SIM_SHARD_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/types.hh"

namespace dramctrl {

class Packet;
class Simulator;

namespace exec {
class ThreadPool;
} // namespace exec

/**
 * Receiving end of a cross-shard link. deliver() is invoked at a
 * barrier, on the coordinating thread, with all shards quiescent at a
 * common tick <= @p when; the implementation typically enqueues the
 * payload and (re)schedules a wake-up event on its owner's shard
 * queue at @p when.
 */
class ShardMailbox
{
  public:
    virtual ~ShardMailbox() = default;

    /**
     * Apply one message. @p pkt may be null for pure control messages
     * (e.g. flow-control credits); @p arg is an opaque small payload.
     */
    virtual void deliver(Tick when, Packet *pkt, std::uint64_t arg) = 0;
};

/**
 * Windowed conservative scheduler over a Simulator's shard queues.
 * Owned by the Simulator once configureShards() has been called;
 * model code only ever touches post().
 */
class ShardedEngine
{
  public:
    /** @p lookahead must be > 0: the minimum cross-shard latency. */
    ShardedEngine(Simulator &sim, Tick lookahead);

    /** Stops and joins the worker team. */
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    Tick lookahead() const { return lookahead_; }

    /**
     * Set the execution width (worker threads incl. the caller).
     * Clamped to [1, numShards] at first run; fixed once the worker
     * team has started. Width NEVER affects results, only wall-clock.
     */
    void setThreads(unsigned threads);

    unsigned threads() const { return requestedThreads_; }

    /**
     * Post a cross-shard message from @p from (the currently executing
     * shard) for delivery to @p box at @p when. Must satisfy
     * when >= senderNow + lookahead; the engine asserts it. Wait-free:
     * each shard appends to its own outbox.
     */
    void post(unsigned from, unsigned to, Tick when, ShardMailbox &box,
              Packet *pkt, std::uint64_t arg);

    /**
     * Advance every shard to @p until (finite horizons only reach
     * exactly @p until; kMaxTick runs to global exhaustion). All
     * shards are left at a common tick with no message in flight.
     *
     * @return the common final tick.
     */
    Tick run(Tick until);

    /** Synchronisation windows executed since construction. */
    std::uint64_t numWindows() const { return windows_; }

    /** Cross-shard messages delivered since construction. */
    std::uint64_t numMessages() const { return messages_; }

  private:
    struct Msg
    {
        Tick when;
        std::uint32_t to;
        std::uint32_t from;
        ShardMailbox *box;
        Packet *pkt;
        std::uint64_t arg;
    };

    /** Run one window on all shards (parallel when width > 1). */
    void runWindow(Tick window_end);

    /** Merge and apply all posted messages, single-threaded. */
    void deliverMessages();

    /** Advance every shard's clock to @p until (no events due). */
    void advanceAll(Tick until);

    /** Spawn the worker team on first parallel window. */
    void ensureWorkers();

    /** Long-running loop each pool worker executes. */
    void workerBody(unsigned id);

    Simulator &sim_;
    const Tick lookahead_;

    /** Per-sender-shard outboxes; only shard i writes outbox_[i]. */
    std::vector<std::vector<Msg>> outbox_;
    std::vector<Msg> merged_;

    std::uint64_t windows_ = 0;
    std::uint64_t messages_ = 0;

    unsigned requestedThreads_ = 1;
    /** Executors incl. the coordinator; fixed once workers started. */
    unsigned width_ = 1;
    std::unique_ptr<exec::ThreadPool> pool_;
    bool workersStarted_ = false;

    /** Barrier state: a new epoch publishes windowEnd_ to workers. */
    Tick windowEnd_ = 0;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> pending_{0};
    std::atomic<bool> stop_{false};
    std::atomic<unsigned> parked_{0};
    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_SHARD_H
