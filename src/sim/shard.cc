#include "sim/shard.hh"

#include <algorithm>

#include "exec/thread_pool.hh"
#include "sim/eventq.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace dramctrl {

ShardedEngine::ShardedEngine(Simulator &sim, Tick lookahead)
    : sim_(sim), lookahead_(lookahead)
{
    if (lookahead_ == 0)
        fatal("sharded engine needs a non-zero lookahead");
    outbox_.resize(sim_.numShards());
}

ShardedEngine::~ShardedEngine()
{
    if (workersStarted_) {
        stop_.store(true, std::memory_order_release);
        epoch_.fetch_add(1, std::memory_order_release);
        {
            std::lock_guard<std::mutex> lock(wakeMutex_);
            wakeCv_.notify_all();
        }
        pool_.reset(); // drains and joins
    }
    // Messages can only be in flight if a run was abandoned mid-window,
    // which the engine never does; a populated outbox here would mean
    // leaked packets.
    for (auto &ob : outbox_)
        DC_ASSERT(ob.empty(), "engine destroyed with undelivered messages");
}

void
ShardedEngine::setThreads(unsigned threads)
{
    if (threads == 0)
        threads = exec::ThreadPool::hardwareThreads();
    if (workersStarted_ && threads != requestedThreads_)
        fatal("cannot change --sim-threads after the first run");
    requestedThreads_ = threads;
}

void
ShardedEngine::post(unsigned from, unsigned to, Tick when,
                    ShardMailbox &box, Packet *pkt, std::uint64_t arg)
{
    DC_ASSERT(from < outbox_.size() && to < outbox_.size(),
              "cross-shard post between invalid shards %u -> %u", from,
              to);
    DC_ASSERT(when >= sim_.shardQueue(from).curTick() + lookahead_,
              "cross-shard message due at %llu violates the lookahead "
              "(sender now %llu + %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(
                  sim_.shardQueue(from).curTick()),
              static_cast<unsigned long long>(lookahead_));
    outbox_[from].push_back(
        Msg{when, to, from, &box, pkt, arg});
}

void
ShardedEngine::deliverMessages()
{
    merged_.clear();
    for (auto &ob : outbox_) {
        merged_.insert(merged_.end(), ob.begin(), ob.end());
        ob.clear();
    }
    if (merged_.empty())
        return;

    // Total deterministic order. stable_sort preserves each sender's
    // send order within equal (when, to, from) keys, and the outboxes
    // were concatenated in ascending sender order, so the merge is a
    // pure function of the model state — never of thread timing.
    std::stable_sort(merged_.begin(), merged_.end(),
                     [](const Msg &a, const Msg &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         if (a.to != b.to)
                             return a.to < b.to;
                         return a.from < b.from;
                     });

    for (const Msg &m : merged_) {
        DC_ASSERT(m.when >= sim_.shardQueue(m.to).curTick(),
                  "message due at %llu delivered past the barrier %llu",
                  static_cast<unsigned long long>(m.when),
                  static_cast<unsigned long long>(
                      sim_.shardQueue(m.to).curTick()));
        m.box->deliver(m.when, m.pkt, m.arg);
        ++messages_;
    }
    merged_.clear();
}

void
ShardedEngine::advanceAll(Tick until)
{
    const unsigned n = sim_.numShards();
    for (unsigned s = 0; s < n; ++s) {
        // No shard has an event due at or before `until` here, so this
        // only moves the clocks forward to the common horizon.
        sim_.shardQueue(s).simulate(until);
    }
}

void
ShardedEngine::ensureWorkers()
{
    if (workersStarted_)
        return;
    workersStarted_ = true;
    pool_ = std::make_unique<exec::ThreadPool>(width_ - 1);
    for (unsigned id = 1; id < width_; ++id)
        pool_->post([this, id] { workerBody(id); });
}

void
ShardedEngine::workerBody(unsigned id)
{
    const unsigned n = sim_.numShards();
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t e;
        unsigned spins = 0;
        while ((e = epoch_.load(std::memory_order_acquire)) == seen &&
               !stop_.load(std::memory_order_acquire)) {
            // Spin briefly (windows are short), then yield, then park:
            // oversubscribed hosts must not burn a core per worker.
            if (++spins < 1024) {
                // busy wait
            } else if (spins < 16384) {
                std::this_thread::yield();
            } else {
                std::unique_lock<std::mutex> lock(wakeMutex_);
                parked_.fetch_add(1, std::memory_order_relaxed);
                wakeCv_.wait(lock, [&] {
                    return epoch_.load(std::memory_order_acquire) !=
                               seen ||
                           stop_.load(std::memory_order_acquire);
                });
                parked_.fetch_sub(1, std::memory_order_relaxed);
            }
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = e;
        Tick window_end = windowEnd_; // published by the epoch store
        for (unsigned s = id; s < n; s += width_)
            sim_.shardQueue(s).simulate(window_end);
        pending_.fetch_sub(1, std::memory_order_release);
    }
}

void
ShardedEngine::runWindow(Tick window_end)
{
    const unsigned n = sim_.numShards();
    ++windows_;
    if (width_ <= 1) {
        // Sequential reference execution: identical shard-local event
        // order, identical barrier merge — just one executor.
        for (unsigned s = 0; s < n; ++s)
            sim_.shardQueue(s).simulate(window_end);
        return;
    }

    ensureWorkers();
    windowEnd_ = window_end;
    pending_.store(width_ - 1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    if (parked_.load(std::memory_order_acquire) > 0) {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        wakeCv_.notify_all();
    }

    // The coordinator is executor 0: shard 0 (and every width-th shard)
    // always runs here, so objects on shard 0 keep main-thread
    // affinity.
    for (unsigned s = 0; s < n; s += width_)
        sim_.shardQueue(s).simulate(window_end);

    unsigned spins = 0;
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (++spins >= 64)
            std::this_thread::yield();
    }
}

Tick
ShardedEngine::run(Tick until)
{
    const unsigned n = sim_.numShards();
    if (width_ == 1 && !workersStarted_)
        width_ = std::min(requestedThreads_, n);

    // Messages posted outside a window (model setup before the first
    // run) have not been through a barrier yet; apply them so their
    // wake-ups show up in the shard agendas below.
    deliverMessages();

    for (;;) {
        // Invariant at the top: all shards sit at a common barrier tick
        // and every posted message has been delivered.
        Tick t_next = kMaxTick;
        for (unsigned s = 0; s < n; ++s)
            t_next = std::min(t_next, sim_.shardQueue(s).nextTick());

        if (t_next == kMaxTick) {
            if (until != kMaxTick)
                advanceAll(until);
            break;
        }
        if (until != kMaxTick && t_next > until) {
            advanceAll(until);
            break;
        }

        DC_ASSERT(t_next < kMaxTick - lookahead_,
                  "event tick too close to the end of time");
        Tick window_end = t_next + lookahead_;
        if (window_end > until)
            window_end = until;

        runWindow(window_end);
        deliverMessages();
    }
    return sim_.shardQueue(0).curTick();
}

} // namespace dramctrl
