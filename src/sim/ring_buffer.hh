/**
 * @file
 * A fixed-capacity circular FIFO.
 *
 * The simulator's bounded bookkeeping windows (the tXAW activation
 * window, the cycle model's per-bank command queues) used std::deque,
 * whose node recycling allocates in steady state as the FIFO marches
 * through its node map. This ring owns one flat array sized once at
 * init() and never allocates again; indices wrap instead of pointers
 * moving.
 */

#ifndef DRAMCTRL_SIM_RING_BUFFER_H
#define DRAMCTRL_SIM_RING_BUFFER_H

#include <cstddef>
#include <vector>

#include "sim/logging.hh"

namespace dramctrl {

template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    /** Size (or resize, discarding contents) to @p capacity slots. */
    void
    init(std::size_t capacity)
    {
        slots_.assign(capacity, T{});
        head_ = 0;
        count_ = 0;
    }

    std::size_t capacity() const { return slots_.size(); }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == slots_.size(); }

    void
    push_back(const T &value)
    {
        DC_ASSERT(!full(), "ring buffer overflow");
        slots_[wrap(head_ + count_)] = value;
        ++count_;
    }

    /** Push, overwriting (and dropping) the oldest element when full. */
    void
    push_back_overwrite(const T &value)
    {
        if (full())
            pop_front();
        push_back(value);
    }

    void
    push_front(const T &value)
    {
        DC_ASSERT(!full(), "ring buffer overflow");
        head_ = head_ == 0 ? slots_.size() - 1 : head_ - 1;
        slots_[head_] = value;
        ++count_;
    }

    void
    pop_front()
    {
        DC_ASSERT(!empty(), "pop from empty ring buffer");
        head_ = wrap(head_ + 1);
        --count_;
    }

    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }

    T &back() { return slots_[wrap(head_ + count_ - 1)]; }
    const T &back() const { return slots_[wrap(head_ + count_ - 1)]; }

    /** Element @p i positions behind the front (0 == front). */
    T &operator[](std::size_t i) { return slots_[wrap(head_ + i)]; }
    const T &operator[](std::size_t i) const
    {
        return slots_[wrap(head_ + i)];
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        return i < slots_.size() ? i : i - slots_.size();
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_RING_BUFFER_H
