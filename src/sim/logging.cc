#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "sim/eventq.hh"

namespace dramctrl {

namespace {

bool quietFlag = false;
bool throwFlag = false;

std::vector<const EventQueue *> &
tickSources()
{
    static std::vector<const EventQueue *> sources;
    return sources;
}

/** "1234567: " when a simulator is active, "" otherwise. */
std::string
tickPrefix()
{
    Tick tick = 0;
    if (!activeSimTick(tick))
        return "";
    return std::to_string(tick) + ": ";
}

} // namespace

void
registerTickSource(const EventQueue *eq)
{
    tickSources().push_back(eq);
}

void
unregisterTickSource(const EventQueue *eq)
{
    auto &sources = tickSources();
    for (auto it = sources.rbegin(); it != sources.rend(); ++it) {
        if (*it == eq) {
            sources.erase(std::next(it).base());
            return;
        }
    }
}

bool
activeSimTick(Tick &tick)
{
    if (tickSources().empty())
        return false;
    tick = tickSources().back()->curTick();
    return true;
}

std::string
vformatString(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
formatString(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformatString(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    if (throwFlag)
        throw std::runtime_error("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    if (throwFlag)
        throw std::runtime_error("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    std::fprintf(stderr, "%swarn: %s\n", tickPrefix().c_str(),
                 msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    std::fprintf(stdout, "%sinfo: %s\n", tickPrefix().c_str(),
                 msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

void
setThrowOnError(bool throw_on_error)
{
    throwFlag = throw_on_error;
}

} // namespace dramctrl
