#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/eventq.hh"

namespace dramctrl {

namespace {

std::atomic<bool> quietFlag{false};
std::atomic<bool> throwFlag{false};

/**
 * Tick-source registry: per-thread stacks of live event queues,
 * keyed by thread id and guarded by one mutex. Keeping the stacks
 * per thread matters for the batch engine twice over: a warn() on a
 * worker thread is stamped with *its own* simulation's tick, never a
 * concurrently advancing one, and reading another thread's
 * (non-atomic) curTick would itself be a data race. The mutex makes
 * registration, unregistration and lookup safe against concurrent
 * simulator construction/destruction on other threads.
 *
 * Queues register in their constructor and unregister in their
 * destructor (see EventQueue), so a destroyed queue can never be left
 * dangling in the registry for the next warn() to dereference.
 */
std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::unordered_map<std::thread::id, std::vector<const EventQueue *>> &
tickSources()
{
    static std::unordered_map<std::thread::id,
                              std::vector<const EventQueue *>>
        sources;
    return sources;
}

/** "1234567: " when a simulator is active, "" otherwise. */
std::string
tickPrefix()
{
    Tick tick = 0;
    if (!activeSimTick(tick))
        return "";
    return std::to_string(tick) + ": ";
}

} // namespace

void
registerTickSource(const EventQueue *eq)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    tickSources()[std::this_thread::get_id()].push_back(eq);
}

void
unregisterTickSource(const EventQueue *eq)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    auto &map = tickSources();
    auto removeFrom = [eq](std::vector<const EventQueue *> &sources) {
        for (auto it = sources.rbegin(); it != sources.rend(); ++it) {
            if (*it == eq) {
                sources.erase(std::next(it).base());
                return true;
            }
        }
        return false;
    };
    // The common case: the queue dies on the thread it lived on.
    auto own = map.find(std::this_thread::get_id());
    if (own != map.end() && removeFrom(own->second))
        return;
    // Pathological hand-off between threads: still never dangle.
    for (auto &entry : map) {
        if (removeFrom(entry.second))
            return;
    }
}

bool
activeSimTick(Tick &tick)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    auto &map = tickSources();
    auto it = map.find(std::this_thread::get_id());
    if (it == map.end() || it->second.empty())
        return false;
    tick = it->second.back()->curTick();
    return true;
}

std::string
vformatString(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
writeJsonEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

std::string
jsonEscaped(const std::string &s)
{
    std::ostringstream os;
    writeJsonEscaped(os, s);
    return os.str();
}

std::string
formatString(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformatString(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    if (throwFlag.load(std::memory_order_relaxed))
        throw std::runtime_error("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    if (throwFlag.load(std::memory_order_relaxed))
        throw std::runtime_error("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    std::fprintf(stderr, "%swarn: %s\n", tickPrefix().c_str(),
                 msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    std::fprintf(stdout, "%sinfo: %s\n", tickPrefix().c_str(),
                 msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
setThrowOnError(bool throw_on_error)
{
    throwFlag.store(throw_on_error, std::memory_order_relaxed);
}

} // namespace dramctrl
