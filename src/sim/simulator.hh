/**
 * @file
 * Top-level simulation container: event queue, object registry, root
 * statistics group.
 */

#ifndef DRAMCTRL_SIM_SIMULATOR_H
#define DRAMCTRL_SIM_SIMULATOR_H

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/eventq.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace dramctrl {

class SimObject;

namespace obs {
class MetricsRegistry;
} // namespace obs

/**
 * Owns simulated time and the roots of the stats tree. Model objects are
 * constructed by the user (typically via harness::Testbench) and register
 * themselves here; the simulator drives startup and time.
 */
class Simulator
{
  public:
    explicit Simulator(std::string name = "system");
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    EventQueue &eventq() { return eventq_; }
    const EventQueue &eventq() const { return eventq_; }

    Tick curTick() const { return eventq_.curTick(); }

    stats::Group &rootStats() { return rootStats_; }

    /** Called by the SimObject constructor. */
    void registerObject(SimObject *obj);

    const std::vector<SimObject *> &objects() const { return objects_; }

    /**
     * Run the simulation until @p until (calling each object's startup()
     * exactly once, before the first event).
     *
     * @return the final simulated tick.
     */
    Tick run(Tick until = kMaxTick);

    /** Dump the full statistics tree, gem5 stats.txt style. */
    void dumpStats(std::ostream &os) const { rootStats_.dump(os); }

    /** Dump the full statistics tree as JSON. */
    void dumpStatsJson(std::ostream &os) const
    {
        rootStats_.dumpJson(os);
    }

    /** Reset all statistics, e.g. after a warm-up phase. */
    void resetStats() { rootStats_.resetAll(); }

    /**
     * The simulator's metrics registry (see obs/metrics.hh). The root
     * statistics tree is pre-attached, so every registered statistic
     * is visible through the introspection endpoint without extra
     * plumbing; tools add their own counters and gauges to the same
     * registry.
     */
    obs::MetricsRegistry &metrics() { return *metrics_; }

    /** True once every object's startup() has run. */
    bool startupDone() const { return startupDone_; }

    /**
     * Suppress startup(): a checkpoint restore reconstructs the state
     * startup() would have created, so running it again would
     * double-schedule the initial events.
     */
    void markStartupDone() { startupDone_ = true; }

  private:
    EventQueue eventq_;
    stats::Group rootStats_;
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    std::vector<SimObject *> objects_;
    bool startupDone_ = false;
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_SIMULATOR_H
