/**
 * @file
 * Top-level simulation container: event queue, object registry, root
 * statistics group.
 */

#ifndef DRAMCTRL_SIM_SIMULATOR_H
#define DRAMCTRL_SIM_SIMULATOR_H

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/eventq.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace dramctrl {

class ShardedEngine;
class SimObject;

namespace obs {
class MetricsRegistry;
} // namespace obs

/**
 * Owns simulated time and the roots of the stats tree. Model objects are
 * constructed by the user (typically via harness::Testbench) and register
 * themselves here; the simulator drives startup and time.
 *
 * A simulator is single-queue by default. configureShards() turns it
 * into a sharded simulator: extra event queues are created and every
 * SimObject constructed afterwards binds to the queue selected by the
 * surrounding ShardScope. run() then drives all shards through the
 * conservative windowed engine (sim/shard.hh); results are identical
 * at any worker-thread count.
 */
class Simulator
{
  public:
    explicit Simulator(std::string name = "system");
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    EventQueue &eventq() { return eventq_; }
    const EventQueue &eventq() const { return eventq_; }

    Tick curTick() const { return eventq_.curTick(); }

    /**
     * Partition the simulation into @p count shards synchronised with
     * @p lookahead (the minimum cross-shard latency; must be > 0 for
     * count > 1). Call once, before constructing the objects that
     * should live on shards; objects constructed earlier stay on
     * shard 0. count == 1 leaves the simulator in plain single-queue
     * mode.
     */
    void configureShards(unsigned count, Tick lookahead);

    /** Shard count; 1 for an unsharded simulator. */
    unsigned numShards() const
    {
        return 1 + static_cast<unsigned>(extraShards_.size());
    }

    bool sharded() const { return engine_ != nullptr; }

    /** Queue of shard @p idx; shard 0 is eventq(). */
    EventQueue &shardQueue(unsigned idx);

    /** The windowed engine; only valid once sharded(). */
    ShardedEngine &shardEngine();

    /**
     * Worker threads for sharded runs (forwarded to the engine;
     * 0 = one per hardware thread). Purely a wall-clock knob: results
     * are byte-identical at every width.
     */
    void setSimThreads(unsigned threads);

    /** Construction-time shard affinity for new SimObjects. */
    unsigned currentShard() const { return currentShard_; }

    /**
     * RAII selector of the shard new SimObjects bind to. System
     * builders wrap each per-channel slice in a scope:
     *
     *   Simulator::ShardScope scope(sim, ch);
     *   ctrls.push_back(std::make_unique<DRAMCtrl>(sim, ...));
     */
    class ShardScope
    {
      public:
        ShardScope(Simulator &sim, unsigned shard);
        ~ShardScope() { sim_.currentShard_ = prev_; }

        ShardScope(const ShardScope &) = delete;
        ShardScope &operator=(const ShardScope &) = delete;

      private:
        Simulator &sim_;
        unsigned prev_;
    };

    stats::Group &rootStats() { return rootStats_; }

    /** Called by the SimObject constructor. */
    void registerObject(SimObject *obj);

    const std::vector<SimObject *> &objects() const { return objects_; }

    /**
     * Run the simulation until @p until (calling each object's startup()
     * exactly once, before the first event).
     *
     * @return the final simulated tick.
     */
    Tick run(Tick until = kMaxTick);

    /** Dump the full statistics tree, gem5 stats.txt style. */
    void dumpStats(std::ostream &os) const { rootStats_.dump(os); }

    /** Dump the full statistics tree as JSON. */
    void dumpStatsJson(std::ostream &os) const
    {
        rootStats_.dumpJson(os);
    }

    /** Reset all statistics, e.g. after a warm-up phase. */
    void resetStats() { rootStats_.resetAll(); }

    /**
     * The simulator's metrics registry (see obs/metrics.hh). The root
     * statistics tree is pre-attached, so every registered statistic
     * is visible through the introspection endpoint without extra
     * plumbing; tools add their own counters and gauges to the same
     * registry.
     */
    obs::MetricsRegistry &metrics() { return *metrics_; }

    /** True once every object's startup() has run. */
    bool startupDone() const { return startupDone_; }

    /**
     * Suppress startup(): a checkpoint restore reconstructs the state
     * startup() would have created, so running it again would
     * double-schedule the initial events.
     */
    void markStartupDone() { startupDone_ = true; }

  private:
    EventQueue eventq_;
    stats::Group rootStats_;
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    std::vector<SimObject *> objects_;
    bool startupDone_ = false;

    /** Queues of shards 1..N-1 (shard 0 is eventq_). */
    std::vector<std::unique_ptr<EventQueue>> extraShards_;
    std::unique_ptr<ShardedEngine> engine_;
    unsigned currentShard_ = 0;
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_SIMULATOR_H
