#include "sim/event.hh"

#include "sim/logging.hh"

namespace dramctrl {

Event::~Event()
{
    // Destroying an event that is still on a queue would leave a dangling
    // pointer in the agenda; the owning model must deschedule first.
    if (scheduled_)
        panic("event '%s' destroyed while scheduled at tick %llu",
              name().c_str(), static_cast<unsigned long long>(when_));
}

} // namespace dramctrl
