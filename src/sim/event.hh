/**
 * @file
 * Event base class for the discrete-event kernel.
 *
 * An Event is anything that can be scheduled on an EventQueue at an
 * absolute tick. When the queue reaches that tick the event's process()
 * method runs. Events are ordered by (tick, priority, insertion order),
 * so two events at the same tick with the same priority execute in the
 * order they were scheduled.
 *
 * This is the mechanism the paper's modelling technique (Section II-D)
 * rests on: the DRAM controller only schedules events at ticks where its
 * state changes, and the queue skips all the time in between.
 */

#ifndef DRAMCTRL_SIM_EVENT_H
#define DRAMCTRL_SIM_EVENT_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "sim/types.hh"

namespace dramctrl {

class EventQueue;

/**
 * An occurrence scheduled at an absolute simulated tick.
 */
class Event
{
  public:
    /** Relative order among events at the same tick; lower runs first. */
    using Priority = std::int16_t;

    /** Responses are delivered before new requests are considered. */
    static constexpr Priority kResponsePriority = -20;
    /** DRAM refresh preempts normal request processing at a tick. */
    static constexpr Priority kRefreshPriority = -10;
    /** Default priority for ordinary model events. */
    static constexpr Priority kDefaultPriority = 0;
    /** Statistic dump / bookkeeping events run after model events. */
    static constexpr Priority kStatsPriority = 20;

    explicit Event(Priority priority = kDefaultPriority)
        : priority_(priority)
    {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when simulated time reaches when(). */
    virtual void process() = 0;

    /** Human-readable identifier used in error messages. */
    virtual std::string name() const { return "anonymous event"; }

    /** Tick this event is scheduled for (valid only if scheduled()). */
    Tick when() const { return when_; }

    /** Tie-break priority at equal ticks. */
    Priority priority() const { return priority_; }

    /** @return true while the event sits on a queue. */
    bool scheduled() const { return scheduled_; }

  private:
    friend class EventQueue;

    /** Sentinel heap slot for an unscheduled event. */
    static constexpr std::size_t kNoSlot = ~std::size_t(0);

    Tick when_ = 0;
    Priority priority_;
    std::uint64_t seq_ = 0;
    /** This event's slot in the owning queue's binary heap. */
    std::size_t heapSlot_ = kNoSlot;
    bool scheduled_ = false;
};

/**
 * Convenience event that invokes a bound callable, mirroring gem5's
 * EventFunctionWrapper. This keeps model classes free of one-off Event
 * subclasses.
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback, std::string name,
                         Priority priority = kDefaultPriority)
        : Event(priority), callback_(std::move(callback)),
          name_(std::move(name))
    {}

    void process() override { callback_(); }

    std::string name() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_EVENT_H
