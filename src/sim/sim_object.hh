/**
 * @file
 * Base class for all simulated model objects.
 */

#ifndef DRAMCTRL_SIM_SIM_OBJECT_H
#define DRAMCTRL_SIM_SIM_OBJECT_H

#include <string>

#include "ckpt/serializable.hh"
#include "sim/eventq.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace dramctrl {

class Simulator;

/**
 * A named model component attached to a simulator.
 *
 * A SimObject owns a statistics group (named after the object, parented
 * under the simulator's root) and an event-queue binding fixed at
 * construction: the queue of the shard selected by the surrounding
 * Simulator::ShardScope (shard 0 — the simulator's primary queue — by
 * default). All scheduling and time queries go through that queue, so
 * an object built inside a shard scope automatically runs, schedules
 * and reads time on its own shard. Subclasses override startup() to
 * schedule their first events, and the ckpt::Serializable hooks to
 * take part in checkpointing (each object gets its own checkpoint
 * section, named after the object).
 */
class SimObject : public ckpt::Serializable
{
  public:
    SimObject(Simulator &sim, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    /** Called once by Simulator::run() before the first event. */
    virtual void startup() {}

    /** The simulator this object belongs to. */
    Simulator &simulator() { return sim_; }

    /** This object's event queue (its shard's agenda). */
    EventQueue &eventq() { return *eq_; }
    const EventQueue &eventq() const { return *eq_; }

    /** Shard this object was constructed on (0 when unsharded). */
    unsigned shardId() const { return shard_; }

    /** Current simulated time on this object's shard. */
    Tick curTick() const { return eq_->curTick(); }

    /** Schedule helper forwarding to this object's queue. */
    void schedule(Event &ev, Tick when) { eventq().schedule(ev, when); }
    void reschedule(Event &ev, Tick when)
    {
        eventq().reschedule(ev, when);
    }
    void deschedule(Event &ev) { eventq().deschedule(ev); }

    /** This object's statistics group. */
    stats::Group &statGroup() { return statGroup_; }
    const stats::Group &statGroup() const { return statGroup_; }

  private:
    Simulator &sim_;
    std::string name_;
    stats::Group statGroup_;
    EventQueue *eq_;
    unsigned shard_;
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_SIM_OBJECT_H
