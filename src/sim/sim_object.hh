/**
 * @file
 * Base class for all simulated model objects.
 */

#ifndef DRAMCTRL_SIM_SIM_OBJECT_H
#define DRAMCTRL_SIM_SIM_OBJECT_H

#include <string>

#include "ckpt/serializable.hh"
#include "sim/eventq.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace dramctrl {

class Simulator;

/**
 * A named model component attached to a simulator.
 *
 * A SimObject owns a statistics group (named after the object, parented
 * under the simulator's root) and has access to the shared event queue.
 * Subclasses override startup() to schedule their first events, and the
 * ckpt::Serializable hooks to take part in checkpointing (each object
 * gets its own checkpoint section, named after the object).
 */
class SimObject : public ckpt::Serializable
{
  public:
    SimObject(Simulator &sim, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    /** Called once by Simulator::run() before the first event. */
    virtual void startup() {}

    /** The simulator this object belongs to. */
    Simulator &simulator() { return sim_; }

    /** The shared event queue. */
    EventQueue &eventq();
    const EventQueue &eventq() const;

    /** Current simulated time. */
    Tick curTick() const;

    /** Schedule helper forwarding to the shared queue. */
    void schedule(Event &ev, Tick when) { eventq().schedule(ev, when); }
    void reschedule(Event &ev, Tick when)
    {
        eventq().reschedule(ev, when);
    }
    void deschedule(Event &ev) { eventq().deschedule(ev); }

    /** This object's statistics group. */
    stats::Group &statGroup() { return statGroup_; }
    const stats::Group &statGroup() const { return statGroup_; }

  private:
    Simulator &sim_;
    std::string name_;
    stats::Group statGroup_;
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_SIM_OBJECT_H
