/**
 * @file
 * Freelist-based object pools for the hot allocation paths.
 *
 * The simulator's steady state creates and destroys the same few object
 * types (packets, controller-internal bursts, transactions) millions of
 * times. Routing those through a type-segregated freelist means the
 * general-purpose allocator is only touched while a pool grows towards
 * its high-water mark; after warm-up, every allocate() is a pointer pop
 * and every deallocate() a pointer push, and the recycled storage stays
 * hot in cache.
 *
 * The pools are deliberately single-threaded, like the event kernel
 * they serve. Counters are exposed so tests can assert that a warmed-up
 * simulation performs no fresh (chunk-carving) allocations at all.
 */

#ifndef DRAMCTRL_SIM_POOL_H
#define DRAMCTRL_SIM_POOL_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace dramctrl {

/** Snapshot of one pool's allocation counters. */
struct PoolStats
{
    /** Slots ever carved from chunks — the high-water mark. */
    std::size_t capacity = 0;
    /** Slots currently handed out. */
    std::size_t inUse = 0;
    /** Total allocate() calls. */
    std::uint64_t totalAllocs = 0;
    /**
     * allocate() calls that had to carve fresh storage instead of
     * recycling the freelist. Flat across a simulation window means the
     * window ran allocation-free.
     */
    std::uint64_t freshAllocs = 0;
};

/**
 * A growing freelist pool handing out raw storage for objects of type
 * @p T. Storage is carved from geometrically growing chunks and never
 * returned to the system until the pool itself dies, so recycled slots
 * keep stable addresses.
 */
template <typename T>
class ObjectPool
{
  public:
    /** The process-wide pool for @p T (one per translation set). */
    static ObjectPool &
    instance()
    {
        static ObjectPool pool;
        return pool;
    }

    ObjectPool() = default;
    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    /** Raw storage for one T; never null (throws bad_alloc instead). */
    void *
    allocate()
    {
        ++stats_.totalAllocs;
        ++stats_.inUse;
        if (freeHead_ != nullptr) {
            Slot *slot = freeHead_;
            freeHead_ = slot->next;
            return static_cast<void *>(slot->storage);
        }
        ++stats_.freshAllocs;
        if (chunkUsed_ == chunkSize_)
            grow();
        return static_cast<void *>(
            chunks_.back()[chunkUsed_++].storage);
    }

    /** Return storage obtained from allocate() to the freelist. */
    void
    deallocate(void *p)
    {
        auto *slot = reinterpret_cast<Slot *>(p);
        slot->next = freeHead_;
        freeHead_ = slot;
        --stats_.inUse;
    }

    const PoolStats &stats() const { return stats_; }

  private:
    union Slot
    {
        Slot *next;
        alignas(T) unsigned char storage[sizeof(T)];
    };

    void
    grow()
    {
        chunks_.push_back(std::make_unique<Slot[]>(nextChunk_));
        chunkSize_ = nextChunk_;
        chunkUsed_ = 0;
        stats_.capacity += chunkSize_;
        // Geometric growth keeps the chunk count logarithmic in the
        // high-water mark.
        nextChunk_ *= 2;
    }

    std::vector<std::unique_ptr<Slot[]>> chunks_;
    Slot *freeHead_ = nullptr;
    std::size_t chunkSize_ = 0;
    std::size_t chunkUsed_ = 0;
    std::size_t nextChunk_ = 64;
    PoolStats stats_;
};

/**
 * Mixin giving a class pooled operator new/delete. Deriving (or
 * defining the two operators in terms of ObjectPool directly) routes
 * every `new T` / `delete t` through the freelist with no call-site
 * changes. Array forms intentionally stay on the global allocator.
 */
template <typename T>
class Pooled
{
  public:
    static void *
    operator new(std::size_t size)
    {
        if (size != sizeof(T)) // derived type: not slot-sized
            return ::operator new(size);
        return ObjectPool<T>::instance().allocate();
    }

    static void
    operator delete(void *p, std::size_t size)
    {
        if (p == nullptr)
            return;
        if (size != sizeof(T)) {
            ::operator delete(p);
            return;
        }
        ObjectPool<T>::instance().deallocate(p);
    }

    /** Pool counters for T, for allocation-regression tests. */
    static const PoolStats &poolStats()
    {
        return ObjectPool<T>::instance().stats();
    }
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_POOL_H
