/**
 * @file
 * Freelist-based object pools for the hot allocation paths.
 *
 * The simulator's steady state creates and destroys the same few object
 * types (packets, controller-internal bursts, transactions) millions of
 * times. Routing those through a type-segregated freelist means the
 * general-purpose allocator is only touched while a pool grows towards
 * its high-water mark; after warm-up, every allocate() is a pointer pop
 * and every deallocate() a pointer push, and the recycled storage stays
 * hot in cache.
 *
 * The pools are **per thread** (`thread_local`): each thread gets a
 * private freelist with zero synchronisation on the allocation fast
 * path, and the steady-state no-fresh-alloc guarantee holds per
 * thread. The batch engine's shared-nothing jobs allocate and free
 * strictly on one thread; the sharded simulation engine (sim/shard.hh)
 * additionally migrates the occasional object across shard threads
 * (e.g. a packet allocated by a restored checkpoint on the main thread
 * and freed by a generator on its shard's worker). Cross-thread
 * deallocation is therefore permitted: the slot simply joins the
 * freeing thread's freelist. Two consequences keep that safe:
 *
 *  - Chunk storage is immortal. When a pool dies (thread exit), its
 *    chunks move to a process-lifetime quarantine instead of being
 *    freed, so a migrated slot sitting in another thread's freelist
 *    can never dangle.
 *  - inUse is signed: a thread that frees more foreign slots than it
 *    allocated legitimately reads negative, and the cross-thread
 *    aggregate stays exact.
 *
 * Counters are exposed per thread (poolStats()) so tests can assert
 * that a warmed-up simulation performs no fresh (chunk-carving)
 * allocations, and aggregated across threads (aggregatedPoolStats())
 * for whole-batch accounting. Aggregation may only be called while no
 * other thread is allocating (e.g. after a BatchRunner::run returned,
 * which synchronises with its workers).
 */

#ifndef DRAMCTRL_SIM_POOL_H
#define DRAMCTRL_SIM_POOL_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

namespace dramctrl {

/** Snapshot of one pool's allocation counters. */
struct PoolStats
{
    /** Slots ever carved from chunks — the high-water mark. */
    std::size_t capacity = 0;
    /**
     * Slots currently handed out. Signed: cross-thread frees make a
     * single thread's count transiently negative; the aggregate over
     * all threads is always the true live count.
     */
    std::int64_t inUse = 0;
    /** Total allocate() calls. */
    std::uint64_t totalAllocs = 0;
    /**
     * allocate() calls that had to carve fresh storage instead of
     * recycling the freelist. Flat across a simulation window means the
     * window ran allocation-free.
     */
    std::uint64_t freshAllocs = 0;
};

namespace detail {

/**
 * Per-type registry of every live thread's pool counters, plus the
 * folded totals of pools whose threads have exited. Guarded by a
 * mutex; only touched on pool construction/destruction and by
 * aggregate(), never on the allocation fast path.
 */
class PoolStatsRegistry
{
  public:
    void
    attach(const PoolStats *stats)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        live_.push_back(stats);
    }

    void
    detach(const PoolStats *stats)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = live_.begin(); it != live_.end(); ++it) {
            if (*it == stats) {
                retired_.capacity += stats->capacity;
                retired_.inUse += stats->inUse;
                retired_.totalAllocs += stats->totalAllocs;
                retired_.freshAllocs += stats->freshAllocs;
                live_.erase(it);
                return;
            }
        }
    }

    /**
     * Sum of the retired totals and every live thread's counters.
     * Caller must ensure the live threads are quiescent (their
     * counters are plain fields, synchronised only by thread
     * join/condvar edges).
     */
    PoolStats
    aggregate() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PoolStats sum = retired_;
        for (const PoolStats *s : live_) {
            sum.capacity += s->capacity;
            sum.inUse += s->inUse;
            sum.totalAllocs += s->totalAllocs;
            sum.freshAllocs += s->freshAllocs;
        }
        return sum;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<const PoolStats *> live_;
    PoolStats retired_;
};

/**
 * Process-lifetime store for the chunk storage of pools whose threads
 * have exited. Slots handed to other threads' freelists point into
 * this storage, so it must never be released; the store itself is an
 * immortal heap object (reachable through a static pointer, so leak
 * checkers count it as live).
 */
inline void
retainPoolStorage(std::shared_ptr<void> chunks)
{
    static std::mutex *mutex = new std::mutex;
    static auto *store = new std::vector<std::shared_ptr<void>>;
    std::lock_guard<std::mutex> lock(*mutex);
    store->push_back(std::move(chunks));
}

} // namespace detail

/**
 * A growing freelist pool handing out raw storage for objects of type
 * @p T. Storage is carved from geometrically growing chunks and never
 * returned to the system (pool destruction quarantines them — see
 * detail::retainPoolStorage), so recycled slots keep stable addresses
 * for the life of the process even when they migrate across threads.
 */
template <typename T>
class ObjectPool
{
  public:
    /** This thread's pool for @p T (created on first use). */
    static ObjectPool &
    instance()
    {
        static thread_local ObjectPool pool;
        return pool;
    }

    ObjectPool() { registry().attach(&stats_); }

    ~ObjectPool()
    {
        registry().detach(&stats_);
        if (!chunks_.empty())
            detail::retainPoolStorage(std::make_shared<
                std::vector<std::unique_ptr<Slot[]>>>(
                std::move(chunks_)));
    }

    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    /** Raw storage for one T; never null (throws bad_alloc instead). */
    void *
    allocate()
    {
        ++stats_.totalAllocs;
        ++stats_.inUse;
        if (freeHead_ != nullptr) {
            Slot *slot = freeHead_;
            freeHead_ = slot->next;
            return static_cast<void *>(slot->storage);
        }
        ++stats_.freshAllocs;
        if (chunkUsed_ == chunkSize_)
            grow();
        return static_cast<void *>(
            chunks_.back()[chunkUsed_++].storage);
    }

    /** Return storage obtained from allocate() to the freelist. */
    void
    deallocate(void *p)
    {
        auto *slot = reinterpret_cast<Slot *>(p);
        slot->next = freeHead_;
        freeHead_ = slot;
        --stats_.inUse;
    }

    const PoolStats &stats() const { return stats_; }

    /**
     * Counters summed over every thread that ever pooled a T (live
     * threads plus folded totals of exited ones). Only meaningful
     * while no other thread is allocating.
     */
    static PoolStats
    aggregatedStats()
    {
        return registry().aggregate();
    }

  private:
    union Slot
    {
        Slot *next;
        alignas(T) unsigned char storage[sizeof(T)];
    };

    /**
     * The process-wide counter registry for T. A function-local
     * static (not thread_local): constructed before the first pool
     * attaches, destroyed after the main thread's pool detaches.
     */
    static detail::PoolStatsRegistry &
    registry()
    {
        static detail::PoolStatsRegistry reg;
        return reg;
    }

    void
    grow()
    {
        chunks_.push_back(std::make_unique<Slot[]>(nextChunk_));
        chunkSize_ = nextChunk_;
        chunkUsed_ = 0;
        stats_.capacity += chunkSize_;
        // Geometric growth keeps the chunk count logarithmic in the
        // high-water mark.
        nextChunk_ *= 2;
    }

    std::vector<std::unique_ptr<Slot[]>> chunks_;
    Slot *freeHead_ = nullptr;
    std::size_t chunkSize_ = 0;
    std::size_t chunkUsed_ = 0;
    std::size_t nextChunk_ = 64;
    PoolStats stats_;
};

/**
 * Mixin giving a class pooled operator new/delete. Deriving (or
 * defining the two operators in terms of ObjectPool directly) routes
 * every `new T` / `delete t` through the calling thread's freelist
 * with no call-site changes. Array forms intentionally stay on the
 * global allocator. Same-thread new/delete is the fast path the
 * no-fresh-alloc guarantee is stated for; cross-thread delete is safe
 * and migrates the slot (see the file comment).
 */
template <typename T>
class Pooled
{
  public:
    static void *
    operator new(std::size_t size)
    {
        if (size != sizeof(T)) // derived type: not slot-sized
            return ::operator new(size);
        return ObjectPool<T>::instance().allocate();
    }

    static void
    operator delete(void *p, std::size_t size)
    {
        if (p == nullptr)
            return;
        if (size != sizeof(T)) {
            ::operator delete(p);
            return;
        }
        ObjectPool<T>::instance().deallocate(p);
    }

    /**
     * This thread's pool counters for T, for allocation-regression
     * tests.
     */
    static const PoolStats &poolStats()
    {
        return ObjectPool<T>::instance().stats();
    }

    /** Counters summed across threads (see ObjectPool). */
    static PoolStats aggregatedPoolStats()
    {
        return ObjectPool<T>::aggregatedStats();
    }
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_POOL_H
