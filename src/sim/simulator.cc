#include "sim/simulator.hh"

#include "obs/metrics.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"

namespace dramctrl {

Simulator::Simulator(std::string name)
    : rootStats_(std::move(name), nullptr),
      metrics_(std::make_unique<obs::MetricsRegistry>())
{
    // The event queue registered itself as this thread's tick source
    // in its own constructor (and unregisters in its destructor).
    metrics_->attachStats(&rootStats_);
}

Simulator::~Simulator() = default;

void
Simulator::registerObject(SimObject *obj)
{
    objects_.push_back(obj);
}

Tick
Simulator::run(Tick until)
{
    if (!startupDone_) {
        startupDone_ = true;
        for (SimObject *obj : objects_)
            obj->startup();
    }
    return eventq_.simulate(until);
}

} // namespace dramctrl
