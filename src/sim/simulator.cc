#include "sim/simulator.hh"

#include "obs/metrics.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/sim_object.hh"

namespace dramctrl {

Simulator::Simulator(std::string name)
    : rootStats_(std::move(name), nullptr),
      metrics_(std::make_unique<obs::MetricsRegistry>())
{
    // The event queue registered itself as this thread's tick source
    // in its own constructor (and unregisters in its destructor).
    metrics_->attachStats(&rootStats_);
}

Simulator::~Simulator() = default;

void
Simulator::registerObject(SimObject *obj)
{
    objects_.push_back(obj);
}

void
Simulator::configureShards(unsigned count, Tick lookahead)
{
    if (engine_ != nullptr)
        fatal("simulator is already sharded");
    if (startupDone_)
        fatal("cannot shard a simulator after startup");
    if (count == 0)
        fatal("shard count must be at least 1");
    if (count == 1)
        return;
    if (lookahead == 0)
        fatal("sharding needs a non-zero lookahead");

    extraShards_.reserve(count - 1);
    for (unsigned i = 1; i < count; ++i)
        extraShards_.push_back(std::make_unique<EventQueue>());
    // The extra queues just pushed themselves onto this thread's
    // tick-source stack; keep the primary queue on top so main-thread
    // diagnostics stamp with shard 0's tick.
    for (const auto &q : extraShards_)
        unregisterTickSource(q.get());

    engine_ = std::make_unique<ShardedEngine>(*this, lookahead);
}

EventQueue &
Simulator::shardQueue(unsigned idx)
{
    if (idx == 0)
        return eventq_;
    DC_ASSERT(idx <= extraShards_.size(), "shard %u out of range", idx);
    return *extraShards_[idx - 1];
}

ShardedEngine &
Simulator::shardEngine()
{
    DC_ASSERT(engine_ != nullptr, "simulator is not sharded");
    return *engine_;
}

void
Simulator::setSimThreads(unsigned threads)
{
    if (engine_ == nullptr) {
        if (threads > 1)
            warn("--sim-threads ignored: simulation is not sharded");
        return;
    }
    engine_->setThreads(threads);
}

Simulator::ShardScope::ShardScope(Simulator &sim, unsigned shard)
    : sim_(sim), prev_(sim.currentShard_)
{
    DC_ASSERT(shard < sim.numShards(), "shard scope %u out of range",
              shard);
    sim.currentShard_ = shard;
}

Tick
Simulator::run(Tick until)
{
    if (!startupDone_) {
        startupDone_ = true;
        for (SimObject *obj : objects_)
            obj->startup();
    }
    if (engine_ != nullptr)
        return engine_->run(until);
    return eventq_.simulate(until);
}

} // namespace dramctrl
