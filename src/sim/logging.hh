/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention:
 *  - panic():  a condition that indicates a bug in the simulator itself.
 *              Aborts (so a debugger or core dump can pick it up).
 *  - fatal():  a condition caused by the user (bad configuration,
 *              inconsistent parameters). Exits with status 1.
 *  - warn():   something is probably modelled imprecisely but the
 *              simulation can continue.
 *  - inform(): purely informational status output.
 */

#ifndef DRAMCTRL_SIM_LOGGING_H
#define DRAMCTRL_SIM_LOGGING_H

#include <cstdarg>
#include <iosfwd>
#include <string>

#include "sim/types.hh"

namespace dramctrl {

class EventQueue;

/** Format a printf-style message into a std::string. */
std::string vformatString(const char *fmt, std::va_list args);

/**
 * Write @p s to @p os as a double-quoted JSON string, escaping
 * quotes, backslashes and all control characters. Every sink that
 * embeds a config-derived name (preset names, instance names, stat
 * paths) in JSON output must go through this — a hostile preset name
 * must never produce an unparsable trace.
 */
void writeJsonEscaped(std::ostream &os, const std::string &s);

/** writeJsonEscaped() into a returned string (including the quotes). */
std::string jsonEscaped(const std::string &s);

/** Format a printf-style message into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2), noreturn));

/** Report a user error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2), noreturn));

/**
 * Report a non-fatal modelling concern. When a simulator is active
 * (see registerTickSource) the message is prefixed with the current
 * simulated tick, so diagnostics correlate with simulated time.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report informational status (tick-prefixed like warn()). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Register @p eq as the calling thread's simulated-time source for
 * tick-stamping warn()/inform() output and trace messages. Event
 * queues register themselves on construction and unregister on
 * destruction, so the registry never holds a dangling queue; with
 * several alive on one thread (nested testbenches), the most
 * recently registered one wins. The registry keeps one stack per
 * thread behind a mutex: concurrent batch workers each stamp with
 * their own simulation's tick.
 */
void registerTickSource(const EventQueue *eq);

/** Remove @p eq from its tick-source stack (any position). */
void unregisterTickSource(const EventQueue *eq);

/**
 * @return true and set @p tick to the calling thread's innermost
 *         active simulator's current tick; false when this thread
 *         has no simulator alive.
 */
bool activeSimTick(Tick &tick);

/** Suppress warn()/inform() output (used by tests and benchmarks). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() output is suppressed. */
bool isQuiet();

/**
 * Test hook: when set, panic() and fatal() throw std::runtime_error
 * instead of terminating, so death paths can be unit tested.
 */
void setThrowOnError(bool throw_on_error);

} // namespace dramctrl

/** Assert-like helper for simulator invariants that names the condition. */
#define DC_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond))                                                      \
            ::dramctrl::panic("assertion '%s' failed: %s", #cond,         \
                              ::dramctrl::formatString(__VA_ARGS__)       \
                                  .c_str());                              \
    } while (0)

#endif // DRAMCTRL_SIM_LOGGING_H
