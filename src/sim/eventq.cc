#include "sim/eventq.hh"

#include <chrono>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace dramctrl {

EventQueue::EventQueue()
{
    heap_.reserve(64);
    registerTickSource(this);
}

EventQueue::~EventQueue()
{
    unregisterTickSource(this);
}

void
EventQueue::siftUp(std::size_t slot)
{
    Event *ev = heap_[slot];
    while (slot > 0) {
        std::size_t parent = (slot - 1) / 2;
        if (!before(ev, heap_[parent]))
            break;
        heap_[slot] = heap_[parent];
        heap_[slot]->heapSlot_ = slot;
        slot = parent;
    }
    heap_[slot] = ev;
    ev->heapSlot_ = slot;
}

void
EventQueue::siftDown(std::size_t slot)
{
    Event *ev = heap_[slot];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t child = 2 * slot + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap_[child + 1], heap_[child]))
            ++child;
        if (!before(heap_[child], ev))
            break;
        heap_[slot] = heap_[child];
        heap_[slot]->heapSlot_ = slot;
        slot = child;
    }
    heap_[slot] = ev;
    ev->heapSlot_ = slot;
}

void
EventQueue::removeAt(std::size_t slot)
{
    Event *moved = heap_.back();
    heap_.pop_back();
    if (slot < heap_.size()) {
        heap_[slot] = moved;
        moved->heapSlot_ = slot;
        // The refill element comes from an arbitrary subtree, so it may
        // need to travel either way.
        siftDown(slot);
        siftUp(moved->heapSlot_);
    }
}

void
EventQueue::schedule(Event &ev, Tick when)
{
    if (ev.scheduled_)
        panic("event '%s' scheduled twice (already at %llu, now %llu)",
              ev.name().c_str(), static_cast<unsigned long long>(ev.when_),
              static_cast<unsigned long long>(when));
    if (when < curTick_)
        panic("event '%s' scheduled in the past (%llu < now %llu)",
              ev.name().c_str(), static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));

    ev.when_ = when;
    ev.seq_ = nextSeq_++;
    ev.scheduled_ = true;
    heap_.push_back(&ev);
    siftUp(heap_.size() - 1);
}

void
EventQueue::deschedule(Event &ev)
{
    if (!ev.scheduled_)
        panic("deschedule of unscheduled event '%s'", ev.name().c_str());
    removeAt(ev.heapSlot_);
    ev.heapSlot_ = Event::kNoSlot;
    ev.scheduled_ = false;
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (!ev.scheduled_) {
        schedule(ev, when);
        return;
    }
    if (when < curTick_)
        panic("event '%s' rescheduled into the past (%llu < now %llu)",
              ev.name().c_str(), static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));

    // In place: take a fresh sequence number (a reschedule joins the
    // back of its new tick/priority class, like deschedule+schedule
    // always did) and sift from the current slot.
    ev.when_ = when;
    ev.seq_ = nextSeq_++;
    siftDown(ev.heapSlot_);
    siftUp(ev.heapSlot_);
}

std::uint64_t
EventQueue::orderOf(const Event &ev) const
{
    if (!ev.scheduled_)
        panic("orderOf() on unscheduled event '%s'", ev.name().c_str());
    std::uint64_t rank = 0;
    for (const Event *other : heap_)
        if (other != &ev && before(other, &ev))
            ++rank;
    return rank;
}

void
EventQueue::restoreState(Tick when, std::uint64_t num_serviced)
{
    if (!heap_.empty())
        panic("EventQueue::restoreState() with %zu events pending",
              heap_.size());
    curTick_ = when;
    numServiced_ = num_serviced;
}

Tick
EventQueue::nextTick() const
{
    return heap_.empty() ? kMaxTick : heap_.front()->when_;
}

void
EventQueue::serviceOne()
{
    if (heap_.empty())
        panic("serviceOne() on an empty event queue");

    Event *ev = heap_.front();
    removeAt(0);
    ev->heapSlot_ = Event::kNoSlot;
    ev->scheduled_ = false;
    curTick_ = ev->when_;
    ++numServiced_;

    TRACE(EventQ, "service '%s' (%zu pending)", ev->name().c_str(),
          heap_.size());

    if (profiler_ != nullptr) {
        auto t0 = std::chrono::steady_clock::now();
        ev->process();
        auto t1 = std::chrono::steady_clock::now();
        profiler_->record(
            *ev, std::chrono::duration<double>(t1 - t0).count());
    } else {
        ev->process();
    }
}

Tick
EventQueue::simulate(Tick until)
{
    while (!heap_.empty() && heap_.front()->when_ <= until)
        serviceOne();

    // Advance to the horizon so that callers measuring elapsed simulated
    // time across an idle tail see the full window. An infinite horizon
    // (run-to-exhaustion) leaves curTick at the last event.
    if (until != kMaxTick && until > curTick_)
        curTick_ = until;

    return curTick_;
}

} // namespace dramctrl
