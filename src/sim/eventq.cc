#include "sim/eventq.hh"

#include <chrono>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace dramctrl {

void
EventQueue::schedule(Event &ev, Tick when)
{
    if (ev.scheduled_)
        panic("event '%s' scheduled twice (already at %llu, now %llu)",
              ev.name().c_str(), static_cast<unsigned long long>(ev.when_),
              static_cast<unsigned long long>(when));
    if (when < curTick_)
        panic("event '%s' scheduled in the past (%llu < now %llu)",
              ev.name().c_str(), static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));

    ev.when_ = when;
    ev.seq_ = nextSeq_++;
    ev.scheduled_ = true;
    agenda_.insert(&ev);
}

void
EventQueue::deschedule(Event &ev)
{
    if (!ev.scheduled_)
        panic("deschedule of unscheduled event '%s'", ev.name().c_str());
    agenda_.erase(&ev);
    ev.scheduled_ = false;
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (ev.scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

Tick
EventQueue::nextTick() const
{
    return agenda_.empty() ? kMaxTick : (*agenda_.begin())->when();
}

void
EventQueue::serviceOne()
{
    if (agenda_.empty())
        panic("serviceOne() on an empty event queue");

    Event *ev = *agenda_.begin();
    agenda_.erase(agenda_.begin());
    ev->scheduled_ = false;
    curTick_ = ev->when_;
    ++numServiced_;

    TRACE(EventQ, "service '%s' (%zu pending)", ev->name().c_str(),
          agenda_.size());

    if (profiler_ != nullptr) {
        auto t0 = std::chrono::steady_clock::now();
        ev->process();
        auto t1 = std::chrono::steady_clock::now();
        profiler_->record(
            *ev, std::chrono::duration<double>(t1 - t0).count());
    } else {
        ev->process();
    }
}

Tick
EventQueue::simulate(Tick until)
{
    while (!agenda_.empty() && nextTick() <= until)
        serviceOne();

    // Advance to the horizon so that callers measuring elapsed simulated
    // time across an idle tail see the full window. An infinite horizon
    // (run-to-exhaustion) leaves curTick at the last event.
    if (until != kMaxTick && until > curTick_)
        curTick_ = until;

    return curTick_;
}

} // namespace dramctrl
